//! Property-based tests for `BitStr` and `Hash128`.

use proptest::prelude::*;
use skippub_bits::{BitStr, Hash128};

fn arb_bits(max_len: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..max_len)
}

fn build(bits: &[bool]) -> BitStr {
    bits.iter().copied().collect()
}

proptest! {
    #[test]
    fn roundtrip_via_iter(bits in arb_bits(300)) {
        let s = build(&bits);
        prop_assert_eq!(s.len(), bits.len());
        let back: Vec<bool> = s.iter().collect();
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn roundtrip_via_string(bits in arb_bits(300)) {
        let s = build(&bits);
        let parsed: BitStr = s.to_string().parse().unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn push_pop_inverse(bits in arb_bits(200), extra in any::<bool>()) {
        let mut s = build(&bits);
        let orig = s.clone();
        s.push(extra);
        prop_assert_eq!(s.pop(), Some(extra));
        prop_assert_eq!(s, orig);
    }

    #[test]
    fn ordering_matches_string_ordering(a in arb_bits(120), b in arb_bits(120)) {
        let (sa, sb) = (build(&a), build(&b));
        let str_cmp = sa.to_string().cmp(&sb.to_string());
        prop_assert_eq!(sa.cmp(&sb), str_cmp);
    }

    #[test]
    fn common_prefix_is_correct(a in arb_bits(200), b in arb_bits(200)) {
        let (sa, sb) = (build(&a), build(&b));
        let lcp = sa.common_prefix_len(&sb);
        // Every position before lcp matches; position lcp (if any) differs.
        for i in 0..lcp {
            prop_assert_eq!(sa.get(i), sb.get(i));
        }
        if lcp < sa.len() && lcp < sb.len() {
            prop_assert_ne!(sa.get(lcp), sb.get(lcp));
        }
        prop_assert!(sa.common_prefix(&sb).is_prefix_of(&sa));
        prop_assert!(sa.common_prefix(&sb).is_prefix_of(&sb));
    }

    #[test]
    fn prefix_relation_consistent(a in arb_bits(150), cut in 0usize..150) {
        let sa = build(&a);
        let cut = cut.min(sa.len());
        let p = sa.prefix(cut);
        prop_assert!(p.is_prefix_of(&sa));
        prop_assert_eq!(p.common_prefix_len(&sa), cut);
    }

    #[test]
    fn concat_lengths_and_content(a in arb_bits(120), b in arb_bits(120)) {
        let (sa, sb) = (build(&a), build(&b));
        let c = sa.concat(&sb);
        prop_assert_eq!(c.len(), sa.len() + sb.len());
        prop_assert!(sa.is_prefix_of(&c));
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        prop_assert_eq!(c, build(&expect));
    }

    #[test]
    fn truncate_then_extend_identity(a in arb_bits(150), cut in 0usize..150) {
        let sa = build(&a);
        let cut = cut.min(sa.len());
        let mut head = sa.clone();
        head.truncate(cut);
        let tail: BitStr = a[cut..].iter().copied().collect();
        prop_assert_eq!(head.concat(&tail), sa);
    }

    #[test]
    fn frac_u64_roundtrip(a in arb_bits(64)) {
        let sa = build(&a);
        prop_assert_eq!(BitStr::from_frac_u64(sa.frac_u64(), sa.len()), sa);
    }

    #[test]
    fn hash_equality_iff_equal_smallish(a in arb_bits(40), b in arb_bits(40)) {
        let (sa, sb) = (build(&a), build(&b));
        if sa == sb {
            prop_assert_eq!(Hash128::of_bits(&sa), Hash128::of_bits(&sb));
        } else {
            // With 2^-128 collision probability this never fires in practice.
            prop_assert_ne!(Hash128::of_bits(&sa), Hash128::of_bits(&sb));
        }
    }
}
