//! Property tests for the `BitStr` inline/spill boundary.
//!
//! The small-string-optimized representation (≤ 64 bits inline, `Vec<u64>`
//! spill beyond) is checked against a reference implementation that is a
//! verbatim port of the pre-SSO `Vec<u64>`-backed `BitStr`: push/pop
//! round-trips, prefixes, ordering, equality, hashing and the canonical
//! byte encoding must agree at the boundary lengths 0, 63, 64, 65 and at
//! random lengths straddling it.

use proptest::prelude::*;
use skippub_bits::BitStr;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const WORD_BITS: usize = 64;

/// Reference model: the old heap-only representation, kept bit-for-bit
/// identical to the code the SSO version replaced.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
struct RefBits {
    words: Vec<u64>,
    len: usize,
}

impl RefBits {
    fn push(&mut self, bit: bool) {
        let slot = self.len / WORD_BITS;
        if slot == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[slot] |= 1u64 << (WORD_BITS - 1 - (self.len % WORD_BITS));
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let slot = self.len / WORD_BITS;
        let mask = 1u64 << (WORD_BITS - 1 - (self.len % WORD_BITS));
        let bit = self.words[slot] & mask != 0;
        self.words[slot] &= !mask;
        self.words.truncate(self.len.div_ceil(WORD_BITS));
        Some(bit)
    }

    fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.len = new_len;
        self.words.truncate(new_len.div_ceil(WORD_BITS));
        let tail = new_len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !((1u64 << (WORD_BITS - tail)) - 1);
            }
        }
    }

    fn get(&self, i: usize) -> bool {
        let word = self.words[i / WORD_BITS];
        (word >> (WORD_BITS - 1 - (i % WORD_BITS))) & 1 == 1
    }

    fn common_prefix_len(&self, other: &RefBits) -> usize {
        let max = self.len.min(other.len);
        let mut matched = 0usize;
        for (a, b) in self.words.iter().zip(other.words.iter()) {
            let diff = a ^ b;
            if diff == 0 {
                matched += WORD_BITS;
                if matched >= max {
                    return max;
                }
            } else {
                matched += diff.leading_zeros() as usize;
                return matched.min(max);
            }
        }
        max
    }

    fn cmp_ref(&self, other: &RefBits) -> Ordering {
        let lcp = self.common_prefix_len(other);
        match (lcp == self.len, lcp == other.len) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => {
                if self.get(lcp) {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
        }
    }

    fn canonical_bytes(&self, sink: &mut Vec<u8>) {
        sink.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            sink.extend_from_slice(&w.to_le_bytes());
        }
    }
}

fn build_both(bits: &[bool]) -> (BitStr, RefBits) {
    let mut s = BitStr::new();
    let mut r = RefBits::default();
    for &b in bits {
        s.push(b);
        r.push(b);
    }
    (s, r)
}

fn hash_of(s: &BitStr) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

fn assert_agrees(s: &BitStr, r: &RefBits) {
    assert_eq!(s.len(), r.len);
    for i in 0..r.len {
        assert_eq!(s.get(i), r.get(i), "bit {i} of len {}", r.len);
    }
    let mut cb_s = Vec::new();
    let mut cb_r = Vec::new();
    s.canonical_bytes(&mut cb_s);
    r.canonical_bytes(&mut cb_r);
    assert_eq!(cb_s, cb_r, "canonical byte encodings must be identical");
    assert_eq!(s.is_inline(), r.len <= WORD_BITS, "repr must be canonical");
}

/// Raw material for one string: 130 random bits plus a length selector.
/// [`pick`] slices it so the boundary lengths 0, 63, 64, 65 each get
/// dedicated weight alongside random lengths 0..=130 (the vendored
/// proptest subset has no `prop_flat_map`, so selection happens in the
/// test body).
fn arb_raw() -> impl Strategy<Value = (usize, usize, Vec<bool>)> {
    (
        0usize..8,
        0usize..=130,
        proptest::collection::vec(any::<bool>(), 130..131),
    )
}

fn pick(sel: usize, rand_len: usize, raw: &[bool]) -> &[bool] {
    let len = match sel {
        0 => 0,
        1 => 63,
        2 => 64,
        3 => 65,
        _ => rand_len,
    };
    &raw[..len]
}

proptest! {
    #[test]
    fn build_matches_reference(raw in arb_raw()) {
        let (sel, rand_len, ref bits) = raw;
        let (s, r) = build_both(pick(sel, rand_len, bits));
        assert_agrees(&s, &r);
    }

    #[test]
    fn push_pop_truncate_matches_reference(
        raw in arb_raw(),
        pops in 0usize..=70,
        trunc in 0usize..=130,
        tail in proptest::collection::vec(any::<bool>(), 0..70),
    ) {
        let (sel, rand_len, ref bits) = raw;
        let (mut s, mut r) = build_both(pick(sel, rand_len, bits));
        for _ in 0..pops {
            prop_assert_eq!(s.pop(), r.pop());
            assert_agrees(&s, &r);
        }
        s.truncate(trunc);
        r.truncate(trunc);
        assert_agrees(&s, &r);
        for &b in &tail {
            s.push(b);
            r.push(b);
        }
        assert_agrees(&s, &r);
    }

    #[test]
    fn prefix_matches_reference(raw in arb_raw(), cut in 0usize..=130) {
        let (sel, rand_len, ref bits) = raw;
        let (s, r) = build_both(pick(sel, rand_len, bits));
        let n = cut.min(r.len);
        let p = s.prefix(n);
        let mut rp = r.clone();
        rp.truncate(n);
        assert_agrees(&p, &rp);
        prop_assert!(p.is_prefix_of(&s));
    }

    #[test]
    fn order_matches_reference(raw_a in arb_raw(), raw_b in arb_raw()) {
        let (sel_a, rand_a, ref a) = raw_a;
        let (sel_b, rand_b, ref b) = raw_b;
        let (sa, ra) = build_both(pick(sel_a, rand_a, a));
        let (sb, rb) = build_both(pick(sel_b, rand_b, b));
        prop_assert_eq!(sa.cmp(&sb), ra.cmp_ref(&rb));
        prop_assert_eq!(sa.common_prefix_len(&sb), ra.common_prefix_len(&rb));
        prop_assert_eq!(sa == sb, ra == rb);
    }

    #[test]
    fn hash_is_representation_independent(raw in arb_raw(), extra in proptest::collection::vec(any::<bool>(), 1..70)) {
        // Build the same string two ways: directly (inline when short),
        // and by overshooting past the spill boundary then popping back.
        let (sel, rand_len, ref bits) = raw;
        let bits = pick(sel, rand_len, bits);
        let (direct, _) = build_both(bits);
        let mut via_spill = BitStr::new();
        for &b in bits.iter().chain(extra.iter()) {
            via_spill.push(b);
        }
        for _ in 0..extra.len() {
            via_spill.pop();
        }
        prop_assert_eq!(&via_spill, &direct);
        prop_assert_eq!(hash_of(&via_spill), hash_of(&direct));
        prop_assert_eq!(via_spill.cmp(&direct), Ordering::Equal);
    }
}
