//! # skippub-bits
//!
//! Foundation types shared by every other `skippub` crate:
//!
//! * [`BitStr`] — a compact, arbitrary-length, MSB-first bit string. The
//!   paper ("Self-Stabilizing Supervised Publish-Subscribe Systems",
//!   Feldmann et al.) works over the alphabet `Σ = {0,1}` everywhere:
//!   subscriber *labels* are bit strings, Patricia-trie node labels are bit
//!   strings, and publication keys are fixed-length bit strings produced by
//!   a hash function.
//! * [`Hash128`] — the non-cryptographic, collision-resistant-in-practice
//!   128-bit hash used for Merkle-style Patricia-trie node hashes (paper
//!   §4.2). The paper explicitly notes that one-way/cryptographic hashes
//!   are *not* required ("we do not require our scheme to be
//!   cryptographically secure"), only practical collision resistance, so a
//!   strong mixing hash suffices and keeps the crate dependency-free.
//!
//! Both types are `#![no_std]`-shaped in spirit (no I/O, no globals) and are
//! exercised heavily by property-based tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstr;
mod hash;

pub use bitstr::{BitStr, BitStrBits, ParseBitStrError};
pub use hash::{publication_key, Hash128};
