//! Compact MSB-first bit strings.
//!
//! A [`BitStr`] models an element of `{0,1}*`. Bits are indexed from 0
//! starting at the most significant ("leftmost") position, matching the
//! paper's notation `y = (y₁ … y_d)` where `y₁` is the bit that contributes
//! `y₁/2` to the real value `r(y)`.
//!
//! ## Storage
//!
//! Strings of at most 64 bits — every skip-ring label up to `n ≈ 2^64`
//! members and every publication key at the default `m = 64` — are stored
//! **inline** in a single `u64` with no heap allocation. Longer strings
//! spill to a `Vec<u64>`. The representation is canonical (`len ≤ 64` ⇔
//! inline), but equality, ordering, hashing and the canonical byte
//! encoding are all defined over the *logical* word sequence and therefore
//! representation-independent by construction. Spill events are counted in
//! a process-wide gauge ([`BitStr::heap_allocations`]) so tests can prove
//! that protocol steady state never leaves the inline path.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Number of bits stored per backing word.
const WORD_BITS: usize = 64;

/// Process-wide count of heap (spill) allocations made by `BitStr`.
static HEAP_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Backing storage: a single inline word for strings of at most 64 bits,
/// a word vector beyond that. `Spilled` is only ever constructed for
/// `len > 64` (truncation un-spills), so the representation is a function
/// of the length alone.
enum Repr {
    Inline(u64),
    Spilled(Vec<u64>),
}

/// An arbitrary-length bit string over `{0,1}`, MSB-first.
///
/// Bit `i` of the string is stored in word `i / 64` at bit position
/// `63 - (i % 64)`, i.e. the string `"10"` is one word with the top bit
/// set. All bits past `len` inside the last word are kept at zero (a
/// maintained invariant that makes equality, hashing and comparison plain
/// word operations). The spilled word vector always holds exactly
/// `len.div_ceil(64)` words.
pub struct BitStr {
    repr: Repr,
    len: usize,
}

impl Clone for BitStr {
    fn clone(&self) -> Self {
        let repr = match &self.repr {
            Repr::Inline(w) => Repr::Inline(*w),
            Repr::Spilled(v) => {
                HEAP_ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
                Repr::Spilled(v.clone())
            }
        };
        BitStr {
            repr,
            len: self.len,
        }
    }
}

impl Default for BitStr {
    #[inline]
    fn default() -> Self {
        BitStr::new()
    }
}

impl BitStr {
    /// The empty bit string `⊥` / `""`.
    #[inline]
    pub fn new() -> Self {
        BitStr {
            repr: Repr::Inline(0),
            len: 0,
        }
    }

    /// Creates a bit string with capacity for `bits` bits. Strings up to
    /// 64 bits live inline, so this allocates nothing; it is kept for API
    /// compatibility and as documentation of intent at call sites.
    #[inline]
    pub fn with_capacity(_bits: usize) -> Self {
        BitStr::new()
    }

    /// Number of heap allocations `BitStr` has performed process-wide
    /// (spills past 64 bits, including clones of spilled strings).
    /// Strings on the inline path never contribute. Monotone; tests
    /// measure deltas across a workload window.
    #[inline]
    pub fn heap_allocations() -> u64 {
        HEAP_ALLOCATIONS.load(AtomicOrdering::Relaxed)
    }

    /// Whether this string is stored inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// The logical backing words: exactly `len.div_ceil(64)` of them,
    /// MSB-first, bits past `len` zero.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => {
                let n = usize::from(self.len != 0);
                &std::slice::from_ref(w)[..n]
            }
            Repr::Spilled(v) => v,
        }
    }

    /// Converts to the spilled representation with room for `total` bits.
    /// No-op if already spilled (beyond a `reserve`).
    fn spill(&mut self, total: usize) {
        if let Repr::Inline(w) = self.repr {
            HEAP_ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
            let mut v = Vec::with_capacity(total.div_ceil(WORD_BITS));
            if self.len != 0 {
                v.push(w);
            }
            self.repr = Repr::Spilled(v);
        }
    }

    /// Re-inlines a spilled string whose length has dropped to ≤ 64 bits,
    /// restoring the canonical representation (and the no-alloc `Clone`).
    fn unspill_if_short(&mut self) {
        if self.len <= WORD_BITS {
            if let Repr::Spilled(v) = &self.repr {
                self.repr = Repr::Inline(v.first().copied().unwrap_or(0));
            }
        }
    }

    /// Builds a bit string from the lowest `len` bits of `value`,
    /// interpreted MSB-first (the bit at position `len-1` of `value` comes
    /// first). `len` must be at most 64.
    ///
    /// ```
    /// use skippub_bits::BitStr;
    /// assert_eq!(BitStr::from_u64_msb(0b011, 3).to_string(), "011");
    /// ```
    pub fn from_u64_msb(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64_msb supports at most 64 bits");
        if len == 0 {
            return BitStr::new();
        }
        let masked = if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        };
        BitStr {
            repr: Repr::Inline(masked << (WORD_BITS - len)),
            len,
        }
    }

    /// Builds a bit string of length `len` whose word content is
    /// `frac` left-aligned: bit `i` of the string equals bit `63-i` of
    /// `frac`. This is the natural encoding for labels stored as dyadic
    /// fractions. Bits of `frac` beyond `len` are discarded.
    pub fn from_frac_u64(frac: u64, len: usize) -> Self {
        assert!(len <= 64, "from_frac_u64 supports at most 64 bits");
        if len == 0 {
            return BitStr::new();
        }
        let keep = if len == 64 {
            u64::MAX
        } else {
            !((1u64 << (WORD_BITS - len)) - 1)
        };
        BitStr {
            repr: Repr::Inline(frac & keep),
            len,
        }
    }

    /// Returns the first (up to) 64 bits left-aligned in a `u64`:
    /// bit `i` of the string appears at bit `63-i`. Strings shorter than 64
    /// bits are zero-padded on the right. Inverse of [`BitStr::from_frac_u64`]
    /// for strings of at most 64 bits.
    #[inline]
    pub fn frac_u64(&self) -> u64 {
        match &self.repr {
            Repr::Inline(w) => *w,
            Repr::Spilled(v) => v.first().copied().unwrap_or(0),
        }
    }

    /// Number of bits in the string.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i` (`true` = 1). Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = self.words()[i / WORD_BITS];
        (word >> (WORD_BITS - 1 - (i % WORD_BITS))) & 1 == 1
    }

    /// Appends one bit at the end (least significant / rightmost position).
    pub fn push(&mut self, bit: bool) {
        match &mut self.repr {
            Repr::Inline(w) => {
                if self.len < WORD_BITS {
                    if bit {
                        *w |= 1u64 << (WORD_BITS - 1 - self.len);
                    }
                    self.len += 1;
                    return;
                }
                self.spill(self.len + 1);
            }
            Repr::Spilled(_) => {}
        }
        let Repr::Spilled(v) = &mut self.repr else {
            unreachable!("spill() always yields the spilled representation")
        };
        let slot = self.len / WORD_BITS;
        if slot == v.len() {
            v.push(0);
        }
        if bit {
            v[slot] |= 1u64 << (WORD_BITS - 1 - (self.len % WORD_BITS));
        }
        self.len += 1;
    }

    /// Removes and returns the last bit, or `None` when empty.
    pub fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let mask = 1u64 << (WORD_BITS - 1 - (self.len % WORD_BITS));
        let bit = match &mut self.repr {
            Repr::Inline(w) => {
                let bit = *w & mask != 0;
                *w &= !mask;
                bit
            }
            Repr::Spilled(v) => {
                let slot = self.len / WORD_BITS;
                let bit = v[slot] & mask != 0;
                v[slot] &= !mask;
                // Drop now-unused trailing words so the word vector stays
                // exactly `len.div_ceil(64)` long (e.g. a push/pop pair
                // across a word boundary must be a no-op).
                v.truncate(self.len.div_ceil(WORD_BITS));
                bit
            }
        };
        self.unspill_if_short();
        Some(bit)
    }

    /// Shortens the string to `new_len` bits (no-op if already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.len = new_len;
        let tail = new_len % WORD_BITS;
        match &mut self.repr {
            Repr::Inline(w) => {
                if tail != 0 {
                    *w &= !((1u64 << (WORD_BITS - tail)) - 1);
                } else {
                    *w = 0;
                }
            }
            Repr::Spilled(v) => {
                v.truncate(new_len.div_ceil(WORD_BITS));
                if tail != 0 {
                    if let Some(last) = v.last_mut() {
                        *last &= !((1u64 << (WORD_BITS - tail)) - 1);
                    }
                }
            }
        }
        self.unspill_if_short();
    }

    /// Returns the prefix consisting of the first `n` bits.
    /// Panics if `n > len`.
    pub fn prefix(&self, n: usize) -> BitStr {
        assert!(n <= self.len, "prefix length {n} exceeds len {}", self.len);
        if n <= WORD_BITS {
            // Short prefixes of any string are built inline directly.
            let mut out = BitStr {
                repr: Repr::Inline(self.frac_u64()),
                len: n,
            };
            if let Repr::Inline(w) = &mut out.repr {
                if n == 0 {
                    *w = 0;
                } else if n < WORD_BITS {
                    *w &= !((1u64 << (WORD_BITS - n)) - 1);
                }
            }
            return out;
        }
        let mut out = self.clone();
        out.truncate(n);
        out
    }

    /// Concatenation `self ∘ other`.
    pub fn concat(&self, other: &BitStr) -> BitStr {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// Appends all bits of `other` to `self`.
    pub fn extend_from(&mut self, other: &BitStr) {
        if other.len == 0 {
            return;
        }
        let total = self.len + other.len;
        if total <= WORD_BITS {
            // Both inline: a shift-or does the whole append.
            let ow = other.frac_u64();
            let Repr::Inline(w) = &mut self.repr else {
                unreachable!("len ≤ 64 strings are always inline")
            };
            *w |= ow >> self.len;
            self.len = total;
            return;
        }
        // Fast path: self ends on a word boundary — memcpy the words.
        if self.len.is_multiple_of(WORD_BITS) {
            self.spill(total);
            let Repr::Spilled(v) = &mut self.repr else {
                unreachable!("spill() always yields the spilled representation")
            };
            v.extend_from_slice(other.words());
            self.len = total;
            return;
        }
        for bit in other.iter() {
            self.push(bit);
        }
    }

    /// Returns a new string equal to `self` with `bit` appended.
    pub fn child(&self, bit: bool) -> BitStr {
        let mut out = self.clone();
        out.push(bit);
        out
    }

    /// `true` iff `self` is a (not necessarily proper) prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitStr) -> bool {
        if self.len > other.len {
            return false;
        }
        if self.len == 0 {
            return true;
        }
        let a = self.words();
        let b = other.words();
        let full = self.len / WORD_BITS;
        if a[..full] != b[..full] {
            return false;
        }
        let tail = self.len % WORD_BITS;
        if tail == 0 {
            return true;
        }
        let mask = !((1u64 << (WORD_BITS - tail)) - 1);
        (a[full] ^ b[full]) & mask == 0
    }

    /// Length (in bits) of the longest common prefix of `self` and `other`.
    pub fn common_prefix_len(&self, other: &BitStr) -> usize {
        let max = self.len.min(other.len);
        let mut matched = 0usize;
        for (a, b) in self.words().iter().zip(other.words().iter()) {
            let diff = a ^ b;
            if diff == 0 {
                matched += WORD_BITS;
                if matched >= max {
                    return max;
                }
            } else {
                matched += diff.leading_zeros() as usize;
                return matched.min(max);
            }
        }
        max
    }

    /// The longest common prefix of `self` and `other` as a new string.
    pub fn common_prefix(&self, other: &BitStr) -> BitStr {
        self.prefix(self.common_prefix_len(other).min(self.len))
    }

    /// Iterator over the bits, MSB-first.
    pub fn iter(&self) -> BitStrBits<'_> {
        BitStrBits { s: self, idx: 0 }
    }

    /// Interprets the whole string as a big-endian unsigned integer.
    /// Panics if longer than 64 bits.
    pub fn to_u64_msb(&self) -> u64 {
        assert!(self.len <= 64, "to_u64_msb supports at most 64 bits");
        if self.len == 0 {
            return 0;
        }
        self.frac_u64() >> (WORD_BITS - self.len)
    }

    /// Feeds the canonical byte encoding (length header + packed words)
    /// into `sink`. Used by hashing so that e.g. `"0"` and `"00"` hash
    /// differently.
    pub fn canonical_bytes(&self, sink: &mut Vec<u8>) {
        sink.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in self.words() {
            sink.extend_from_slice(&w.to_le_bytes());
        }
    }
}

impl PartialEq for BitStr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for BitStr {}

impl Hash for BitStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Over the logical words, so inline and spilled builds of the
        // same string (if one ever escapes the canonical invariant) agree.
        state.write_usize(self.len);
        for w in self.words() {
            state.write_u64(*w);
        }
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! The wire format is the pre-SSO struct layout `{words, len}` so
    //! artifacts serialized by the `Vec<u64>`-backed representation
    //! deserialize unchanged.
    use super::BitStr;

    #[derive(serde::Serialize, serde::Deserialize)]
    struct Raw {
        words: Vec<u64>,
        len: usize,
    }

    impl serde::Serialize for BitStr {
        fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            Raw {
                words: self.words().to_vec(),
                len: self.len(),
            }
            .serialize(s)
        }
    }

    impl<'de> serde::Deserialize<'de> for BitStr {
        fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let raw = Raw::deserialize(d)?;
            let mut out = BitStr::new();
            for i in 0..raw.len {
                let w = raw.words.get(i / 64).copied().unwrap_or(0);
                out.push((w >> (63 - (i % 64))) & 1 == 1);
            }
            Ok(out)
        }
    }
}

/// Iterator over the bits of a [`BitStr`], MSB-first.
pub struct BitStrBits<'a> {
    s: &'a BitStr,
    idx: usize,
}

impl Iterator for BitStrBits<'_> {
    type Item = bool;

    #[inline]
    fn next(&mut self) -> Option<bool> {
        if self.idx >= self.s.len {
            return None;
        }
        let b = self.s.get(self.idx);
        self.idx += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.s.len - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BitStrBits<'_> {}

impl FromIterator<bool> for BitStr {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut s = BitStr::new();
        for b in iter {
            s.push(b);
        }
        s
    }
}

impl Ord for BitStr {
    /// Lexicographic order: `"0" < "01" < "1"`. A proper prefix sorts
    /// before its extensions.
    fn cmp(&self, other: &Self) -> Ordering {
        let lcp = self.common_prefix_len(other);
        match (lcp == self.len, lcp == other.len) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => {
                if self.get(lcp) {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
        }
    }
}

impl PartialOrd for BitStr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{self}\"")
    }
}

/// Error returned when parsing a [`BitStr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitStrError {
    /// Offending character.
    pub bad_char: char,
}

impl fmt::Display for ParseBitStrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bit character {:?} (expected '0' or '1')",
            self.bad_char
        )
    }
}

impl std::error::Error for ParseBitStrError {}

impl FromStr for BitStr {
    type Err = ParseBitStrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = BitStr::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => out.push(false),
                '1' => out.push(true),
                other => return Err(ParseBitStrError { bad_char: other }),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitStr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_basics() {
        let e = BitStr::new();
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "");
        assert_eq!(e.frac_u64(), 0);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut s = BitStr::new();
        s.push(true);
        s.push(false);
        s.push(true);
        assert_eq!(s.to_string(), "101");
        assert_eq!(s.pop(), Some(true));
        assert_eq!(s.pop(), Some(false));
        assert_eq!(s.pop(), Some(true));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn pop_clears_bits() {
        let mut s = bs("111");
        s.pop();
        s.push(false);
        assert_eq!(s.to_string(), "110");
    }

    #[test]
    fn from_u64_msb_matches_display() {
        assert_eq!(BitStr::from_u64_msb(0b101, 3).to_string(), "101");
        assert_eq!(BitStr::from_u64_msb(0b001, 3).to_string(), "001");
        assert_eq!(BitStr::from_u64_msb(0, 1).to_string(), "0");
        assert_eq!(BitStr::from_u64_msb(u64::MAX, 64).to_u64_msb(), u64::MAX);
    }

    #[test]
    fn frac_roundtrip() {
        let s = bs("0110");
        let f = s.frac_u64();
        assert_eq!(BitStr::from_frac_u64(f, 4), s);
        // High bit of "1" is the MSB of the word.
        assert_eq!(bs("1").frac_u64(), 1u64 << 63);
        assert_eq!(bs("01").frac_u64(), 1u64 << 62);
    }

    #[test]
    fn from_frac_masks_low_bits() {
        // Extra low-order garbage must be discarded.
        let s = BitStr::from_frac_u64((1 << 63) | 0xFFFF, 2);
        assert_eq!(s.to_string(), "10");
    }

    #[test]
    fn get_across_words() {
        let mut s = BitStr::new();
        for i in 0..130 {
            s.push(i % 3 == 0);
        }
        for i in 0..130 {
            assert_eq!(s.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn truncate_zeroes_tail() {
        let mut s = bs("1111");
        s.truncate(2);
        assert_eq!(s.to_string(), "11");
        s.push(false);
        assert_eq!(s.to_string(), "110");
    }

    #[test]
    fn prefix_and_is_prefix() {
        let s = bs("10110");
        assert_eq!(s.prefix(3), bs("101"));
        assert!(bs("101").is_prefix_of(&s));
        assert!(bs("").is_prefix_of(&s));
        assert!(s.is_prefix_of(&s));
        assert!(!bs("11").is_prefix_of(&s));
        assert!(!bs("101100").is_prefix_of(&s));
    }

    #[test]
    fn common_prefix_cases() {
        assert_eq!(bs("1011").common_prefix_len(&bs("1001")), 2);
        assert_eq!(bs("1011").common_prefix(&bs("1001")), bs("10"));
        assert_eq!(bs("").common_prefix_len(&bs("1")), 0);
        assert_eq!(bs("111").common_prefix_len(&bs("111")), 3);
        assert_eq!(bs("110").common_prefix_len(&bs("1101")), 3);
    }

    #[test]
    fn common_prefix_multiword() {
        let mut a = BitStr::new();
        let mut b = BitStr::new();
        for i in 0..100 {
            a.push(i % 2 == 0);
            b.push(i % 2 == 0);
        }
        b.push(true);
        a.push(false);
        assert_eq!(a.common_prefix_len(&b), 100);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(bs("0") < bs("01"));
        assert!(bs("01") < bs("1"));
        assert!(bs("011") < bs("1"));
        assert!(bs("10") < bs("11"));
        assert_eq!(bs("101").cmp(&bs("101")), Ordering::Equal);
    }

    #[test]
    fn concat_and_child() {
        assert_eq!(bs("10").concat(&bs("01")).to_string(), "1001");
        assert_eq!(bs("10").child(true).to_string(), "101");
        assert_eq!(bs("").concat(&bs("1")), bs("1"));
    }

    #[test]
    fn concat_word_boundary() {
        let mut a = BitStr::new();
        for _ in 0..64 {
            a.push(true);
        }
        let c = a.concat(&bs("01"));
        assert_eq!(c.len(), 66);
        assert!(c.get(63));
        assert!(!c.get(64));
        assert!(c.get(65));
    }

    #[test]
    fn canonical_bytes_distinguish_lengths() {
        let mut b0 = Vec::new();
        let mut b00 = Vec::new();
        bs("0").canonical_bytes(&mut b0);
        bs("00").canonical_bytes(&mut b00);
        assert_ne!(b0, b00);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("01x".parse::<BitStr>().is_err());
        assert_eq!(
            "2".parse::<BitStr>().unwrap_err(),
            ParseBitStrError { bad_char: '2' }
        );
    }

    #[test]
    fn display_debug() {
        assert_eq!(format!("{:?}", bs("010")), "b\"010\"");
    }

    #[test]
    fn iterator_len() {
        let s = bs("10101");
        assert_eq!(s.iter().len(), 5);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![true, false, true, false, true]
        );
        let collected: BitStr = s.iter().collect();
        assert_eq!(collected, s);
    }

    #[test]
    fn short_strings_stay_inline() {
        let mut s = BitStr::new();
        assert!(s.is_inline());
        for _ in 0..64 {
            s.push(true);
            assert!(s.is_inline(), "len {} must be inline", s.len());
        }
        assert!(BitStr::from_u64_msb(u64::MAX, 64).is_inline());
        assert!(BitStr::from_frac_u64(u64::MAX, 64).is_inline());
        assert!("0101010101".parse::<BitStr>().unwrap().is_inline());
        assert!(s.clone().is_inline());
        assert!(s.prefix(17).is_inline());
    }

    #[test]
    fn spill_boundary_roundtrips() {
        // 64 → 65 spills; popping back to 64 re-inlines with identical
        // content, equality and hash.
        let mut s = BitStr::new();
        for i in 0..64 {
            s.push(i % 2 == 0);
        }
        let at64 = s.clone();
        s.push(true);
        assert!(!s.is_inline());
        assert_eq!(s.len(), 65);
        assert_eq!(s.pop(), Some(true));
        assert!(s.is_inline());
        assert_eq!(s, at64);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &BitStr| {
            let mut d = DefaultHasher::new();
            x.hash(&mut d);
            d.finish()
        };
        assert_eq!(h(&s), h(&at64));
    }

    #[test]
    fn truncate_unspills() {
        let mut s = BitStr::new();
        for i in 0..130 {
            s.push(i % 3 == 0);
        }
        assert!(!s.is_inline());
        let expect = s.prefix(40);
        s.truncate(40);
        assert!(s.is_inline());
        assert_eq!(s, expect);
        assert_eq!(s.to_string().len(), 40);
    }

    #[test]
    fn long_prefix_of_long_string() {
        let mut s = BitStr::new();
        for i in 0..200 {
            s.push(i % 5 == 0);
        }
        let p = s.prefix(130);
        assert_eq!(p.len(), 130);
        for i in 0..130 {
            assert_eq!(p.get(i), i % 5 == 0, "bit {i}");
        }
        assert!(p.is_prefix_of(&s));
    }

    #[test]
    fn heap_allocation_gauge_moves_only_on_spill() {
        let before = BitStr::heap_allocations();
        let mut s = BitStr::from_u64_msb(0xABCD, 16);
        for _ in 0..48 {
            s.push(false);
        }
        let t = s.clone();
        let _ = t.prefix(10);
        assert_eq!(BitStr::heap_allocations(), before, "inline path allocated");
        s.push(true); // 65th bit: spill
        assert!(BitStr::heap_allocations() > before);
    }
}
