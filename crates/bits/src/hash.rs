//! Non-cryptographic 128-bit hashing for Merkle-style Patricia tries.
//!
//! The paper (§4.2) hashes Patricia-trie nodes with a collision-resistant
//! hash `h` and derives publication keys with `h̄_m : N × P* → {0,1}^m`.
//! It explicitly does **not** require cryptographic one-wayness, only that
//! collisions do not occur in practice. We therefore use a self-contained
//! 128-bit mixing hash (two independently-seeded 64-bit lanes, each a
//! multiply–xor–rotate construction in the spirit of xxHash/SplitMix64) —
//! strong dispersion, zero dependencies, stable across platforms and Rust
//! releases (unlike `std`'s `DefaultHasher`, whose algorithm is unspecified).

use crate::BitStr;

/// A 128-bit hash value.
///
/// `Hash128` is the node-hash type of the Patricia trie: leaf hashes are
/// [`Hash128::leaf`] of the leaf label, inner hashes are
/// [`Hash128::combine`] of the two child hashes
/// (`t.hash = h(c₁.hash ∘ c₂.hash)`, paper §4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hash128(pub u128);

/// Lane seeds — arbitrary odd constants (digits of π and e).
const SEED_LO: u64 = 0x243F_6A88_85A3_08D3;
const SEED_HI: u64 = 0xB7E1_5162_8AED_2A6B;
/// Golden-ratio increment used by SplitMix-style generators.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    // SplitMix64 finalizer: full avalanche on 64 bits.
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn lane_absorb(state: u64, word: u64) -> u64 {
    mix64(state.wrapping_add(word).wrapping_mul(GAMMA).rotate_left(29) ^ word)
}

fn hash_words(words: impl Iterator<Item = u64> + Clone, len_tag: u64) -> u128 {
    let mut lo = SEED_LO ^ len_tag;
    let mut hi = SEED_HI ^ len_tag.rotate_left(32);
    for w in words {
        lo = lane_absorb(lo, w);
        hi = lane_absorb(hi, w ^ GAMMA);
    }
    // Final cross-mix so the two lanes are not independent linear images.
    let a = mix64(lo ^ hi.rotate_left(17));
    let b = mix64(hi ^ lo.rotate_left(41));
    ((a as u128) << 64) | b as u128
}

impl Hash128 {
    /// Hashes an arbitrary byte slice. Allocation-free: the words are
    /// absorbed straight off the input slice, so callers on hot paths
    /// (e.g. consistent-hash ring lookups) can hash from stack buffers
    /// without touching the heap.
    pub fn of_bytes(data: &[u8]) -> Self {
        let words = data.chunks(8).map(|chunk| {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(buf)
        });
        Hash128(hash_words(words, data.len() as u64))
    }

    /// Hashes a bit string, including its exact length (so `"0"` and
    /// `"00"` produce different hashes).
    pub fn of_bits(bits: &BitStr) -> Self {
        let mut bytes = Vec::with_capacity(8 + bits.len().div_ceil(8) + 8);
        bits.canonical_bytes(&mut bytes);
        Self::of_bytes(&bytes)
    }

    /// Leaf-node hash `h(t.label)` (paper §4.2).
    #[inline]
    pub fn leaf(label: &BitStr) -> Self {
        // Domain-separate leaves from raw bit hashing.
        let inner = Self::of_bits(label);
        Hash128(hash_words([0x1EAF].into_iter().chain(inner.words()), 2))
    }

    /// Inner-node hash `h(c₁.hash ∘ c₂.hash)` (paper §4.2).
    #[inline]
    pub fn combine(left: Hash128, right: Hash128) -> Self {
        Hash128(hash_words(
            [0x1AA7]
                .into_iter()
                .chain(left.words())
                .chain(right.words()),
            5,
        ))
    }

    /// The two 64-bit halves, high lane first.
    #[inline]
    pub fn words(self) -> [u64; 2] {
        [(self.0 >> 64) as u64, self.0 as u64]
    }

    /// A short prefix usable as a compact fingerprint in logs and tables.
    #[inline]
    pub fn short(self) -> u32 {
        (self.0 >> 96) as u32
    }
}

impl std::fmt::Debug for Hash128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h#{:08x}", self.short())
    }
}

impl std::fmt::Display for Hash128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The paper's `h̄_m : N × P* → {0,1}^m` (§4.2): derives the fixed-length
/// publication key for payload `payload` published by the subscriber with
/// unique ID `author`. All keys have the same length `m` (at most 128),
/// "ensuring that every label for a publication has the same length".
pub fn publication_key(author: u64, payload: &[u8], m: usize) -> BitStr {
    assert!(
        (1..=128).contains(&m),
        "publication key length must be in 1..=128"
    );
    let mut bytes = Vec::with_capacity(8 + payload.len());
    bytes.extend_from_slice(&author.to_le_bytes());
    bytes.extend_from_slice(payload);
    let h = Hash128::of_bytes(&bytes).0;
    let mut out = BitStr::with_capacity(m);
    for i in 0..m {
        out.push((h >> (127 - i)) & 1 == 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(Hash128::of_bytes(b"abc"), Hash128::of_bytes(b"abc"));
        assert_ne!(Hash128::of_bytes(b"abc"), Hash128::of_bytes(b"abd"));
        assert_ne!(Hash128::of_bytes(b""), Hash128::of_bytes(b"\0"));
    }

    #[test]
    fn bits_include_length() {
        let a: BitStr = "0".parse().unwrap();
        let b: BitStr = "00".parse().unwrap();
        assert_ne!(Hash128::of_bits(&a), Hash128::of_bits(&b));
    }

    #[test]
    fn leaf_differs_from_raw() {
        let l: BitStr = "101".parse().unwrap();
        assert_ne!(Hash128::leaf(&l), Hash128::of_bits(&l));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Hash128::leaf(&"0".parse().unwrap());
        let b = Hash128::leaf(&"1".parse().unwrap());
        assert_ne!(Hash128::combine(a, b), Hash128::combine(b, a));
        assert_ne!(Hash128::combine(a, b), a);
    }

    #[test]
    fn publication_key_properties() {
        let k1 = publication_key(7, b"hello", 64);
        let k2 = publication_key(7, b"hello", 64);
        let k3 = publication_key(8, b"hello", 64);
        let k4 = publication_key(7, b"hellp", 64);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 64);
        assert_ne!(k1, k3, "author must be part of the key");
        assert_ne!(k1, k4, "payload must be part of the key");
        assert_eq!(publication_key(1, b"x", 128).len(), 128);
        assert_eq!(publication_key(1, b"x", 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "publication key length")]
    fn publication_key_rejects_m_zero() {
        let _ = publication_key(0, b"", 0);
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip ~half the output bits.
        let base = Hash128::of_bytes(&42u64.to_le_bytes()).0;
        let flipped = Hash128::of_bytes(&43u64.to_le_bytes()).0;
        let dist = (base ^ flipped).count_ones();
        assert!((32..=96).contains(&dist), "poor avalanche: {dist} bits");
    }
}
