//! Partitioned-executor round throughput: the sharded backend stepped
//! under different worker-thread counts, against batched stepping.
//! `BENCH_parallel.json` (written by the `bench_parallel_json` binary)
//! records the committed comparison at 8 shards / n = 10 000, including
//! the monolithic single-world baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use skippub_core::pubsub::{PubSub, ShardedBackend, SystemBuilder};
use skippub_core::topics::TopicId;

const TOPICS: u32 = 16;
const SHARDS: usize = 8;

fn system(n: u64, threads: usize) -> ShardedBackend {
    let mut ps = SystemBuilder::new(0x9A7A11E1)
        .topics(TOPICS)
        .shards(SHARDS)
        .threads(threads)
        .build_sharded();
    for i in 0..n {
        ps.subscribe(TopicId((i % TOPICS as u64) as u32));
    }
    ps.run_rounds(5);
    ps
}

fn bench_parallel_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel/run_round");
    g.sample_size(10);
    for n in [1_000u64, 10_000] {
        for threads in [1usize, 2, 8] {
            g.bench_function(format!("n={n} threads={threads} batched"), |b| {
                let mut ps = system(n, threads);
                b.iter(|| ps.run_rounds(1))
            });
        }
        g.bench_function(format!("n={n} threads=8 stepped"), |b| {
            let mut ps = system(n, 8);
            b.iter(|| ps.step())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_rounds);
criterion_main!(benches);
