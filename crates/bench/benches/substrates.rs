//! Substrate micro-benches: label algebra, hashing, Patricia trie,
//! simulator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skippub_bits::{publication_key, BitStr, Hash128};
use skippub_ringmath::{shortcut, IdealSkipRing, Label};
use skippub_trie::{sync, PatriciaTrie, Publication};

fn bench_labels(c: &mut Criterion) {
    let mut g = c.benchmark_group("labels");
    g.bench_function("l(x) forward", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            std::hint::black_box(Label::from_index(x))
        })
    });
    g.bench_function("l_inverse", |b| {
        let labels: Vec<Label> = (0..1024).map(Label::from_index).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % labels.len();
            std::hint::black_box(labels[i].index())
        })
    });
    g.bench_function("shortcut derivation (SR(1024) min node)", |b| {
        let sr = IdealSkipRing::new(1024);
        let zero: Label = "0".parse().unwrap();
        let (l, r) = sr.ring_neighbors(zero);
        b.iter(|| std::hint::black_box(shortcut::expected_shortcuts(zero, l, r)))
    });
    g.bench_function("ideal SR(256) construction", |b| {
        b.iter(|| std::hint::black_box(IdealSkipRing::new(256)))
    });
    g.finish();
}

fn bench_bits_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("bits+hash");
    g.bench_function("bitstr push/pop 256", |b| {
        b.iter(|| {
            let mut s = BitStr::with_capacity(256);
            for i in 0..256 {
                s.push(i % 3 == 0);
            }
            while s.pop().is_some() {}
            std::hint::black_box(s)
        })
    });
    g.bench_function("hash128 of 64B", |b| {
        let data = [0xA5u8; 64];
        b.iter(|| std::hint::black_box(Hash128::of_bytes(&data)))
    });
    g.bench_function("publication_key", |b| {
        b.iter(|| std::hint::black_box(publication_key(7, b"some payload bytes", 64)))
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("trie");
    let pubs: Vec<Publication> = (0..512u64)
        .map(|i| Publication::new(i % 13, format!("payload {i}").into_bytes()))
        .collect();
    g.bench_function("insert 512", |b| {
        b.iter_batched(
            PatriciaTrie::new,
            |mut t| {
                for p in &pubs {
                    t.insert(p.clone());
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = PatriciaTrie::new();
    for p in &pubs {
        full.insert(p.clone());
    }
    g.bench_function("check (hit)", |b| {
        let root = full.root_summary().unwrap();
        b.iter(|| std::hint::black_box(full.check(&root)))
    });
    g.bench_function("prefix query", |b| {
        let prefix: BitStr = "0101".parse().unwrap();
        b.iter(|| std::hint::black_box(full.publications_with_prefix(&prefix).len()))
    });
    g.bench_function("sync_pair disjoint 64+64", |b| {
        b.iter_batched(
            || {
                let mut a = PatriciaTrie::new();
                let mut bt = PatriciaTrie::new();
                for i in 0..64u64 {
                    a.insert(Publication::new(1, format!("a{i}").into_bytes()));
                    bt.insert(Publication::new(2, format!("b{i}").into_bytes()));
                }
                (a, bt)
            },
            |(mut a, mut bt)| {
                let stats = sync::sync_pair(&mut a, &mut bt, 64);
                assert!(stats.converged);
                (a, bt)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
    let mut g = c.benchmark_group("sim");
    g.bench_function("legit round n=64", |b| {
        let cfg = ProtocolConfig::topology_only();
        let mut sim = SkipRingSim::from_world(scenarios::legit_world(64, 1, cfg), cfg);
        b.iter(|| sim.run_round())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_labels,
    bench_bits_hash,
    bench_trie,
    bench_sim
);
criterion_main!(benches);
