//! One benchmark per quantitative-claim experiment (the "tables" of
//! EXPERIMENTS.md), each at a representative scale. The bench time is the
//! cost of regenerating the table's data point; the harness prints the
//! values themselves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skippub_bench::scales::{N, PUBS};
use skippub_core::scenarios::{self, Adversary};
use skippub_core::{Actor, ProtocolConfig, SkipRingSim};
use skippub_trie::Publication;

/// E4 / Theorem 5: a 100-round steady-state probe window.
fn tab_probe_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_probe_rate");
    g.sample_size(20);
    g.bench_function(format!("legit window n={N}"), |b| {
        let cfg = ProtocolConfig::topology_only();
        let mut sim = SkipRingSim::from_world(scenarios::legit_world(N, 1, cfg), cfg);
        b.iter(|| {
            for _ in 0..100 {
                sim.run_round();
            }
        })
    });
    g.finish();
}

/// E5 / Theorem 7: one subscribe + one settle round.
fn tab_op_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_op_overhead");
    g.sample_size(20);
    g.bench_function(format!("subscribe into n={N}"), |b| {
        let cfg = ProtocolConfig::topology_only();
        b.iter_batched(
            || SkipRingSim::from_world(scenarios::legit_world(N, 2, cfg), cfg),
            |mut sim| {
                sim.add_subscriber_eager();
                sim.run_round();
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E6 / Theorem 8: convergence from a random adversarial state.
fn tab_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_convergence");
    g.sample_size(10);
    for adv in [Adversary::RandomState, Adversary::Partitioned(4)] {
        g.bench_function(format!("{} n=32", adv.name()), |b| {
            let cfg = ProtocolConfig::topology_only();
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    SkipRingSim::from_world(adversarial(32, seed, cfg, adv), cfg)
                },
                |mut sim| {
                    let (_, ok) = sim.run_until_legit(40_000);
                    assert!(ok);
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn adversarial(
    n: usize,
    seed: u64,
    cfg: ProtocolConfig,
    adv: Adversary,
) -> skippub_sim::World<Actor> {
    scenarios::adversarial_world(n, seed, cfg, adv)
}

/// E8 / Theorem 17: anti-entropy convergence of scattered publications.
fn tab_pub_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_pub_convergence");
    g.sample_size(10);
    g.bench_function(format!("n=16 pubs={PUBS}"), |b| {
        let cfg = ProtocolConfig {
            flooding: false,
            ..ProtocolConfig::default()
        };
        b.iter_batched(
            || {
                let mut sim = SkipRingSim::from_world(scenarios::legit_world(16, 3, cfg), cfg);
                let ids = sim.subscriber_ids();
                for i in 0..PUBS {
                    let host = ids[(i * 5 + 1) % ids.len()];
                    let p = Publication::new(host.0, format!("p{i}").into_bytes());
                    sim.seed_publication(host, p);
                }
                sim
            },
            |mut sim| {
                let (_, ok) = sim.run_until_pubs_converged(20_000);
                assert!(ok);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E9 / §4.3: flooding a publication through SR(N) until delivered.
fn tab_flooding(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_flooding");
    g.sample_size(20);
    g.bench_function(format!("flood n={N}"), |b| {
        let cfg = ProtocolConfig::default();
        b.iter_batched(
            || SkipRingSim::from_world(scenarios::legit_world(N, 4, cfg), cfg),
            |mut sim| {
                let src = sim.subscriber_ids()[0];
                sim.publish(src, b"flash".to_vec()).unwrap();
                let (_, ok) = sim.run_until_pubs_converged(200);
                assert!(ok);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E11 / §3.3: crash burst recovery.
fn tab_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_churn");
    g.sample_size(10);
    g.bench_function(format!("crash 1/8 of n={N}"), |b| {
        let cfg = ProtocolConfig::topology_only();
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                SkipRingSim::from_world(scenarios::legit_world(N, seed, cfg), cfg)
            },
            |mut sim| {
                let victims: Vec<_> = sim
                    .subscriber_ids()
                    .into_iter()
                    .step_by(8)
                    .take(N / 8)
                    .collect();
                for &v in &victims {
                    sim.crash(v);
                }
                for _ in 0..3 {
                    sim.run_round();
                }
                for &v in &victims {
                    sim.report_crash(v);
                }
                let (_, ok) = sim.run_until_legit(40_000);
                assert!(ok);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E12 / closure: steady-state window cost (maintenance-only traffic).
fn tab_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab_closure");
    g.sample_size(20);
    g.bench_function(format!("closure window n={N}"), |b| {
        let cfg = ProtocolConfig::default();
        let mut sim = SkipRingSim::from_world(scenarios::legit_world(N, 5, cfg), cfg);
        b.iter(|| {
            for _ in 0..50 {
                sim.run_round();
            }
            assert!(sim.is_legitimate());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    tab_probe_rate,
    tab_op_overhead,
    tab_convergence,
    tab_pub_convergence,
    tab_flooding,
    tab_churn,
    tab_closure
);
criterion_main!(benches);
