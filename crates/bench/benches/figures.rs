//! Figure reproductions as benchmarks: the cost of regenerating each
//! figure's artefact.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skippub_bits::BitStr;
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
use skippub_trie::{sync, PatriciaTrie, Publication};

/// Figure 1: protocol-build SR(16) from a cold start until legitimate.
fn fig1_skipring16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(20);
    g.bench_function("bootstrap SR(16) to legitimacy", |b| {
        let cfg = ProtocolConfig::topology_only();
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                SkipRingSim::from_world(scenarios::cold_world(16, seed, cfg), cfg)
            },
            |mut sim| {
                let (_, ok) = sim.run_until_legit(2000);
                assert!(ok);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Figure 2: the u/v trie pair reconciliation.
fn fig2_trie_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    let raw = |k: &str| Publication::with_raw_key(k.parse::<BitStr>().unwrap(), 0, Vec::new());
    g.bench_function("figure-2 reconciliation", |b| {
        b.iter_batched(
            || {
                let mut u = PatriciaTrie::new();
                for k in ["000", "010", "100", "101"] {
                    u.insert(raw(k));
                }
                let mut v = PatriciaTrie::new();
                for k in ["000", "010", "100"] {
                    v.insert(raw(k));
                }
                (u, v)
            },
            |(mut u, mut v)| {
                let stats = sync::sync_pair(&mut u, &mut v, 8);
                assert!(stats.converged);
                (u, v)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, fig1_skipring16, fig2_trie_sync);
criterion_main!(benches);
