//! Baseline-overlay benchmarks backing experiment E10's comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use skippub_baselines::{metrics, Chord, RingCast, SkipGraph};
use skippub_ringmath::IdealSkipRing;

fn bench_chord(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord");
    let chord = Chord::new(256, 1);
    g.bench_function("route n=256", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B97F4A7C15);
            std::hint::black_box(chord.route((k % 256) as usize, k))
        })
    });
    g.bench_function("build n=256", |b| {
        b.iter(|| std::hint::black_box(Chord::new(256, 2)))
    });
    g.finish();
}

fn bench_skipgraph(c: &mut Criterion) {
    let mut g = c.benchmark_group("skipgraph");
    let sg = SkipGraph::new(256, 1);
    g.bench_function("search n=256", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 97) % 256;
            std::hint::black_box(sg.search(k, (k * 31) % 256))
        })
    });
    g.bench_function("build n=256", |b| {
        b.iter(|| std::hint::black_box(SkipGraph::new(256, 2)))
    });
    g.finish();
}

fn bench_broadcast_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    let sr = IdealSkipRing::new(256);
    let zero = *sr.labels().first().unwrap();
    g.bench_function("skip-ring BFS n=256", |b| {
        b.iter(|| std::hint::black_box(sr.bfs_hops(zero).len()))
    });
    let ring = RingCast::new(256);
    g.bench_function("ring model n=256", |b| {
        b.iter(|| std::hint::black_box(ring.broadcast_steps()))
    });
    let chord = Chord::new(256, 3);
    let adj = chord.adjacency_undirected();
    g.bench_function("chord broadcast loads n=256", |b| {
        b.iter(|| std::hint::black_box(metrics::broadcast_loads(&adj, 0).len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chord,
    bench_skipgraph,
    bench_broadcast_models
);
criterion_main!(benches);
