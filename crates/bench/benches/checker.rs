//! Criterion benches for the checking layer: the polled facade
//! predicates (incremental vs from-scratch) and the raw checker
//! functions (fast boolean vs diagnostic) — the microscope behind the
//! `BENCH_checker.json` trajectory numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use skippub_core::checker::{self, CheckScratch};
use skippub_core::pubsub::{MultiTopicBackend, SystemBuilder};
use skippub_core::{scenarios, ProtocolConfig, PubSub, TopicId};

const N: u64 = 1_000;
const TOPICS: u32 = 16;

fn steady_multi(full: bool) -> MultiTopicBackend {
    let mut ps = SystemBuilder::new(0xBE7C4).topics(TOPICS).build_multi();
    for i in 0..N {
        ps.subscribe(TopicId((i % TOPICS as u64) as u32));
    }
    ps.set_full_checking(full);
    assert!(ps.until_legit(6_000).1, "population must stabilize");
    ps
}

fn bench_facade_polls(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_poll");
    let inc = steady_multi(false);
    let full = steady_multi(true);
    group.bench_function("is_legitimate/incremental", |b| {
        b.iter(|| std::hint::black_box(inc.is_legitimate()))
    });
    group.bench_function("is_legitimate/full", |b| {
        b.iter(|| std::hint::black_box(full.is_legitimate()))
    });
    group.bench_function("pubs_converged/incremental", |b| {
        b.iter(|| std::hint::black_box(inc.publications_converged()))
    });
    group.bench_function("pubs_converged/full", |b| {
        b.iter(|| std::hint::black_box(full.publications_converged()))
    });
    group.finish();
}

fn bench_raw_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_raw");
    let world = scenarios::legit_world(512, 0xABCD, ProtocolConfig::default());
    group.bench_function("fast_check_topology/n512", |b| {
        let mut scratch = CheckScratch::default();
        b.iter(|| std::hint::black_box(checker::fast_check_topology(&world, &mut scratch)))
    });
    group.bench_function("check_topology_diagnostic/n512", |b| {
        b.iter(|| std::hint::black_box(checker::check_topology(&world).ok()))
    });
    group.finish();
}

criterion_group!(benches, bench_facade_polls, bench_raw_checkers);
criterion_main!(benches);
