//! Simulation-engine round throughput: live slab engine vs the legacy
//! `BTreeMap` engine, flooding and token workloads, 1k and 10k nodes.
//!
//! These benches are the perf trajectory for `crates/sim`; the slab
//! refactor's acceptance bar was ≥ 2× on `run_round` at 10k nodes.
//! `BENCH_sim.json` (written by the `bench_sim_json` binary) records
//! the same comparison as a committed artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use skippub_bench::workloads::{
    flood_world, legacy_flood_world, legacy_token_world, token_world,
};
use skippub_sim::ChaosConfig;

const SIZES: &[u64] = &[1_000, 10_000];
const SEED: u64 = 0xBEBC;

fn bench_run_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine/run_round");
    g.sample_size(10);
    for &n in SIZES {
        g.bench_function(format!("flooding n={n} slab"), |b| {
            let mut w = flood_world(n, SEED);
            b.iter(|| w.run_round())
        });
        g.bench_function(format!("flooding n={n} legacy"), |b| {
            let mut w = legacy_flood_world(n, SEED);
            b.iter(|| w.run_round())
        });
        g.bench_function(format!("token n={n} slab"), |b| {
            let mut w = token_world(n, SEED);
            b.iter(|| w.run_round())
        });
        g.bench_function(format!("token n={n} legacy"), |b| {
            let mut w = legacy_token_world(n, SEED);
            b.iter(|| w.run_round())
        });
    }
    g.finish();
}

fn bench_run_chaos_round(c: &mut Criterion) {
    let cfg = ChaosConfig::default();
    let mut g = c.benchmark_group("sim_engine/run_chaos_round");
    g.sample_size(10);
    for &n in SIZES {
        g.bench_function(format!("flooding n={n} slab"), |b| {
            let mut w = flood_world(n, SEED);
            b.iter(|| w.run_chaos_round(cfg))
        });
        g.bench_function(format!("flooding n={n} legacy"), |b| {
            let mut w = legacy_flood_world(n, SEED);
            b.iter(|| w.run_chaos_round(cfg))
        });
        g.bench_function(format!("token n={n} slab"), |b| {
            let mut w = token_world(n, SEED);
            b.iter(|| w.run_chaos_round(cfg))
        });
        g.bench_function(format!("token n={n} legacy"), |b| {
            let mut w = legacy_token_world(n, SEED);
            b.iter(|| w.run_chaos_round(cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_run_round, bench_run_chaos_round);
criterion_main!(benches);
