//! Facade-layer overhead: round throughput of the full protocol world
//! driven directly vs through `Box<dyn PubSub>`. The acceptance bar for
//! the facade redesign was < 2% overhead; `BENCH_facade.json` (written
//! by the `bench_facade_json` binary) records the comparison as a
//! committed artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use skippub_bench::facade::{direct_system, facade_system};

const SIZES: &[usize] = &[1_000, 10_000];

fn bench_facade_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("facade/run_round");
    g.sample_size(10);
    for &n in SIZES {
        g.bench_function(format!("n={n} direct"), |b| {
            let mut sim = direct_system(n);
            b.iter(|| sim.run_round())
        });
        g.bench_function(format!("n={n} facade"), |b| {
            let mut ps = facade_system(n);
            b.iter(|| ps.step())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_facade_overhead);
criterion_main!(benches);
