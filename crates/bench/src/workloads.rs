//! Shared engine workloads for the `sim_engine` benches and the
//! `BENCH_sim.json` emitter, implemented twice — once against the live
//! slab engine, once against the preserved legacy engine — so both are
//! driven by *identical* protocol logic and RNG-consumption patterns.
//!
//! Two traffic shapes bracket the engine's hot paths:
//!
//! * **flooding** — every node's `Timeout` gossips to two random peers
//!   and every receipt re-forwards while TTL lasts: delivery-heavy,
//!   ~O(n) messages per round, exercises handler dispatch + routing.
//! * **token** — a fixed population of ring tokens (one per ten
//!   nodes): routing-dominant with light handler work, exercises the
//!   per-message lookup cost that the slab refactor targets.

use crate::legacy::{LegacyCtx, LegacyProtocol, LegacyWorld};
use skippub_sim::{Ctx, NodeId, Protocol, World};

/// Gossip TTL: enough re-forwarding to keep channels busy without
/// exploding the message population.
const FLOOD_TTL: u32 = 2;

/// Flooding node (slab-engine flavor).
pub struct Flood {
    /// World size; peers are drawn as `NodeId(random % n)`.
    pub n: u64,
    /// Receipts seen (handler-side work).
    pub seen: u64,
}

/// Flood message: remaining forwarding budget.
#[derive(Clone)]
pub struct Rumor(pub u32);

impl Protocol for Flood {
    type Msg = Rumor;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Rumor>, msg: Rumor) {
        self.seen += 1;
        if msg.0 > 0 {
            let to = NodeId(ctx.random_range(self.n as usize) as u64);
            ctx.send(to, Rumor(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Rumor>) {
        for _ in 0..2 {
            let to = NodeId(ctx.random_range(self.n as usize) as u64);
            ctx.send(to, Rumor(FLOOD_TTL));
        }
    }

    fn msg_kind(_m: &Rumor) -> &'static str {
        "rumor"
    }
}

/// Flooding node (legacy-engine flavor, same logic).
pub struct LegacyFlood {
    /// World size.
    pub n: u64,
    /// Receipts seen.
    pub seen: u64,
}

impl LegacyProtocol for LegacyFlood {
    type Msg = Rumor;

    fn on_message(&mut self, ctx: &mut LegacyCtx<'_, Rumor>, msg: Rumor) {
        self.seen += 1;
        if msg.0 > 0 {
            let to = NodeId(ctx.random_range(self.n as usize) as u64);
            ctx.send(to, Rumor(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, ctx: &mut LegacyCtx<'_, Rumor>) {
        for _ in 0..2 {
            let to = NodeId(ctx.random_range(self.n as usize) as u64);
            ctx.send(to, Rumor(FLOOD_TTL));
        }
    }

    fn msg_kind(_m: &Rumor) -> &'static str {
        "rumor"
    }
}

/// Token-ring node (slab-engine flavor).
pub struct TokenRing {
    /// Ring successor.
    pub next: NodeId,
    /// Tokens handled.
    pub seen: u64,
}

/// A circulating token (TTL practically infinite for bench purposes).
#[derive(Clone)]
pub struct Token(pub u32);

impl Protocol for TokenRing {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, msg: Token) {
        self.seen += 1;
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, _ctx: &mut Ctx<'_, Token>) {}

    fn msg_kind(_m: &Token) -> &'static str {
        "token"
    }
}

/// Token-ring node (legacy-engine flavor, same logic).
pub struct LegacyTokenRing {
    /// Ring successor.
    pub next: NodeId,
    /// Tokens handled.
    pub seen: u64,
}

impl LegacyProtocol for LegacyTokenRing {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut LegacyCtx<'_, Token>, msg: Token) {
        self.seen += 1;
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, _ctx: &mut LegacyCtx<'_, Token>) {}

    fn msg_kind(_m: &Token) -> &'static str {
        "token"
    }
}

/// Builds a warmed flooding world on the live engine.
pub fn flood_world(n: u64, seed: u64) -> World<Flood> {
    let mut w = World::new(seed);
    for i in 0..n {
        w.add_node(NodeId(i), Flood { n, seen: 0 });
    }
    // Two rounds fill channels and warm the engine's scratch buffers.
    w.run_round();
    w.run_round();
    w
}

/// Builds a warmed flooding world on the legacy engine.
pub fn legacy_flood_world(n: u64, seed: u64) -> LegacyWorld<LegacyFlood> {
    let mut w = LegacyWorld::new(seed);
    for i in 0..n {
        w.add_node(NodeId(i), LegacyFlood { n, seen: 0 });
    }
    w.run_round();
    w.run_round();
    w
}

/// Builds a warmed token world (one token per ten nodes) on the live
/// engine.
pub fn token_world(n: u64, seed: u64) -> World<TokenRing> {
    let mut w = World::new(seed);
    for i in 0..n {
        w.add_node(
            NodeId(i),
            TokenRing {
                next: NodeId((i + 1) % n),
                seen: 0,
            },
        );
    }
    for t in 0..(n / 10).max(1) {
        w.inject(NodeId(t * 10 % n), Token(u32::MAX));
    }
    w.run_round();
    w.run_round();
    w
}

/// Builds a warmed token world on the legacy engine.
pub fn legacy_token_world(n: u64, seed: u64) -> LegacyWorld<LegacyTokenRing> {
    let mut w = LegacyWorld::new(seed);
    for i in 0..n {
        w.add_node(
            NodeId(i),
            LegacyTokenRing {
                next: NodeId((i + 1) % n),
                seen: 0,
            },
        );
    }
    for t in 0..(n / 10).max(1) {
        w.inject(NodeId(t * 10 % n), Token(u32::MAX));
    }
    w.run_round();
    w.run_round();
    w
}
