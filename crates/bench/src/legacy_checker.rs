//! The **pre-incremental-checking** polling predicates, preserved
//! verbatim as a measured baseline (the same role `legacy` plays for
//! the simulation engine): per poll, `is_legitimate` re-judges every
//! topic by scanning every node in the world once per topic through
//! the diagnostic `check_topology_parts` of the time — per-call
//! `BTreeMap`s, `Vec`s, `String`-capable report, O(ring²) linear
//! shortcut resolution — and `publications_converged` rebuilds a global
//! `BTreeSet` union of all publication keys (cloning every key of every
//! subscriber) per topic.
//!
//! `bench_checker_json` and the `checker` criterion group time these
//! against the live incremental layer on the same backend state. Do not
//! "fix" this module: its value is being the old algorithm, bit for
//! bit (only the `pub(crate)` items were inlined so it compiles outside
//! `skippub-core`).

use skippub_core::topics::{MultiActor, TopicId};
use skippub_core::{NodeRef, Subscriber, Supervisor};
use skippub_ringmath::{shortcut, Label};
use skippub_sim::{NodeId, NodeView};
use std::collections::BTreeMap;

/// Outcome of a legitimacy check (pre-PR shape).
#[derive(Clone, Debug, Default)]
pub struct LegitReport {
    /// Human-readable violations (empty ⇔ legitimate).
    pub issues: Vec<String>,
}

impl LegitReport {
    /// Whether the snapshot is legitimate.
    pub fn ok(&self) -> bool {
        self.issues.is_empty()
    }

    fn note(&mut self, msg: String) {
        if self.issues.len() < 64 {
            self.issues.push(msg);
        }
    }
}

/// Expected edges for one subscriber, derived from the database ring.
struct Expect {
    left: Option<NodeRef>,
    right: Option<NodeRef>,
    ring: Option<NodeRef>,
}

fn expected_edges(sorted: &[(Label, NodeId)], i: usize) -> Expect {
    let n = sorted.len();
    if n == 1 {
        return Expect {
            left: None,
            right: None,
            ring: None,
        };
    }
    let r = |j: usize| NodeRef::new(sorted[j].0, sorted[j].1);
    if i == 0 {
        Expect {
            left: None,
            right: Some(r(1)),
            ring: Some(r(n - 1)),
        }
    } else if i == n - 1 {
        Expect {
            left: Some(r(n - 2)),
            right: None,
            ring: Some(r(0)),
        }
    } else {
        Expect {
            left: Some(r(i - 1)),
            right: Some(r(i + 1)),
            ring: None,
        }
    }
}

fn check_edge(
    report: &mut LegitReport,
    who: NodeId,
    name: &str,
    got: Option<NodeRef>,
    want: Option<NodeRef>,
) {
    match (got, want) {
        (None, None) => {}
        (Some(g), Some(w)) if g == w => {}
        (g, w) => report.note(format!("{who}: {name} is {g:?}, expected {w:?}")),
    }
}

/// Pre-PR `check_topology_parts`, verbatim.
pub fn check_topology_parts<'a>(
    sup: &Supervisor,
    members: impl IntoIterator<Item = (NodeId, &'a Subscriber)>,
) -> LegitReport {
    let mut report = LegitReport::default();

    // --- database validity (Lemma 9) ---
    let mut db: Vec<(Label, NodeId)> = Vec::with_capacity(sup.database.len());
    for (l, v) in &sup.database {
        match v {
            None => report.note(format!("database has (label {l}, ⊥)")),
            Some(node) => db.push((*l, *node)),
        }
    }
    let n = db.len() as u64;
    for (l, _) in &db {
        match l.index() {
            Some(i) if i < n => {}
            _ => report.note(format!("database label {l} is outside l(0..{n})")),
        }
    }
    {
        let mut nodes: Vec<NodeId> = db.iter().map(|(_, v)| *v).collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() as u64 != n {
            report.note("database maps several labels to one subscriber".into());
        }
    }
    // --- membership agreement (Lemma 10) ---
    let members: BTreeMap<NodeId, &Subscriber> = members.into_iter().collect();
    for (_, v) in &db {
        match members.get(v) {
            None => report.note(format!("database references dead/unknown node {v}")),
            Some(s) if !s.wants_membership => {
                report.note(format!("database still holds unsubscribing node {v}"))
            }
            Some(_) => {}
        }
    }
    for (id, s) in &members {
        if s.wants_membership && !db.iter().any(|(_, v)| v == id) {
            report.note(format!("live subscriber {id} missing from database"));
        }
        if !s.wants_membership && s.label.is_some() {
            report.note(format!("departed subscriber {id} still labelled"));
        }
    }
    if !report.ok() {
        return report; // edge checks below assume a sane database
    }

    // --- per-subscriber state (Lemmas 11–12) ---
    for (i, (label, v)) in db.iter().enumerate() {
        let Some(s) = members.get(v) else { continue };
        if s.label != Some(*label) {
            report.note(format!(
                "{v}: label is {:?}, database says {label}",
                s.label
            ));
            continue;
        }
        let want = expected_edges(&db, i);
        check_edge(&mut report, *v, "left", s.left, want.left);
        check_edge(&mut report, *v, "right", s.right, want.right);
        check_edge(&mut report, *v, "ring", s.ring, want.ring);
        if s.cfg.shortcuts {
            let eff_left = s.eff_left();
            let eff_right = s.eff_right();
            if let (Some(el), Some(er)) = (eff_left, eff_right) {
                let expected = shortcut::expected_shortcuts(*label, el.label, er.label);
                let want_map: BTreeMap<Label, NodeId> = expected
                    .iter()
                    .filter_map(|t| {
                        db.iter()
                            .find(|(l, _)| *l == t.label)
                            .map(|(_, id)| (t.label, *id))
                    })
                    .collect();
                if want_map.len() != expected.len() {
                    report.note(format!(
                        "{v}: some expected shortcut labels missing from db"
                    ));
                }
                let got: BTreeMap<Label, Option<NodeId>> = s.shortcuts.clone();
                for (l, want_id) in &want_map {
                    match got.get(l) {
                        Some(Some(id)) if id == want_id => {}
                        other => report.note(format!(
                            "{v}: shortcut {l} is {other:?}, expected {want_id}"
                        )),
                    }
                }
                for l in got.keys() {
                    if !want_map.contains_key(l) {
                        report.note(format!("{v}: unexpected shortcut slot {l}"));
                    }
                }
            } else if db.len() > 1 {
                report.note(format!("{v}: missing effective ring neighbours"));
            }
        }
    }
    report
}

/// Pre-PR `publications_converged_of`, verbatim: global key-set union
/// with a clone of every key of every membership-wanting subscriber.
pub fn publications_converged_of<'a>(
    subs: impl IntoIterator<Item = &'a Subscriber>,
) -> (bool, usize) {
    let tries: Vec<&Subscriber> = subs
        .into_iter()
        .filter(|s| s.wants_membership)
        .collect();
    let mut union: std::collections::BTreeSet<skippub_bits::BitStr> =
        std::collections::BTreeSet::new();
    for s in &tries {
        for k in s.trie.keys() {
            union.insert(k);
        }
    }
    let ok = tries.iter().all(|s| s.trie.len() == union.len());
    let hashes: Vec<_> = tries.iter().map(|s| s.trie.root_hash()).collect();
    let ok = ok && hashes.windows(2).all(|w| w[0] == w[1]);
    (ok, union.len())
}

/// Pre-PR per-topic topology verdict: one whole-world scan per topic.
pub fn topic_is_legit<V: NodeView<MultiActor>>(
    world: &V,
    sup_id: NodeId,
    topic: TopicId,
) -> bool {
    let members = world
        .nodes()
        .filter_map(|(id, a)| a.topic_subscriber(topic).map(|s| (id, s)));
    match world.peek(sup_id).and_then(|a| a.topic_supervisor(topic)) {
        Some(sup) => check_topology_parts(sup, members).ok(),
        None => {
            let empty = Supervisor::new(sup_id);
            check_topology_parts(&empty, members).ok()
        }
    }
}

/// Pre-PR whole-system legitimacy: every topic, each a full world scan.
pub fn is_legitimate<V: NodeView<MultiActor>>(
    world: &V,
    topics: u32,
    sup_for: impl Fn(TopicId) -> NodeId,
) -> bool {
    (0..topics).all(|t| {
        let t = TopicId(t);
        topic_is_legit(world, sup_for(t), t)
    })
}

/// Pre-PR whole-system publication convergence: per topic, a full world
/// scan plus the global key-union.
pub fn publications_converged<V: NodeView<MultiActor>>(world: &V, topics: u32) -> (bool, usize) {
    let mut all_ok = true;
    let mut total = 0;
    for t in 0..topics {
        let (ok, n) = publications_converged_of(
            world
                .nodes()
                .filter_map(|(_, a)| a.topic_subscriber(TopicId(t))),
        );
        all_ok &= ok;
        total += n;
    }
    (all_ok, total)
}
