//! # skippub-bench
//!
//! Criterion benchmarks, one group per reproduced figure/table plus
//! substrate micro-benches. The benches measure the *cost* of each
//! reproduced artefact at a fixed scale; the experiment harness
//! (`skippub-harness`) regenerates the artefacts' *values*.
//!
//! Targets:
//!
//! * `substrates` — label algebra, bit strings, hashing, Patricia-trie
//!   operations, simulator round throughput.
//! * `figures` — Figure 1 (SR(16) protocol construction) and Figure 2
//!   (two-trie reconciliation).
//! * `tables` — one bench per quantitative-claim experiment (E4–E12) at a
//!   representative n.
//! * `baselines` — Chord routing, skip-graph search, broadcast load
//!   computation.
//! * `facade` — the `PubSub` facade layer vs direct `SkipRingSim`
//!   driving over the identical full-protocol world ([`facade`]); the
//!   `bench_facade_json` binary writes `BENCH_facade.json`.
//! * `sim_engine` — the simulation-engine perf trajectory: the live
//!   slab engine vs the preserved legacy `BTreeMap` engine
//!   ([`legacy`]) over the [`workloads`] traffic shapes, at 1k and
//!   10k nodes. The `bench_sim_json` binary re-times the same
//!   workloads and writes `BENCH_sim.json` so every perf PR records a
//!   trajectory point.
//! * `checker` — the polled legitimacy/convergence predicates:
//!   incremental layer vs the preserved pre-incremental from-scratch
//!   checker ([`legacy_checker`]). The `bench_checker_json` binary
//!   times the steady-state polling loop both ways (asserting verdict
//!   agreement in-run) and writes `BENCH_checker.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facade;
pub mod legacy;
pub mod legacy_checker;
pub mod workloads;

/// Shared fixed scales so bench names stay comparable across runs.
pub mod scales {
    /// Default ring size used by table benches.
    pub const N: usize = 64;
    /// Publication count for anti-entropy benches.
    pub const PUBS: usize = 64;
}
