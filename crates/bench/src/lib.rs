//! # skippub-bench
//!
//! Criterion benchmarks, one group per reproduced figure/table plus
//! substrate micro-benches. The benches measure the *cost* of each
//! reproduced artefact at a fixed scale; the experiment harness
//! (`skippub-harness`) regenerates the artefacts' *values*.
//!
//! Targets:
//!
//! * `substrates` — label algebra, bit strings, hashing, Patricia-trie
//!   operations, simulator round throughput.
//! * `figures` — Figure 1 (SR(16) protocol construction) and Figure 2
//!   (two-trie reconciliation).
//! * `tables` — one bench per quantitative-claim experiment (E4–E12) at a
//!   representative n.
//! * `baselines` — Chord routing, skip-graph search, broadcast load
//!   computation.

#![forbid(unsafe_code)]

/// Shared fixed scales so bench names stay comparable across runs.
pub mod scales {
    /// Default ring size used by table benches.
    pub const N: usize = 64;
    /// Publication count for anti-entropy benches.
    pub const PUBS: usize = 64;
}
