//! Facade-overhead workloads: the *same* full-protocol world driven
//! directly through [`SkipRingSim::run_round`] and through the
//! [`PubSub`] trait object (`Box<dyn PubSub>::step`), so the measured
//! difference is exactly the cost of the facade layer (one dynamic
//! dispatch per round; no per-round boxing or allocation on the sim
//! path).
//!
//! Both constructors build the identical legitimate warm-start world
//! from the same seed, so the two sides execute byte-identical protocol
//! work in the same RNG order.

use skippub_core::pubsub::{PubSub, SimBackend};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};

/// Seed shared by both sides of the comparison.
pub const SEED: u64 = 0xFA5ADE;

fn warm_world(n: usize) -> skippub_sim::World<skippub_core::Actor> {
    scenarios::legit_world(n, SEED, ProtocolConfig::default())
}

/// A warmed `n`-subscriber system driven directly (no facade).
pub fn direct_system(n: usize) -> SkipRingSim {
    let mut sim = SkipRingSim::from_world(warm_world(n), ProtocolConfig::default());
    sim.run_round();
    sim.run_round();
    sim
}

/// The identical system behind the facade trait object.
pub fn facade_system(n: usize) -> Box<dyn PubSub> {
    let mut ps: Box<dyn PubSub> = Box::new(SimBackend::from_world(
        warm_world(n),
        ProtocolConfig::default(),
    ));
    ps.step();
    ps.step();
    ps
}
