//! The pre-slab simulation engine, preserved verbatim in spirit as the
//! measured baseline for the perf trajectory.
//!
//! This is the `BTreeMap`-backed `World` that `skippub-sim` shipped
//! before the slab refactor: every message delivery pays an
//! `O(log n)` tree lookup, every round allocates fresh `Vec`s for the
//! activation order, each node's inbox, and each handler's outbox, and
//! metrics go through `BTreeMap` counters. Keep it unchanged — the
//! `sim_engine` benches and the `BENCH_sim.json` emitter compare the
//! live engine against it, and the comparison is only meaningful while
//! this stays a faithful copy of the old hot path.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use skippub_sim::{ChaosConfig, NodeId};
use std::collections::BTreeMap;

/// Handler-side context (old-engine shape: fresh outbox per call).
pub struct LegacyCtx<'a, M> {
    me: NodeId,
    out: &'a mut Vec<(NodeId, M)>,
    rng: &'a mut StdRng,
}

impl<M> LegacyCtx<'_, M> {
    /// The executing node's own ID.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Sends `msg` to `to`.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Bernoulli draw from the world's seeded RNG.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.random_bool(p)
        }
    }

    /// Uniform draw from `0..n` (`n > 0`).
    #[inline]
    pub fn random_range(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }
}

/// Protocol trait against the legacy context.
pub trait LegacyProtocol {
    /// The wire message type.
    type Msg: Clone;

    /// Handles one delivered message.
    fn on_message(&mut self, ctx: &mut LegacyCtx<'_, Self::Msg>, msg: Self::Msg);

    /// The periodic `Timeout` action.
    fn on_timeout(&mut self, ctx: &mut LegacyCtx<'_, Self::Msg>);

    /// Classifies a message for metrics.
    fn msg_kind(_msg: &Self::Msg) -> &'static str {
        "msg"
    }
}

/// Old-style metrics: every counter behind a `BTreeMap`.
#[derive(Clone, Debug, Default)]
pub struct LegacyMetrics {
    /// Messages handed to the transport.
    pub sent_total: u64,
    /// Messages delivered to handlers.
    pub delivered_total: u64,
    /// Messages consumed without action.
    pub dropped: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Sent messages by kind.
    pub sent_by_kind: BTreeMap<&'static str, u64>,
    /// Sent messages per sender.
    pub sent_by_node: BTreeMap<NodeId, u64>,
    /// Delivered messages per receiver.
    pub received_by_node: BTreeMap<NodeId, u64>,
}

impl LegacyMetrics {
    /// Messages of `kind` sent so far.
    pub fn kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    fn note_sent(&mut self, from: NodeId, kind: &'static str) {
        self.sent_total += 1;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.sent_by_node.entry(from).or_insert(0) += 1;
    }

    fn note_delivered(&mut self, to: NodeId) {
        self.delivered_total += 1;
        *self.received_by_node.entry(to).or_insert(0) += 1;
    }
}

struct Entry<P: LegacyProtocol> {
    proto: P,
    channel: Vec<(u32, P::Msg)>,
}

/// The pre-refactor simulated world.
pub struct LegacyWorld<P: LegacyProtocol> {
    nodes: BTreeMap<NodeId, Entry<P>>,
    rng: StdRng,
    metrics: LegacyMetrics,
    round: u64,
}

impl<P: LegacyProtocol> LegacyWorld<P> {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        LegacyWorld {
            nodes: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: LegacyMetrics::default(),
            round: 0,
        }
    }

    /// Adds a node; panics on duplicates.
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        let prev = self.nodes.insert(
            id,
            Entry {
                proto,
                channel: Vec::new(),
            },
        );
        assert!(prev.is_none(), "duplicate node {id}");
    }

    /// Crashes a node: state vanishes, channel consumed.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(entry) = self.nodes.remove(&id) {
            self.metrics.dropped += entry.channel.len() as u64;
        }
    }

    /// IDs of all live nodes (fresh allocation, old behavior).
    pub fn ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &LegacyMetrics {
        &self.metrics
    }

    /// Total in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.nodes.values().map(|e| e.channel.len()).sum()
    }

    /// Injects a message from outside the system.
    pub fn inject(&mut self, to: NodeId, msg: P::Msg) {
        self.metrics.note_sent(to, P::msg_kind(&msg));
        match self.nodes.get_mut(&to) {
            Some(e) => e.channel.push((0, msg)),
            None => self.metrics.dropped += 1,
        }
    }

    fn route(&mut self, from: NodeId, out: Vec<(NodeId, P::Msg)>) {
        for (to, msg) in out {
            self.metrics.note_sent(from, P::msg_kind(&msg));
            match self.nodes.get_mut(&to) {
                Some(e) => e.channel.push((0, msg)),
                None => self.metrics.dropped += 1,
            }
        }
    }

    fn deliver(&mut self, to: NodeId, msg: P::Msg) {
        let mut out = Vec::new();
        if let Some(entry) = self.nodes.get_mut(&to) {
            self.metrics.note_delivered(to);
            let mut ctx = LegacyCtx {
                me: to,
                out: &mut out,
                rng: &mut self.rng,
            };
            entry.proto.on_message(&mut ctx, msg);
        } else {
            self.metrics.dropped += 1;
        }
        self.route(to, out);
    }

    fn fire_timeout(&mut self, id: NodeId) {
        let mut out = Vec::new();
        if let Some(entry) = self.nodes.get_mut(&id) {
            let mut ctx = LegacyCtx {
                me: id,
                out: &mut out,
                rng: &mut self.rng,
            };
            entry.proto.on_timeout(&mut ctx);
        }
        self.route(id, out);
    }

    /// One synchronous round (old hot path: per-round allocations and a
    /// `BTreeMap` lookup per delivered message).
    pub fn run_round(&mut self) {
        self.round += 1;
        let mut order = self.ids();
        order.shuffle(&mut self.rng);
        for id in order {
            let Some(entry) = self.nodes.get_mut(&id) else {
                continue;
            };
            let mut inbox = std::mem::take(&mut entry.channel);
            inbox.shuffle(&mut self.rng);
            for (_, msg) in inbox {
                self.deliver(id, msg);
            }
            self.fire_timeout(id);
        }
        self.metrics.rounds += 1;
    }

    /// One chaos round (old hot path).
    pub fn run_chaos_round(&mut self, cfg: ChaosConfig) {
        self.round += 1;
        let mut order = self.ids();
        order.shuffle(&mut self.rng);
        for id in order {
            let Some(entry) = self.nodes.get_mut(&id) else {
                continue;
            };
            let mut inbox = std::mem::take(&mut entry.channel);
            inbox.shuffle(&mut self.rng);
            let mut kept = Vec::new();
            for (age, msg) in inbox {
                let force = age >= cfg.max_age;
                if force || self.rng.random_bool(cfg.delivery_prob) {
                    self.deliver(id, msg);
                } else {
                    kept.push((age + 1, msg));
                }
            }
            if let Some(entry) = self.nodes.get_mut(&id) {
                entry.channel.extend(kept);
            } else {
                self.metrics.dropped += kept.len() as u64;
            }
            if self.rng.random_bool(cfg.timeout_prob) {
                self.fire_timeout(id);
            }
        }
        self.metrics.rounds += 1;
    }
}
