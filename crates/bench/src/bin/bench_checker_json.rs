//! Emits `BENCH_checker.json`: throughput of the legitimate-steady-state
//! **polling loop** — `step()` + `is_legitimate()` +
//! `publications_converged()` per round, the exact loop `until_legit` /
//! `until_pubs_converged` and every scenario stop condition run — with
//! the incremental checking layer against the **pre-PR from-scratch
//! checker**, preserved verbatim as [`skippub_bench::legacy_checker`]
//! (the same baseline-preservation pattern `legacy` uses for the old
//! simulation engine). Measured on the multi-topic and sharded backends
//! at a steady state that holds a converged publication working set —
//! the motivating workload: the old `publications_converged` clones and
//! unions every stored key of every subscriber per topic per poll, so
//! an empty store would understate the baseline's real cost.
//!
//! Both loops run interleaved on the **same** backend instance (the
//! checkers are read-only, so they share one trajectory), min-of-blocks.
//! Correctness is asserted *in-run*: outside every timed region the
//! incremental verdicts are compared against the legacy ones; the
//! emitted `incremental_matches_full: true` flag means every comparison
//! agreed (a mismatch aborts the run). CI executes this emitter in
//! smoke mode (tiny n) so the flag — and the A/B plumbing behind it —
//! cannot rot.
//!
//! Also records before/after wall-clock of the `steady-state` and
//! `shard-churn` built-in scenarios, A/B'd via the backends'
//! `set_full_checking` switch (the from-scratch path behind the facade).
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_checker_json \
//!     [-- --n 10000 --topics 64 --shards 8 --pubs-per-topic 32 \
//!         --blocks 12 --block-rounds 4 --out BENCH_checker.json]
//! ```

use skippub_bench::legacy_checker as legacy;
use skippub_core::pubsub::{MultiTopicBackend, ShardedBackend, SystemBuilder};
use skippub_core::scenarios::SUPERVISOR;
use skippub_core::{PubSub, TopicId};
use skippub_harness::scenario::{self, library};
use skippub_sim::NodeId;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0xC11EC4E8;

struct Args {
    n: u64,
    topics: u32,
    shards: usize,
    pubs_per_topic: u64,
    blocks: u64,
    block_rounds: u64,
    warm_budget: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 10_000,
        topics: 64,
        shards: 8,
        pubs_per_topic: 32,
        blocks: 12,
        block_rounds: 4,
        warm_budget: 6_000,
        out: "BENCH_checker.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--n" => args.n = value().parse().expect("--n"),
            "--topics" => args.topics = value().parse().expect("--topics"),
            "--shards" => args.shards = value().parse().expect("--shards"),
            "--pubs-per-topic" => args.pubs_per_topic = value().parse().expect("--pubs-per-topic"),
            "--blocks" => args.blocks = value().parse().expect("--blocks"),
            "--block-rounds" => args.block_rounds = value().parse().expect("--block-rounds"),
            "--warm-budget" => args.warm_budget = value().parse().expect("--warm-budget"),
            "--out" => args.out = value(),
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    args
}

struct Measured {
    backend: &'static str,
    legacy_rps: f64,
    incremental_rps: f64,
    warm_rounds: u64,
    pubs_total: usize,
}

/// Warms one backend to a legitimate steady state holding a converged
/// publication working set, then measures the two polling loops
/// interleaved on the same instance (both checkers are read-only),
/// min-of-blocks, cross-checking incremental == legacy outside every
/// timed region.
fn measure<B: PubSub>(
    a: &Args,
    backend: &'static str,
    ps: &mut B,
    legacy_poll: impl Fn(&B) -> (bool, (bool, usize)),
) -> Measured {
    eprintln!("[{backend}] populating (n={}, topics={}) ...", a.n, a.topics);
    for i in 0..a.n {
        ps.subscribe(TopicId((i % a.topics as u64) as u32));
    }
    let (warm_rounds, reached) = ps.until_legit(a.warm_budget);
    assert!(reached, "{backend}: population must stabilize within the warm budget");
    // The steady-state working set: P publications per topic, flooded
    // to convergence. Client i = NodeId(i + 1) subscribed topic i mod T,
    // so topic t's authors are t+1, t+1+T, t+1+2T, ...
    eprintln!("[{backend}] seeding {} publications per topic ...", a.pubs_per_topic);
    for t in 0..a.topics as u64 {
        for k in 0..a.pubs_per_topic {
            let author = NodeId(t + 1 + (k % 8) * a.topics as u64);
            let payload = format!("topic {t} publication {k}").into_bytes();
            ps.publish(author, TopicId(t as u32), payload)
                .expect("author is a live member of its topic");
        }
    }
    let (_, converged) = ps.until_pubs_converged(a.warm_budget);
    assert!(converged, "{backend}: working set must converge before measuring");
    assert!(ps.until_legit(a.warm_budget).1, "{backend}: still legitimate");
    let pubs_total = ps.publications_converged().1;

    let mut inc_best = f64::INFINITY;
    let mut legacy_best = f64::INFINITY;
    let mut digest = 0u64;
    for b in 0..a.blocks {
        eprintln!("[{backend}] block {}/{} ...", b + 1, a.blocks);
        // Both loops drive the same instance; alternate which is timed
        // first so traffic drift along the trajectory cannot
        // systematically favour one side.
        let time_legacy = |ps: &mut B, digest: &mut u64| {
            let t0 = Instant::now();
            for _ in 0..a.block_rounds {
                ps.step();
                let (legit, (conv, total)) = legacy_poll(ps);
                *digest += u64::from(legit) + u64::from(conv) + total as u64;
            }
            t0.elapsed().as_secs_f64()
        };
        let time_inc = |ps: &mut B, digest: &mut u64| {
            let t0 = Instant::now();
            for _ in 0..a.block_rounds {
                ps.step();
                let legit = ps.is_legitimate();
                let (conv, total) = ps.publications_converged();
                *digest += u64::from(legit) + u64::from(conv) + total as u64;
            }
            t0.elapsed().as_secs_f64()
        };
        if b % 2 == 0 {
            inc_best = inc_best.min(time_inc(ps, &mut digest));
            legacy_best = legacy_best.min(time_legacy(ps, &mut digest));
        } else {
            legacy_best = legacy_best.min(time_legacy(ps, &mut digest));
            inc_best = inc_best.min(time_inc(ps, &mut digest));
        }
        // In-run conformance, outside the timed regions.
        let (legit_legacy, pubs_legacy) = legacy_poll(ps);
        assert_eq!(
            ps.is_legitimate(),
            legit_legacy,
            "{backend}: incremental legitimacy diverged from the pre-PR checker"
        );
        assert_eq!(
            ps.publications_converged(),
            pubs_legacy,
            "{backend}: incremental convergence diverged from the pre-PR checker"
        );
    }
    assert!(digest > 0);
    Measured {
        backend,
        legacy_rps: a.block_rounds as f64 / legacy_best,
        incremental_rps: a.block_rounds as f64 / inc_best,
        warm_rounds,
        pubs_total,
    }
}

/// Wall-clock of one built-in scenario under each checker path (the
/// backend's `set_full_checking` switch), min-of-2 each.
struct ScenarioAb {
    name: &'static str,
    backend: &'static str,
    full_secs: f64,
    incremental_secs: f64,
}

fn scenario_ab(
    name: &'static str,
    spec: &scenario::ScenarioSpec,
    backend: &'static str,
    build: impl Fn(bool) -> Box<dyn PubSub>,
) -> ScenarioAb {
    let run = |full: bool| {
        let mut ps = build(full);
        let t0 = Instant::now();
        let out = scenario::run_on(ps.as_mut(), spec, 1);
        let secs = t0.elapsed().as_secs_f64();
        assert!(out.report.ok(), "{name} ({backend}, full={full}) must pass: {}", out.report.to_json());
        secs
    };
    let f1 = run(true);
    let i1 = run(false);
    let f2 = run(true);
    let i2 = run(false);
    ScenarioAb {
        name,
        backend,
        full_secs: f1.min(f2),
        incremental_secs: i1.min(i2),
    }
}

fn main() {
    let a = parse_args();

    let mut multi: MultiTopicBackend = SystemBuilder::new(SEED).topics(a.topics).build_multi();
    let topics = a.topics;
    let rows = [
        measure(&a, "multi-topic", &mut multi, |ps: &MultiTopicBackend| {
            (
                legacy::is_legitimate(ps.world(), topics, |_| SUPERVISOR),
                legacy::publications_converged(ps.world(), topics),
            )
        }),
        {
            let mut sharded: ShardedBackend = SystemBuilder::new(SEED)
                .topics(a.topics)
                .shards(a.shards)
                .build_sharded();
            measure(&a, "sharded", &mut sharded, |ps: &ShardedBackend| {
                (
                    legacy::is_legitimate(ps.world(), topics, |t| ps.supervisor_for(t)),
                    legacy::publications_converged(ps.world(), topics),
                )
            })
        },
    ];

    eprintln!("scenario wall-clock A/B ...");
    let steady = library::steady_state();
    let churn = library::shard_churn();
    let scenarios = [
        scenario_ab("steady-state", &steady, "multi-topic", |full| {
            let mut ps = scenario::builder_for(&steady).build_multi();
            ps.set_full_checking(full);
            Box::new(ps)
        }),
        scenario_ab("shard-churn", &churn, "sharded", |full| {
            let mut ps = scenario::builder_for(&churn).build_sharded();
            ps.set_full_checking(full);
            Box::new(ps)
        }),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/checker/v1\",\n");
    json.push_str("  \"description\": \"Legitimate-steady-state polling loop (step + is_legitimate + publications_converged per round, converged publication working set stored): incremental checking layer vs the pre-PR from-scratch checker (preserved verbatim in skippub_bench::legacy_checker). Interleaved min-of-blocks on one shared backend instance. Regenerate with: cargo run --release -p skippub-bench --bin bench_checker_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {}, \"topics\": {}, \"shards\": {}, \"pubs_per_topic\": {}, \"blocks\": {}, \"block_rounds\": {}}},",
        a.n, a.topics, a.shards, a.pubs_per_topic, a.blocks, a.block_rounds
    );
    json.push_str("  \"incremental_matches_full\": true,\n");
    json.push_str("  \"polling_loop\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"warm_rounds\": {}, \"stored_pubs\": {}, \"full_rounds_per_sec\": {:.3}, \"incremental_rounds_per_sec\": {:.3}, \"speedup\": {:.2}}}{}",
            r.backend,
            r.warm_rounds,
            r.pubs_total,
            r.legacy_rps,
            r.incremental_rps,
            r.incremental_rps / r.legacy_rps,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"full_secs\": {:.4}, \"incremental_secs\": {:.4}, \"speedup\": {:.2}}}{}",
            s.name,
            s.backend,
            s.full_secs,
            s.incremental_secs,
            s.full_secs / s.incremental_secs,
            if i + 1 == scenarios.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"note\": \"incremental_matches_full is asserted in-run every block (a divergence aborts before any JSON is written). Both polling loops include the (identical, unchanged-semantics) step() cost, so the speedup understates the checker-only improvement. The built-in scenarios are small (population 10/24) and A/B'd via set_full_checking (the modernized from-scratch facade path), so their wall-clock gain is bounded by how much of each run is stop/settle polling.\"\n");
    json.push_str("}\n");

    std::fs::write(&a.out, &json).expect("write BENCH_checker.json");
    eprintln!("wrote {}", a.out);
    print!("{json}");
}
