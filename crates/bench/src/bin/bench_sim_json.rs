//! Emits `BENCH_sim.json`: the committed perf-trajectory point for the
//! simulation engine.
//!
//! Times the same engine × workload × mode matrix as the `sim_engine`
//! criterion bench, but over fixed round counts with per-round
//! in-flight sampling, and writes machine-readable JSON (hand-rolled —
//! the offline workspace has no serde) so later PRs can diff
//! trajectories.
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_sim_json [-- out.json]
//! ```

use skippub_bench::workloads::{
    flood_world, legacy_flood_world, legacy_token_world, token_world,
};
use skippub_sim::ChaosConfig;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed configuration.
struct Row {
    engine: &'static str,
    workload: &'static str,
    mode: &'static str,
    n: u64,
    rounds: u64,
    elapsed_ms: f64,
    rounds_per_sec: f64,
    messages_per_sec: f64,
    peak_in_flight: usize,
}

const SEED: u64 = 0xBEBC;

fn rounds_for(n: u64) -> u64 {
    // Enough work for stable numbers, bounded total runtime.
    if n >= 10_000 {
        60
    } else {
        400
    }
}

/// Times one (world constructor, engine, workload) triple in both round
/// modes. Works for either engine because both expose the same method
/// names; a macro sidesteps the lack of a shared trait.
macro_rules! bench_cases {
    ($ctor:ident, $engine:literal, $workload:literal, $n:expr, $rows:expr) => {{
        let n: u64 = $n;
        let rounds = rounds_for(n);
        let cfg = ChaosConfig::default();
        for mode in ["run_round", "run_chaos_round"] {
            let mut w = $ctor(n, SEED);
            let d0 = w.metrics().delivered_total;
            let mut peak = 0usize;
            let t0 = Instant::now();
            for _ in 0..rounds {
                match mode {
                    "run_round" => w.run_round(),
                    _ => w.run_chaos_round(cfg),
                }
                peak = peak.max(w.in_flight());
            }
            let secs = t0.elapsed().as_secs_f64();
            let msgs = w.metrics().delivered_total - d0;
            $rows.push(Row {
                engine: $engine,
                workload: $workload,
                mode,
                n,
                rounds,
                elapsed_ms: secs * 1e3,
                rounds_per_sec: rounds as f64 / secs,
                messages_per_sec: msgs as f64 / secs,
                peak_in_flight: peak,
            });
        }
    }};
}

fn speedup(rows: &[Row], workload: &str, mode: &str, n: u64) -> f64 {
    let rate = |engine: &str| {
        rows.iter()
            .find(|r| {
                r.engine == engine && r.workload == workload && r.mode == mode && r.n == n
            })
            .map(|r| r.rounds_per_sec)
            .unwrap_or(f64::NAN)
    };
    rate("slab") / rate("legacy")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let mut rows: Vec<Row> = Vec::new();
    for n in [1_000u64, 10_000] {
        eprintln!("timing n={n} ...");
        bench_cases!(flood_world, "slab", "flooding", n, rows);
        bench_cases!(legacy_flood_world, "legacy", "flooding", n, rows);
        bench_cases!(token_world, "slab", "token", n, rows);
        bench_cases!(legacy_token_world, "legacy", "token", n, rows);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/sim/v1\",\n");
    json.push_str("  \"description\": \"Simulation-engine round throughput: live slab engine vs pre-refactor BTreeMap engine (crates/bench/src/legacy.rs). Regenerate with: cargo run --release -p skippub-bench --bin bench_sim_json\",\n");
    json.push_str("  \"seed\": 48828,\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \"n\": {}, \"rounds\": {}, \"elapsed_ms\": {:.2}, \"rounds_per_sec\": {:.1}, \"messages_per_sec\": {:.0}, \"peak_in_flight\": {}}}{}",
            r.engine,
            r.workload,
            r.mode,
            r.n,
            r.rounds,
            r.elapsed_ms,
            r.rounds_per_sec,
            r.messages_per_sec,
            r.peak_in_flight,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"speedup_slab_over_legacy\": {\n");
    let mut first = true;
    for workload in ["flooding", "token"] {
        for mode in ["run_round", "run_chaos_round"] {
            for n in [1_000u64, 10_000] {
                let _ = write!(
                    json,
                    "{}    \"{workload}/{mode}/n={n}\": {:.2}",
                    if first { "" } else { ",\n" },
                    speedup(&rows, workload, mode, n)
                );
                first = false;
            }
        }
    }
    json.push_str("\n  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
