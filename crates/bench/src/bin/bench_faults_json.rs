//! Emits `BENCH_faults.json`: graceful degradation under the
//! deterministic link-fault plane.
//!
//! **Loss-sweep leg**: a legitimate `n`-subscriber world (n = 1k and
//! 10k) publishes a burst of stories while every link loses messages at
//! drop rates 0, 0.05, 0.2, and 0.5 (the window never closes, so every
//! retransmission pays the rate too). Records the rounds and wall-clock
//! until publication convergence plus the fault counters — the headline
//! claim is the *shape*: light loss is absorbed nearly for free (every
//! repair round retries), while heavy loss hits a sharp knee where
//! retransmission redundancy stops compensating. One honest
//! cap: drop rates above 0.2 only run at n ≤ `--heavy-max-n` (default
//! 1 000) — at n = 10k the 0.5 per-link rate pushes publication
//! convergence past the 60k-round budget (measured: n = 1k converges,
//! n = 10k does not), so the intractable cell is recorded in
//! `loss_skipped` instead of silently dropped.
//!
//! **Partition-heal leg**: 10% of the members are severed from the rest
//! for a fixed window while stories publish on both sides; at heal the
//! emitter measures the settle cost — rounds back to legitimacy and to
//! full publication convergence.
//!
//! Two claims are asserted in-run and recorded as flags (a failure
//! aborts before any JSON is written):
//!
//! * `determinism`: the lossiest small-n row re-run must reproduce
//!   identical convergence rounds and fault counters — the plane is
//!   part of the deterministic state machine, not noise;
//! * `deterministic_across_thread_counts`: the `fault-storm-mix`
//!   builtin on the sharded backend at 1, 2, and 4 worker threads must
//!   produce identical delivered fingerprints and stats (fault
//!   counters included);
//! * `oracle_fault_storm_ok`: the `fault-storm-loss` builtin's
//!   heal-and-reconverge oracle (post-heal re-legitimization +
//!   delivered-set equality with a fault-free twin) passes on the sim
//!   backend.
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_faults_json \
//!     [-- --sizes 1000,10000 --drops 0,0.05,0.2,0.5 --pubs 6 \
//!         --budget 60000 --heavy-max-n 1000 --out BENCH_faults.json] \
//!     [--smoke]
//! ```

use skippub_core::pubsub::SimBackend;
use skippub_core::scenarios::legit_world;
use skippub_core::{BackendKind, ProtocolConfig, PubSub, TopicId};
use skippub_harness::scenario::{self, library};
use skippub_sim::{FaultRule, FaultSpec, LinkClass, NodeId, Sever};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0xFA17_BEC4;
const T: TopicId = TopicId(0);

struct Args {
    sizes: Vec<usize>,
    drops: Vec<f64>,
    pubs: usize,
    budget: u64,
    heavy_max_n: usize,
    out: String,
    smoke: bool,
}

/// Drop rates above this only run at n ≤ `heavy_max_n`: heavier loss on
/// larger worlds exceeds the round budget (see the module docs).
const HEAVY_DROP: f64 = 0.2;

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![1_000, 10_000],
        drops: vec![0.0, 0.05, 0.2, 0.5],
        pubs: 6,
        budget: 60_000,
        heavy_max_n: 1_000,
        out: "BENCH_faults.json".to_string(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect();
            }
            "--drops" => {
                args.drops = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--drops"))
                    .collect();
            }
            "--pubs" => args.pubs = value().parse().expect("--pubs"),
            "--budget" => args.budget = value().parse().expect("--budget"),
            "--heavy-max-n" => args.heavy_max_n = value().parse().expect("--heavy-max-n"),
            "--out" => args.out = value(),
            "--smoke" => {
                args.smoke = true;
                i -= 1;
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    if args.smoke {
        args.sizes = vec![200];
        args.drops = vec![0.0, 0.2, 0.5];
        args.pubs = 3;
    }
    args
}

/// A legitimate `n`-subscriber sim backend (constructed directly — the
/// sweep measures fault-plane degradation, not bootstrap).
fn legit_backend(n: usize) -> SimBackend {
    let cfg = ProtocolConfig::default();
    SimBackend::from_world(legit_world(n, SEED, cfg), cfg)
}

/// An always-open (the window never closes inside the budget) uniform
/// loss rule over every link.
fn loss_spec(drop: f64) -> FaultSpec {
    FaultSpec {
        seed: SEED,
        rules: vec![FaultRule {
            drop,
            ..FaultRule::pass(0, u64::MAX, LinkClass::All)
        }],
        severs: vec![],
    }
}

struct LossRow {
    n: usize,
    drop: f64,
    rounds: u64,
    dropped_by_fault: u64,
    wall_secs: f64,
}

/// Publishes `pubs` stories from distinct authors under a uniform loss
/// rate and measures rounds to full publication convergence.
fn measure_loss(n: usize, drop: f64, pubs: usize, budget: u64) -> LossRow {
    eprintln!("[loss] n={n} drop={drop} ...");
    let mut ps = legit_backend(n);
    if drop > 0.0 {
        ps.set_faults(Some(loss_spec(drop)));
    }
    for k in 0..pubs {
        ps.publish(
            NodeId(1 + (k * (n / pubs.max(1))) as u64 % n as u64),
            T,
            format!("storm story {k}").into_bytes(),
        )
        .expect("alive author");
    }
    let t0 = Instant::now();
    let (rounds, ok) = ps.until_pubs_converged(budget);
    let wall_secs = t0.elapsed().as_secs_f64();
    assert!(ok, "n={n} drop={drop}: publications must converge under loss");
    LossRow {
        n,
        drop,
        rounds,
        dropped_by_fault: ps.fault_counts().dropped_by_fault,
        wall_secs,
    }
}

struct HealRow {
    n: usize,
    severed: usize,
    window_rounds: u64,
    settle_rounds_legit: u64,
    settle_rounds_pubs: u64,
    dropped_by_fault: u64,
    wall_secs: f64,
}

/// Severs 10% of the members for `window_rounds`, publishes on both
/// sides of the cut, and measures the post-heal settle cost.
fn measure_heal(n: usize, budget: u64) -> HealRow {
    eprintln!("[heal] n={n} ...");
    let window_rounds = 12u64;
    let cut = (n / 10).max(2);
    let mut ps = legit_backend(n);
    ps.set_faults(Some(FaultSpec {
        seed: SEED,
        rules: vec![],
        severs: vec![Sever {
            from_round: 0,
            to_round: window_rounds,
            group: (1..=cut as u64).collect(),
        }],
    }));
    ps.publish(NodeId(1), T, b"minority-side story".to_vec())
        .expect("alive author");
    ps.publish(NodeId(n as u64), T, b"majority-side story".to_vec())
        .expect("alive author");
    let t0 = Instant::now();
    for _ in 0..window_rounds {
        ps.step();
    }
    let (settle_rounds_legit, ok) = ps.until_legit(budget);
    assert!(ok, "n={n}: must re-legitimize after the partition heals");
    let (settle_rounds_pubs, ok) = ps.until_pubs_converged(budget);
    assert!(ok, "n={n}: both sides' stories must cross the healed cut");
    let wall_secs = t0.elapsed().as_secs_f64();
    HealRow {
        n,
        severed: cut,
        window_rounds,
        settle_rounds_legit,
        settle_rounds_pubs,
        dropped_by_fault: ps.fault_counts().dropped_by_fault,
        wall_secs,
    }
}

fn main() {
    let a = parse_args();

    // Determinism flag: the lossiest *tractable* row at the smallest n,
    // twice (the heavy-drop cap applies here too).
    let det_n = a.sizes[0];
    let det_drop = a
        .drops
        .iter()
        .cloned()
        .filter(|&d| det_n <= a.heavy_max_n || d <= HEAVY_DROP)
        .fold(0.0f64, f64::max);
    let once = measure_loss(det_n, det_drop, a.pubs, a.budget);
    let twice = measure_loss(det_n, det_drop, a.pubs, a.budget);
    assert_eq!(
        (once.rounds, once.dropped_by_fault),
        (twice.rounds, twice.dropped_by_fault),
        "the fault plane must be deterministic run to run"
    );

    // Thread-count determinism flag: the full-spectrum builtin on the
    // sharded parallel executor at 1, 2, and 4 worker threads.
    let mix = library::builtin("fault-storm-mix").expect("builtin exists");
    let mut reference: Option<scenario::ScenarioOutcome> = None;
    for threads in [1usize, 2, 4] {
        let out = scenario::run_spec(&mix.clone().threads(threads), BackendKind::Sharded)
            .expect("sharded supports faults");
        assert!(out.report.ok(), "threads={threads}: {}", out.report.to_json());
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                assert_eq!(
                    out.report.delivered_fingerprint, r.report.delivered_fingerprint,
                    "faulted delivered fingerprint diverges at {threads} threads"
                );
                assert_eq!(
                    out.report.stats, r.report.stats,
                    "faulted stats diverge at {threads} threads"
                );
            }
        }
    }

    // Oracle flag: the builtin heal-and-reconverge storm, in-process.
    let storm_spec = library::builtin("fault-storm-loss").expect("builtin exists");
    let storm = scenario::run_fault_storm(&storm_spec, BackendKind::Sim).expect("sim supports faults");
    assert!(storm.ok(), "fault-storm oracle failed: {}", storm.to_json());

    let mut loss_rows: Vec<LossRow> = Vec::new();
    let mut loss_skipped: Vec<(usize, f64)> = Vec::new();
    for &n in &a.sizes {
        for &drop in &a.drops {
            if drop > HEAVY_DROP && n > a.heavy_max_n {
                eprintln!("[loss] n={n} drop={drop} skipped (exceeds the round budget; see loss_skipped)");
                loss_skipped.push((n, drop));
                continue;
            }
            loss_rows.push(measure_loss(n, drop, a.pubs, a.budget));
        }
    }
    let heal_rows: Vec<HealRow> = a.sizes.iter().map(|&n| measure_heal(n, a.budget)).collect();

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/faults/v1\",\n");
    json.push_str("  \"description\": \"Graceful degradation under the deterministic link-fault plane: (1) loss sweep - rounds to publication convergence for a publish burst on a legitimate n-subscriber world while every link drops at the given rate (window never closes, so retransmissions pay the rate too); (2) partition-heal settle - 10% of members severed for a fixed window with stories published on both sides, then rounds back to legitimacy and full convergence after heal. Determinism (identical re-run) and the fault-storm heal-and-reconverge oracle are asserted in-run. Regenerate with: cargo run --release -p skippub-bench --bin bench_faults_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"config\": {{\"pubs\": {}, \"budget\": {}, \"heavy_max_n\": {}, \"smoke\": {}}},",
        a.pubs, a.budget, a.heavy_max_n, a.smoke
    );
    json.push_str("  \"determinism\": true,\n");
    json.push_str("  \"deterministic_across_thread_counts\": true,\n");
    json.push_str("  \"oracle_fault_storm_ok\": true,\n");
    json.push_str("  \"loss_sweep\": [\n");
    for (i, r) in loss_rows.iter().enumerate() {
        let clean = loss_rows
            .iter()
            .find(|c| c.n == r.n && c.drop == 0.0)
            .map(|c| c.rounds.max(1))
            .unwrap_or(1);
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"drop\": {:.2}, \"rounds_to_converge\": {}, \"slowdown_vs_clean\": {:.2}, \"dropped_by_fault\": {}, \"wall_secs\": {:.4}}}{}",
            r.n,
            r.drop,
            r.rounds,
            r.rounds as f64 / clean as f64,
            r.dropped_by_fault,
            r.wall_secs,
            if i + 1 == loss_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"loss_skipped\": [\n");
    for (i, (n, drop)) in loss_skipped.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"drop\": {:.2}, \"reason\": \"does not converge within the {}-round budget: at this diameter a {:.0}% per-link loss starves the repair flood (n <= {} converges at the same rate)\"}}{}",
            n,
            drop,
            a.budget,
            drop * 100.0,
            a.heavy_max_n,
            if i + 1 == loss_skipped.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"partition_heal\": [\n");
    for (i, r) in heal_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"severed\": {}, \"window_rounds\": {}, \"settle_rounds_legit\": {}, \"settle_rounds_pubs\": {}, \"dropped_by_fault\": {}, \"wall_secs\": {:.4}}}{}",
            r.n,
            r.severed,
            r.window_rounds,
            r.settle_rounds_legit,
            r.settle_rounds_pubs,
            r.dropped_by_fault,
            r.wall_secs,
            if i + 1 == heal_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"note\": \"determinism, deterministic_across_thread_counts (fault-storm-mix on the sharded backend at 1/2/4 worker threads: identical fingerprints and stats), and oracle_fault_storm_ok are asserted in-run (a violation aborts before any JSON is written). slowdown_vs_clean is rounds_to_converge over the same-n drop=0 row; the column grows monotonically with the drop rate - light loss is absorbed nearly for free, heavy loss hits a sharp knee where retransmission redundancy stops compensating, and loss_skipped records the cells where it becomes outright divergence (an honest cliff, not a measurement gap). The partition-heal settle counts start at the heal, so window_rounds is excluded.\"\n");
    json.push_str("}\n");

    std::fs::write(&a.out, &json).expect("write BENCH_faults.json");
    eprintln!("wrote {}", a.out);
    print!("{json}");
}
