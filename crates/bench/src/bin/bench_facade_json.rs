//! Emits `BENCH_facade.json`: the committed perf point proving the
//! `PubSub` facade layer costs (well) under 2% over driving
//! `SkipRingSim` directly.
//!
//! Both sides run the identical full-protocol legitimate world from the
//! same seed — the measured delta is one dynamic dispatch per round.
//! Measurement: both systems advance in lockstep through small
//! alternating round blocks, and each side's rate is taken from its
//! fastest block (min-of filtering). Interleaving at block granularity
//! cancels machine drift (thermal/noisy-neighbour effects that dwarf a
//! vtable call), and the lockstep keeps both sides at the same point of
//! the state trajectory when compared.
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_facade_json [-- out.json]
//! ```

use skippub_bench::facade::{direct_system, facade_system, SEED};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    mode: &'static str,
    n: usize,
    rounds: u64,
    best_ms: f64,
    rounds_per_sec: f64,
}

/// Alternating blocks per side.
const BLOCKS: u64 = 60;

fn block_rounds_for(n: usize) -> u64 {
    if n >= 10_000 {
        4
    } else {
        25
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_facade.json".to_string());
    let mut rows: Vec<Row> = Vec::new();
    for n in [1_000usize, 10_000] {
        eprintln!("timing n={n} ...");
        let block = block_rounds_for(n);
        let mut sim = direct_system(n);
        let mut ps = facade_system(n);
        let mut best_direct = f64::INFINITY;
        let mut best_facade = f64::INFINITY;
        for b in 0..BLOCKS {
            // Alternate which side goes first so periodic background
            // load cannot systematically tax one side.
            let mut time_direct = || {
                let t0 = Instant::now();
                for _ in 0..block {
                    sim.run_round();
                }
                t0.elapsed().as_secs_f64()
            };
            if b % 2 == 0 {
                best_direct = best_direct.min(time_direct());
            }
            let t0 = Instant::now();
            for _ in 0..block {
                ps.step();
            }
            best_facade = best_facade.min(t0.elapsed().as_secs_f64());
            if b % 2 == 1 {
                best_direct = best_direct.min(time_direct());
            }
        }
        for (mode, secs) in [("direct", best_direct), ("facade", best_facade)] {
            rows.push(Row {
                mode,
                n,
                rounds: block,
                best_ms: secs * 1e3,
                rounds_per_sec: block as f64 / secs,
            });
        }
    }

    let overhead = |n: usize| -> f64 {
        let rate = |mode: &str| {
            rows.iter()
                .find(|r| r.mode == mode && r.n == n)
                .map(|r| r.rounds_per_sec)
                .unwrap_or(f64::NAN)
        };
        (rate("direct") / rate("facade") - 1.0) * 100.0
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/facade/v1\",\n");
    json.push_str("  \"description\": \"PubSub facade overhead: identical full-protocol legitimate world (ProtocolConfig::default) driven via SkipRingSim::run_round (direct) vs Box<dyn PubSub>::step (facade). Regenerate with: cargo run --release -p skippub-bench --bin bench_facade_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"blocks_per_side\": {BLOCKS},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"n\": {}, \"block_rounds\": {}, \"best_block_ms\": {:.2}, \"rounds_per_sec\": {:.1}}}{}",
            r.mode,
            r.n,
            r.rounds,
            r.best_ms,
            r.rounds_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"facade_overhead_pct\": {\n");
    let _ = write!(
        json,
        "    \"n=1000\": {:.2},\n    \"n=10000\": {:.2}\n",
        overhead(1_000),
        overhead(10_000)
    );
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_facade.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
