//! Emits `BENCH_scenarios.json`: scenario-engine throughput — one
//! steady-state-shaped workload (warm population, constant publish load,
//! fixed rounds) executed end to end through the declarative scenario
//! engine on each deterministic-schedule backend (sim, multi-topic,
//! sharded; chaos is excluded — its budget-multiplied recovery horizons
//! would measure the chaos scheduler, not the engine).
//!
//! The measured number is *engine* rounds/sec: schedule compilation, op
//! application through the `PubSub` facade, the per-round step, and the
//! final settle/drain — i.e. what a scenario sweep actually costs, not
//! just the inner simulator loop (that number lives in
//! `BENCH_sim.json`). Min-of-repeats filtering, same methodology as the
//! other emitters.
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_scenarios_json [-- out.json]
//! ```

use skippub_core::BackendKind;
use skippub_harness::scenario::{self, ScenarioSpec, Stop};
use std::fmt::Write as _;
use std::time::Instant;

/// Fixed seed, committed alongside the results.
const SEED: u64 = 0xBE5C;

/// Workload scale.
const POPULATION: usize = 200;
const ROUNDS: u64 = 400;

/// Timing repeats per backend (fastest run is reported).
const REPEATS: usize = 5;

fn spec() -> ScenarioSpec {
    ScenarioSpec::new("bench-steady", SEED)
        .population(POPULATION)
        .publishers(8)
        .publish_prob(0.25)
        .rounds(ROUNDS)
        .stop(Stop::FixedRounds)
        .settle(2_000)
}

struct Row {
    backend: &'static str,
    steps: u64,
    best_s: f64,
    rounds_per_sec: f64,
    delivered_fingerprint: String,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scenarios.json".to_string());
    let spec = spec();
    let mut rows: Vec<Row> = Vec::new();
    for kind in [BackendKind::Sim, BackendKind::MultiTopic, BackendKind::Sharded] {
        eprintln!("timing {} ...", kind.name());
        let mut best = f64::INFINITY;
        let mut kept = None;
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            let out = scenario::run_spec(&spec, kind).expect("supported");
            let dt = t0.elapsed().as_secs_f64();
            assert!(out.report.ok(), "bench workload failed: {}", out.report.to_json());
            if dt < best {
                best = dt;
                kept = Some(out);
            }
        }
        let out = kept.expect("at least one repeat");
        let steps = out.report.ops.steps;
        rows.push(Row {
            backend: kind.name(),
            steps,
            best_s: best,
            rounds_per_sec: steps as f64 / best,
            delivered_fingerprint: out.report.delivered_fingerprint.clone(),
        });
    }
    // Conformance sanity: the benchmark is only meaningful if every
    // backend did the same logical work.
    assert!(
        rows.windows(2)
            .all(|w| w[0].delivered_fingerprint == w[1].delivered_fingerprint),
        "backends delivered different sets under the bench workload"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/scenarios/v1\",\n");
    json.push_str("  \"description\": \"Scenario-engine throughput: the bench-steady spec (200 subscribers, 8 publishers at p=0.25, 400 scheduled rounds, FixedRounds + settle) executed end to end via scenario::run_spec on each in-process backend. Regenerate with: cargo run --release -p skippub-bench --bin bench_scenarios_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"population\": {POPULATION},");
    let _ = writeln!(json, "  \"scheduled_rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"total_steps\": {}, \"best_s\": {:.4}, \"rounds_per_sec\": {:.1}, \"delivered_fingerprint\": \"{}\"}}{}",
            r.backend,
            r.steps,
            r.best_s,
            r.rounds_per_sec,
            r.delivered_fingerprint,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_scenarios.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
