//! Emits `BENCH_snapshot.json`: the checkpoint/restore subsystem's two
//! headline numbers.
//!
//! **Batched-commit leg**: a Zipf-fanout publication storm (author
//! popularity Zipf-distributed, duplicates included — the flash-crowd
//! shape) applied to a [`PatriciaTrie`] two ways: per-insert (each
//! `insert` eagerly rehashes the root path, the pre-PR behaviour) and
//! batched ([`TrieBatch::apply`] marks dirty nodes and settles each
//! exactly once per commit). Same publication stream, min-of-blocks;
//! `batched_matches_per_insert: true` means the two final root hashes
//! (and lengths) agreed in *every* block — a divergence aborts before
//! any JSON is written. CI runs this emitter in smoke mode so the flag
//! cannot rot.
//!
//! **Snapshot round-trip leg**: a legitimate `n`-subscriber world with a
//! converged per-member publication working set is checkpointed through
//! the facade (`save_snapshot` → token text → `pubsub::restore`) at
//! n = 10k and 100k. Records serialized size and save/parse+restore
//! wall-clock; exactness is asserted in-run by re-saving the restored
//! backend and requiring byte-identical text (the same contract
//! `tests/facade_conformance.rs` pins).
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_snapshot_json \
//!     [-- --storm 30000 --commits 64 --blocks 5 \
//!         --sizes 10000,100000 --pubs-per-member 24 \
//!         --out BENCH_snapshot.json] [--smoke]
//! ```

use skippub_core::pubsub::{self, SimBackend};
use skippub_core::scenarios::legit_world;
use skippub_core::{Actor, ProtocolConfig, PubSub};
use skippub_trie::{MemoryTrieDb, PatriciaTrie, Publication, TrieBatch};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0x5A4B_17CE;

struct Args {
    storm: usize,
    commits: usize,
    blocks: usize,
    sizes: Vec<usize>,
    pubs_per_member: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        storm: 30_000,
        commits: 64,
        blocks: 5,
        sizes: vec![10_000, 100_000],
        pubs_per_member: 24,
        out: "BENCH_snapshot.json".to_string(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--storm" => args.storm = value().parse().expect("--storm"),
            "--commits" => args.commits = value().parse().expect("--commits"),
            "--blocks" => args.blocks = value().parse().expect("--blocks"),
            "--sizes" => {
                args.sizes = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect();
            }
            "--pubs-per-member" => args.pubs_per_member = value().parse().expect("--pubs-per-member"),
            "--out" => args.out = value(),
            "--smoke" => {
                args.smoke = true;
                i -= 1;
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    if args.smoke {
        args.storm = 2_000;
        args.commits = 8;
        args.blocks = 2;
        args.sizes = vec![200];
        args.pubs_per_member = 6;
    }
    args
}

/// splitmix64 — deterministic stream, no RNG dependency.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Zipf-fanout storm: `count` publications whose authors follow a
/// Zipf(s=1) popularity law over `authors` ranks. Hot authors repeat
/// payload sequence numbers across the stream, so the storm carries
/// genuine duplicates — both insert paths must reject them identically.
fn zipf_storm(count: usize, authors: usize) -> Vec<Publication> {
    let harmonic: f64 = (1..=authors).map(|r| 1.0 / r as f64).sum();
    let mut state = SEED;
    let mut seq = vec![0u64; authors];
    let mut pubs = Vec::with_capacity(count);
    for _ in 0..count {
        let u = (mix(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * harmonic;
        let mut acc = 0.0;
        let mut rank = authors;
        for r in 1..=authors {
            acc += 1.0 / r as f64;
            if acc >= u {
                rank = r;
                break;
            }
        }
        // ~3% of the stream re-publishes an earlier sequence number of
        // the same author: an exact duplicate publication.
        let dup = seq[rank - 1] > 0 && mix(&mut state).is_multiple_of(32);
        let s = if dup {
            mix(&mut state) % seq[rank - 1]
        } else {
            seq[rank - 1] += 1;
            seq[rank - 1] - 1
        };
        pubs.push(Publication::new(
            rank as u64,
            format!("author {rank} update {s}").into_bytes(),
        ));
    }
    pubs
}

struct StormRow {
    storm: usize,
    commits: usize,
    unique: usize,
    per_insert_secs: f64,
    batched_secs: f64,
    db_nodes: usize,
}

/// Times the same storm through both storage-backed paths,
/// min-of-blocks, asserting equivalence every block:
///
/// * **per-insert**: `insert` (eager root-path rehash) followed by
///   `commit_to` after *every* publication — the behaviour of a
///   storage-backed trie without a batch layer, which must keep the
///   node store current as it goes;
/// * **batched**: `TrieBatch::apply` per chunk (each dirty node hashed
///   once per commit) followed by one `commit_to` per chunk.
///
/// Both paths must end on the same root hash, and reopening each store
/// from that root must reproduce the trie.
fn measure_storm(a: &Args) -> StormRow {
    let pubs = zipf_storm(a.storm, 128);
    let chunk = pubs.len().div_ceil(a.commits);
    let mut per_insert_best = f64::INFINITY;
    let mut batched_best = f64::INFINITY;
    let mut unique = 0;
    let mut db_nodes = 0;
    for b in 0..a.blocks {
        eprintln!("[storm] block {}/{} ...", b + 1, a.blocks);
        let t0 = Instant::now();
        let mut eager = PatriciaTrie::new();
        let mut eager_db = MemoryTrieDb::new();
        for p in &pubs {
            eager.insert(p.clone());
            eager.commit_to(&mut eager_db);
        }
        per_insert_best = per_insert_best.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let mut deferred = PatriciaTrie::new();
        let mut deferred_db = MemoryTrieDb::new();
        let mut inserted = 0;
        for c in pubs.chunks(chunk) {
            let batch: TrieBatch = c.iter().cloned().collect();
            inserted += batch.apply(&mut deferred);
            deferred.commit_to(&mut deferred_db);
        }
        batched_best = batched_best.min(t0.elapsed().as_secs_f64());

        let root = eager.root_hash();
        assert_eq!(
            root,
            deferred.root_hash(),
            "batched commit diverged from per-insert hashing"
        );
        assert_eq!(eager.len(), deferred.len());
        assert_eq!(inserted, eager.len());
        // Both stores must reproduce the trie from the shared root
        // (the per-insert store additionally holds every intermediate
        // spine — the write amplification the batch layer removes).
        for db in [&eager_db, &deferred_db] {
            let reopened = PatriciaTrie::open_from(db, root).expect("store is complete");
            assert_eq!(reopened.root_hash(), root);
            assert_eq!(reopened.len(), deferred.len());
        }
        unique = inserted;
        db_nodes = deferred_db.iter().count();
    }
    StormRow {
        storm: a.storm,
        commits: a.commits,
        unique,
        per_insert_secs: per_insert_best,
        batched_secs: batched_best,
        db_nodes,
    }
}

struct SnapRow {
    n: usize,
    stored_pubs: usize,
    bytes: usize,
    save_secs: f64,
    restore_secs: f64,
}

/// Builds a legitimate `n`-subscriber backend whose members all hold
/// the same converged working set, then times facade checkpoint and
/// restore, asserting byte-exactness in-run.
fn measure_snapshot(n: usize, pubs_per_member: usize) -> SnapRow {
    eprintln!("[snapshot] building legitimate world (n={n}) ...");
    let cfg = ProtocolConfig::default();
    let world = legit_world(n, SEED, cfg);
    let mut ps = SimBackend::from_world(world, cfg);
    // The converged working set, written directly into every member's
    // store (flooding 100k members is a scenario, not a serializer
    // benchmark). Identical tries also exercise the node-store dedup:
    // converged replicas serialize their nodes once.
    let working: Vec<Publication> = (0..pubs_per_member)
        .map(|k| Publication::new(1 + (k % n) as u64, format!("working set item {k}").into_bytes()))
        .collect();
    let ids = ps.sim().subscriber_ids();
    for &id in &ids {
        let world = ps.sim_mut().world_mut();
        if let Some(s) = world.node_mut(id).and_then(Actor::subscriber_mut) {
            for p in &working {
                s.trie.insert(p.clone());
            }
        }
    }
    let stored_pubs = pubs_per_member * ids.len();

    eprintln!("[snapshot] checkpointing ...");
    let t0 = Instant::now();
    let snap = ps.save_snapshot().expect("sim backend snapshots");
    let save_secs = t0.elapsed().as_secs_f64();
    let text = snap.as_text().to_string();
    let bytes = snap.byte_len();

    eprintln!("[snapshot] restoring ...");
    let t0 = Instant::now();
    let reparsed = pubsub::BackendSnapshot::from_text(&text).expect("parses back");
    let restored = pubsub::restore(&reparsed).expect("restores");
    let restore_secs = t0.elapsed().as_secs_f64();

    let again = restored.save_snapshot().expect("restored backend snapshots");
    assert_eq!(
        again.as_text(),
        text,
        "restore must be byte-exact (n={n})"
    );
    SnapRow {
        n,
        stored_pubs,
        bytes,
        save_secs,
        restore_secs,
    }
}

fn main() {
    let a = parse_args();
    let storm = measure_storm(&a);
    let snaps: Vec<SnapRow> = a
        .sizes
        .iter()
        .map(|&n| measure_snapshot(n, a.pubs_per_member))
        .collect();

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/snapshot/v1\",\n");
    json.push_str("  \"description\": \"Checkpoint/restore subsystem: (1) Zipf-fanout publication storm through a storage-backed PatriciaTrie, per-insert (eager root-path rehash + commit_to the TrieDb after every publication) vs batched (TrieBatch::apply hashes each dirty node once per commit, one commit_to per chunk), min-of-blocks, root-hash equality and open_from round-trips asserted every block; (2) facade save_snapshot -> token text -> pubsub::restore round trip on a legitimate n-subscriber world with a converged working set, byte-exactness asserted in-run. Regenerate with: cargo run --release -p skippub-bench --bin bench_snapshot_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"config\": {{\"storm\": {}, \"commits\": {}, \"blocks\": {}, \"pubs_per_member\": {}, \"smoke\": {}}},",
        a.storm, a.commits, a.blocks, a.pubs_per_member, a.smoke
    );
    json.push_str("  \"batched_matches_per_insert\": true,\n");
    let _ = writeln!(
        json,
        "  \"storm\": {{\"publications\": {}, \"unique\": {}, \"commits\": {}, \"db_nodes\": {}, \"per_insert_secs\": {:.4}, \"batched_secs\": {:.4}, \"speedup\": {:.2}}},",
        storm.storm,
        storm.unique,
        storm.commits,
        storm.db_nodes,
        storm.per_insert_secs,
        storm.batched_secs,
        storm.per_insert_secs / storm.batched_secs
    );
    json.push_str("  \"round_trip\": [\n");
    for (i, r) in snaps.iter().enumerate() {
        let mb = r.bytes as f64 / (1024.0 * 1024.0);
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"stored_pubs\": {}, \"bytes\": {}, \"save_secs\": {:.4}, \"restore_secs\": {:.4}, \"save_mb_per_sec\": {:.1}, \"restore_mb_per_sec\": {:.1}}}{}",
            r.n,
            r.stored_pubs,
            r.bytes,
            r.save_secs,
            r.restore_secs,
            mb / r.save_secs,
            mb / r.restore_secs,
            if i + 1 == snaps.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"note\": \"batched_matches_per_insert is asserted in-run every block; restore byte-exactness is asserted in-run at every n (a divergence aborts before any JSON is written). The storm carries ~3% exact duplicates, which both insert paths must reject identically. Round-trip members share one converged working set written directly into their stores, so the node-store section stores each trie node once across all replicas.\"\n");
    json.push_str("}\n");

    std::fs::write(&a.out, &json).expect("write BENCH_snapshot.json");
    eprintln!("wrote {}", a.out);
    print!("{json}");
}
