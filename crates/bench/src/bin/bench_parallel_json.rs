//! Emits `BENCH_parallel.json`: round throughput of the partitioned
//! sharded backend under 1, 2, 4, and 8 worker threads, against the
//! monolithic single-world baseline (every shard supervisor and every
//! client in one serial `World<MultiActor>` — exactly how the sharded
//! backend executed before it was partitioned).
//!
//! Honesty notes, baked into the emitted JSON:
//!
//! * `cores` records `std::thread::available_parallelism()` — the
//!   speedup of `threads=k` over `threads=1` is bounded by it. On a
//!   single-core container the executor can only demonstrate
//!   *determinism* (also checked here: aggregated metrics must be
//!   byte-identical across every thread count); the scaling headroom
//!   shows on multi-core hardware.
//! * Each timed measurement drives the backend in one
//!   `run_rounds(block)` batch (one worker-scope spawn per block), the
//!   intended bulk-stepping mode; `stepped_rounds_per_sec` additionally
//!   reports per-`step()` driving (one spawn per round) so the
//!   fork-join overhead is visible rather than hidden.
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_parallel_json \
//!     [-- --n 10000 --topics 64 --shards 8 --rounds 60 --out BENCH_parallel.json]
//! ```

use skippub_core::pubsub::{PubSub, ShardedBackend, SystemBuilder, SHARD_SUPERVISOR_BASE};
use skippub_core::sharding::SupervisorShards;
use skippub_core::topics::{MultiActor, TopicId};
use skippub_core::ProtocolConfig;
use skippub_sim::{Metrics, NodeId, World};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0x9A7A11E1;

struct Args {
    n: u64,
    topics: u32,
    shards: usize,
    rounds: u64,
    warmup: u64,
    threads: Vec<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 10_000,
        topics: 64,
        shards: 8,
        rounds: 240,
        warmup: 10,
        threads: vec![1, 2, 4, 8],
        out: "BENCH_parallel.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--n" => args.n = value().parse().expect("--n"),
            "--topics" => args.topics = value().parse().expect("--topics"),
            "--shards" => args.shards = value().parse().expect("--shards"),
            "--rounds" => args.rounds = value().parse().expect("--rounds"),
            "--warmup" => args.warmup = value().parse().expect("--warmup"),
            "--threads" => {
                args.threads = value()
                    .split(',')
                    .map(|t| t.parse().expect("--threads list"))
                    .collect()
            }
            "--out" => args.out = value(),
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }
    args
}

/// The partitioned sharded backend, populated: client `i` subscribes to
/// topic `i mod topics` (the same population for every thread count, so
/// runs are comparable and must be byte-identical).
fn sharded_system(a: &Args, threads: usize) -> ShardedBackend {
    let mut ps = SystemBuilder::new(SEED)
        .topics(a.topics)
        .shards(a.shards)
        .threads(threads)
        .build_sharded();
    for i in 0..a.n {
        ps.subscribe(TopicId((i % a.topics as u64) as u32));
    }
    ps.run_rounds(a.warmup);
    ps
}

/// The monolithic baseline: identical supervisors, clients, and topic
/// routing, but every node in one serial `World` — the pre-partitioning
/// execution of the sharded backend.
fn monolithic_system(a: &Args) -> World<MultiActor> {
    let sup_ids: Vec<NodeId> = (0..a.shards as u64)
        .map(|i| NodeId(SHARD_SUPERVISOR_BASE + i))
        .collect();
    let shards = SupervisorShards::new(&sup_ids, 64);
    let mut world = World::new(SEED);
    for &s in &sup_ids {
        world.add_node(s, MultiActor::new_supervisor(s));
    }
    for i in 0..a.n {
        let id = NodeId(i + 1);
        let topic = TopicId((i % a.topics as u64) as u32);
        let mut client = MultiActor::new_client(id, sup_ids[0], ProtocolConfig::default());
        client.join_topic_at(topic, shards.supervisor_for(topic));
        world.add_node(id, client);
    }
    for _ in 0..a.warmup {
        world.run_round();
    }
    world
}

struct Row {
    threads: usize,
    batched_rps: f64,
    stepped_rps: f64,
    metrics: Metrics,
    locks_per_round: f64,
}

/// A deliberately skewed population for the rebalancing demo: client
/// `i` subscribes to topic `trailing_zeros(i+1)` (half the clients on
/// topic 0, a quarter on topic 1, …), so one shard starts with most of
/// the subscriber work. A handful of fixed publishers flood their
/// topics every round to keep delivered-work traffic flowing.
fn skewed_system(a: &Args, rebalance_every: u64) -> (ShardedBackend, Vec<(NodeId, TopicId)>) {
    const SKEW_CLIENTS: u64 = 512;
    let mut ps = SystemBuilder::new(SEED ^ 0x5EED)
        .topics(a.topics)
        .shards(a.shards)
        .rebalance_every(rebalance_every)
        .build_sharded();
    let mut publishers = Vec::new();
    for i in 0..SKEW_CLIENTS {
        let topic = TopicId((i + 1).trailing_zeros().min(a.topics - 1));
        let id = ps.subscribe(topic);
        if i < 6 {
            publishers.push((id, topic));
        }
    }
    ps.run_rounds(a.warmup);
    (ps, publishers)
}

/// Drives a skewed system `rounds` rounds with per-round publishes and
/// returns `(delivered_imbalance, lock_acquisitions_per_round,
/// rebalances)`.
fn run_skewed(a: &Args, rebalance_every: u64, rounds: u64) -> (f64, f64, u64) {
    let (mut ps, publishers) = skewed_system(a, rebalance_every);
    for r in 0..rounds {
        for &(id, topic) in &publishers {
            ps.publish(id, topic, vec![r as u8]);
        }
        ps.step();
    }
    let stats = ps.stats();
    let total_rounds = a.warmup + rounds;
    (
        stats.delivered_imbalance(),
        stats.lock_acquisitions() as f64 / total_rounds as f64,
        ps.rebalances(),
    )
}

/// Timed blocks per system: every system is timed in the same
/// round-robin order each block, and its rate is the best block
/// (min-of-blocks filtering, the repo's standard methodology) — drift
/// from background load cancels instead of crediting whichever system
/// happened to run in a quiet moment.
const BLOCKS: u64 = 24;

fn main() {
    let a = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let block_rounds = (a.rounds / BLOCKS).max(1);

    eprintln!("populating monolithic baseline + {} partitioned systems ...", a.threads.len());
    let mut mono = monolithic_system(&a);
    let mut systems: Vec<(usize, ShardedBackend)> = a
        .threads
        .iter()
        .map(|&t| (t, sharded_system(&a, t)))
        .collect();

    // Interleaved measurement (min-of-blocks): each block times the
    // monolithic baseline, then every partitioned system both batched
    // (`run_rounds(block)`, one worker-scope spawn per block) and
    // stepped (`step()` per round, one spawn each — the fork-join
    // overhead of unbatched driving stays visible). Interleaving keeps
    // every measured number at the same point of the protocol's state
    // trajectory, so early-stabilization traffic decay cannot favour
    // whichever mode happened to be measured later.
    let mut mono_best = f64::INFINITY;
    let mut batched_best: Vec<f64> = vec![f64::INFINITY; systems.len()];
    let mut stepped_best: Vec<f64> = vec![f64::INFINITY; systems.len()];
    for b in 0..BLOCKS {
        eprintln!("block {}/{BLOCKS} ...", b + 1);
        let t0 = Instant::now();
        for _ in 0..block_rounds {
            mono.run_round();
        }
        mono_best = mono_best.min(t0.elapsed().as_secs_f64());
        // Untimed second block: the partitioned systems advance two
        // blocks per iteration (batched + stepped), so the baseline
        // must too, or it would trail them on the state trajectory.
        for _ in 0..block_rounds {
            mono.run_round();
        }
        for (i, (_, ps)) in systems.iter_mut().enumerate() {
            // Alternate which mode gets the earlier (more trafficked)
            // of the two consecutive blocks, so the protocol's traffic
            // decay along the trajectory cannot systematically favour
            // one mode.
            let batched = |ps: &mut ShardedBackend| {
                let t0 = Instant::now();
                ps.run_rounds(block_rounds);
                t0.elapsed().as_secs_f64()
            };
            let stepped = |ps: &mut ShardedBackend| {
                let t0 = Instant::now();
                for _ in 0..block_rounds {
                    ps.step();
                }
                t0.elapsed().as_secs_f64()
            };
            if b % 2 == 0 {
                batched_best[i] = batched_best[i].min(batched(ps));
                stepped_best[i] = stepped_best[i].min(stepped(ps));
            } else {
                stepped_best[i] = stepped_best[i].min(stepped(ps));
                batched_best[i] = batched_best[i].min(batched(ps));
            }
        }
    }
    let mono_rps = block_rounds as f64 / mono_best;

    // Every measured system stepped warmup + 2×BLOCKS×block_rounds
    // rounds in total (batched + stepped block per iteration).
    let rounds_total = a.warmup + 2 * BLOCKS * block_rounds;
    let rows: Vec<Row> = systems
        .iter()
        .enumerate()
        .map(|(i, (threads, ps))| Row {
            threads: *threads,
            batched_rps: block_rounds as f64 / batched_best[i],
            stepped_rps: block_rounds as f64 / stepped_best[i],
            metrics: ps.metrics(),
            locks_per_round: ps.stats().lock_acquisitions() as f64 / rounds_total as f64,
        })
        .collect();

    // Comms batching contract for round-driven execution: one drain per
    // partition plus at most one mailbox-lock acquisition per ordered
    // partition pair (flushes, self excluded — local sends bypass the
    // mailbox) — ≤ partitions·(partitions−1) + partitions = partitions²
    // per round. A per-envelope locking regression blows well past
    // this. (Facade operations like `publish` flush their outbox under
    // one extra batched lock per destination; the measured rows here
    // are purely round-driven, so the p² bound applies directly.)
    let lock_bound = (a.shards * a.shards) as f64;
    for r in &rows {
        assert!(
            r.locks_per_round <= lock_bound,
            "threads={} acquired {:.2} locks/round > partitions² = {lock_bound}",
            r.threads,
            r.locks_per_round
        );
    }

    eprintln!("rebalancing demo (skewed population) ...");
    let skew_rounds = 60;
    let (imb_off, locks_off, _) = run_skewed(&a, 0, skew_rounds);
    let (imb_on, locks_on, rebalances) = run_skewed(&a, 5, skew_rounds);

    // Determinism: every thread count must have produced the identical
    // execution (the measured worlds all stepped warmup + 2×rounds).
    let deterministic = rows.windows(2).all(|w| w[0].metrics == w[1].metrics);
    assert!(
        deterministic,
        "thread counts diverged — the executor's determinism contract is broken"
    );

    // `None` when the --threads list omits 1: the field is emitted as
    // JSON null then, never as an unparseable bare NaN.
    let base_rps = rows.iter().find(|r| r.threads == 1).map(|r| r.batched_rps);

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/parallel/v1\",\n");
    json.push_str("  \"description\": \"Partitioned sharded backend round throughput vs worker threads, against the monolithic single-world serial baseline (the pre-partitioning execution). Regenerate with: cargo run --release -p skippub-bench --bin bench_parallel_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {}, \"topics\": {}, \"shards\": {}, \"warmup_rounds\": {}, \"block_rounds\": {block_rounds}, \"blocks\": {BLOCKS}}},",
        a.n, a.topics, a.shards, a.warmup
    );
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"deterministic_across_thread_counts\": {deterministic},");
    let _ = writeln!(
        json,
        "  \"monolithic_serial_rounds_per_sec\": {mono_rps:.2},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let vs_base = match base_rps {
            Some(base) => format!("{:.2}", r.batched_rps / base),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"batched_rounds_per_sec\": {:.2}, \"stepped_rounds_per_sec\": {:.2}, \"speedup_vs_threads1\": {vs_base}, \"speedup_vs_monolithic\": {:.2}, \"lock_acquisitions_per_round\": {:.2}}}{}",
            r.threads,
            r.batched_rps,
            r.stepped_rps,
            r.batched_rps / mono_rps,
            r.locks_per_round,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"lock_acquisitions_per_round_bound\": {},",
        a.shards * a.shards
    );
    let _ = writeln!(
        json,
        "  \"rebalancing\": {{\"workload\": \"512 clients, topic = trailing_zeros(i+1) (half on topic 0), 6 publishers, {skew_rounds} rounds, cadence 5\", \"delivered_imbalance_off\": {imb_off:.4}, \"delivered_imbalance_on\": {imb_on:.4}, \"improvement\": {:.2}, \"rebalances\": {rebalances}, \"lock_acquisitions_per_round_off\": {locks_off:.2}, \"lock_acquisitions_per_round_on\": {locks_on:.2}, \"lock_note\": \"this workload adds 6 facade publishes per round, each flushing its outbox under one batched lock per destination — the round-loop bound stays partitions\\u00b2\"}},",
        imb_off / imb_on
    );
    let _ = writeln!(
        json,
        "  \"note\": \"speedup_vs_threads1 is bounded by cores ({cores} here — on this single-core container it cannot exceed 1.0 and thread overhead makes it slightly below; the scaling headroom only shows on multi-core hardware); determinism (byte-identical metrics for every thread count) and the lock/imbalance counters are the machine-independent claims. speedup_vs_monolithic compares against the old single-world serial execution on the same population.\""
    );
    json.push_str("}\n");

    std::fs::write(&a.out, &json).expect("write BENCH_parallel.json");
    eprintln!("wrote {}", a.out);
    print!("{json}");
}
