//! Emits `BENCH_scale.json`: the 10k → 100k → 1M scale sweep behind the
//! "break the 10k barrier" work — inline bit strings, interned payloads,
//! struct-of-arrays slab state and bounded delivery budgets.
//!
//! Two legs per population `n`:
//!
//! **Cold Zipf leg** (sharded backend, up to `--cold-max`, default
//! 100k): cold-joins `n` subscribers whose topics are drawn from a Zipf
//! distribution (hot topics are large, the tail is thin — the realistic
//! pub-sub shape) and records `stabilization_rounds` for the whole mass
//! join to reach legitimacy. Empirically this grows ~linearly in `n`:
//! randomized supervisor probing (`ProbeMode::Randomized`) spreads the
//! introductions out, so the cold leg is capped and the cap is recorded
//! in the artifact (`cold_skipped`) rather than silently dropped.
//!
//! **Warm leg** (single-topic core, every `n` including 1M): builds a
//! fully legitimate `n`-node ring directly (`scenarios::legit_world` —
//! one ring of size `n` is *harder* than any Zipf split of the same
//! population) and records:
//!
//! * `steady_rounds_per_sec` — maintenance-round throughput
//!   (timeouts, probes, ring repair, anti-entropy);
//! * `join_stabilization_rounds` — rounds for a 64-node join batch to
//!   be absorbed back to legitimacy (the production event; grows far
//!   slower than the cold mass join);
//! * `peak_in_flight` — the engine's high-water in-flight message
//!   gauge;
//! * `alloc_high_water_mb` — the RSS proxy: high-water of *live* heap
//!   bytes tracked by a counting global allocator (see `methodology`
//!   in the JSON header);
//! * `bitstr_spills_steady` — `BitStr` heap spills during the timed
//!   steady window (0 on the inline path: labels and 64-bit keys fit
//!   the in-struct representation).
//!
//! The same sweep sizes are priced for the comparison systems
//! (broker / ringcast / chord / skipgraph — topology/cost models, same
//! honesty as the E9/E10 benches): the broker's per-publication fan-out
//! and ringcast's broadcast steps degrade linearly with the hot topic
//! while chord/skipgraph routes and skippub stabilization stay
//! logarithmic.
//!
//! Budgeted-vs-unbounded equivalence is asserted **in-run** at a small
//! population before any JSON is written: a serialized-join scenario is
//! executed unbounded and with per-round delivery budgets 1 and 4, and
//! the final checker-snapshot digests plus every subscriber's delivered
//! set must match exactly (`budget_digest_match` in the artifact).
//!
//! ```text
//! cargo run --release -p skippub-bench --bin bench_scale_json \
//!     [-- --sizes 10000,100000,1000000 --topics 64 --shards 8 \
//!         --steady-rounds 6 --out BENCH_scale.json] [--smoke]
//! ```

use skippub_bits::{BitStr, Hash128};
use skippub_core::pubsub::{ShardedBackend, SimBackend, SystemBuilder};
use skippub_core::scenarios::legit_world;
use skippub_core::{ProtocolConfig, PubSub, TopicId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------
// Counting allocator: the RSS proxy. Tracks live heap bytes (allocated
// minus freed) and their high-water mark. Deterministic and comparable
// across runs, unlike OS RSS; understates true RSS (allocator slack,
// code, stacks are invisible to it).
// ---------------------------------------------------------------------

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

fn on_alloc(bytes: usize) {
    let now = LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

// SAFETY: delegates directly to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        on_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Resets the high-water mark to the current live-byte level, returning
/// the level: the sweep measures per-population deltas from here.
fn reset_peak() -> u64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

// ---------------------------------------------------------------------
// Arguments and the Zipf topic distribution.
// ---------------------------------------------------------------------

const SEED: u64 = 0x5CA1EB18;

struct Args {
    sizes: Vec<usize>,
    cold_max: usize,
    topics: u32,
    shards: usize,
    zipf_s: f64,
    steady_rounds: u64,
    warm_budget: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![10_000, 100_000, 1_000_000],
        cold_max: 100_000,
        topics: 64,
        shards: 8,
        zipf_s: 1.0,
        steady_rounds: 6,
        warm_budget: 50_000,
        out: "BENCH_scale.json".to_string(),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = || {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--sizes" => {
                args.sizes = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect();
                i += 1;
            }
            "--cold-max" => {
                args.cold_max = value().parse().expect("--cold-max");
                i += 1;
            }
            "--topics" => {
                args.topics = value().parse().expect("--topics");
                i += 1;
            }
            "--shards" => {
                args.shards = value().parse().expect("--shards");
                i += 1;
            }
            "--zipf-s" => {
                args.zipf_s = value().parse().expect("--zipf-s");
                i += 1;
            }
            "--steady-rounds" => {
                args.steady_rounds = value().parse().expect("--steady-rounds");
                i += 1;
            }
            "--warm-budget" => {
                args.warm_budget = value().parse().expect("--warm-budget");
                i += 1;
            }
            "--out" => {
                args.out = value();
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        // CI's fast path: one population, a couple of timed rounds —
        // enough to prove the plumbing (artifact, RSS gauge, budget
        // equivalence) without the full sweep's wall clock.
        args.sizes = vec![10_000];
        args.steady_rounds = 2;
    }
    args
}

/// splitmix64 — the repo's standard seedable scrambler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf(s) over `t` topics via inverse CDF: topic k (0-based) has
/// weight 1/(k+1)^s.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(t: u32, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(t as usize);
        let mut acc = 0.0;
        for k in 0..t {
            acc += 1.0 / f64::from(k + 1).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("at least one topic");
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, state: &mut u64) -> u32 {
        let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

// ---------------------------------------------------------------------
// The skippub sweep.
// ---------------------------------------------------------------------

struct ColdRow {
    n: usize,
    hot_topic_members: usize,
    stabilization_rounds: u64,
    steady_rounds_per_sec: f64,
    peak_in_flight: u64,
    alloc_high_water_mb: f64,
    bitstr_spills_steady: u64,
    sent_total: u64,
}

fn measure_cold(a: &Args, n: usize) -> ColdRow {
    let baseline = reset_peak();
    let zipf = Zipf::new(a.topics, a.zipf_s);
    let mut rng = SEED ^ n as u64;

    eprintln!("[skippub n={n}] cold mass-join ({} topics, Zipf s={}) ...", a.topics, a.zipf_s);
    let mut ps: ShardedBackend = SystemBuilder::new(SEED ^ n as u64)
        .topics(a.topics)
        .shards(a.shards)
        .build_sharded();
    let mut members = vec![0usize; a.topics as usize];
    for _ in 0..n {
        let t = zipf.sample(&mut rng);
        members[t as usize] += 1;
        ps.subscribe(TopicId(t));
    }
    let t0 = Instant::now();
    let (stabilization_rounds, ok) = ps.until_legit(a.warm_budget);
    assert!(ok, "n={n}: cold mass-join must stabilize within {} rounds", a.warm_budget);
    eprintln!(
        "[skippub n={n}] legitimate after {stabilization_rounds} rounds ({:.1}s)",
        t0.elapsed().as_secs_f64()
    );

    let spills_before = BitStr::heap_allocations();
    let t0 = Instant::now();
    for _ in 0..a.steady_rounds {
        ps.step();
    }
    let steady_secs = t0.elapsed().as_secs_f64();
    let bitstr_spills_steady = BitStr::heap_allocations() - spills_before;

    let stats = ps.stats();
    let peak_bytes = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline);
    let row = ColdRow {
        n,
        hot_topic_members: members.iter().copied().max().unwrap_or(0),
        stabilization_rounds,
        steady_rounds_per_sec: a.steady_rounds as f64 / steady_secs,
        peak_in_flight: stats.peak_in_flight,
        alloc_high_water_mb: peak_bytes as f64 / (1024.0 * 1024.0),
        bitstr_spills_steady,
        sent_total: stats.sent,
    };
    eprintln!(
        "[skippub n={n}] steady {:.2} rounds/s, peak in-flight {}, alloc high-water {:.1} MB, spills {}",
        row.steady_rounds_per_sec, row.peak_in_flight, row.alloc_high_water_mb, row.bitstr_spills_steady
    );
    row
}

struct WarmRow {
    n: usize,
    steady_rounds_per_sec: f64,
    join_stabilization_rounds: u64,
    peak_in_flight: u64,
    alloc_high_water_mb: f64,
    bitstr_spills_steady: u64,
    sent_total: u64,
}

/// The warm leg: a fully legitimate `n`-node single-topic ring built
/// directly, timed through steady maintenance rounds and a 64-node
/// join batch. This is the leg that reaches n = 1M: the cold Zipf mass
/// join's stabilization grows ~linearly with n (randomized supervisor
/// probing spreads introductions out), so cold 1M is hours of wall
/// clock, while warm 1M is seconds per round.
fn measure_warm(a: &Args, n: usize) -> WarmRow {
    let baseline = reset_peak();
    let cfg = ProtocolConfig::default();
    eprintln!("[warm n={n}] building legitimate world ...");
    let t0 = Instant::now();
    let mut ps = SimBackend::from_world(legit_world(n, SEED ^ n as u64, cfg), cfg);
    eprintln!("[warm n={n}] built in {:.1}s", t0.elapsed().as_secs_f64());

    // Let the first timeout wave and its probe responses settle so the
    // timed window is genuine steady state.
    ps.step();
    ps.step();

    let spills_before = BitStr::heap_allocations();
    let t0 = Instant::now();
    for _ in 0..a.steady_rounds {
        ps.step();
    }
    let steady_secs = t0.elapsed().as_secs_f64();
    let bitstr_spills_steady = BitStr::heap_allocations() - spills_before;

    // The production event: a batch of fresh joiners absorbed by a
    // legitimate network.
    let joiners = 64;
    for _ in 0..joiners {
        ps.subscribe(TopicId(0));
    }
    let (join_stabilization_rounds, ok) = ps.until_legit(a.warm_budget);
    assert!(
        ok,
        "warm n={n}: {joiners}-node join batch must be absorbed within {} rounds",
        a.warm_budget
    );

    let stats = ps.stats();
    let peak_bytes = PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline);
    let row = WarmRow {
        n,
        steady_rounds_per_sec: a.steady_rounds as f64 / steady_secs,
        join_stabilization_rounds,
        peak_in_flight: stats.peak_in_flight,
        alloc_high_water_mb: peak_bytes as f64 / (1024.0 * 1024.0),
        bitstr_spills_steady,
        sent_total: stats.sent,
    };
    eprintln!(
        "[warm n={n}] steady {:.2} rounds/s, join batch absorbed in {} rounds, peak in-flight {}, alloc high-water {:.1} MB, spills {}",
        row.steady_rounds_per_sec,
        row.join_stabilization_rounds,
        row.peak_in_flight,
        row.alloc_high_water_mb,
        row.bitstr_spills_steady
    );
    row
}

// ---------------------------------------------------------------------
// Baseline pricing at the same populations.
// ---------------------------------------------------------------------

struct BaselineRow {
    system: &'static str,
    n: usize,
    /// The metric that shows the scaling law (see `metric` in JSON).
    metric: &'static str,
    value: f64,
}

/// The hot topic's membership under the sweep's Zipf assignment —
/// recomputed standalone so baselines can be priced even for sizes
/// whose cold leg is skipped.
fn hot_topic_members(a: &Args, n: usize) -> usize {
    let zipf = Zipf::new(a.topics, a.zipf_s);
    let mut rng = SEED ^ n as u64;
    let mut members = vec![0usize; a.topics as usize];
    for _ in 0..n {
        members[zipf.sample(&mut rng) as usize] += 1;
    }
    members.into_iter().max().unwrap_or(0)
}

fn measure_baselines(a: &Args, n: usize, hot_members: usize) -> Vec<BaselineRow> {
    use skippub_baselines::{Broker, Chord, RingCast, SkipGraph};
    let mut rows = Vec::new();

    // Broker: every publication to the hot topic is one server-side
    // fan-out of `members` unicasts — linear in the topic size, and the
    // broker terminates all n client connections.
    let mut broker = Broker::new();
    for _ in 0..hot_members {
        broker.subscribe(0);
    }
    broker.publish(0);
    rows.push(BaselineRow {
        system: "broker",
        n,
        metric: "fanout_per_publication_hot_topic",
        value: broker.subscribers(0) as f64 + 1.0,
    });

    // RingCast: ring-only dissemination delivers to the farthest member
    // of the hot topic in m-1 steps — linear.
    let ring = RingCast::new(hot_members.max(2));
    rows.push(BaselineRow {
        system: "ringcast",
        n,
        metric: "broadcast_steps_hot_topic",
        value: ring.broadcast_steps() as f64,
    });

    // Chord / SkipGraph: logarithmic routes, but unsupervised placement
    // (hashing / random membership vectors). Mean sampled route length.
    let samples = 64usize;
    let chord = Chord::new(n, SEED ^ n as u64);
    let mut state = SEED ^ 0xC0 ^ n as u64;
    let mut total = 0usize;
    for _ in 0..samples {
        let from = (splitmix64(&mut state) % n as u64) as usize;
        let target = splitmix64(&mut state);
        total += chord.route(from, target).len();
    }
    rows.push(BaselineRow {
        system: "chord",
        n,
        metric: "mean_route_hops",
        value: total as f64 / samples as f64,
    });

    let sg = SkipGraph::new(n, SEED ^ n as u64);
    let mut total = 0usize;
    for _ in 0..samples {
        let from = (splitmix64(&mut state) % n as u64) as usize;
        let to = (splitmix64(&mut state) % n as u64) as usize;
        total += sg.search(from, to).len();
    }
    rows.push(BaselineRow {
        system: "skipgraph",
        n,
        metric: "mean_search_hops",
        value: total as f64 / samples as f64,
    });

    for r in &rows {
        eprintln!("[{} n={n}] {} = {:.2}", r.system, r.metric, r.value);
    }
    let _ = a;
    rows
}

// ---------------------------------------------------------------------
// Budgeted-vs-unbounded equivalence (asserted before any JSON exists).
// ---------------------------------------------------------------------

/// Canonical digest of a per-topic checker snapshot (same construction
/// as the facade-conformance suite): supervisor database plus every
/// member's label and believed ring neighbours.
fn snapshot_digest(snap: &skippub_sim::World<skippub_core::Actor>) -> String {
    let mut text = String::new();
    for (id, actor) in snap.iter() {
        if let Some(sup) = actor.supervisor() {
            let _ = write!(text, "S{}:n={};", id.0, sup.n());
            for (label, node) in &sup.database {
                let _ = write!(text, "{label:?}->{node:?};");
            }
        } else if let Some(sub) = actor.subscriber() {
            let _ = write!(
                text,
                "C{}:{:?},{:?},{:?};",
                id.0,
                sub.label,
                sub.left.as_ref().map(|r| r.id),
                sub.right.as_ref().map(|r| r.id)
            );
        }
    }
    format!("{:032x}", Hash128::of_bytes(text.as_bytes()).0)
}

/// Runs the serialized-join equivalence scenario under one budget and
/// returns (per-topic digests, per-subscriber delivered sets).
fn budget_outcome(budget: Option<u32>) -> (Vec<String>, Vec<Vec<Vec<u8>>>) {
    let topics = 4u32;
    let mut ps: ShardedBackend = SystemBuilder::new(0xB0D6E7)
        .topics(topics)
        .shards(2)
        .delivery_budget(budget)
        .build_sharded();
    let mut ids = Vec::new();
    // Joins are serialized (each reaches legitimacy before the next) so
    // the final topology is budget-independent by construction; what the
    // assertion then proves is that budgeted delivery loses nothing and
    // corrupts nothing on the way there.
    for i in 0..6u32 {
        let id = ps.subscribe(TopicId(i % topics));
        ids.push(id);
        let (_, ok) = ps.until_legit(30_000);
        assert!(ok, "serialized join {i} must stabilize (budget {budget:?})");
    }
    ps.publish(ids[0], TopicId(0), b"budget invariant".to_vec())
        .expect("author is a member");
    ps.publish(ids[1], TopicId(1), b"second story".to_vec())
        .expect("author is a member");
    let (_, ok) = ps.until_pubs_converged(30_000);
    assert!(ok, "publications must converge (budget {budget:?})");
    let digests = (0..topics)
        .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
        .collect();
    let delivered = ids
        .iter()
        .map(|&id| {
            let mut d: Vec<Vec<u8>> = ps
                .drain_events(id)
                .into_iter()
                .map(|e| e.payload)
                .collect();
            d.sort();
            d
        })
        .collect();
    (digests, delivered)
}

fn assert_budget_equivalence() {
    eprintln!("[equivalence] budgeted vs unbounded digests ...");
    let unbounded = budget_outcome(None);
    for b in [1u32, 4] {
        let budgeted = budget_outcome(Some(b));
        assert_eq!(
            unbounded.0, budgeted.0,
            "budget {b}: final checker-snapshot digests must match the unbounded run"
        );
        assert_eq!(
            unbounded.1, budgeted.1,
            "budget {b}: delivered sets must match the unbounded run"
        );
    }
    eprintln!("[equivalence] ok (budgets 1 and 4 match unbounded)");
}

// ---------------------------------------------------------------------

fn main() {
    let a = parse_args();
    assert_budget_equivalence();

    let mut cold = Vec::new();
    let mut cold_skipped = Vec::new();
    let mut warm = Vec::new();
    let mut baselines = Vec::new();
    for &n in &a.sizes {
        if n <= a.cold_max {
            cold.push(measure_cold(&a, n));
        } else {
            // No silent caps: the skip is logged and recorded in the
            // artifact. Cold mass-join stabilization grows ~linearly in
            // n (see module docs), so this leg is hours of wall clock
            // at n = 1M.
            eprintln!("[skippub n={n}] cold Zipf leg skipped (> --cold-max {})", a.cold_max);
            cold_skipped.push(n);
        }
        warm.push(measure_warm(&a, n));
        baselines.extend(measure_baselines(&a, n, hot_topic_members(&a, n)));
        // Each leg's backend drops at the end of its measure fn; live
        // bytes are back near baseline before the next population.
    }

    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"skippub-bench/scale/v1\",\n");
    json.push_str("  \"description\": \"Scale sweep for the inline-BitStr + interner + SoA-slab + delivery-budget work: a cold Zipf mass-join leg (sharded backend, up to cold_max) and a warm legitimate-ring leg (single-topic core, every n incl. 1M; steady maintenance rounds + a 64-node join batch), with the comparison systems priced at the same populations. Regenerate with: cargo run --release -p skippub-bench --bin bench_scale_json\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {},", a.smoke);
    json.push_str("  \"methodology\": \"alloc_high_water_mb is the high-water mark of live heap bytes (allocations minus frees) tracked by a counting global allocator, measured as a delta from the level just before each population builds. It is a deterministic RSS proxy: it excludes allocator slack, code and stacks, so it understates OS RSS, but it is reproducible and comparable across runs. steady_rounds_per_sec is wall-clock over the timed rounds on the cores recorded above.\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"topics\": {}, \"shards\": {}, \"zipf_s\": {}, \"steady_rounds\": {}, \"warm_budget\": {}, \"cold_max\": {}}},",
        a.topics, a.shards, a.zipf_s, a.steady_rounds, a.warm_budget, a.cold_max
    );
    json.push_str("  \"budget_digest_match\": true,\n");
    json.push_str("  \"cold_zipf\": [\n");
    for (i, r) in cold.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"hot_topic_members\": {}, \"stabilization_rounds\": {}, \"steady_rounds_per_sec\": {:.3}, \"peak_in_flight\": {}, \"alloc_high_water_mb\": {:.1}, \"bitstr_spills_steady\": {}, \"sent_total\": {}}}{}",
            r.n,
            r.hot_topic_members,
            r.stabilization_rounds,
            r.steady_rounds_per_sec,
            r.peak_in_flight,
            r.alloc_high_water_mb,
            r.bitstr_spills_steady,
            r.sent_total,
            if i + 1 == cold.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"cold_skipped\": [{}],",
        cold_skipped
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"warm\": [\n");
    for (i, r) in warm.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"steady_rounds_per_sec\": {:.3}, \"join_stabilization_rounds\": {}, \"peak_in_flight\": {}, \"alloc_high_water_mb\": {:.1}, \"bitstr_spills_steady\": {}, \"sent_total\": {}}}{}",
            r.n,
            r.steady_rounds_per_sec,
            r.join_stabilization_rounds,
            r.peak_in_flight,
            r.alloc_high_water_mb,
            r.bitstr_spills_steady,
            r.sent_total,
            if i + 1 == warm.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"baselines\": [\n");
    for (i, r) in baselines.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"system\": \"{}\", \"n\": {}, \"metric\": \"{}\", \"value\": {:.2}}}{}",
            r.system,
            r.n,
            r.metric,
            r.value,
            if i + 1 == baselines.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"note\": \"budget_digest_match is asserted in-run before any JSON is written: a serialized-join scenario executed with per-round delivery budgets 1 and 4 must reach the identical final checker-snapshot digests and delivered sets as the unbounded run. The scaling story: skippub join_stabilization_rounds and chord/skipgraph route hops grow ~log n, while the broker's per-publication fan-out and ringcast's broadcast steps grow linearly with the hot topic's membership. Cold mass-join stabilization (cold_zipf) grows ~linearly in n under randomized supervisor probing, which is why populations listed in cold_skipped run the warm leg only.\"\n");
    json.push_str("}\n");

    std::fs::write(&a.out, &json).expect("write BENCH_scale.json");
    eprintln!("wrote {}", a.out);
    print!("{json}");
}
