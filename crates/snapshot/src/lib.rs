//! # skippub-snapshot
//!
//! Checkpoint/restore for simulated pub-sub worlds: serialize a
//! running backend's **exact** state — supervisor database, member
//! protocol states, in-flight channels and mailboxes, RNG stream
//! positions, publication tries — into a portable [`BackendSnapshot`],
//! and restore it such that continued execution is **byte-identical**
//! to the uninterrupted run (same RNG draws, same delivered sets, same
//! checker digests).
//!
//! Self-stabilization (the paper's central theorem) makes restore
//! unusually forgiving: a snapshot restored into a *corrupted* state is
//! just another admissible initial state, and the protocol must
//! re-converge — the crash-recovery scenarios in `skippub-harness`
//! exercise exactly that. Exact restore is still the contract here,
//! because the conformance suite replays restored worlds against
//! uninterrupted references.
//!
//! ## Pieces
//!
//! * [`Snap`] — the save/load trait; implemented here for primitives,
//!   containers, and every `skippub-bits` / `skippub-trie` /
//!   `skippub-sim` state type. Protocol crates implement it for their
//!   own message and state types (the [`snap_struct!`] macro writes the
//!   field-by-field boilerplate).
//! * [`SnapWriter`] / [`SnapReader`] — the ASCII token codec (see
//!   [`codec`] module docs for the format).
//! * [`BackendSnapshot`] — the sealed serialized form: a `kind` tag the
//!   facade's restore dispatches on, a shared trie **node store**
//!   (tries serialize as root hashes against it, so converged replicas'
//!   identical tries are stored once), and the body token stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod impls;

pub use codec::{BackendSnapshot, Snap, SnapError, SnapReader, SnapWriter};
pub use impls::SnapVec;

/// Implements [`Snap`] for a struct with all-visible fields by saving
/// and loading each named field in order.
///
/// ```
/// use skippub_snapshot::{snap_struct, BackendSnapshot, Snap, SnapWriter};
///
/// #[derive(Debug, PartialEq)]
/// struct Counters {
///     hits: u64,
///     misses: u64,
/// }
/// snap_struct!(Counters { hits, misses });
///
/// let before = Counters { hits: 3, misses: 1 };
/// let mut w = SnapWriter::new();
/// before.save(&mut w);
/// let snap = w.finish("demo");
/// let mut r = snap.reader().unwrap();
/// assert_eq!(Counters::load(&mut r).unwrap(), before);
/// ```
#[macro_export]
macro_rules! snap_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn save(&self, w: &mut $crate::SnapWriter) {
                $( $crate::Snap::save(&self.$field, w); )+
            }
            fn load(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                Ok(Self { $($field: $crate::Snap::load(r)?),+ })
            }
        }
    };
}
