//! [`Snap`] implementations for primitives, containers, and the
//! foundation / simulator types (`skippub-bits`, `skippub-trie`,
//! `skippub-sim`). Protocol-layer types implement [`Snap`] in their own
//! crate (the trait is public), composing these building blocks.

use crate::codec::{Snap, SnapError, SnapReader, SnapWriter};
use skippub_bits::{BitStr, Hash128};
use skippub_sim::{
    ChaosConfig, Envelope, FaultCounts, FaultPlane, FaultRule, FaultSpec, LinkClass, MetricsState,
    NodeId, NodeState, PartitionState, PartitionedState, Protocol, Sever, WorldState,
};
use skippub_ringmath::Label;
use skippub_trie::{NodeSummary, PatriciaTrie, PayloadInterner, Publication};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

macro_rules! snap_as_u64 {
    ($($ty:ty),+) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.put_u64(*self as u64);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let v = r.u64()?;
                <$ty>::try_from(v).map_err(|_| {
                    SnapError::Malformed(format!(
                        "{v} out of range for {}", stringify!($ty)
                    ))
                })
            }
        }
    )+};
}

snap_as_u64!(u8, u16, u32, u64, usize);

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(SnapError::Malformed(format!("bool must be 0/1, got {n}"))),
        }
    }
}

impl Snap for u128 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u128(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u128()
    }
}

/// Bit-exact via the IEEE bit pattern — no decimal round-trip drift.
impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl Snap for Vec<u8> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bytes(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bytes()
    }
}

impl Snap for Arc<[u8]> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bytes(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arc::from(r.bytes()?))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u64(0),
            Some(v) => {
                w.put_u64(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u64()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            n => Err(SnapError::Malformed(format!(
                "option tag must be 0/1, got {n}"
            ))),
        }
    }
}

macro_rules! snap_seq {
    ($ty:ident, $bound:ident $(+ $extra:ident)*) => {
        impl<T: Snap $(+ $extra)*> Snap for $ty<T> {
            fn save(&self, w: &mut SnapWriter) {
                w.put_u64(self.len() as u64);
                for v in self.iter() {
                    v.save(w);
                }
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let len = r.u64()? as usize;
                (0..len).map(|_| T::load(r)).collect()
            }
        }
    };
}

/// Length-prefixed `Vec` of non-byte elements — a coherence wrapper:
/// `Vec<u8>` has its own compact hex impl above, so a blanket
/// `Vec<T: Snap>` impl would overlap it; wrap other element vectors in
/// `SnapVec` at save/load sites instead.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapVec<T>(pub Vec<T>);

impl<T: Snap> Snap for SnapVec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0.len() as u64);
        for v in &self.0 {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        Ok(SnapVec(
            (0..len).map(|_| T::load(r)).collect::<Result<_, _>>()?,
        ))
    }
}

snap_seq!(BTreeSet, Snap + Ord);

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        (0..len).map(|_| Ok((K::load(r)?, V::load(r)?))).collect()
    }
}

macro_rules! snap_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Snap),+> Snap for ($($name,)+) {
            fn save(&self, w: &mut SnapWriter) {
                $( self.$idx.save(w); )+
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(($( $name::load(r)?, )+))
            }
        }
    };
}

snap_tuple!(A: 0, B: 1);
snap_tuple!(A: 0, B: 1, C: 2);
snap_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Snap for [u64; 4] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            w.put_u64(*v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
    }
}

// ---- skippub-bits ----

/// Length plus MSB-first packed bytes.
impl Snap for BitStr {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        let mut bytes = Vec::with_capacity(self.len().div_ceil(8));
        let mut acc = 0u8;
        for (i, bit) in self.iter().enumerate() {
            acc = (acc << 1) | bit as u8;
            if i % 8 == 7 {
                bytes.push(acc);
                acc = 0;
            }
        }
        if !self.len().is_multiple_of(8) {
            bytes.push(acc << (8 - self.len() % 8));
        }
        w.put_bytes(&bytes);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let bytes = r.bytes()?;
        if bytes.len() != len.div_ceil(8) {
            return Err(SnapError::Malformed(format!(
                "bit string of {len} bits packed into {} bytes",
                bytes.len()
            )));
        }
        let mut s = BitStr::new();
        for i in 0..len {
            s.push(bytes[i / 8] & (0x80 >> (i % 8)) != 0);
        }
        Ok(s)
    }
}

impl Snap for Hash128 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u128(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Hash128(r.u128()?))
    }
}

// ---- skippub-ringmath ----

/// Fraction bits + length; reconstruction goes through
/// [`Label::from_parts`] so an out-of-range length fails loudly.
impl Snap for Label {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.frac());
        w.put_u64(self.len() as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let frac = r.u64()?;
        let len = u8::load(r)?;
        Label::from_parts(frac, len)
            .ok_or_else(|| SnapError::Malformed(format!("invalid label length {len}")))
    }
}

// ---- skippub-trie ----

impl Snap for NodeSummary {
    fn save(&self, w: &mut SnapWriter) {
        self.label.save(w);
        self.hash.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeSummary {
            label: Snap::load(r)?,
            hash: Snap::load(r)?,
        })
    }
}

/// Pool payloads in sorted byte order plus the hit gauge. Restoring
/// re-adopts each payload, so duplicates that deserialization
/// materialized separately re-unify and the restored backend keeps
/// pooling re-published payloads exactly like the original.
impl Snap for PayloadInterner {
    fn save(&self, w: &mut SnapWriter) {
        let mut pool: Vec<&Arc<[u8]>> = self.payloads().collect();
        pool.sort_unstable();
        w.put_u64(pool.len() as u64);
        for p in pool {
            w.put_bytes(p);
        }
        w.put_u64(self.hits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let mut pool = PayloadInterner::new();
        for _ in 0..len {
            pool.adopt(Arc::from(r.bytes()?));
        }
        pool.set_hits(r.u64()?);
        Ok(pool)
    }
}

/// Raw key + author + payload, restored verbatim (also exact for
/// hand-built raw-key publications, which derived-key reconstruction
/// would silently re-key).
impl Snap for Publication {
    fn save(&self, w: &mut SnapWriter) {
        self.key().save(w);
        w.put_u64(self.author());
        w.put_bytes(self.payload());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let key = BitStr::load(r)?;
        let author = r.u64()?;
        let payload = r.bytes()?;
        Ok(Publication::with_raw_key(key, author, payload))
    }
}

/// Serialized as a root-hash reference into the snapshot's shared node
/// store ([`SnapWriter::put_trie`] / [`SnapReader::trie`]) — converged
/// replicas' identical tries cost one copy of their nodes, and reopen
/// re-verifies every hash.
impl Snap for PatriciaTrie {
    fn save(&self, w: &mut SnapWriter) {
        w.put_trie(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.trie()
    }
}

// ---- skippub-sim ----

impl Snap for NodeId {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeId(r.u64()?))
    }
}

impl Snap for MetricsState {
    fn save(&self, w: &mut SnapWriter) {
        self.sent_total.save(w);
        self.delivered_total.save(w);
        self.dropped.save(w);
        self.rounds.save(w);
        SnapVec(self.kinds.clone()).save(w);
        SnapVec(self.nodes.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MetricsState {
            sent_total: Snap::load(r)?,
            delivered_total: Snap::load(r)?,
            dropped: Snap::load(r)?,
            rounds: Snap::load(r)?,
            kinds: SnapVec::load(r)?.0,
            nodes: SnapVec::load(r)?.0,
        })
    }
}

impl Snap for ChaosConfig {
    fn save(&self, w: &mut SnapWriter) {
        self.delivery_prob.save(w);
        self.timeout_prob.save(w);
        self.max_age.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ChaosConfig {
            delivery_prob: Snap::load(r)?,
            timeout_prob: Snap::load(r)?,
            max_age: Snap::load(r)?,
        })
    }
}

impl Snap for LinkClass {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            LinkClass::All => w.put_u64(0),
            LinkClass::AnyCross => w.put_u64(1),
            LinkClass::AnyLocal => w.put_u64(2),
            LinkClass::Cross { src, dst } => {
                w.put_u64(3);
                src.save(w);
                dst.save(w);
            }
            LinkClass::Local { partition } => {
                w.put_u64(4);
                partition.save(w);
            }
            LinkClass::Group(ids) => {
                w.put_u64(5);
                SnapVec(ids.clone()).save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u64()? {
            0 => LinkClass::All,
            1 => LinkClass::AnyCross,
            2 => LinkClass::AnyLocal,
            3 => LinkClass::Cross {
                src: Snap::load(r)?,
                dst: Snap::load(r)?,
            },
            4 => LinkClass::Local {
                partition: Snap::load(r)?,
            },
            5 => LinkClass::Group(SnapVec::load(r)?.0),
            n => {
                return Err(SnapError::Malformed(format!("unknown link class tag {n}")));
            }
        })
    }
}

impl Snap for FaultRule {
    fn save(&self, w: &mut SnapWriter) {
        self.from_round.save(w);
        self.to_round.save(w);
        self.link.save(w);
        self.drop.save(w);
        self.dup.save(w);
        self.delay.save(w);
        self.delay_rounds.save(w);
        self.reorder.save(w);
        self.reorder_max.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultRule {
            from_round: Snap::load(r)?,
            to_round: Snap::load(r)?,
            link: Snap::load(r)?,
            drop: Snap::load(r)?,
            dup: Snap::load(r)?,
            delay: Snap::load(r)?,
            delay_rounds: Snap::load(r)?,
            reorder: Snap::load(r)?,
            reorder_max: Snap::load(r)?,
        })
    }
}

impl Snap for Sever {
    fn save(&self, w: &mut SnapWriter) {
        self.from_round.save(w);
        self.to_round.save(w);
        SnapVec(self.group.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Sever {
            from_round: Snap::load(r)?,
            to_round: Snap::load(r)?,
            group: SnapVec::load(r)?.0,
        })
    }
}

impl Snap for FaultSpec {
    fn save(&self, w: &mut SnapWriter) {
        self.seed.save(w);
        SnapVec(self.rules.clone()).save(w);
        SnapVec(self.severs.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultSpec {
            seed: Snap::load(r)?,
            rules: SnapVec::load(r)?.0,
            severs: SnapVec::load(r)?.0,
        })
    }
}

impl Snap for FaultCounts {
    fn save(&self, w: &mut SnapWriter) {
        self.dropped_by_fault.save(w);
        self.duplicated.save(w);
        self.reordered.save(w);
        self.delayed.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultCounts {
            dropped_by_fault: Snap::load(r)?,
            duplicated: Snap::load(r)?,
            reordered: Snap::load(r)?,
            delayed: Snap::load(r)?,
        })
    }
}

/// The full armed plane: spec, arming base, SplitMix64 stream states,
/// counters, and held messages — so a mid-fault-window snapshot
/// restores and re-saves byte-exactly.
impl<M: Snap> Snap for FaultPlane<M> {
    fn save(&self, w: &mut SnapWriter) {
        self.spec.save(w);
        self.base.save(w);
        self.me.save(w);
        SnapVec(self.cross.clone()).save(w);
        self.local.save(w);
        self.pending_seq.save(w);
        self.counts.save(w);
        w.put_u64(self.pending.len() as u64);
        for (release, seq, to, msg) in &self.pending {
            release.save(w);
            seq.save(w);
            to.save(w);
            msg.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultPlane {
            spec: Snap::load(r)?,
            base: Snap::load(r)?,
            me: Snap::load(r)?,
            cross: SnapVec::load(r)?.0,
            local: Snap::load(r)?,
            pending_seq: Snap::load(r)?,
            counts: Snap::load(r)?,
            pending: {
                let len = r.u64()? as usize;
                (0..len)
                    .map(|_| {
                        Ok((
                            Snap::load(r)?,
                            Snap::load(r)?,
                            Snap::load(r)?,
                            Snap::load(r)?,
                        ))
                    })
                    .collect::<Result<_, SnapError>>()?
            },
        })
    }
}

impl<M: Snap> Snap for Envelope<M> {
    fn save(&self, w: &mut SnapWriter) {
        self.src.save(w);
        self.seq.save(w);
        self.to.save(w);
        self.msg.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Envelope {
            src: Snap::load(r)?,
            seq: Snap::load(r)?,
            to: Snap::load(r)?,
            msg: Snap::load(r)?,
        })
    }
}

impl<P> Snap for NodeState<P>
where
    P: Protocol + Snap,
    P::Msg: Snap,
{
    fn save(&self, w: &mut SnapWriter) {
        self.id.save(w);
        self.proto.save(w);
        SnapVec(self.channel.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeState {
            id: Snap::load(r)?,
            proto: Snap::load(r)?,
            channel: SnapVec::load(r)?.0,
        })
    }
}

impl<P> Snap for PartitionState<P>
where
    P: Protocol + Snap,
    P::Msg: Snap,
{
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            n.save(w);
        }
        self.rng.save(w);
        self.round.save(w);
        self.budget.save(w);
        self.metrics.save(w);
        SnapVec(self.dirty.clone()).save(w);
        self.peak_in_flight.save(w);
        self.seq.save(w);
        self.cross_sent.save(w);
        self.stepped.save(w);
        self.lock_acquisitions.save(w);
        self.faults.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.u64()? as usize;
        let nodes = (0..len)
            .map(|_| NodeState::load(r))
            .collect::<Result<_, _>>()?;
        Ok(PartitionState {
            nodes,
            rng: Snap::load(r)?,
            round: Snap::load(r)?,
            budget: Snap::load(r)?,
            metrics: Snap::load(r)?,
            dirty: SnapVec::load(r)?.0,
            peak_in_flight: Snap::load(r)?,
            seq: Snap::load(r)?,
            cross_sent: Snap::load(r)?,
            stepped: Snap::load(r)?,
            lock_acquisitions: Snap::load(r)?,
            faults: Snap::load(r)?,
        })
    }
}

impl<P> Snap for WorldState<P>
where
    P: Protocol + Snap,
    P::Msg: Snap,
{
    fn save(&self, w: &mut SnapWriter) {
        self.partition.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(WorldState {
            partition: Snap::load(r)?,
        })
    }
}

impl<P> Snap for PartitionedState<P>
where
    P: Protocol + Snap,
    P::Msg: Snap,
{
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.partitions.len() as u64);
        for p in &self.partitions {
            p.save(w);
        }
        w.put_u64(self.mailboxes.len() as u64);
        for m in &self.mailboxes {
            SnapVec(m.clone()).save(w);
        }
        self.threads.save(w);
        self.round.save(w);
        SnapVec(self.extra_dirty.clone()).save(w);
        self.orphan.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let np = r.u64()? as usize;
        let partitions = (0..np)
            .map(|_| PartitionState::load(r))
            .collect::<Result<_, _>>()?;
        let nm = r.u64()? as usize;
        let mailboxes = (0..nm)
            .map(|_| Ok(SnapVec::load(r)?.0))
            .collect::<Result<_, _>>()?;
        Ok(PartitionedState {
            partitions,
            mailboxes,
            threads: Snap::load(r)?,
            round: Snap::load(r)?,
            extra_dirty: SnapVec::load(r)?.0,
            orphan: Snap::load(r)?,
        })
    }
}
