//! The token codec: [`SnapWriter`], [`SnapReader`], the [`Snap`] trait,
//! and [`BackendSnapshot`] — the self-contained serialized form.
//!
//! # Format
//!
//! A snapshot is a single ASCII token stream (whitespace-separated), in
//! three sections:
//!
//! 1. **header** — `skippubsnap 1 <kind>`: magic, format version, and
//!    the backend kind tag restore dispatches on;
//! 2. **node store** — the shared [`MemoryTrieDb`] every trie in the
//!    snapshot committed into: a count followed by `(hash, node)` pairs
//!    in hash order. Serializing the store *first* and tries as bare
//!    root hashes means converged replicas' identical tries are written
//!    once, not once per subscriber;
//! 3. **body** — the backend state proper, written by nested
//!    [`Snap::save`] calls and read back in the same order.
//!
//! Numbers are decimal, hashes and byte strings are hex, `f64`s are the
//! hex of their IEEE bit pattern (bit-exact round-trip, no decimal
//! drift). The format favors auditability (a snapshot is grep-able
//! text) and has no external dependencies.

use skippub_bits::Hash128;
use skippub_trie::{MemoryTrieDb, PatriciaTrie, StoredNode, TrieDb};

/// Errors surfaced while decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The token stream ended before the value being decoded.
    Eof,
    /// A token or section failed to parse or validate.
    Malformed(String),
    /// The embedded trie node store is incomplete or corrupt.
    Trie(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated"),
            SnapError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
            SnapError::Trie(why) => write!(f, "snapshot trie store: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// A value that can be saved into and restored from the token codec.
///
/// Implementations must be exact inverses: `load` after `save` yields a
/// value whose future behavior is byte-identical to the original's.
pub trait Snap: Sized {
    /// Appends this value's tokens to the writer.
    fn save(&self, w: &mut SnapWriter);

    /// Reads this value's tokens back, in `save` order.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// Serialization sink: accumulates body tokens plus the shared trie
/// node store that [`PatriciaTrie`] values commit into.
#[derive(Default)]
pub struct SnapWriter {
    body: String,
    db: MemoryTrieDb,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn token(&mut self, t: std::fmt::Arguments<'_>) {
        use std::fmt::Write;
        if !self.body.is_empty() {
            self.body.push(' ');
        }
        self.body.write_fmt(t).expect("string write");
    }

    /// Writes a decimal `u64` token.
    pub fn put_u64(&mut self, v: u64) {
        self.token(format_args!("{v}"));
    }

    /// Writes a `u128` as one hex token.
    pub fn put_u128(&mut self, v: u128) {
        self.token(format_args!("{v:x}"));
    }

    /// Writes a byte string as a length token plus (if non-empty) one
    /// hex token.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        if !b.is_empty() {
            use std::fmt::Write;
            self.body.push(' ');
            for byte in b {
                write!(self.body, "{byte:02x}").expect("string write");
            }
        }
    }

    /// Writes a UTF-8 string (as its bytes).
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// The shared node store tries commit into (serialized before the
    /// body, so readers can reopen tries from root hashes).
    pub fn db(&mut self) -> &mut MemoryTrieDb {
        &mut self.db
    }

    /// Commits `trie` into the shared store and writes its root hash —
    /// how [`Snap`] for [`PatriciaTrie`] serializes.
    pub fn put_trie(&mut self, trie: &PatriciaTrie) {
        let root = trie.commit_to(&mut self.db);
        match root {
            None => self.put_u64(0),
            Some(h) => {
                self.put_u64(1);
                self.put_u128(h.0);
            }
        }
    }

    /// Seals the writer into a [`BackendSnapshot`] tagged `kind`
    /// (the string restore dispatches on; no whitespace allowed).
    pub fn finish(self, kind: &str) -> BackendSnapshot {
        use std::fmt::Write;
        assert!(
            !kind.is_empty() && kind.chars().all(|c| !c.is_whitespace()),
            "snapshot kind must be a single token"
        );
        let mut text = format!("skippubsnap 1 {kind} {}", self.db.node_count());
        for (hash, node) in self.db.iter() {
            write!(text, " {:x}", hash.0).expect("string write");
            match node {
                StoredNode::Leaf(p) => {
                    text.push_str(" 0");
                    let mut w = SnapWriter::new();
                    p.key().save(&mut w);
                    w.put_u64(p.author());
                    w.put_bytes(p.payload());
                    text.push(' ');
                    text.push_str(&w.body);
                }
                StoredNode::Inner { left, right } => {
                    write!(text, " 1 {:x} {:x}", left.0, right.0).expect("string write");
                }
            }
        }
        if !self.body.is_empty() {
            text.push(' ');
            text.push_str(&self.body);
        }
        BackendSnapshot {
            kind: kind.to_string(),
            text,
        }
    }
}

/// Deserialization source: the body token cursor plus the reopened
/// node store.
pub struct SnapReader<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
    db: MemoryTrieDb,
}

impl<'a> SnapReader<'a> {
    fn next(&mut self) -> Result<&'a str, SnapError> {
        self.toks.next().ok_or(SnapError::Eof)
    }

    /// Reads one decimal `u64` token.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| SnapError::Malformed(format!("expected u64, got {t:?}")))
    }

    /// Reads one hex `u128` token.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        let t = self.next()?;
        u128::from_str_radix(t, 16)
            .map_err(|_| SnapError::Malformed(format!("expected hex u128, got {t:?}")))
    }

    /// Reads a byte string (length token plus hex token).
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let len = self.u64()? as usize;
        if len == 0 {
            return Ok(Vec::new());
        }
        let t = self.next()?;
        if t.len() != len * 2 {
            return Err(SnapError::Malformed(format!(
                "byte string length {len} does not match hex token of {} chars",
                t.len()
            )));
        }
        (0..len)
            .map(|i| {
                u8::from_str_radix(&t[2 * i..2 * i + 2], 16)
                    .map_err(|_| SnapError::Malformed(format!("bad hex byte in {t:?}")))
            })
            .collect()
    }

    /// Reads a UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| SnapError::Malformed("string is not UTF-8".into()))
    }

    /// The reopened node store.
    pub fn db(&self) -> &MemoryTrieDb {
        &self.db
    }

    /// Reads a trie reference (root hash) and reopens it against the
    /// node store, re-verifying every node hash on the way.
    pub fn trie(&mut self) -> Result<PatriciaTrie, SnapError> {
        let root = match self.u64()? {
            0 => None,
            1 => Some(Hash128(self.u128()?)),
            n => {
                return Err(SnapError::Malformed(format!(
                    "trie root tag must be 0/1, got {n}"
                )))
            }
        };
        PatriciaTrie::open_from(&self.db, root).map_err(|e| SnapError::Trie(e.to_string()))
    }

    /// Asserts the stream is fully consumed (a length-drifted decode
    /// must fail loudly, not truncate silently).
    pub fn finish(mut self) -> Result<(), SnapError> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(SnapError::Malformed(format!(
                "trailing tokens after snapshot body (first: {t:?})"
            ))),
        }
    }
}

/// A sealed, self-contained snapshot of one backend: the `kind` tag the
/// facade's restore dispatches on, plus the full token stream (header,
/// shared trie node store, body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendSnapshot {
    /// Backend kind tag (e.g. `sim`, `chaos`, `multi`, `sharded`).
    pub kind: String,
    text: String,
}

impl BackendSnapshot {
    /// The serialized form — write this to a file.
    pub fn as_text(&self) -> &str {
        &self.text
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }

    /// Parses serialized text back into a snapshot (header validation
    /// only; the body is decoded by [`BackendSnapshot::reader`]).
    pub fn from_text(text: &str) -> Result<Self, SnapError> {
        let mut toks = text.split_ascii_whitespace();
        match (toks.next(), toks.next(), toks.next()) {
            (Some("skippubsnap"), Some("1"), Some(kind)) => Ok(BackendSnapshot {
                kind: kind.to_string(),
                text: text.to_string(),
            }),
            (Some("skippubsnap"), Some(v), _) => Err(SnapError::Malformed(format!(
                "unsupported snapshot format version {v:?}"
            ))),
            _ => Err(SnapError::Malformed(
                "missing skippubsnap header".to_string(),
            )),
        }
    }

    /// Opens a reader positioned at the body: parses the header,
    /// rebuilds the shared node store (verifying each node hashes to
    /// its address via [`TrieDb::put`]'s debug assertion and the trie
    /// reopen path), and hands back the cursor.
    pub fn reader(&self) -> Result<SnapReader<'_>, SnapError> {
        let mut r = SnapReader {
            toks: self.text.split_ascii_whitespace(),
            db: MemoryTrieDb::new(),
        };
        match (r.next()?, r.next()?, r.next()?) {
            ("skippubsnap", "1", k) if k == self.kind => {}
            (m, v, k) => {
                return Err(SnapError::Malformed(format!(
                    "header mismatch: {m} {v} {k}"
                )))
            }
        }
        let nodes = r.u64()?;
        for _ in 0..nodes {
            let hash = Hash128(r.u128()?);
            let node = match r.u64()? {
                0 => {
                    let key = skippub_bits::BitStr::load(&mut r)?;
                    let author = r.u64()?;
                    let payload = r.bytes()?;
                    StoredNode::Leaf(skippub_trie::Publication::with_raw_key(
                        key, author, payload,
                    ))
                }
                1 => StoredNode::Inner {
                    left: Hash128(r.u128()?),
                    right: Hash128(r.u128()?),
                },
                n => {
                    return Err(SnapError::Malformed(format!(
                        "stored-node tag must be 0/1, got {n}"
                    )))
                }
            };
            if node.hash() != hash {
                return Err(SnapError::Trie(format!(
                    "stored node does not hash to its address {hash}"
                )));
            }
            r.db.put(hash, node);
        }
        Ok(r)
    }
}
