//! Codec round-trips: primitives, tries through the shared node store,
//! and full world states of a toy protocol — restored worlds must step
//! byte-identically.

use skippub_bits::BitStr;
use skippub_sim::{ChaosConfig, Ctx, NodeId, PartitionedWorld, Protocol, World};
use skippub_snapshot::{snap_struct, BackendSnapshot, Snap, SnapError, SnapVec, SnapWriter};
use skippub_trie::{PatriciaTrie, Publication};

fn round_trip<T: Snap>(value: &T) -> T {
    let mut w = SnapWriter::new();
    value.save(&mut w);
    let snap = w.finish("test");
    let text = snap.as_text().to_string();
    let parsed = BackendSnapshot::from_text(&text).expect("reparse");
    assert_eq!(parsed, snap);
    let mut r = parsed.reader().expect("open reader");
    let out = T::load(&mut r).expect("load");
    r.finish().expect("stream fully consumed");
    out
}

#[test]
fn primitives_round_trip() {
    assert_eq!(round_trip(&0u64), 0);
    assert_eq!(round_trip(&u64::MAX), u64::MAX);
    assert_eq!(round_trip(&u128::MAX), u128::MAX);
    assert!(round_trip(&true));
    assert_eq!(round_trip(&(-0.0f64)).to_bits(), (-0.0f64).to_bits());
    assert_eq!(round_trip(&0.1f64).to_bits(), 0.1f64.to_bits());
    assert!(round_trip(&f64::NAN).is_nan());
    assert_eq!(round_trip(&String::from("hello σ world")), "hello σ world");
    assert_eq!(round_trip(&String::new()), "");
    assert_eq!(round_trip(&Vec::<u8>::new()), Vec::<u8>::new());
    assert_eq!(round_trip(&vec![0u8, 255, 7]), vec![0u8, 255, 7]);
    assert_eq!(round_trip(&None::<u32>), None);
    assert_eq!(round_trip(&Some(42u32)), Some(42));
    assert_eq!(round_trip(&[1u64, 2, 3, 4]), [1u64, 2, 3, 4]);
    assert_eq!(
        round_trip(&SnapVec(vec![(1u32, 2u64), (3, 4)])),
        SnapVec(vec![(1u32, 2u64), (3, 4)])
    );
}

#[test]
fn bit_strings_round_trip_all_lengths() {
    for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 130] {
        let mut s = BitStr::new();
        for i in 0..len {
            s.push((i * 7 + len) % 3 == 0);
        }
        assert_eq!(round_trip(&s), s, "len={len}");
    }
}

#[test]
fn publications_round_trip_including_raw_keys() {
    let derived = Publication::with_key_bits(9, b"payload".to_vec(), 48);
    let got = round_trip(&derived);
    assert_eq!(got.key(), derived.key());
    assert_eq!(got.author(), derived.author());
    assert_eq!(got.payload(), derived.payload());

    // A hand-built raw-key publication must come back with its raw key,
    // not a re-derived one.
    let raw = Publication::with_raw_key(BitStr::from_u64_msb(0b1011, 4), 3, b"x".to_vec());
    let got = round_trip(&raw);
    assert_eq!(got.key(), raw.key());
}

#[test]
fn tries_round_trip_through_the_shared_node_store() {
    let mut trie = PatriciaTrie::new();
    for author in 0..50u64 {
        trie.insert(Publication::with_key_bits(author, b"news".to_vec(), 32));
    }
    let got = round_trip(&trie);
    assert_eq!(got.root_hash(), trie.root_hash());
    assert_eq!(got.len(), trie.len());
    got.debug_validate().unwrap();

    // Two identical tries share one copy of their nodes in the store.
    let mut w = SnapWriter::new();
    trie.save(&mut w);
    trie.clone().save(&mut w);
    let one = w.finish("dedup");
    let mut w2 = SnapWriter::new();
    trie.save(&mut w2);
    let alone = w2.finish("dedup");
    // Full snapshot with two tries ≈ one trie + one extra root token.
    assert!(one.byte_len() < alone.byte_len() + 64);
}

#[test]
fn truncated_and_corrupt_snapshots_fail_loudly() {
    let mut w = SnapWriter::new();
    42u64.save(&mut w);
    let snap = w.finish("t");
    let text = snap.as_text();

    assert!(BackendSnapshot::from_text("not a snapshot").is_err());
    assert!(BackendSnapshot::from_text("skippubsnap 9 t 0").is_err());

    // Truncating the whole body token surfaces as Eof on load.
    let truncated = &text[..text.len() - 2];
    let parsed = BackendSnapshot::from_text(truncated).unwrap();
    let mut r = parsed.reader().unwrap();
    assert_eq!(u64::load(&mut r), Err(SnapError::Eof));

    // Unconsumed trailing tokens are an error.
    let parsed = BackendSnapshot::from_text(text).unwrap();
    let r = parsed.reader().unwrap();
    assert!(matches!(r.finish(), Err(SnapError::Malformed(_))));
}

/// Toy protocol used for full world-state round-trips.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Toy {
    next: NodeId,
    seen: u64,
    flips: u64,
}
snap_struct!(Toy { next, seen, flips });

#[derive(Clone, Debug)]
struct Token(u32);

impl Snap for Token {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
    }
    fn load(r: &mut skippub_snapshot::SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Token(u32::load(r)?))
    }
}

impl Protocol for Toy {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, msg: Token) {
        self.seen += 1;
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Token>) {
        if ctx.random_bool(0.4) {
            self.flips += 1;
        }
    }

    fn msg_kind(_: &Token) -> &'static str {
        "token"
    }
}

fn ring(n: u64, seed: u64) -> World<Toy> {
    let mut w = World::new(seed);
    for i in 0..n {
        w.add_node(
            NodeId(i),
            Toy {
                next: NodeId((i + 1) % n),
                seen: 0,
                flips: 0,
            },
        );
    }
    w
}

#[test]
fn serialized_world_state_continues_byte_identically() {
    let mut reference = ring(9, 77);
    reference.inject(NodeId(0), Token(250));
    let cfg = ChaosConfig {
        delivery_prob: 0.4,
        timeout_prob: 0.6,
        max_age: 5,
    };
    for _ in 0..30 {
        reference.run_chaos_round(cfg);
    }

    let mut original = ring(9, 77);
    original.inject(NodeId(0), Token(250));
    for _ in 0..12 {
        original.run_chaos_round(cfg);
    }
    // Serialize → text → parse → deserialize → continue.
    let mut w = SnapWriter::new();
    original.export_state().save(&mut w);
    let snap = w.finish("toy");
    let parsed = BackendSnapshot::from_text(snap.as_text()).unwrap();
    let mut r = parsed.reader().unwrap();
    let state = skippub_sim::WorldState::<Toy>::load(&mut r).unwrap();
    r.finish().unwrap();
    let mut restored = World::from_state(state);
    for _ in 0..18 {
        restored.run_chaos_round(cfg);
    }

    let a: Vec<(NodeId, Toy)> = restored.iter().map(|(i, t)| (i, t.clone())).collect();
    let b: Vec<(NodeId, Toy)> = reference.iter().map(|(i, t)| (i, t.clone())).collect();
    assert_eq!(a, b);
    assert_eq!(restored.metrics(), reference.metrics());
    assert_eq!(restored.in_flight(), reference.in_flight());
}

/// A snapshot taken *inside* an active fault window — held messages in
/// the pending buffer, advanced per-link RNG streams — must serialize,
/// restore, continue byte-identically, and re-serialize to the exact
/// same bytes (save → restore → re-save is a fixed point).
#[test]
fn mid_fault_window_snapshot_is_byte_exact() {
    let spec = skippub_sim::FaultSpec {
        seed: 23,
        rules: vec![skippub_sim::FaultRule {
            delay: 0.7,
            delay_rounds: 4,
            dup: 0.1,
            drop: 0.02,
            reorder: 0.15,
            reorder_max: 3,
            ..skippub_sim::FaultRule::pass(0, 60, skippub_sim::LinkClass::All)
        }],
        severs: vec![skippub_sim::Sever {
            from_round: 25,
            to_round: 35,
            group: vec![2, 5],
        }],
    };
    let build = || {
        let mut w = ring(8, 31);
        w.set_faults(Some(spec.clone()));
        for n in [0u64, 3, 6] {
            w.inject(NodeId(n), Token(200));
        }
        w
    };
    let mut reference = build();
    for _ in 0..45 {
        reference.run_round();
    }

    let mut original = build();
    for _ in 0..14 {
        original.run_round();
    }
    let state = original.export_state();
    assert!(
        !state.partition.faults.as_ref().unwrap().pending.is_empty(),
        "snapshot must be taken with messages held by the plane"
    );
    let mut w = SnapWriter::new();
    state.save(&mut w);
    let first = w.finish("faulted");
    let parsed = BackendSnapshot::from_text(first.as_text()).unwrap();
    let mut r = parsed.reader().unwrap();
    let loaded = skippub_sim::WorldState::<Toy>::load(&mut r).unwrap();
    r.finish().unwrap();
    let restored = World::from_state(loaded);

    // Re-save immediately: byte-exact fixed point.
    let mut w2 = SnapWriter::new();
    restored.export_state().save(&mut w2);
    let second = w2.finish("faulted");
    assert_eq!(second.as_text(), first.as_text());

    // And the restored world continues the reference trajectory.
    let mut restored = restored;
    for _ in 0..31 {
        restored.run_round();
    }
    let a: Vec<(NodeId, Toy)> = restored.iter().map(|(i, t)| (i, t.clone())).collect();
    let b: Vec<(NodeId, Toy)> = reference.iter().map(|(i, t)| (i, t.clone())).collect();
    assert_eq!(a, b);
    assert_eq!(restored.metrics(), reference.metrics());
    assert_eq!(restored.fault_counts(), reference.fault_counts());
}

#[test]
fn serialized_partitioned_state_continues_byte_identically() {
    let build = || {
        let mut w: PartitionedWorld<Toy> = PartitionedWorld::new(3, 4, 2);
        for i in 0..12u64 {
            w.add_node(
                NodeId(i),
                Toy {
                    next: NodeId((i + 1) % 12),
                    seen: 0,
                    flips: 0,
                },
                (i % 4) as u32,
            );
        }
        w.inject(NodeId(0), Token(150));
        w
    };
    let mut reference = build();
    reference.run_rounds(40);

    let mut original = build();
    original.run_rounds(15);
    let mut w = SnapWriter::new();
    original.export_state().save(&mut w);
    let snap = w.finish("toy-partitioned");
    let parsed = BackendSnapshot::from_text(snap.as_text()).unwrap();
    let mut r = parsed.reader().unwrap();
    let state = skippub_sim::PartitionedState::<Toy>::load(&mut r).unwrap();
    r.finish().unwrap();
    let mut restored = PartitionedWorld::from_state(state);
    restored.run_rounds(25);

    let a: Vec<(NodeId, Toy)> = restored.iter().map(|(i, t)| (i, t.clone())).collect();
    let b: Vec<(NodeId, Toy)> = reference.iter().map(|(i, t)| (i, t.clone())).collect();
    assert_eq!(a, b);
    assert_eq!(restored.metrics(), reference.metrics());
}
