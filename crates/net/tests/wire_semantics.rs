//! Wire-level semantics of the threaded runtime: reliability accounting,
//! crash consumption, and reordering evidence.

use skippub_net::{NetConfig, Network};
use std::time::Duration;

fn cfg(seed: u64, min_us: u64, max_ms: u64) -> NetConfig {
    NetConfig {
        seed,
        min_delay: Duration::from_micros(min_us),
        max_delay: Duration::from_millis(max_ms),
        timeout_interval: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

#[test]
fn wire_accounts_for_every_message() {
    let mut net = Network::start(cfg(71, 10, 1));
    for _ in 0..6 {
        net.spawn_subscriber();
    }
    assert!(net.await_legitimate(Duration::from_secs(60)));
    // Quiesce briefly, then check conservation: sent ≥ delivered, and the
    // difference is bounded by dropped + a small in-flight residue.
    std::thread::sleep(Duration::from_millis(50));
    let (sent, delivered, dropped) = net.wire_stats();
    assert!(sent > 0);
    assert!(delivered <= sent);
    assert!(delivered + dropped <= sent + 1);
    net.shutdown();
}

#[test]
fn crashes_show_up_as_dropped_messages() {
    let mut net = Network::start(cfg(72, 10, 1));
    let ids: Vec<_> = (0..6).map(|_| net.spawn_subscriber()).collect();
    assert!(net.await_legitimate(Duration::from_secs(60)));
    let (_, _, dropped_before) = net.wire_stats();
    net.crash(ids[2]);
    // Neighbours keep Check-ing the dead node for a while.
    std::thread::sleep(Duration::from_millis(60));
    let (_, _, dropped_after) = net.wire_stats();
    assert!(
        dropped_after > dropped_before,
        "messages to the crashed node must be consumed by the wire"
    );
    net.report_crash(ids[2]);
    assert!(net.await_legitimate(Duration::from_secs(120)));
    net.shutdown();
}

#[test]
fn snapshot_is_consistent_under_load() {
    // Snapshots lock node-by-node while traffic flows; the checker must
    // never panic on them and node counts must be exact.
    let mut net = Network::start(cfg(73, 1, 2));
    for _ in 0..8 {
        net.spawn_subscriber();
    }
    for _ in 0..20 {
        let snap = net.snapshot();
        assert_eq!(snap.len(), 9, "8 subscribers + supervisor");
        let _ = skippub_core::checker::check_topology(&snap);
        std::thread::sleep(Duration::from_millis(5));
    }
    net.shutdown();
}

#[test]
fn shutdown_is_idempotent_under_traffic() {
    let mut net = Network::start(cfg(74, 10, 1));
    let a = net.spawn_subscriber();
    let _b = net.spawn_subscriber();
    std::thread::sleep(Duration::from_millis(20));
    net.publish(a, b"going down".to_vec());
    net.shutdown(); // must join all threads without deadlock
}
