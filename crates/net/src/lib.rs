//! # skippub-net
//!
//! A threaded actor runtime for the `skippub` protocols: every node runs
//! on its own OS thread, messages travel through a "wire" thread that
//! applies seeded random delays (hence reordering — the paper's non-FIFO
//! channels), and crashes are abrupt thread terminations whose pending
//! messages evaporate (§3.3 semantics).
//!
//! The protocol logic is **exactly** the state machines of
//! [`skippub_core`] — the same `Actor` type the deterministic simulator
//! drives — so concurrent executions cannot diverge semantically from
//! simulated ones. The runtime exists to demonstrate (and stress) the
//! protocol under true asynchrony: the paper's model places no bound on
//! relative execution speeds, and neither does this runtime.
//!
//! ```no_run
//! use skippub_net::{NetConfig, Network};
//!
//! let mut net = Network::start(NetConfig::default());
//! let a = net.spawn_subscriber();
//! let _b = net.spawn_subscriber();
//! assert!(net.await_legitimate(std::time::Duration::from_secs(10)));
//! net.publish(a, b"hello".to_vec());
//! assert!(net.await_pubs_converged(std::time::Duration::from_secs(10)));
//! net.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod facade;
mod runtime;
mod wire;

pub use facade::NetBackend;
pub use runtime::{NetConfig, Network, SUPERVISOR};
