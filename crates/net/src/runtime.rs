//! Node threads and the [`Network`] controller.

use crate::wire::{spawn_wire, NodeEvent, Registry, WireEvent, WireHandle};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use skippub_bits::BitStr;
use skippub_core::{checker, Actor, Msg, ProtocolConfig, Subscriber, Supervisor};
use skippub_trie::Publication;
use skippub_sim::{NodeId, Protocol, World};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// RNG seed for wire delays and per-node protocol randomness.
    pub seed: u64,
    /// Minimum wire delay per message.
    pub min_delay: Duration,
    /// Maximum wire delay per message (delays in `[min, max]` cause
    /// reordering — the non-FIFO channel model).
    pub max_delay: Duration,
    /// Period of each node's `Timeout` action.
    pub timeout_interval: Duration,
    /// Protocol knobs for spawned subscribers.
    pub protocol: ProtocolConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0xC0FFEE,
            min_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(2),
            timeout_interval: Duration::from_millis(5),
            protocol: ProtocolConfig::default(),
        }
    }
}

struct NodeHandle {
    state: Arc<Mutex<Actor>>,
    inbox: Sender<NodeEvent>,
    join: Option<std::thread::JoinHandle<()>>,
}

/// A running multi-threaded deployment of one topic.
pub struct Network {
    cfg: NetConfig,
    registry: Registry,
    wire: WireHandle,
    wire_join: Option<std::thread::JoinHandle<()>>,
    nodes: BTreeMap<NodeId, NodeHandle>,
    next_id: u64,
    seed_ctr: Arc<AtomicU64>,
}

/// The supervisor's well-known address — the *same* definition the
/// simulator's scenario builders use (re-exported rather than redeclared
/// so the two deployments can never drift apart).
pub use skippub_core::scenarios::SUPERVISOR;

impl Network {
    /// Starts the wire and the supervisor.
    pub fn start(cfg: NetConfig) -> Self {
        let registry: Registry = Arc::new(RwLock::new(BTreeMap::new()));
        let (wire, wire_join) = spawn_wire(
            Arc::clone(&registry),
            cfg.seed,
            cfg.min_delay,
            cfg.max_delay,
        );
        let mut net = Network {
            cfg,
            registry,
            wire,
            wire_join: Some(wire_join),
            nodes: BTreeMap::new(),
            next_id: 1,
            seed_ctr: Arc::new(AtomicU64::new(cfg.seed)),
        };
        net.spawn_node(SUPERVISOR, Actor::Supervisor(Supervisor::new(SUPERVISOR)));
        net
    }

    fn spawn_node(&mut self, id: NodeId, actor: Actor) {
        let state = Arc::new(Mutex::new(actor));
        let (tx, rx) = bounded::<NodeEvent>(16384);
        self.registry.write().insert(id, tx.clone());
        let state2 = Arc::clone(&state);
        let wire_tx = self.wire.tx.clone();
        let interval = self.cfg.timeout_interval;
        let seeds = Arc::clone(&self.seed_ctr);
        let join = std::thread::Builder::new()
            .name(format!("skippub-{id}"))
            .spawn(move || {
                let mut next_timeout = Instant::now() + interval;
                loop {
                    let wait = next_timeout.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(wait) {
                        Ok(NodeEvent::Deliver(msg)) => {
                            let seed = seeds.fetch_add(1, Ordering::Relaxed);
                            let mut actor = state2.lock();
                            let sends = skippub_sim::testing::run_handler(id, seed, |ctx| {
                                actor.on_message(ctx, msg)
                            });
                            drop(actor);
                            route(&wire_tx, sends);
                        }
                        Ok(NodeEvent::Stop) => return,
                        Err(RecvTimeoutError::Timeout) => {
                            let seed = seeds.fetch_add(1, Ordering::Relaxed);
                            let mut actor = state2.lock();
                            let sends = skippub_sim::testing::run_handler(id, seed, |ctx| {
                                actor.on_timeout(ctx)
                            });
                            drop(actor);
                            route(&wire_tx, sends);
                            next_timeout = Instant::now() + interval;
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            })
            .expect("spawn node thread");
        self.nodes.insert(
            id,
            NodeHandle {
                state,
                inbox: tx,
                join: Some(join),
            },
        );
    }

    /// Spawns a fresh subscriber thread; it joins via its first timeout.
    pub fn spawn_subscriber(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let sub = Subscriber::new(id, SUPERVISOR, self.cfg.protocol);
        self.spawn_node(id, Actor::Subscriber(Box::new(sub)));
        id
    }

    /// Runs an operation against a node's live state, routing whatever it
    /// sends. Returns `None` if the node is gone.
    fn with_actor<R>(
        &self,
        id: NodeId,
        f: impl FnOnce(&mut Actor, &mut skippub_sim::Ctx<'_, Msg>) -> R,
    ) -> Option<R> {
        let handle = self.nodes.get(&id)?;
        let seed = self.seed_ctr.fetch_add(1, Ordering::Relaxed);
        let mut out = None;
        let mut actor = handle.state.lock();
        let sends = skippub_sim::testing::run_handler(id, seed, |ctx| {
            out = Some(f(&mut actor, ctx));
        });
        drop(actor);
        route(&self.wire.tx, sends);
        out
    }

    /// Publishes `payload` at subscriber `id`; returns the key.
    pub fn publish(&self, id: NodeId, payload: Vec<u8>) -> Option<BitStr> {
        self.with_actor(id, |actor, ctx| {
            actor
                .subscriber_mut()
                .map(|s| s.publish_local(ctx, payload))
        })?
    }

    /// Asks subscriber `id` to leave the topic.
    pub fn unsubscribe(&self, id: NodeId) {
        self.with_actor(id, |actor, _| {
            if let Some(s) = actor.subscriber_mut() {
                s.wants_membership = false;
            }
        });
    }

    /// Re-affirms membership of a previously unsubscribed (but still
    /// running) subscriber: its next timeout re-subscribes.
    pub fn rejoin(&self, id: NodeId) {
        self.with_actor(id, |actor, _| {
            if let Some(s) = actor.subscriber_mut() {
                s.wants_membership = true;
            }
        });
    }

    /// Inserts `publication` directly into `id`'s store, bypassing
    /// flooding (models out-of-band receipt; Theorem 17's arbitrary
    /// initial distribution). Returns whether it was new, or `None` if
    /// `id` is not a live subscriber.
    pub fn seed_publication(&self, id: NodeId, publication: Publication) -> Option<bool> {
        self.with_actor(id, |actor, _| {
            actor.subscriber_mut().map(|s| s.trie.insert(publication))
        })?
    }

    /// Crashes a node abruptly: thread stops, state vanishes, in-flight
    /// messages to it are consumed by the wire (§3.3).
    pub fn crash(&mut self, id: NodeId) {
        self.registry.write().remove(&id);
        if let Some(mut h) = self.nodes.remove(&id) {
            let _ = h.inbox.send(NodeEvent::Stop);
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
    }

    /// Failure-detector feed: report `id` crashed to the supervisor.
    pub fn report_crash(&self, id: NodeId) {
        self.with_actor(SUPERVISOR, |actor, _| {
            if let Some(sup) = actor.supervisor_mut() {
                sup.suspect(id);
            }
        });
    }

    /// Runs `f` against subscriber `id`'s live state — one lock, no
    /// world clone (the cheap path for per-node reads like delivery
    /// draining). Returns `None` if `id` is gone or not a subscriber.
    pub fn with_subscriber<R>(&self, id: NodeId, f: impl FnOnce(&Subscriber) -> R) -> Option<R> {
        let handle = self.nodes.get(&id)?;
        let actor = handle.state.lock();
        actor.subscriber().map(f)
    }

    /// Clones every node's state into a deterministic [`World`] snapshot
    /// so the simulator's checker can judge the live deployment.
    pub fn snapshot(&self) -> World<Actor> {
        let mut world = World::new(0);
        for (id, h) in &self.nodes {
            world.add_node(*id, h.state.lock().clone());
        }
        world
    }

    /// Whether the current snapshot is topology-legitimate.
    pub fn is_legitimate(&self) -> bool {
        checker::is_legitimate(&self.snapshot())
    }

    /// Polls until the topology is legitimate or `timeout` elapses.
    pub fn await_legitimate(&self, timeout: Duration) -> bool {
        self.await_cond(timeout, checker::is_legitimate)
    }

    /// Polls until all tries agree (Theorem 17) or `timeout` elapses.
    pub fn await_pubs_converged(&self, timeout: Duration) -> bool {
        self.await_cond(timeout, |w| checker::publications_converged(w).0)
    }

    fn await_cond(&self, timeout: Duration, pred: impl Fn(&World<Actor>) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(&self.snapshot()) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Wire counters: `(sent, delivered, dropped)`.
    pub fn wire_stats(&self) -> (u64, u64, u64) {
        (
            self.wire.stats.sent.load(Ordering::Relaxed),
            self.wire.stats.delivered.load(Ordering::Relaxed),
            self.wire.stats.dropped.load(Ordering::Relaxed),
        )
    }

    /// Live node IDs (including the supervisor).
    pub fn ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Stops every thread and tears the network down.
    pub fn shutdown(mut self) {
        for (_, h) in self.nodes.iter() {
            let _ = h.inbox.send(NodeEvent::Stop);
        }
        self.registry.write().clear();
        for (_, h) in self.nodes.iter_mut() {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
        let _ = self.wire.tx.send(WireEvent::Stop);
        if let Some(j) = self.wire_join.take() {
            let _ = j.join();
        }
    }
}

fn route(wire: &Sender<WireEvent>, sends: Vec<(NodeId, Msg)>) {
    for (to, msg) in sends {
        let _ = wire.send(WireEvent::Send { to, msg });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            min_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(500),
            timeout_interval: Duration::from_millis(2),
            protocol: ProtocolConfig::default(),
        }
    }

    #[test]
    fn threaded_bootstrap_converges() {
        let mut net = Network::start(fast_cfg(1));
        for _ in 0..8 {
            net.spawn_subscriber();
        }
        assert!(
            net.await_legitimate(Duration::from_secs(30)),
            "threaded bootstrap must stabilize"
        );
        let (sent, _, _) = net.wire_stats();
        assert!(sent > 0);
        net.shutdown();
    }

    #[test]
    fn threaded_publish_floods() {
        let mut net = Network::start(fast_cfg(2));
        let ids: Vec<NodeId> = (0..6).map(|_| net.spawn_subscriber()).collect();
        assert!(net.await_legitimate(Duration::from_secs(30)));
        net.publish(ids[0], b"breaking".to_vec()).unwrap();
        net.publish(ids[3], b"news".to_vec()).unwrap();
        assert!(
            net.await_pubs_converged(Duration::from_secs(30)),
            "publications must reach every subscriber"
        );
        net.shutdown();
    }

    #[test]
    fn threaded_churn_recovers() {
        let mut net = Network::start(fast_cfg(3));
        let ids: Vec<NodeId> = (0..8).map(|_| net.spawn_subscriber()).collect();
        assert!(net.await_legitimate(Duration::from_secs(30)));
        // One graceful leave, one crash.
        net.unsubscribe(ids[1]);
        net.crash(ids[5]);
        std::thread::sleep(Duration::from_millis(50));
        net.report_crash(ids[5]);
        assert!(
            net.await_legitimate(Duration::from_secs(60)),
            "churn must re-stabilize"
        );
        let snap = net.snapshot();
        let sup = snap
            .iter()
            .find_map(|(_, a)| a.supervisor())
            .expect("supervisor");
        assert_eq!(sup.n(), 6);
        net.shutdown();
    }
}
