//! The wire: a delay-and-reorder message fabric between node threads.
//!
//! Every send is stamped with a random delivery delay; the wire thread
//! keeps a min-heap over due times and forwards each message to the
//! destination's channel when due. Two messages sent back-to-back can
//! therefore arrive in either order (non-FIFO), while every message is
//! eventually delivered (reliable, finite delay) — the paper's channel
//! model.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skippub_core::Msg;
use skippub_sim::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events a node thread receives.
pub(crate) enum NodeEvent {
    /// A protocol message arrived.
    Deliver(Msg),
    /// Graceful stop.
    Stop,
}

/// Shared routing table: node → inbox sender.
pub(crate) type Registry = Arc<RwLock<BTreeMap<NodeId, Sender<NodeEvent>>>>;

/// Wire-level counters.
#[derive(Default)]
pub(crate) struct WireStats {
    pub sent: AtomicU64,
    pub delivered: AtomicU64,
    pub dropped: AtomicU64,
}

pub(crate) struct WireHandle {
    pub tx: Sender<WireEvent>,
    pub stats: Arc<WireStats>,
}

/// Events the wire thread receives.
pub(crate) enum WireEvent {
    Send { to: NodeId, msg: Msg },
    Stop,
}

struct Pending {
    due: Instant,
    seq: u64,
    to: NodeId,
    msg: Msg,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Spawns the wire thread. Messages are held for a random delay in
/// `[min_delay, max_delay]` before being forwarded.
pub(crate) fn spawn_wire(
    registry: Registry,
    seed: u64,
    min_delay: Duration,
    max_delay: Duration,
) -> (WireHandle, std::thread::JoinHandle<()>) {
    let (tx, rx): (Sender<WireEvent>, Receiver<WireEvent>) = bounded(65536);
    let stats = Arc::new(WireStats::default());
    let stats2 = Arc::clone(&stats);
    let handle = std::thread::Builder::new()
        .name("skippub-wire".into())
        .spawn(move || wire_loop(rx, registry, stats2, seed, min_delay, max_delay))
        .expect("spawn wire thread");
    (WireHandle { tx, stats }, handle)
}

fn wire_loop(
    rx: Receiver<WireEvent>,
    registry: Registry,
    stats: Arc<WireStats>,
    seed: u64,
    min_delay: Duration,
    max_delay: Duration,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stopping = false;
    loop {
        // Forward everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(p)| p.due <= now) {
            let Reverse(p) = heap.pop().expect("peeked");
            let guard = registry.read();
            match guard.get(&p.to) {
                Some(tx) => match tx.try_send(NodeEvent::Deliver(p.msg)) {
                    Ok(()) => {
                        stats.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(ev)) => {
                        // Back-pressure: retry shortly.
                        drop(guard);
                        let msg = match ev {
                            NodeEvent::Deliver(m) => m,
                            NodeEvent::Stop => continue,
                        };
                        seq += 1;
                        heap.push(Reverse(Pending {
                            due: now + Duration::from_millis(1),
                            seq,
                            to: p.to,
                            msg,
                        }));
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                },
                None => {
                    // Crashed / unknown destination: consumed silently.
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if stopping && heap.is_empty() {
            return;
        }
        let wait = heap
            .peek()
            .map(|Reverse(p)| p.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10))
            .min(Duration::from_millis(10));
        match rx.recv_timeout(wait) {
            Ok(WireEvent::Send { to, msg }) => {
                stats.sent.fetch_add(1, Ordering::Relaxed);
                let span = max_delay.saturating_sub(min_delay);
                let jitter = if span.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(rng.random_range(0..=span.as_nanos() as u64))
                };
                seq += 1;
                heap.push(Reverse(Pending {
                    due: Instant::now() + min_delay + jitter,
                    seq,
                    to,
                    msg,
                }));
            }
            Ok(WireEvent::Stop) => stopping = true,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
