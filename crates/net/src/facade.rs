//! [`NetBackend`]: the threaded runtime behind the backend-agnostic
//! [`PubSub`] facade from `skippub-core`.
//!
//! Under real concurrency there is no global round, so one facade
//! [`PubSub::step`] becomes a short **wall-clock slice** and the
//! `until_*` drivers become quiescence polling: snapshot the live node
//! states, judge them with the very same checker the simulator uses,
//! sleep, repeat. Budgets passed to `until_legit` /
//! `until_pubs_converged` are therefore *time* budgets
//! (`max_steps × poll interval`), not round counts.

use crate::runtime::{NetConfig, Network, SUPERVISOR};
use skippub_core::checker;
use skippub_core::pubsub::{Delivery, EventCursor, PubSub, Stats, SystemBuilder};
use skippub_core::{Actor, TopicId};
use skippub_bits::BitStr;
use skippub_sim::{NodeId, World};
use skippub_trie::Publication;
use std::time::Duration;

/// The threaded single-topic backend: every node on its own OS thread,
/// messages through the delay-and-reorder wire. Shuts the network down
/// on drop (or explicitly via [`NetBackend::shutdown`]).
pub struct NetBackend {
    net: Option<Network>,
    cursor: EventCursor,
    steps: u64,
    poll: Duration,
}

/// The one topic a single-topic backend serves.
const TOPIC: TopicId = TopicId(0);

fn assert_topic(topic: TopicId) {
    assert!(
        topic == TOPIC,
        "single-topic backend serves only TopicId(0), got {topic:?}"
    );
}

impl NetBackend {
    /// Starts a network with the given runtime configuration and a
    /// 10 ms poll slice.
    pub fn start(cfg: NetConfig) -> Self {
        NetBackend {
            net: Some(Network::start(cfg)),
            cursor: EventCursor::new(),
            steps: 0,
            poll: Duration::from_millis(10),
        }
    }

    /// Builds the threaded backend from the same [`SystemBuilder`] the
    /// simulated backends use (seed and protocol knobs are carried
    /// over; wire delays/timeout period keep the `NetConfig` defaults).
    /// Panics if the builder asks for more than one topic.
    pub fn from_builder(builder: &SystemBuilder) -> Self {
        assert!(
            builder.topic_count() == 1,
            "threaded backend serves exactly one topic"
        );
        Self::start(NetConfig {
            seed: builder.seed(),
            protocol: builder.protocol_config(),
            ..NetConfig::default()
        })
    }

    /// Overrides the wall-clock duration of one facade step.
    pub fn with_poll_interval(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// The running network, for probes the facade does not cover
    /// (wire statistics, raw snapshots).
    pub fn network(&self) -> &Network {
        self.net.as_ref().expect("network running")
    }

    /// Mutable access to the running network.
    pub fn network_mut(&mut self) -> &mut Network {
        self.net.as_mut().expect("network running")
    }

    /// Stops every thread and tears the network down.
    pub fn shutdown(mut self) {
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
    }
}

impl Drop for NetBackend {
    fn drop(&mut self) {
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
    }
}

impl PubSub for NetBackend {
    fn backend_name(&self) -> &'static str {
        "threaded"
    }

    fn topic_count(&self) -> u32 {
        1
    }

    fn subscribe(&mut self, topic: TopicId) -> NodeId {
        assert_topic(topic);
        self.network_mut().spawn_subscriber()
    }

    fn join(&mut self, id: NodeId, topic: TopicId) {
        assert_topic(topic);
        self.network().rejoin(id);
    }

    fn unsubscribe(&mut self, id: NodeId, topic: TopicId) {
        assert_topic(topic);
        self.network().unsubscribe(id);
    }

    fn publish(&mut self, id: NodeId, topic: TopicId, payload: Vec<u8>) -> Option<BitStr> {
        assert_topic(topic);
        self.network().publish(id, payload)
    }

    fn seed_publication(&mut self, id: NodeId, topic: TopicId, publication: Publication) -> bool {
        assert_topic(topic);
        self.network()
            .seed_publication(id, publication)
            .unwrap_or(false)
    }

    fn crash(&mut self, id: NodeId) {
        self.network_mut().crash(id);
        self.cursor.forget(id);
    }

    fn report_crash(&mut self, id: NodeId) {
        self.network().report_crash(id);
    }

    fn step(&mut self) {
        std::thread::sleep(self.poll);
        self.steps += 1;
    }

    fn is_legitimate(&self) -> bool {
        self.network().is_legitimate()
    }

    fn publications_converged(&self) -> (bool, usize) {
        checker::publications_converged(&self.network().snapshot())
    }

    fn drain_events(&mut self, id: NodeId) -> Vec<Delivery> {
        // One lock on the one node — not a full-world snapshot.
        let cursor = &mut self.cursor;
        self.net
            .as_ref()
            .expect("network running")
            .with_subscriber(id, |s| cursor.drain(id, [(TOPIC, &s.trie)]))
            .unwrap_or_default()
    }

    fn subscriber_ids(&self) -> Vec<NodeId> {
        self.network()
            .ids()
            .into_iter()
            .filter(|&id| id != SUPERVISOR)
            .collect()
    }

    fn snapshot(&self, topic: TopicId) -> World<Actor> {
        assert_topic(topic);
        self.network().snapshot()
    }

    fn stats(&self) -> Stats {
        let (sent, delivered, dropped) = self.network().wire_stats();
        Stats {
            steps: self.steps,
            sent,
            delivered,
            dropped,
            // The threaded transport has no synchronized round boundary
            // to sample a coherent in-flight total at, and no fault
            // plane (real channels cannot be deterministically faulted).
            peak_in_flight: 0,
            ..Stats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_drives_the_threaded_runtime() {
        let mut ps = NetBackend::from_builder(&SystemBuilder::new(71))
            .with_poll_interval(Duration::from_millis(5));
        let ids: Vec<NodeId> = (0..4).map(|_| ps.subscribe(TOPIC)).collect();
        let (_, ok) = ps.until_legit(6000);
        assert!(ok, "threaded bootstrap must stabilize");
        ps.publish(ids[0], TOPIC, b"over threads".to_vec()).unwrap();
        let (_, ok) = ps.until_pubs_converged(6000);
        assert!(ok);
        for &id in &ids {
            assert_eq!(ps.drain_events(id).len(), 1);
        }
        assert!(ps.stats().sent > 0);
        ps.shutdown();
    }
}
