//! E1 — Figure 1: the skip ring `SR(16)`.
//!
//! Regenerates the figure's triple table `(x, l(x), r(l(x)))` and its
//! edge colouring (16 black ring edges, 8 green level-3, 4 red level-2,
//! 1 blue level-1), then verifies that the *protocol-built* topology
//! (cold bootstrap of 16 subscribers) matches the ideal edge-for-edge.

use crate::{Report, Scale, Table};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
use skippub_ringmath::{IdealSkipRing, Label};

/// Runs E1.
pub fn run(_scale: Scale, seed: u64) -> Report {
    let sr = IdealSkipRing::new(16);

    // The figure's triples, in insertion order.
    let mut triples = Table::new(
        "Figure 1 triples (x, l(x), r(l(x)))",
        &["x", "l(x)", "r(l(x))"],
    );
    for x in 0..16u64 {
        let l = Label::from_index(x);
        triples.row(vec![x.to_string(), l.to_string(), l.r_fraction()]);
    }

    // Edge colouring.
    let mut edges = Table::new(
        "SR(16) edges by level (Figure 1 colours)",
        &["level", "colour", "edges", "paper"],
    );
    let edge_list = sr.edges();
    let count = |lvl: u8| edge_list.iter().filter(|e| e.level == lvl).count();
    for (lvl, colour, paper) in [
        (4u8, "black (ring)", 16),
        (3, "green", 8),
        (2, "red", 4),
        (1, "blue", 1),
    ] {
        edges.row(vec![
            lvl.to_string(),
            colour.to_string(),
            count(lvl).to_string(),
            paper.to_string(),
        ]);
    }

    // Protocol-built SR(16) must equal the ideal.
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::cold_world(16, seed, cfg), cfg);
    let (rounds, converged) = sim.run_until_legit(2000);
    let mut verdicts = vec![
        (
            "edge counts match Figure 1 (16/8/4/1)".to_string(),
            count(4) == 16 && count(3) == 8 && count(2) == 4 && count(1) == 1,
        ),
        (
            format!("protocol bootstrap reaches SR(16) (took {rounds} rounds)"),
            converged,
        ),
    ];
    // Every subscriber's neighbourhood equals the ideal one.
    let mut all_match = converged;
    if converged {
        for id in sim.subscriber_ids() {
            let s = sim.subscriber(id).expect("live");
            let label = s.label.expect("labelled in legit state");
            let (il, ir) = sr.ring_neighbors(label);
            let el = s.eff_left().map(|r| r.label);
            let er = s.eff_right().map(|r| r.label);
            if el != Some(il) || er != Some(ir) {
                all_match = false;
            }
            let mut ideal_sc: Vec<Label> = sr.shortcuts_of(label).iter().map(|t| t.label).collect();
            ideal_sc.sort();
            let got_sc: Vec<Label> = s.shortcuts.keys().copied().collect();
            if ideal_sc != got_sc {
                all_match = false;
            }
        }
    }
    verdicts.push((
        "protocol topology == Definition-2 topology".to_string(),
        all_match,
    ));

    Report {
        id: "E1",
        artefact: "Figure 1",
        claim:
            "SR(16): labels at 1/16-spaced positions; ring + 8/4/1 shortcut edges on levels 3/2/1",
        tables: vec![triples, edges],
        verdicts,
    }
}
