//! E11 — Lemma 6 + §3.3: graceful unsubscribes disconnect the leaver and
//! the system re-stabilizes; unannounced crashes are recovered through
//! the single supervisor-side failure detector. A thin wrapper over the
//! scenario engine: each table row is a warm-start spec with one churn
//! burst and an `until_legit` stop condition.

use crate::scenario::{self, Burst, BurstKind, ScenarioSpec, Stop};
use crate::{Report, Scale, Table};
use skippub_core::{ProtocolConfig, PubSub, TopicId};
use skippub_sim::NodeId;

/// True if no live subscriber in `snap` references `gone` anywhere.
fn disconnected(snap: &skippub_sim::World<skippub_core::Actor>, gone: NodeId) -> bool {
    snap.iter().filter_map(|(_, a)| a.subscriber()).all(|s| {
        let edge_refs = [s.left, s.right, s.ring];
        !edge_refs.into_iter().flatten().any(|r| r.id == gone)
            && !s.shortcuts.values().any(|v| *v == Some(gone))
    })
}

/// Database size at the snapshot's supervisor.
fn supervisor_n(snap: &skippub_sim::World<skippub_core::Actor>) -> usize {
    snap.iter()
        .find_map(|(_, a)| a.supervisor().map(|s| s.n()))
        .expect("snapshot has a supervisor")
}

/// One churn burst over a warm population of `n`: crash-with-detector
/// (3-round latency) or graceful leave.
fn spec(n: usize, k: usize, kind: BurstKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(format!("churn-burst-{n}"), seed)
        .population(n)
        .protocol(ProtocolConfig::topology_only())
        .rounds(4) // leaves room for the 3-round detector latency
        .burst(Burst { at: 0, count: k, kind })
        .stop(Stop::UntilLegit {
            max_extra: 800 * n as u64,
        })
        .settle(0)
}

/// Runs E11.
pub fn run(scale: Scale, seed: u64) -> Report {
    let n = scale.pick(16usize, 64usize);
    let fractions: &[(&str, usize)] = &[("1 node", 1), ("12.5 %", n / 8), ("25 %", n / 4)];
    let modes: &[(&str, BurstKind)] = &[
        ("unsubscribe", BurstKind::Leave),
        (
            "crash",
            BurstKind::Crash {
                detect_after: Some(3),
            },
        ),
    ];
    let mut t = Table::new(
        format!("churn recovery (n = {n})"),
        &[
            "event",
            "count",
            "rounds to legit",
            "leaver disconnected",
            "final n",
        ],
    );
    let mut all_ok = true;
    let mut all_disc = true;
    for (mode_idx, &(mode, kind)) in modes.iter().enumerate() {
        for &(name, k) in fractions {
            let k = k.max(1);
            let spec = spec(n, k, kind, seed ^ mode_idx as u64);
            let mut ps = scenario::builder_for(&spec).build_sim();
            let out = scenario::run_on(&mut ps, &spec, 1);
            all_ok &= out.report.ok();
            let snap = ps.snapshot(TopicId(0));
            let victims = if out.crashed.is_empty() { &out.left } else { &out.crashed };
            let disc = victims.iter().all(|&v| disconnected(&snap, v));
            all_disc &= disc;
            t.row(vec![
                format!("{mode} {name}"),
                k.to_string(),
                out.report.stop_rounds.to_string(),
                disc.to_string(),
                supervisor_n(&snap).to_string(),
            ]);
        }
    }

    Report {
        id: "E11",
        artefact: "Lemma 6 + §3.3",
        claim: "unsubscribes disconnect the leaver; crashes recover via the supervisor's failure detector alone",
        tables: vec![t],
        verdicts: vec![
            ("system re-stabilizes after every churn burst".into(), all_ok),
            (
                "departed/crashed nodes end fully unreferenced (Lemma 6)".into(),
                all_disc,
            ),
        ],
    }
}
