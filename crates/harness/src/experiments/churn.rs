//! E11 — Lemma 6 + §3.3: graceful unsubscribes disconnect the leaver and
//! the system re-stabilizes; unannounced crashes are recovered through
//! the single supervisor-side failure detector (no per-subscriber
//! detectors needed). Driven through the backend-agnostic [`PubSub`]
//! facade; disconnection is judged on facade snapshots.

use crate::{Report, Scale, Table};
use skippub_core::pubsub::SimBackend;
use skippub_core::{scenarios, ProtocolConfig, PubSub, TopicId};
use skippub_sim::NodeId;

/// The single topic this experiment runs on.
const TOPIC: TopicId = TopicId(0);

/// True if no live subscriber in `snap` references `gone` anywhere.
fn disconnected(snap: &skippub_sim::World<skippub_core::Actor>, gone: NodeId) -> bool {
    snap.iter().filter_map(|(_, a)| a.subscriber()).all(|s| {
        let edge_refs = [s.left, s.right, s.ring];
        !edge_refs.into_iter().flatten().any(|r| r.id == gone)
            && !s.shortcuts.values().any(|v| *v == Some(gone))
    })
}

/// Database size at the snapshot's supervisor.
fn supervisor_n(snap: &skippub_sim::World<skippub_core::Actor>) -> usize {
    snap.iter()
        .find_map(|(_, a)| a.supervisor().map(|s| s.n()))
        .expect("snapshot has a supervisor")
}

/// Runs E11.
pub fn run(scale: Scale, seed: u64) -> Report {
    let n = scale.pick(16usize, 64usize);
    let fractions: &[(&str, usize)] = &[("1 node", 1), ("12.5 %", n / 8), ("25 %", n / 4)];
    let cfg = ProtocolConfig::topology_only();
    let mut t = Table::new(
        format!("churn recovery (n = {n})"),
        &[
            "event",
            "count",
            "rounds to legit",
            "leaver disconnected",
            "final n",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_ok = true;
    let mut all_disc = true;

    // --- graceful unsubscribes ---
    for &(name, k) in fractions {
        let k = k.max(1);
        let world = scenarios::legit_world(n, seed, cfg);
        let mut ps = SimBackend::from_world(world, cfg);
        let victims: Vec<NodeId> = ps.subscriber_ids().into_iter().step_by(3).take(k).collect();
        for &v in &victims {
            ps.unsubscribe(v, TOPIC);
        }
        let (rounds, ok) = ps.until_legit(800 * n as u64);
        let snap = ps.snapshot(TOPIC);
        let disc = victims.iter().all(|&v| disconnected(&snap, v));
        all_ok &= ok;
        all_disc &= disc;
        t.row(vec![
            format!("unsubscribe {name}"),
            k.to_string(),
            rounds.to_string(),
            disc.to_string(),
            supervisor_n(&snap).to_string(),
        ]);
    }

    // --- crashes (failure detector reports after 3 rounds) ---
    for &(name, k) in fractions {
        let k = k.max(1);
        let world = scenarios::legit_world(n, seed ^ 0xC4A5, cfg);
        let mut ps = SimBackend::from_world(world, cfg);
        let victims: Vec<NodeId> = ps.subscriber_ids().into_iter().step_by(4).take(k).collect();
        for &v in &victims {
            ps.crash(v);
        }
        for _ in 0..3 {
            ps.step(); // detector latency
        }
        for &v in &victims {
            ps.report_crash(v);
        }
        let (rounds, ok) = ps.until_legit(800 * n as u64);
        all_ok &= ok;
        let snap = ps.snapshot(TOPIC);
        let disc = victims.iter().all(|&v| disconnected(&snap, v));
        all_disc &= disc;
        t.row(vec![
            format!("crash {name}"),
            k.to_string(),
            rounds.to_string(),
            disc.to_string(),
            supervisor_n(&snap).to_string(),
        ]);
    }
    verdicts.push((
        "system re-stabilizes after every churn burst".into(),
        all_ok,
    ));
    verdicts.push((
        "departed/crashed nodes end fully unreferenced (Lemma 6)".into(),
        all_disc,
    ));

    Report {
        id: "E11",
        artefact: "Lemma 6 + §3.3",
        claim: "unsubscribes disconnect the leaver; crashes recover via the supervisor's failure detector alone",
        tables: vec![t],
        verdicts,
    }
}
