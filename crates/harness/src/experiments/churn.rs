//! E11 — Lemma 6 + §3.3: graceful unsubscribes disconnect the leaver and
//! the system re-stabilizes; unannounced crashes are recovered through
//! the single supervisor-side failure detector (no per-subscriber
//! detectors needed).

use crate::{Report, Scale, Table};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
use skippub_sim::NodeId;

/// True if no live subscriber references `gone` anywhere.
fn disconnected(sim: &SkipRingSim, gone: NodeId) -> bool {
    sim.subscriber_ids().into_iter().all(|id| {
        let s = sim.subscriber(id).expect("live");
        let edge_refs = [s.left, s.right, s.ring];
        !edge_refs.into_iter().flatten().any(|r| r.id == gone)
            && !s.shortcuts.values().any(|v| *v == Some(gone))
    })
}

/// Runs E11.
pub fn run(scale: Scale, seed: u64) -> Report {
    let n = scale.pick(16usize, 64usize);
    let fractions: &[(&str, usize)] = &[("1 node", 1), ("12.5 %", n / 8), ("25 %", n / 4)];
    let cfg = ProtocolConfig::topology_only();
    let mut t = Table::new(
        format!("churn recovery (n = {n})"),
        &[
            "event",
            "count",
            "rounds to legit",
            "leaver disconnected",
            "final n",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_ok = true;
    let mut all_disc = true;

    // --- graceful unsubscribes ---
    for &(name, k) in fractions {
        let k = k.max(1);
        let world = scenarios::legit_world(n, seed, cfg);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let victims: Vec<NodeId> = sim
            .subscriber_ids()
            .into_iter()
            .step_by(3)
            .take(k)
            .collect();
        for &v in &victims {
            sim.unsubscribe(v);
        }
        let (rounds, ok) = sim.run_until_legit(800 * n as u64);
        let disc = victims.iter().all(|&v| disconnected(&sim, v));
        all_ok &= ok;
        all_disc &= disc;
        t.row(vec![
            format!("unsubscribe {name}"),
            k.to_string(),
            rounds.to_string(),
            disc.to_string(),
            sim.supervisor().n().to_string(),
        ]);
    }

    // --- crashes (failure detector reports after 3 rounds) ---
    for &(name, k) in fractions {
        let k = k.max(1);
        let world = scenarios::legit_world(n, seed ^ 0xC4A5, cfg);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let victims: Vec<NodeId> = sim
            .subscriber_ids()
            .into_iter()
            .step_by(4)
            .take(k)
            .collect();
        for &v in &victims {
            sim.crash(v);
        }
        for _ in 0..3 {
            sim.run_round(); // detector latency
        }
        for &v in &victims {
            sim.report_crash(v);
        }
        let (rounds, ok) = sim.run_until_legit(800 * n as u64);
        all_ok &= ok;
        let disc = victims.iter().all(|&v| disconnected(&sim, v));
        all_disc &= disc;
        t.row(vec![
            format!("crash {name}"),
            k.to_string(),
            rounds.to_string(),
            disc.to_string(),
            sim.supervisor().n().to_string(),
        ]);
    }
    verdicts.push((
        "system re-stabilizes after every churn burst".into(),
        all_ok,
    ));
    verdicts.push((
        "departed/crashed nodes end fully unreferenced (Lemma 6)".into(),
        all_disc,
    ));

    Report {
        id: "E11",
        artefact: "Lemma 6 + §3.3",
        claim: "unsubscribes disconnect the leaver; crashes recover via the supervisor's failure detector alone",
        tables: vec![t],
        verdicts,
    }
}
