//! E7 — Lemma 9: each database-corruption class (i)–(iv) of §3.1 is
//! repaired by purely local supervisor actions, and the system returns to
//! a legitimate state.

use crate::{Report, Scale, Table};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim, Supervisor};
use skippub_ringmath::Label;

fn corrupt(sup: &mut Supervisor, class: &str, n: usize) {
    match class {
        "(i) ⊥-valued tuple" => {
            sup.database
                .insert(Label::from_parts(0xDEAD << 32, 14).unwrap(), None);
        }
        "(ii) duplicate subscriber" => {
            let v = sup
                .database
                .values()
                .next()
                .copied()
                .flatten()
                .expect("nonempty");
            sup.database
                .insert(Label::from_index(3 * n as u64), Some(v));
        }
        "(iii) missing label" => {
            let victim = Label::from_index((n / 2) as u64);
            let node = sup.database.remove(&victim).flatten().expect("present");
            // Park the node on an out-of-range slot so n stays the same.
            sup.database
                .insert(Label::from_index(5 * n as u64), Some(node));
        }
        "(iv) out-of-range label" => {
            // An entry with l(j), j ≥ n. Per the paper's model (§1.1)
            // node IDs are never corrupted, so the entry references a
            // live subscriber.
            let v = sup
                .database
                .values()
                .last()
                .copied()
                .flatten()
                .expect("nonempty");
            sup.database
                .insert(Label::from_index(7 * n as u64 + 3), Some(v));
        }
        _ => unreachable!(),
    }
}

fn db_valid(sup: &Supervisor) -> bool {
    let n = sup.database.len() as u64;
    sup.database.values().all(Option::is_some)
        && sup
            .database
            .keys()
            .all(|l| matches!(l.index(), Some(i) if i < n))
}

/// Runs E7.
pub fn run(scale: Scale, seed: u64) -> Report {
    let n = scale.pick(8usize, 32usize);
    let cfg = ProtocolConfig::topology_only();
    let classes = [
        "(i) ⊥-valued tuple",
        "(ii) duplicate subscriber",
        "(iii) missing label",
        "(iv) out-of-range label",
    ];
    let mut t = Table::new(
        format!("database self-repair (n = {n})"),
        &[
            "corruption class",
            "timeouts to valid db",
            "rounds to legit",
            "messages by repair",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_repaired = true;
    let mut all_local = true;
    for class in classes {
        let world = scenarios::legit_world(n, seed, cfg);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let sup_id = sim.supervisor_id();
        if let Some(s) = sim
            .world_mut()
            .node_mut(sup_id)
            .and_then(skippub_core::Actor::supervisor_mut)
        {
            corrupt(s, class, n)
        }
        assert!(!db_valid(sim.supervisor()), "{class}: corruption must take");
        // Count supervisor timeouts (= rounds) until the db is valid.
        let before = sim.metrics().clone();
        let mut to_valid = 0u64;
        while !db_valid(sim.supervisor()) && to_valid < 100 {
            sim.run_round();
            to_valid += 1;
        }
        // Repair itself must be local: the only supervisor messages are
        // the usual round-robin SetData (1/round) and probe replies.
        let d = sim.metrics().diff(&before);
        let sup_msgs = d.sent_by(sup_id);
        let local = sup_msgs <= 2 * to_valid + 2;
        all_local &= local;
        let (rounds, ok) = sim.run_until_legit(800 * n as u64);
        all_repaired &= ok && db_valid(sim.supervisor());
        t.row(vec![
            class.into(),
            to_valid.to_string(),
            rounds.to_string(),
            format!("{sup_msgs} (≤ {} background)", 2 * to_valid + 2),
        ]);
    }
    verdicts.push((
        "every corruption class is repaired (Lemma 9)".into(),
        all_repaired,
    ));
    verdicts.push((
        "repair generates no extra supervisor messages (local actions only)".into(),
        all_local,
    ));

    Report {
        id: "E7",
        artefact: "Lemma 9 / §3.1",
        claim: "the supervisor's database self-repairs from corruption classes (i)–(iv) locally",
        tables: vec![t],
        verdicts,
    }
}
