//! E4 — Theorem 5: in a legitimate state, the expected number of
//! configuration requests reaching the supervisor per timeout interval is
//! below 1 (the series `Σ 1/(2k²) → π²/12 ≈ 0.822`), independent of `n`.

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
use skippub_ringmath::analytics;

/// Runs E4.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(&[16usize, 64][..], &[16usize, 64, 256, 1024, 4096][..]);
    let rounds: u64 = scale.pick(400, 3000);
    let mut t = Table::new(
        "configuration requests per timeout interval (legitimate state)",
        &[
            "n",
            "rounds",
            "probes",
            "measured/round",
            "analytic Σ f(k)p(k)",
            "< 1",
        ],
    );
    let cfg = ProtocolConfig::topology_only();
    let mut verdicts = Vec::new();
    let mut all_below_one = true;
    let mut all_close = true;
    for &n in sweep {
        let world = scenarios::legit_world(n, seed, cfg);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let before = sim.metrics().clone();
        for _ in 0..rounds {
            sim.run_round();
        }
        let diff = sim.metrics().diff(&before);
        let probes = diff.kind("GetConfiguration");
        let rate = probes as f64 / rounds as f64;
        let analytic = analytics::expected_probe_rate(n as u64);
        all_below_one &= rate < 1.0;
        // Shape check: within ±40% of the analytic expectation (it is a
        // low-rate Bernoulli sum; variance shrinks with rounds).
        all_close &= (rate - analytic).abs() <= 0.4 * analytic.max(0.2);
        t.row(vec![
            n.to_string(),
            rounds.to_string(),
            probes.to_string(),
            format!("{rate:.3}"),
            format!("{analytic:.3}"),
            (rate < 1.0).to_string(),
        ]);
    }
    verdicts.push((
        "measured rate < 1 for every n (Theorem 5)".into(),
        all_below_one,
    ));
    verdicts.push(("measured rate tracks the analytic series".into(), all_close));
    verdicts.push((
        format!(
            "series limit π²/12 ≈ {} bounds all rates",
            f2(std::f64::consts::PI.powi(2) / 12.0)
        ),
        all_below_one,
    ));

    Report {
        id: "E4",
        artefact: "Theorem 5",
        claim: "expected supervisor probes per timeout interval < 1, independent of n",
        tables: vec![t],
        verdicts,
    }
}
