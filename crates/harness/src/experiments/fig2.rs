//! E2 — Figure 2 + the §4.2 walk-through: Patricia-trie anti-entropy
//! between subscribers `u` (publications 000, 010, 100, 101) and `v`
//! (000, 010, 100). Reproduces the exact message sequence of the paper:
//! the u-initiated direction terminates without transfer; the v-initiated
//! direction elicits `CheckAndPublish(v, (100,h(P3)), 101)` and delivers
//! P4.

use crate::{Report, Scale, Table};
use skippub_bits::BitStr;
use skippub_trie::{sync, CheckOutcome, PatriciaTrie, Publication};

fn bs(s: &str) -> BitStr {
    s.parse().unwrap()
}

fn raw(key: &str) -> Publication {
    Publication::with_raw_key(bs(key), 0, Vec::new())
}

fn figure2() -> (PatriciaTrie, PatriciaTrie) {
    let mut u = PatriciaTrie::new();
    for k in ["000", "010", "100", "101"] {
        u.insert(raw(k));
    }
    let mut v = PatriciaTrie::new();
    for k in ["000", "010", "100"] {
        v.insert(raw(k));
    }
    (u, v)
}

/// Runs E2.
pub fn run(_scale: Scale, _seed: u64) -> Report {
    let (mut u, mut v) = figure2();
    let mut trace = Table::new(
        "§4.2 message walk-through",
        &["step", "message", "handled at", "outcome"],
    );
    let mut verdicts = Vec::new();

    // Direction 1: u initiates.
    let ru = u.root_summary().expect("u non-empty");
    trace.row(vec![
        "1".into(),
        "CheckTrie(u, r_u)".into(),
        "v".into(),
        "root hashes differ → descend".into(),
    ]);
    let d1_terminates;
    match v.check(&ru) {
        CheckOutcome::Descend(c0, c1) => {
            trace.row(vec![
                "2".into(),
                format!("CheckTrie(v, ({},·), ({},·))", c0.label, c1.label),
                "u".into(),
                "compare children".into(),
            ]);
            let o0 = u.check(&c0);
            let o1 = u.check(&c1);
            d1_terminates = o0 == CheckOutcome::Match && o1 == CheckOutcome::Match;
            trace.row(vec![
                "3".into(),
                "—".into(),
                "u".into(),
                "both hashes equal → chain ends".into(),
            ]);
        }
        _ => d1_terminates = false,
    }
    verdicts.push((
        "u-initiated direction ends at u without any transfer".into(),
        d1_terminates && v.len() == 3,
    ));

    // Direction 2: v initiates (paper: delivers P4).
    let rv = v.root_summary().expect("v non-empty");
    let mut got_cap = false;
    let mut publish_prefix_is_101 = false;
    if let CheckOutcome::Descend(c0, c1) = u.check(&rv) {
        trace.row(vec![
            "4".into(),
            "CheckTrie(v, r_v)".into(),
            "u".into(),
            "root hashes differ → descend".into(),
        ]);
        trace.row(vec![
            "5".into(),
            format!("CheckTrie(u, ({},·), ({},·))", c0.label, c1.label),
            "v".into(),
            "node 10 missing in v.T".into(),
        ]);
        for c in [c0, c1] {
            match v.check(&c) {
                CheckOutcome::Match => {}
                CheckOutcome::Missing {
                    cover,
                    publish_prefix,
                } => {
                    got_cap = true;
                    publish_prefix_is_101 = publish_prefix == bs("101")
                        && cover.as_ref().is_some_and(|c| c.label == bs("100"));
                    trace.row(vec![
                        "6".into(),
                        format!(
                            "CheckAndPublish(v, ({},·), p={publish_prefix})",
                            cover.map(|c| c.label.to_string()).unwrap_or("∅".into())
                        ),
                        "u".into(),
                        "u ships publications with prefix 101".into(),
                    ]);
                }
                other => {
                    trace.row(vec![
                        "6".into(),
                        format!("{other:?}"),
                        "v".into(),
                        "unexpected".into(),
                    ]);
                }
            }
        }
    }
    verdicts.push((
        "v-initiated direction yields CheckAndPublish(v, (100, h(P3)), 101)".into(),
        got_cap && publish_prefix_is_101,
    ));

    // Full reconciliation via the sync driver.
    let stats = sync::sync_pair(&mut u, &mut v, 8);
    trace.row(vec![
        "7".into(),
        "Publish({P4})".into(),
        "v".into(),
        "v inserts P4; root hashes now equal".into(),
    ]);
    verdicts.push((
        "after sync both tries hold {P1..P4} with equal root hashes".into(),
        stats.converged && v.len() == 4 && v.contains_key(&bs("101")),
    ));

    let mut stats_table = Table::new(
        "reconciliation cost",
        &[
            "CheckTrie msgs",
            "CheckAndPublish msgs",
            "Publish msgs",
            "publications sent",
        ],
    );
    stats_table.row(vec![
        stats.check_msgs.to_string(),
        stats.check_and_publish_msgs.to_string(),
        stats.publish_msgs.to_string(),
        stats.publications_sent.to_string(),
    ]);
    verdicts.push((
        "exactly the 1 missing publication is transferred".into(),
        stats.publications_sent == 1,
    ));

    Report {
        id: "E2",
        artefact: "Figure 2 + §4.2 example",
        claim:
            "Merkle-style CheckTrie locates exactly the missing publication P4 and ships only it",
        tables: vec![trace, stats_table],
        verdicts,
    }
}
