//! E13 — §4 + §1.3: the supervisor's message load is **linear in the
//! number of topics** but **independent of the number of subscribers**;
//! consistent-hashing shards flatten the per-supervisor load. The
//! population/warmup workload is a scenario spec; the measurement window
//! diffs simulator metrics around a fixed number of facade steps.

use crate::scenario::{self, ScenarioSpec, Stop};
use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::sharding::SupervisorShards;
use skippub_core::topics::TopicId;
use skippub_core::{ProtocolConfig, PubSub};
use skippub_sim::NodeId;

/// The population/warmup spec: `topics × subs` distinct clients spread
/// round-robin (exactly `subs` per topic), cold-started and driven for
/// `warmup` rounds into steady state.
fn spec(topics: usize, subs: usize, warmup: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(format!("topics-{topics}x{subs}"), seed)
        .topics(topics as u32)
        .population(topics * subs)
        .protocol(ProtocolConfig::topology_only())
        .cold()
        .rounds(warmup)
        .stop(Stop::FixedRounds)
        .settle(0)
}

/// Runs E13.
pub fn run(scale: Scale, seed: u64) -> Report {
    let topic_sweep: &[usize] = scale.pick(&[1usize, 4][..], &[1usize, 4, 16, 64][..]);
    let subs_sweep: &[usize] = scale.pick(&[4usize, 8][..], &[4usize, 16, 64][..]);
    let warmup = scale.pick(120u64, 400u64);
    let measure = scale.pick(60u64, 200u64);

    let mut t = Table::new(
        "supervisor load vs topics × subscribers (steady state)",
        &["topics", "subs/topic", "sup msgs/round", "per topic"],
    );
    let mut loads: std::collections::BTreeMap<(usize, usize), f64> = Default::default();
    for &topics in topic_sweep {
        for &subs in subs_sweep {
            let s = spec(topics, subs, warmup, seed);
            let mut ps = scenario::builder_for(&s).build_multi();
            scenario::run_on(&mut ps, &s, 1);
            let before = ps.metrics().clone();
            for _ in 0..measure {
                ps.step();
            }
            let d = ps.metrics().diff(&before);
            let rate = d.sent_by(ps.supervisor_id()) as f64 / measure as f64;
            loads.insert((topics, subs), rate);
            t.row(vec![
                topics.to_string(),
                subs.to_string(),
                f2(rate),
                f2(rate / topics as f64),
            ]);
        }
    }
    // Shape checks: linear in topics (at fixed subs), flat in subscribers
    // (at fixed topics).
    let (t0, t1) = (topic_sweep[0], *topic_sweep.last().expect("nonempty"));
    let (s0, s1) = (subs_sweep[0], *subs_sweep.last().expect("nonempty"));
    let (lo, hi) = (loads[&(t0, s0)] / t0 as f64, loads[&(t1, s0)] / t1 as f64);
    let linear_in_topics = hi <= lo * 1.75 && lo <= hi * 1.75;
    let flat_in_subs = loads[&(t1, s1)] <= loads[&(t1, s0)] * 1.6 + 1.0;

    // Sharded supervisors: static consistent-hash split of per-topic load.
    let shard_counts: &[usize] = &[1, 2, 4, 8];
    let total_topics = scale.pick(64usize, 512usize);
    let mut shard_table = Table::new(
        format!("consistent-hash sharding of {total_topics} topics (§1.3)"),
        &["supervisors", "max topics/supervisor", "ideal", "imbalance"],
    );
    let mut sharding_helps = true;
    let mut prev_max = usize::MAX;
    for &k in shard_counts {
        let sups: Vec<NodeId> = (100..100 + k as u64).map(NodeId).collect();
        let shards = SupervisorShards::new(&sups, 64);
        let load = shards.load((0..total_topics as u32).map(TopicId));
        let max = load.values().copied().max().unwrap_or(0);
        let ideal = total_topics.div_ceil(k);
        sharding_helps &= max <= prev_max;
        prev_max = max;
        shard_table.row(vec![
            k.to_string(),
            max.to_string(),
            ideal.to_string(),
            f2(max as f64 / ideal as f64),
        ]);
    }

    let verdicts = vec![
        (
            "supervisor load grows linearly with topics".to_string(),
            linear_in_topics,
        ),
        (
            "supervisor load independent of subscriber count".to_string(),
            flat_in_subs,
        ),
        (
            "sharding monotonically reduces max per-supervisor load".to_string(),
            sharding_helps,
        ),
    ];

    Report {
        id: "E13",
        artefact: "§4 remark + §1.3 scaling",
        claim: "supervisor message load is linear in |T|, independent of subscribers; shards flatten it",
        tables: vec![t, shard_table],
        verdicts,
    }
}
