//! E3 — Lemma 3: skip-ring degrees are `O(log n)` worst-case, ≤ 4 on
//! average, with `|E_R ∪ E_S| = 4n − 4` directed reference slots for full
//! systems.

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_ringmath::{analytics, IdealSkipRing};

/// Runs E3.
pub fn run(scale: Scale, _seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(
        &[16usize, 64, 256][..],
        &[16usize, 64, 256, 1024, 4096, 8192][..],
    );
    let mut t = Table::new(
        "degrees and edges vs Lemma 3",
        &[
            "n",
            "max deg",
            "bound 2(log n)",
            "avg deg",
            "paper avg ≤",
            "directed edges",
            "4n−4",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_bounded = true;
    let mut all_avg = true;
    let mut all_edges = true;
    for &n in sweep {
        let sr = IdealSkipRing::new(n);
        let stats = sr.degree_stats();
        let log_n = analytics::max_level(n as u64) as usize;
        let bound = 2 * log_n;
        all_bounded &= stats.max_degree <= bound;
        all_avg &= stats.avg_degree <= 4.0 + 1e-9;
        let closed = analytics::directed_edges_full(n as u64);
        if n.is_power_of_two() {
            all_edges &= stats.directed_edges as u64 == closed;
        }
        t.row(vec![
            n.to_string(),
            stats.max_degree.to_string(),
            bound.to_string(),
            f2(stats.avg_degree),
            "4.00".to_string(),
            stats.directed_edges.to_string(),
            closed.to_string(),
        ]);
    }
    // Per-label-length worst case for one representative n.
    let n = *sweep.last().expect("non-empty sweep");
    let sr = IdealSkipRing::new(n);
    let adj = sr.adjacency();
    let log_n = analytics::max_level(n as u64);
    let mut by_k = Table::new(
        format!("degree by label length (n = {n})"),
        &[
            "k = |label|",
            "f(k) nodes",
            "max deg",
            "Lemma-3 bound 2(log n − k + 1)",
        ],
    );
    let mut per_k_ok = true;
    for k in 1..=log_n {
        let nodes: Vec<_> = sr.labels().iter().filter(|l| l.len() == k).collect();
        let max_deg = nodes.iter().map(|l| adj[l].len()).max().unwrap_or(0);
        let bound = analytics::degree_bound(k, log_n);
        per_k_ok &= max_deg as u64 <= bound;
        by_k.row(vec![
            k.to_string(),
            nodes.len().to_string(),
            max_deg.to_string(),
            bound.to_string(),
        ]);
    }
    verdicts.push(("max degree ≤ 2·log n for every n".into(), all_bounded));
    verdicts.push(("average degree ≤ 4 for every n".into(), all_avg));
    verdicts.push((
        "directed edge count = 4n − 4 at powers of two".into(),
        all_edges,
    ));
    verdicts.push((
        "per-label-length degrees respect 2(log n − k + 1)".into(),
        per_k_ok,
    ));

    Report {
        id: "E3",
        artefact: "Lemma 3",
        claim: "degree: logarithmic worst case, constant (≤4) average; |E_R ∪ E_S| = 4n−4",
        tables: vec![t, by_k],
        verdicts,
    }
}
