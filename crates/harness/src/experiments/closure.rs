//! E12 — Theorems 13 + 23 (closure): starting legitimate, the system
//! *stays* legitimate: no topology mutations, no publication-trie changes,
//! and only constant-rate maintenance traffic (ring checks, one shortcut
//! probe per node, the supervisor's single round-robin config, and the
//! sub-1/interval Theorem-5 probes).

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};

/// Runs E12.
pub fn run(scale: Scale, seed: u64) -> Report {
    let n = scale.pick(16usize, 64usize);
    let rounds = scale.pick(150u64, 1000u64);
    let cfg = ProtocolConfig::topology_only();
    let world = scenarios::legit_world(n, seed, cfg);
    let mut sim = SkipRingSim::from_world(world, cfg);

    let before = sim.metrics().clone();
    let mut legit_every_round = true;
    for _ in 0..rounds {
        sim.run_round();
        if !sim.is_legitimate() {
            legit_every_round = false;
        }
    }
    let d = sim.metrics().diff(&before);

    let mut t = Table::new(
        format!("steady-state traffic over {rounds} rounds (n = {n})"),
        &["message kind", "total", "per node·round", "classification"],
    );
    let classify = |k: &str| match k {
        "Check" | "CheckShortcut" | "IntroduceShortcut" | "CheckTrie" => "maintenance (benign)",
        "GetConfiguration" => "Theorem-5 probe",
        "SetData" => "round-robin refresh / probe reply",
        _ => "MUTATING",
    };
    let mut mutating = 0u64;
    for (kind, count) in d.by_kind() {
        if classify(kind) == "MUTATING" {
            mutating += count;
        }
        t.row(vec![
            kind.to_string(),
            count.to_string(),
            format!("{:.3}", count as f64 / (rounds * (n as u64 + 1)) as f64),
            classify(kind).into(),
        ]);
    }
    let probe_rate = d.kind("GetConfiguration") as f64 / rounds as f64;
    let mut summary = Table::new(
        "closure summary",
        &[
            "legit every round",
            "mutating msgs",
            "probes/round",
            "supervisor msgs/round",
        ],
    );
    let sup_rate = d.sent_by(sim.supervisor_id()) as f64 / rounds as f64;
    summary.row(vec![
        legit_every_round.to_string(),
        mutating.to_string(),
        f2(probe_rate),
        f2(sup_rate),
    ]);

    let verdicts = vec![
        (
            "topology stays legitimate in every round (Theorem 13)".to_string(),
            legit_every_round,
        ),
        ("zero topology-mutating messages".to_string(), mutating == 0),
        (
            "supervisor maintenance ≤ 2 msgs/interval".to_string(),
            sup_rate <= 2.0,
        ),
        (
            "probe rate < 1 (Theorem 5 in situ)".to_string(),
            probe_rate < 1.0,
        ),
    ];

    Report {
        id: "E12",
        artefact: "Theorem 13 + Theorem 23",
        claim:
            "legitimate states are closed under the protocol; maintenance is constant per process",
        tables: vec![t, summary],
        verdicts,
    }
}
