//! The experiment registry. IDs match DESIGN.md §3 / EXPERIMENTS.md.

pub mod ablation;
pub mod churn;
pub mod closure;
pub mod congestion;
pub mod convergence;
pub mod db_repair;
pub mod degree;
pub mod fig1;
pub mod fig2;
pub mod flooding;
pub mod op_overhead;
pub mod probe_rate;
pub mod pub_convergence;
pub mod token;
pub mod topics;

use crate::{Report, Scale};

/// An experiment entry point.
pub type Runner = fn(Scale, u64) -> Report;

/// All experiments: `(cli name, runner)`.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig1", fig1::run as Runner),
        ("fig2", fig2::run),
        ("degree", degree::run),
        ("probe", probe_rate::run),
        ("ops", op_overhead::run),
        ("convergence", convergence::run),
        ("dbrepair", db_repair::run),
        ("pubconv", pub_convergence::run),
        ("flooding", flooding::run),
        ("congestion", congestion::run),
        ("churn", churn::run),
        ("closure", closure::run),
        ("topics", topics::run),
        ("ablation", ablation::run),
        ("token", token::run),
    ]
}

/// Runs one experiment by name.
pub fn run_one(name: &str, scale: Scale, seed: u64) -> Option<Report> {
    registry()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_passes_at_small_scale() {
        for (name, f) in registry() {
            let report = f(Scale::Small, 42);
            assert!(
                report.ok(),
                "experiment {name} failed: {:?}",
                report
                    .verdicts
                    .iter()
                    .filter(|(_, ok)| !ok)
                    .collect::<Vec<_>>()
            );
            assert!(!report.tables.is_empty(), "{name} produced no tables");
        }
    }

    #[test]
    fn run_one_finds_experiments() {
        assert!(run_one("fig1", Scale::Small, 1).is_some());
        assert!(run_one("nope", Scale::Small, 1).is_none());
    }
}
