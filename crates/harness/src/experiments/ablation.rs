//! E14 — ablation of the implementation's documented extensions
//! (DESIGN.md §7.4): with shortcut-slot verification (`CheckShortcut`)
//! disabled, the protocol is the paper's verbatim §3.2.2 — and stale slot
//! bindings circulate between introducers, stalling or dramatically
//! slowing convergence from partitioned starts. This experiment justifies
//! the deviation quantitatively.

use crate::{Report, Scale, Table};
use skippub_core::scenarios::{adversarial_world, Adversary};
use skippub_core::{ProtocolConfig, SkipRingSim};

fn rounds_to_legit(n: usize, seed: u64, cfg: ProtocolConfig, budget: u64) -> (u64, bool) {
    let world = adversarial_world(n, seed, cfg, Adversary::Partitioned(4));
    let mut sim = SkipRingSim::from_world(world, cfg);
    sim.run_until_legit(budget)
}

/// Runs E14.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(&[24usize][..], &[24usize, 32, 48][..]);
    let seeds = scale.pick(10u64, 20u64);
    let budget = scale.pick(4_000u64, 8_000u64);
    let mut t = Table::new(
        "convergence from partitioned starts: with vs without slot verification",
        &[
            "n",
            "verified: mean rounds",
            "verbatim: mean rounds",
            "slowdown",
            "verbatim timeouts",
        ],
    );
    let mut verdicts = Vec::new();
    let mut verified_always_ok = true;
    let mut mean_never_worse = true;
    let mut verbatim_struggles = false;
    for &n in sweep {
        let mut with_total = 0u64;
        let mut without_total = 0u64;
        let mut without_timeouts = 0u32;
        for s in 0..seeds {
            let on = ProtocolConfig::topology_only();
            let off = ProtocolConfig {
                verify_shortcuts: false,
                ..on
            };
            let (r_on, ok_on) = rounds_to_legit(n, seed + s, on, budget);
            let (r_off, ok_off) = rounds_to_legit(n, seed + s, off, budget);
            verified_always_ok &= ok_on;
            with_total += r_on;
            without_total += r_off; // censored at budget when stalled
            if !ok_off {
                without_timeouts += 1;
            }
        }
        let mean_on = with_total as f64 / seeds as f64;
        let mean_off = without_total as f64 / seeds as f64;
        mean_never_worse &= mean_on <= mean_off;
        // The stale-binding pathology is probabilistic per instance;
        // across a seed population it shows up as a ≥2× mean slowdown
        // and/or outright stalls (measured: ≈4–17× at n = 24–48).
        verbatim_struggles |= mean_off >= 2.0 * mean_on || without_timeouts > 0;
        t.row(vec![
            n.to_string(),
            format!("{mean_on:.1}"),
            format!(
                "{mean_off:.1}{}",
                if without_timeouts > 0 {
                    " (censored)"
                } else {
                    ""
                }
            ),
            format!("{:.1}×", mean_off / mean_on.max(1.0)),
            format!("{without_timeouts}/{seeds}"),
        ]);
    }
    verdicts.push((
        "verified variant always converges and is never slower on average".into(),
        verified_always_ok && mean_never_worse,
    ));
    verdicts.push((
        "verbatim variant stalls or is ≥2× slower on average (motivates DESIGN §5.8)".into(),
        verbatim_struggles,
    ));

    Report {
        id: "E14",
        artefact: "ablation of DESIGN.md §7.4 (CheckShortcut)",
        claim: "without shortcut-slot verification, stale bindings circulate and stall convergence",
        tables: vec![t],
        verdicts,
    }
}
