//! E9 — §4.3 + §1.2: flooding over the skip ring delivers a fresh
//! publication in `O(log n)` hops (the diameter), versus the `Θ(n)`
//! delivery of ring-only routing (PSVR-style baseline [20, 21]).

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_baselines::RingCast;
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
use skippub_ringmath::{analytics, IdealSkipRing, Label};

/// Runs E9.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(&[8usize, 32][..], &[8usize, 32, 128, 512, 1024][..]);
    let cfg = ProtocolConfig::default();
    let mut t = Table::new(
        "publication delivery distance: flooding vs ring routing",
        &[
            "n",
            "max flood hops",
            "SR diameter",
            "2·log n",
            "ring O(n) steps",
            "speedup",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_log = true;
    let mut all_beat_ring = true;
    for &n in sweep {
        let world = scenarios::legit_world(n, seed, cfg);
        let mut sim = SkipRingSim::from_world(world, cfg);
        // Publish at the subscriber holding label l(n−1) (a newest-
        // generation node — worst placed, fewest shortcuts).
        let src_label = Label::from_index(n as u64 - 1);
        let src = sim
            .subscriber_ids()
            .into_iter()
            .find(|id| sim.subscriber(*id).and_then(|s| s.label) == Some(src_label))
            .expect("legit world labels everyone");
        sim.publish(src, b"flash".to_vec()).expect("publish");
        let (_, ok) = sim.run_until_pubs_converged(200);
        let max_hops = sim
            .subscriber_ids()
            .iter()
            .filter_map(|id| sim.subscriber(*id))
            .flat_map(|s| s.counters.flood_hops.iter().copied())
            .max()
            .unwrap_or(0) as usize;
        let diameter = if n <= 512 {
            IdealSkipRing::new(n).diameter()
        } else {
            0
        };
        let log2 = analytics::max_level(n as u64) as usize;
        let ring = RingCast::new(n).broadcast_steps();
        all_log &= ok && max_hops <= 2 * log2 + 2;
        // The asymptotic separation only exists once 2·log n + 2 < n/2,
        // i.e. from n = 16 up; at n = 8 both bounds are ~4 hops and the
        // comparison is seed noise.
        all_beat_ring &= n < 16 || max_hops < ring;
        t.row(vec![
            n.to_string(),
            max_hops.to_string(),
            if diameter > 0 {
                diameter.to_string()
            } else {
                "—".into()
            },
            (2 * log2).to_string(),
            ring.to_string(),
            f2(ring as f64 / max_hops.max(1) as f64),
        ]);
    }
    verdicts.push(("flood delivery ≤ O(log n) hops at every n".into(), all_log));
    verdicts.push((
        "flooding beats ring-only routing for n ≥ 16, with growing factor".into(),
        all_beat_ring,
    ));

    Report {
        id: "E9",
        artefact: "§4.3 flooding / §1.2 comparison to [20]",
        claim: "skip-ring flooding delivers in O(log n) hops; ring routing needs O(n) steps",
        tables: vec![t],
        verdicts,
    }
}
