//! E5 — Theorem 7: in a legitimate state, subscribe and unsubscribe cost
//! the supervisor (and the subscriber) a **constant** number of messages,
//! independent of `n` — the headline advantage over both brokers (Θ(n)
//! publish fan-out) and pure P2P joins (Θ(log n) routing).

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};

/// Runs E5.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(&[8usize, 32][..], &[8usize, 32, 128, 512, 2048][..]);
    let ops = scale.pick(10u64, 40u64);
    let cfg = ProtocolConfig::topology_only();
    let mut t = Table::new(
        "supervisor messages per operation (marginal over background)",
        &["n", "op", "sup msgs/op", "paper"],
    );
    let mut verdicts = Vec::new();
    let mut sub_const = true;
    let mut unsub_const = true;

    for &n in sweep {
        // --- subscribes ---
        let mut sim = SkipRingSim::from_world(scenarios::legit_world(n, seed, cfg), cfg);
        let sup = sim.supervisor_id();
        // Background supervisor rate: 1 round-robin config per round plus
        // probe responses. Measure it first.
        let before = sim.metrics().clone();
        let warm = 50u64;
        for _ in 0..warm {
            sim.run_round();
        }
        let bg = sim.metrics().diff(&before);
        let bg_rate = bg.sent_by(sup) as f64 / warm as f64;
        // Now the ops, one per round.
        let before = sim.metrics().clone();
        for _ in 0..ops {
            sim.add_subscriber_eager();
            sim.run_round();
        }
        let d = sim.metrics().diff(&before);
        let per_sub = (d.sent_by(sup) as f64 - bg_rate * ops as f64) / ops as f64;
        sub_const &= per_sub <= 4.0;
        t.row(vec![
            n.to_string(),
            "subscribe".into(),
            f2(per_sub),
            "1 SetData".into(),
        ]);

        // --- unsubscribes ---
        let mut sim = SkipRingSim::from_world(scenarios::legit_world(n, seed ^ 1, cfg), cfg);
        let sup = sim.supervisor_id();
        let (_, ok) = sim.run_until_legit(10);
        debug_assert!(ok);
        let before = sim.metrics().clone();
        for _ in 0..warm {
            sim.run_round();
        }
        let bg = sim.metrics().diff(&before);
        let bg_rate = bg.sent_by(sup) as f64 / warm as f64;
        let victims: Vec<_> = sim
            .subscriber_ids()
            .into_iter()
            .take(ops as usize)
            .collect();
        let before = sim.metrics().clone();
        let mut rounds = 0u64;
        for v in victims {
            sim.unsubscribe(v);
            sim.run_round();
            rounds += 1;
        }
        let d = sim.metrics().diff(&before);
        let per_unsub = (d.sent_by(sup) as f64 - bg_rate * rounds as f64) / ops as f64;
        unsub_const &= per_unsub <= 5.0;
        t.row(vec![
            n.to_string(),
            "unsubscribe".into(),
            f2(per_unsub),
            "2 SetData".into(),
        ]);
    }
    verdicts.push((
        "subscribe costs O(1) supervisor messages at every n".into(),
        sub_const,
    ));
    verdicts.push((
        "unsubscribe costs O(1) supervisor messages at every n".into(),
        unsub_const,
    ));

    Report {
        id: "E5",
        artefact: "Theorem 7",
        claim: "constant supervisor message overhead per subscribe/unsubscribe, independent of n",
        tables: vec![t],
        verdicts,
    }
}
