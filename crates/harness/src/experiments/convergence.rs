//! E6 — Theorem 8 (with Lemmas 9–12): from *any* initial state the system
//! converges to `SR(n)`. Sweeps adversarial initial-state families and
//! measures rounds-to-legitimacy; the supervisor's one-config-per-timeout
//! round-robin makes the expected scaling linear in `n`.

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::scenarios::{adversarial_world, cold_world, Adversary};
use skippub_core::{ProtocolConfig, SkipRingSim};

/// Runs E6.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(&[8usize, 16][..], &[8usize, 16, 32, 64, 128][..]);
    let seeds = scale.pick(2u64, 5u64);
    let budget = |n: usize| 600 * n as u64 + 2000;
    let cfg = ProtocolConfig::topology_only();
    let mut t = Table::new(
        "rounds until legitimate state (mean over seeds)",
        &[
            "initial state",
            "n",
            "mean rounds",
            "max rounds",
            "converged",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_ok = true;
    for adv in Adversary::all() {
        for &n in sweep {
            let mut total = 0u64;
            let mut worst = 0u64;
            let mut ok_all = true;
            for s in 0..seeds {
                let world = adversarial_world(n, seed.wrapping_add(s), cfg, adv);
                let mut sim = SkipRingSim::from_world(world, cfg);
                let (rounds, ok) = sim.run_until_legit(budget(n));
                total += rounds;
                worst = worst.max(rounds);
                ok_all &= ok;
            }
            all_ok &= ok_all;
            t.row(vec![
                adv.name().into(),
                n.to_string(),
                f2(total as f64 / seeds as f64),
                worst.to_string(),
                ok_all.to_string(),
            ]);
        }
    }
    // Cold bootstrap for reference.
    for &n in sweep {
        let mut sim = SkipRingSim::from_world(cold_world(n, seed, cfg), cfg);
        let (rounds, ok) = sim.run_until_legit(budget(n));
        all_ok &= ok;
        t.row(vec![
            "cold-bootstrap".into(),
            n.to_string(),
            rounds.to_string(),
            rounds.to_string(),
            ok.to_string(),
        ]);
    }
    verdicts.push((
        "every adversarial family converges at every n (Theorem 8)".into(),
        all_ok,
    ));

    Report {
        id: "E6",
        artefact: "Theorem 8 (+ Lemmas 9–12)",
        claim: "BuildSR transforms any initial state into SR(n)",
        tables: vec![t],
        verdicts,
    }
}
