//! E8 — Theorem 17: publications scattered arbitrarily across subscribers
//! converge, via anti-entropy alone (flooding disabled), to every
//! subscriber holding the complete set. Driven through the backend-
//! agnostic [`PubSub`] facade.

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::pubsub::SimBackend;
use skippub_core::{scenarios, ProtocolConfig, PubSub, TopicId};
use skippub_trie::Publication;

/// Runs E8.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[(usize, usize)] = scale.pick(
        &[(8usize, 8usize), (16, 32)][..],
        &[(8usize, 8usize), (16, 32), (32, 64), (64, 128), (128, 64)][..],
    );
    let cfg = ProtocolConfig {
        flooding: false,
        ..ProtocolConfig::default()
    }; // anti-entropy only: the self-stabilizing layer
    let mut t = Table::new(
        "anti-entropy convergence (flooding disabled)",
        &[
            "n",
            "|P|",
            "rounds",
            "pubs/node",
            "Publish msgs",
            "sent pubs / |P|",
        ],
    );
    let mut verdicts = Vec::new();
    let mut all_ok = true;
    for &(n, pubs) in sweep {
        let world = scenarios::legit_world(n, seed, cfg);
        let mut ps = SimBackend::from_world(world, cfg);
        let ids = ps.subscriber_ids();
        // Scatter |P| publications at deterministic pseudo-random hosts,
        // inserted directly (as if flooding had been lost entirely).
        for i in 0..pubs {
            let host = ids[(i * 7 + 3) % ids.len()];
            let p = Publication::new(host.0, format!("pub-{i}").into_bytes());
            ps.seed_publication(host, TopicId(0), p);
        }
        let before = ps.metrics().clone();
        let (rounds, ok) = ps.until_pubs_converged(600 * n as u64);
        all_ok &= ok;
        let d = ps.metrics().diff(&before);
        let per_node = ps.drain_events(ids[0]).len();
        // Redundancy: how many publication copies travelled per pub.
        let snap = ps.snapshot(TopicId(0));
        let sync_learned: u64 = snap
            .iter()
            .filter_map(|(_, a)| a.subscriber())
            .map(|s| s.counters.pubs_via_sync)
            .sum();
        t.row(vec![
            n.to_string(),
            pubs.to_string(),
            rounds.to_string(),
            per_node.to_string(),
            d.kind("Publish").to_string(),
            f2(sync_learned as f64 / pubs as f64),
        ]);
    }
    verdicts.push((
        "all subscribers end with the full publication set (Theorem 17)".into(),
        all_ok,
    ));

    Report {
        id: "E8",
        artefact: "Theorem 17",
        claim:
            "every subscriber eventually stores all publications, via CheckTrie anti-entropy alone",
        tables: vec![t],
        verdicts,
    }
}
