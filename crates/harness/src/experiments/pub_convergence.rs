//! E8 — Theorem 17: publications scattered arbitrarily across subscribers
//! converge, via anti-entropy alone (flooding disabled), to every
//! subscriber holding the complete set. A thin wrapper over the scenario
//! engine: the workload is a `scattered_pubs` spec with an
//! `until_pubs_converged` stop condition.

use crate::scenario::{self, ScenarioSpec, Stop};
use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::{ProtocolConfig, PubSub, TopicId};

/// The spec: `n` warm subscribers, `pubs` publications seeded into
/// arbitrary stores, anti-entropy only, run until stores agree.
fn spec(n: usize, pubs: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(format!("pubconv-{n}"), seed)
        .population(n)
        .protocol(ProtocolConfig {
            flooding: false,
            ..ProtocolConfig::default()
        })
        .scattered_pubs(pubs)
        .stop(Stop::UntilPubsConverged {
            max_extra: 600 * n as u64,
        })
        .settle(0)
}

/// Runs E8.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[(usize, usize)] = scale.pick(
        &[(8usize, 8usize), (16, 32)][..],
        &[(8usize, 8usize), (16, 32), (32, 64), (64, 128), (128, 64)][..],
    );
    let mut t = Table::new(
        "anti-entropy convergence (flooding disabled)",
        &[
            "n",
            "|P|",
            "rounds",
            "pubs/node",
            "Publish msgs",
            "sent pubs / |P|",
        ],
    );
    let mut all_ok = true;
    for &(n, pubs) in sweep {
        let s = spec(n, pubs, seed);
        let mut ps = scenario::builder_for(&s).build_sim();
        let out = scenario::run_on(&mut ps, &s, 1);
        all_ok &= out.report.ok();
        // Redundancy: how many publication copies travelled per pub.
        // (With flooding disabled, every `Publish` message is an
        // anti-entropy transfer; the warm phase moves none.)
        let snap = ps.snapshot(TopicId(0));
        let sync_learned: u64 = snap
            .iter()
            .filter_map(|(_, a)| a.subscriber())
            .map(|s| s.counters.pubs_via_sync)
            .sum();
        t.row(vec![
            n.to_string(),
            pubs.to_string(),
            out.report.stop_rounds.to_string(),
            out.report.per_topic[0].pubs.to_string(),
            ps.metrics().kind("Publish").to_string(),
            f2(sync_learned as f64 / pubs as f64),
        ]);
    }

    Report {
        id: "E8",
        artefact: "Theorem 17",
        claim:
            "every subscriber eventually stores all publications, via CheckTrie anti-entropy alone",
        tables: vec![t],
        verdicts: vec![(
            "all subscribers end with the full publication set (Theorem 17)".into(),
            all_ok,
        )],
    }
}
