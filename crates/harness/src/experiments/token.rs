//! E15 — §6 future work, implemented and measured: the deterministic
//! token-passing verification variant.
//!
//! The paper's conclusion proposes replacing the randomized probes with a
//! supervisor-issued token and warns that "the token-passing scheme has
//! to be able to deal with multiple connected components". This
//! experiment quantifies the proposal:
//!
//! * **coverage** — the token verifies every recorded subscriber once per
//!   circulation: deterministic, zero-variance staleness, vs. the
//!   randomized probes' coupon-collector tail (a label of length k waits
//!   `2^k·k²` expected intervals for its own probe);
//! * **load** — supervisor message rates are comparable;
//! * **the predicted failure** — pure token mode stalls on partitioned
//!   initial states (component minima labelled "0" never probe), and the
//!   hybrid mode (token + action-(ii) fallback) restores full Theorem-8
//!   convergence.

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_core::scenarios::{adversarial_world, legit_world, Adversary};
use skippub_core::{ProbeMode, ProtocolConfig, SkipRingSim};

fn cfg_for(mode: ProbeMode) -> ProtocolConfig {
    ProtocolConfig {
        probe_mode: mode,
        ..ProtocolConfig::topology_only()
    }
}

fn mode_name(mode: ProbeMode) -> &'static str {
    match mode {
        ProbeMode::Randomized => "randomized (§3.2.1)",
        ProbeMode::Token => "token (§6, pure)",
        ProbeMode::TokenHybrid => "token + fallback",
    }
}

/// Runs E15.
pub fn run(scale: Scale, seed: u64) -> Report {
    let n = scale.pick(24usize, 64usize);
    let window = scale.pick(300u64, 1200u64);
    let mut verdicts = Vec::new();

    // --- steady-state: load + coverage ---
    let mut steady = Table::new(
        format!("steady state over {window} rounds (n = {n})"),
        &[
            "mode",
            "sup msgs/round",
            "GetConfig/round",
            "min SetData per node",
            "unverified nodes",
        ],
    );
    let mut token_covers_all = false;
    let mut comparable_load = false;
    let mut rand_rate = 0.0f64;
    for mode in [
        ProbeMode::Randomized,
        ProbeMode::Token,
        ProbeMode::TokenHybrid,
    ] {
        let cfg = cfg_for(mode);
        let mut sim = SkipRingSim::from_world(legit_world(n, seed, cfg), cfg);
        for _ in 0..50 {
            sim.run_round();
        }
        let before = sim.metrics().clone();
        let configs_before: Vec<u64> = sim
            .subscriber_ids()
            .iter()
            .map(|id| sim.subscriber(*id).expect("live").counters.configs_received)
            .collect();
        for _ in 0..window {
            sim.run_round();
        }
        let d = sim.metrics().diff(&before);
        let sup_rate = d.sent_by(sim.supervisor_id()) as f64 / window as f64;
        let probe_rate = d.kind("GetConfiguration") as f64 / window as f64;
        let configs_delta: Vec<u64> = sim
            .subscriber_ids()
            .iter()
            .zip(&configs_before)
            .map(|(id, b)| sim.subscriber(*id).expect("live").counters.configs_received - b)
            .collect();
        let min_setdata = configs_delta.iter().copied().min().unwrap_or(0);
        let unverified = configs_delta.iter().filter(|&&c| c == 0).count();
        match mode {
            ProbeMode::Randomized => rand_rate = sup_rate,
            ProbeMode::Token => {
                token_covers_all = unverified == 0 && min_setdata >= 1;
                comparable_load = sup_rate <= rand_rate * 2.0 + 0.5;
            }
            ProbeMode::TokenHybrid => {}
        }
        steady.row(vec![
            mode_name(mode).into(),
            f2(sup_rate),
            f2(probe_rate),
            min_setdata.to_string(),
            unverified.to_string(),
        ]);
    }
    verdicts.push((
        "token mode verifies every node in the window (deterministic coverage)".into(),
        token_covers_all,
    ));
    verdicts.push((
        "token supervisor load comparable to randomized".into(),
        comparable_load,
    ));

    // --- the §6 multi-component caveat ---
    let budget = scale.pick(4_000u64, 10_000u64);
    let mut conv = Table::new(
        "convergence from partitioned starts (the §6 caveat)",
        &["mode", "rounds", "converged"],
    );
    let mut pure_stalls = false;
    let mut hybrid_recovers = true;
    for mode in [
        ProbeMode::Randomized,
        ProbeMode::Token,
        ProbeMode::TokenHybrid,
    ] {
        let cfg = cfg_for(mode);
        let world = adversarial_world(n.min(24), seed, cfg, Adversary::Partitioned(4));
        let mut sim = SkipRingSim::from_world(world, cfg);
        let (rounds, ok) = sim.run_until_legit(budget);
        match mode {
            ProbeMode::Token => pure_stalls = !ok,
            ProbeMode::Randomized | ProbeMode::TokenHybrid => hybrid_recovers &= ok,
        }
        conv.row(vec![
            mode_name(mode).into(),
            if ok {
                rounds.to_string()
            } else {
                format!("> {budget}")
            },
            ok.to_string(),
        ]);
    }
    verdicts.push((
        "pure token mode exhibits the paper's predicted multi-component stall".into(),
        pure_stalls,
    ));
    verdicts.push((
        "hybrid (token + fallback) converges like the randomized design".into(),
        hybrid_recovers,
    ));

    Report {
        id: "E15",
        artefact: "§6 conclusion (future work), implemented",
        claim: "deterministic token verification works in one component; the multi-component caveat is real; a randomized fallback restores it",
        tables: vec![steady, conv],
        verdicts,
    }
}
