//! E10 — §1.3: "our network has a better congestion than these networks
//! [Chord, skip graphs], as the supervised approach allows a much more
//! balanced distribution of the nodes." Measured as (a) degree spread,
//! (b) key-space arc imbalance, (c) greedy-routing transit-load imbalance
//! over sampled pairs.

use crate::table::f2;
use crate::{Report, Scale, Table};
use skippub_baselines::{metrics, Chord, SkipGraph};
use skippub_ringmath::IdealSkipRing;
use std::collections::BTreeMap;

/// Greedy ring-position routing over the skip-ring adjacency: repeatedly
/// hop to the neighbour closest (by ring distance) to the target.
fn skipring_route(adj: &[Vec<usize>], fracs: &[u64], from: usize, to: usize) -> Vec<usize> {
    let mut path = vec![from];
    let mut cur = from;
    let dist = |i: usize| {
        let cw = fracs[to].wrapping_sub(fracs[i]);
        cw.min(cw.wrapping_neg())
    };
    let mut guard = 0;
    while cur != to && guard < 128 {
        let next = adj[cur]
            .iter()
            .copied()
            .min_by_key(|&v| dist(v))
            .expect("connected");
        if dist(next) >= dist(cur) {
            break; // greedy minimum (cannot happen on a legit skip ring)
        }
        path.push(next);
        cur = next;
        guard += 1;
    }
    path
}

fn skipring_graph(n: usize) -> (Vec<Vec<usize>>, Vec<u64>) {
    let sr = IdealSkipRing::new(n);
    let labels = sr.labels().to_vec();
    let index: BTreeMap<_, _> = labels.iter().enumerate().map(|(i, l)| (*l, i)).collect();
    let mut adj = vec![Vec::new(); n];
    for (l, ns) in sr.adjacency() {
        adj[index[&l]] = ns.iter().map(|m| index[m]).collect();
    }
    let fracs: Vec<u64> = labels.iter().map(|l| l.frac()).collect();
    (adj, fracs)
}

/// Worst per-node forwarding load over broadcasts from 8 sampled roots.
fn max_broadcast_load(adj: &[Vec<usize>]) -> usize {
    let n = adj.len();
    (0..8)
        .map(|i| {
            let root = i * n / 8;
            metrics::broadcast_loads(adj, root)
                .into_iter()
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

fn imbalance(loads: &[usize]) -> f64 {
    let max = *loads.iter().max().unwrap_or(&0) as f64;
    let avg = loads.iter().sum::<usize>() as f64 / loads.len().max(1) as f64;
    if avg == 0.0 {
        0.0
    } else {
        max / avg
    }
}

/// Runs E10.
pub fn run(scale: Scale, seed: u64) -> Report {
    let sweep: &[usize] = scale.pick(&[64usize][..], &[64usize, 256, 1024][..]);
    let samples = scale.pick(300usize, 2000usize);
    let mut t = Table::new(
        "balance: skip ring vs Chord vs skip graph",
        &[
            "n",
            "overlay",
            "max deg",
            "avg deg",
            "bcast max load",
            "transit max/avg",
            "arc max/mean",
        ],
    );
    let mut verdicts = Vec::new();
    let mut ring_wins_arcs = true;
    let mut ring_wins_degree = true;
    let mut ring_wins_bcast = true;
    for &n in sweep {
        // --- skip ring ---
        let (adj, fracs) = skipring_graph(n);
        let spread = metrics::degree_spread(&adj);
        let pairs: Vec<(usize, usize)> = (0..samples)
            .map(|i| {
                let a = (i.wrapping_mul(0x9E37) ^ seed as usize) % n;
                let b = (i.wrapping_mul(0x85EB) >> 3) % n;
                (a, b)
            })
            .collect();
        let sr_loads = metrics::transit_loads(
            n,
            pairs
                .iter()
                .map(|&(a, b)| skipring_route(&adj, &fracs, a, b)),
        );
        // Arc lengths of the skip ring: consecutive fracs (near-uniform by
        // construction of l).
        let mut sr_arcs: Vec<u64> = (0..n)
            .map(|i| fracs[(i + 1) % n].wrapping_sub(fracs[i]))
            .collect();
        sr_arcs.sort_unstable();
        let sr_arc_imb = *sr_arcs.last().unwrap() as f64
            / (sr_arcs.iter().map(|&a| a as f64).sum::<f64>() / n as f64);
        let sr_transit_imb = imbalance(&sr_loads);
        let sr_bcast = max_broadcast_load(&adj);
        t.row(vec![
            n.to_string(),
            "skip ring".into(),
            spread.max.to_string(),
            f2(spread.avg),
            sr_bcast.to_string(),
            f2(sr_transit_imb),
            f2(sr_arc_imb),
        ]);

        // --- Chord ---
        let chord = Chord::new(n, seed);
        let c_adj = chord.adjacency_undirected();
        let c_spread = metrics::degree_spread(&c_adj);
        let c_loads = chord.sampled_transit_loads(samples, seed);
        let arcs = chord.arc_lengths();
        let c_arc_imb = *arcs.iter().max().unwrap() as f64
            / (arcs.iter().map(|&a| a as f64).sum::<f64>() / arcs.len() as f64);
        let c_transit_imb = imbalance(&c_loads);
        let c_bcast = max_broadcast_load(&c_adj);
        t.row(vec![
            n.to_string(),
            "Chord".into(),
            c_spread.max.to_string(),
            f2(c_spread.avg),
            c_bcast.to_string(),
            f2(c_transit_imb),
            f2(c_arc_imb),
        ]);

        // --- skip graph ---
        let sg = SkipGraph::new(n, seed);
        let g_adj = sg.adjacency();
        let g_spread = metrics::degree_spread(&g_adj);
        let g_loads = sg.sampled_transit_loads(samples, seed);
        let g_transit_imb = imbalance(&g_loads);
        let g_bcast = max_broadcast_load(&g_adj);
        t.row(vec![
            n.to_string(),
            "skip graph".into(),
            g_spread.max.to_string(),
            f2(g_spread.avg),
            g_bcast.to_string(),
            f2(g_transit_imb),
            "—".into(),
        ]);
        let _ = (sr_transit_imb, c_transit_imb, g_transit_imb);

        // The §1.3 claim is about *balanced node distribution*: perfectly
        // even key-space arcs, bounded degrees, and hence bounded flooding
        // fan-out. (Greedy-routing transit is reported as data only: the
        // skip ring deliberately concentrates connectivity on old nodes —
        // "older and thus more reliable nodes hold more connectivity
        // responsibility", §2.1.)
        ring_wins_arcs &= sr_arc_imb <= c_arc_imb;
        ring_wins_degree &=
            spread.max <= c_spread.max && spread.max as f64 <= g_spread.max as f64 * 1.6;
        ring_wins_bcast &= sr_bcast <= c_bcast;
    }
    verdicts.push((
        "skip-ring key-space arcs are (near-)perfectly balanced; Chord's are not".into(),
        ring_wins_arcs,
    ));
    verdicts.push((
        "skip-ring max degree ≤ Chord's and comparable to skip graph's".into(),
        ring_wins_degree,
    ));
    verdicts.push((
        "skip-ring worst flooding fan-out ≤ Chord's".into(),
        ring_wins_bcast,
    ));

    Report {
        id: "E10",
        artefact: "§1.3 congestion claim",
        claim: "supervised label placement balances the overlay better than Chord / skip graphs",
        tables: vec![t],
        verdicts,
    }
}
