//! The built-in scenario library: named, ready-to-run specs covering
//! the workload space the paper (and its related systems) evaluates.
//! `docs/scenarios.md` documents each one — what paper property it
//! stresses and what its report should show.
//!
//! The single-topic scenarios run on **all** backends (sim, chaos,
//! multi-topic, sharded, threaded); the multi-topic ones
//! (`zipf-fanout`, `shard-churn`) run on the multi-topic and sharded
//! backends.

use super::spec::{Burst, BurstKind, Popularity, ScenarioSpec, Stop};
use skippub_core::pubsub::SHARD_SUPERVISOR_BASE;
use skippub_core::ProtocolConfig;
use skippub_sim::{FaultRule, FaultSpec, LinkClass, Sever};

/// `steady-state`: a warm system under constant publish load, no churn.
/// Baseline for throughput and for the "closure" property — a
/// legitimate system stays legitimate (Definition 1).
pub fn steady_state() -> ScenarioSpec {
    ScenarioSpec::new("steady-state", 0xA11CE)
        .population(10)
        .publishers(3)
        .publish_prob(0.25)
        .rounds(30)
        .stop(Stop::FixedRounds)
        .settle(1_000)
}

/// `flash-crowd`: a small warm core, then arrivals flood in at two
/// joins per round while publishing continues. Stresses the
/// constant-overhead subscribe path (§4.1) and join linearization
/// (Algorithm 1).
pub fn flash_crowd() -> ScenarioSpec {
    ScenarioSpec::new("flash-crowd", 0xF1A5)
        .population(4)
        .publishers(2)
        .publish_prob(0.25)
        .arrivals_per_round(2.0)
        .rounds(12)
        .stop(Stop::UntilLegit { max_extra: 4_000 })
        .settle(1_000)
}

/// `crash-storm`: four simultaneous unannounced crashes (§3.3), the
/// failure detector reporting three rounds later, publishers still
/// publishing. Stresses supervisor-side crash recovery: the system must
/// return to legitimacy and no publication may be lost.
pub fn crash_storm() -> ScenarioSpec {
    ScenarioSpec::new("crash-storm", 0xC4A54)
        .population(14)
        .publishers(4)
        .publish_prob(0.2)
        .rounds(16)
        .burst(Burst {
            at: 4,
            count: 4,
            kind: BurstKind::Crash {
                detect_after: Some(3),
            },
        })
        .stop(Stop::UntilLegit { max_extra: 4_000 })
        .settle(1_000)
}

/// `unsubscribe-wave`: a third of the fodder leaves gracefully in one
/// round (Lemma 6): leavers must end disconnected and the survivors
/// re-stabilize, with publications intact.
pub fn unsubscribe_wave() -> ScenarioSpec {
    ScenarioSpec::new("unsubscribe-wave", 0x1EA7E)
        .population(12)
        .publishers(3)
        .publish_prob(0.25)
        .rounds(12)
        .burst(Burst {
            at: 3,
            count: 4,
            kind: BurstKind::Leave,
        })
        .stop(Stop::UntilLegit { max_extra: 4_000 })
        .settle(1_000)
}

/// `adversarial-cold-start`: no warm-up, flooding disabled, and 18
/// publications scattered over arbitrary subscriber stores before any
/// topology exists — Theorem 17's arbitrary initial state, recovered by
/// anti-entropy (Algorithm 5) alone on top of topology
/// self-stabilization (Theorem 8).
pub fn adversarial_cold_start() -> ScenarioSpec {
    ScenarioSpec::new("adversarial-cold-start", 0xADC0)
        .population(10)
        .protocol(ProtocolConfig {
            flooding: false,
            ..ProtocolConfig::default()
        })
        .cold()
        .scattered_pubs(18)
        .stop(Stop::UntilPubsConverged { max_extra: 20_000 })
        .settle(1_000)
}

/// `churn-steady`: PSVR-style continuous churn — arrivals and graceful
/// departures as ongoing processes while a stable core publishes.
/// Stresses sustained self-stabilization under membership pressure.
pub fn churn_steady() -> ScenarioSpec {
    ScenarioSpec::new("churn-steady", 0xC0FFEE)
        .population(10)
        .publishers(3)
        .publish_prob(0.2)
        .arrivals_per_round(0.5)
        .departures_per_round(0.4)
        .rounds(20)
        .stop(Stop::UntilLegit { max_extra: 6_000 })
        .settle(1_500)
}

/// `zipf-fanout`: 24 subscribers over 6 topics with Zipf(1.1)
/// popularity — a few hot rings, a long tail — publishers on their own
/// (skewed) topics. Stresses the §4 multi-topic design: per-topic
/// `BuildSR` instances must stay independent while the supervisor's
/// load is linear in topics. Multi-topic/sharded backends only.
pub fn zipf_fanout() -> ScenarioSpec {
    ScenarioSpec::new("zipf-fanout", 0x21FF)
        .topics(6)
        .shards(3)
        .population(24)
        .popularity(Popularity::Zipf { s: 1.1 })
        .publishers(6)
        .publish_prob(0.3)
        .rounds(15)
        .stop(Stop::FixedRounds)
        .settle(3_000)
}

/// `zipf-rebalance`: the `zipf-fanout` skew with deterministic
/// topic→shard rebalancing enabled (decision every 5 rounds) and a
/// longer run so the handoffs demonstrably spread the hot topic's
/// subscriber work — compare the report's `delivered_imbalance`
/// against `zipf-fanout`'s. Byte-identical at every `--threads` value
/// (DESIGN.md §11). Multi-topic/sharded backends only; the multi
/// backend ignores the cadence (single supervisor), so the
/// cross-backend fingerprint gate still applies.
pub fn zipf_rebalance() -> ScenarioSpec {
    ScenarioSpec::new("zipf-rebalance", 0x21FF)
        .topics(6)
        .shards(3)
        .population(24)
        .popularity(Popularity::Zipf { s: 1.1 })
        .publishers(6)
        .publish_prob(0.3)
        .rounds(30)
        .rebalance_every(5)
        .stop(Stop::FixedRounds)
        .settle(3_000)
}

/// `shard-churn`: 12 topics consistent-hashed onto 4 supervisor shards
/// (§1.3) under continuous churn plus a mid-run crash storm. Stresses
/// shard-local recovery: a crash only perturbs the topics of the rings
/// it sat in. Multi-topic/sharded backends only.
pub fn shard_churn() -> ScenarioSpec {
    ScenarioSpec::new("shard-churn", 0x5A4D)
        .topics(12)
        .shards(4)
        .population(24)
        .publishers(6)
        .publish_prob(0.2)
        .arrivals_per_round(0.5)
        .departures_per_round(0.4)
        .rounds(18)
        .burst(Burst {
            at: 6,
            count: 3,
            kind: BurstKind::Crash {
                detect_after: Some(3),
            },
        })
        .stop(Stop::UntilLegit { max_extra: 8_000 })
        .settle(3_000)
}

/// `supervisor-crash-churn`: the paper's dropped "supervisor never
/// crashes" assumption, tested mid-churn — a 3-replica supervisor group
/// loses its primary twice while arrivals, departures, and publishes
/// are in flight. The failover-oracle contract: delivered sets and
/// final checker digests must equal a never-crashing run of the same
/// schedule (`scenarios supervisor-crash supervisor-crash-churn`).
pub fn supervisor_crash_churn() -> ScenarioSpec {
    ScenarioSpec::new("supervisor-crash-churn", 0x5C4A5)
        .population(12)
        .publishers(3)
        .publish_prob(0.25)
        .arrivals_per_round(0.5)
        .departures_per_round(0.4)
        .rounds(16)
        .replicas(3)
        .sup_crash(5, 0)
        .sup_crash(11, 0)
        .stop(Stop::UntilLegit { max_extra: 6_000 })
        .settle(1_500)
}

/// `supervisor-crash-storm`: primaries killed three times in the middle
/// of a publish storm (five publishers at 0.6 per round) — every
/// in-flight publication must still reach every member, exactly as in
/// the never-crashing run.
pub fn supervisor_crash_storm() -> ScenarioSpec {
    ScenarioSpec::new("supervisor-crash-storm", 0x5C4B5)
        .population(10)
        .publishers(5)
        .publish_prob(0.6)
        .rounds(14)
        .replicas(3)
        .sup_crash(4, 0)
        .sup_crash(7, 0)
        .sup_crash(10, 0)
        .stop(Stop::UntilPubsConverged { max_extra: 6_000 })
        .settle(1_500)
}

/// `supervisor-crash-cold`: the primary dies *during* an adversarial
/// cold start — no warm-up, flooding disabled, publications scattered
/// over arbitrary stores — so failover composes with topology and
/// publication self-stabilization from an arbitrary initial state.
pub fn supervisor_crash_cold() -> ScenarioSpec {
    ScenarioSpec::new("supervisor-crash-cold", 0x5C4C0)
        .population(10)
        .protocol(ProtocolConfig {
            flooding: false,
            ..ProtocolConfig::default()
        })
        .cold()
        .scattered_pubs(12)
        .rounds(4)
        .replicas(3)
        .sup_crash(1, 0)
        .stop(Stop::UntilPubsConverged { max_extra: 20_000 })
        .settle(1_000)
}

/// `supervisor-crash-shards`: 8 topics consistent-hashed onto 4
/// supervisor shards, each shard backed by a 3-replica group; three
/// different shards lose their primary mid-run. Failover must stay
/// shard-local and the oracle contract must hold across the sharded
/// executor's thread counts. Multi-topic/sharded backends only.
pub fn supervisor_crash_shards() -> ScenarioSpec {
    ScenarioSpec::new("supervisor-crash-shards", 0x5C4D5)
        .topics(8)
        .shards(4)
        .population(16)
        .publishers(4)
        .publish_prob(0.3)
        .rounds(14)
        .replicas(3)
        .sup_crash(4, 0)
        .sup_crash(8, 3)
        .sup_crash(11, 6)
        .stop(Stop::UntilLegit { max_extra: 8_000 })
        .settle(3_000)
}

/// `fault-storm-loss`: every link drops 30% of its messages for the
/// first ten scheduled rounds while publishers keep publishing, then
/// the links heal. Loss/delay-only, so the fault-storm oracle requires
/// the delivered sets to *equal* the perfect-link twin's
/// (`scenarios fault-storm fault-storm-loss`).
pub fn fault_storm_loss() -> ScenarioSpec {
    ScenarioSpec::new("fault-storm-loss", 0xFA017)
        .population(12)
        .publishers(3)
        .publish_prob(0.3)
        .rounds(16)
        .faults(FaultSpec {
            seed: 0xFA017,
            rules: vec![FaultRule {
                drop: 0.3,
                ..FaultRule::pass(0, 10, LinkClass::All)
            }],
            severs: vec![],
        })
        .stop(Stop::UntilLegit { max_extra: 6_000 })
        .settle(2_000)
}

/// `fault-storm-mix`: loss, duplication, bounded reordering, and extra
/// delivery delay all at once — the full fault vocabulary — with the
/// windows closing mid-schedule. The oracle requires healing
/// (re-legitimization + re-convergence); set equality is waived because
/// dup/reorder may converge along a different correct trajectory.
pub fn fault_storm_mix() -> ScenarioSpec {
    ScenarioSpec::new("fault-storm-mix", 0xFA01A)
        .population(12)
        .publishers(3)
        .publish_prob(0.3)
        .rounds(18)
        .faults(FaultSpec {
            seed: 0xFA01A,
            rules: vec![
                FaultRule {
                    drop: 0.15,
                    dup: 0.1,
                    ..FaultRule::pass(0, 12, LinkClass::All)
                },
                FaultRule {
                    delay: 0.25,
                    delay_rounds: 2,
                    reorder: 0.2,
                    reorder_max: 3,
                    ..FaultRule::pass(4, 12, LinkClass::AnyCross)
                },
            ],
            severs: vec![],
        })
        .stop(Stop::UntilLegit { max_extra: 8_000 })
        .settle(2_500)
}

/// `fault-heal-partition`: a scheduled partition cuts four subscribers
/// off for six rounds (no probabilistic faults at all — severs count as
/// loss/delay-only), then the partition heals and the ring must
/// reconverge to the twin's delivered sets. The chosen IDs exist on
/// every backend: the engine spawns subscribers with ascending IDs from
/// 1.
pub fn fault_heal_partition() -> ScenarioSpec {
    ScenarioSpec::new("fault-heal-partition", 0xFA07B)
        .population(12)
        .publishers(3)
        .publish_prob(0.25)
        .rounds(16)
        .faults(FaultSpec {
            seed: 0xFA07B,
            rules: vec![],
            severs: vec![Sever {
                from_round: 3,
                to_round: 9,
                group: vec![5, 6, 7, 8],
            }],
        })
        .stop(Stop::UntilLegit { max_extra: 8_000 })
        .settle(2_500)
}

/// `partition-kills-primary`: a sever window isolates the supervisor
/// endpoint of a 3-replica group — failover is triggered by the
/// *partition* (the backend's sever watch), not by any scripted
/// `crash_supervisor`. The oracle requires `failovers == 1` and full
/// healing once the window closes. Runs on every single-topic backend
/// (`NodeId(0)` is the supervisor endpoint on all of them).
pub fn partition_kills_primary() -> ScenarioSpec {
    ScenarioSpec::new("partition-kills-primary", 0xFA0DE)
        .population(10)
        .publishers(3)
        .publish_prob(0.3)
        .rounds(16)
        .replicas(3)
        .faults(FaultSpec {
            seed: 0xFA0DE,
            rules: vec![],
            severs: vec![Sever {
                from_round: 4,
                to_round: 9,
                group: vec![0],
            }],
        })
        .stop(Stop::UntilLegit { max_extra: 8_000 })
        .settle(2_500)
}

/// `partition-kills-shard`: the sharded flavour of
/// `partition-kills-primary` — 6 topics on 3 shards, each shard backed
/// by a 3-replica group, and a sever window isolating shard 1's
/// supervisor endpoint mid-run. Failover must stay shard-local.
/// Multi-topic/sharded backends only (the endpoint ID only exists
/// there).
pub fn partition_kills_shard() -> ScenarioSpec {
    ScenarioSpec::new("partition-kills-shard", 0xFA0D5)
        .topics(6)
        .shards(3)
        .population(18)
        .publishers(6)
        .publish_prob(0.25)
        .rounds(16)
        .replicas(3)
        .faults(FaultSpec {
            seed: 0xFA0D5,
            rules: vec![],
            severs: vec![Sever {
                from_round: 4,
                to_round: 9,
                group: vec![SHARD_SUPERVISOR_BASE + 1],
            }],
        })
        .stop(Stop::UntilLegit { max_extra: 10_000 })
        .settle(3_000)
}

/// Every built-in scenario, in documentation order.
pub fn builtins() -> Vec<ScenarioSpec> {
    vec![
        steady_state(),
        flash_crowd(),
        crash_storm(),
        unsubscribe_wave(),
        adversarial_cold_start(),
        churn_steady(),
        zipf_fanout(),
        zipf_rebalance(),
        shard_churn(),
        supervisor_crash_churn(),
        supervisor_crash_storm(),
        supervisor_crash_cold(),
        supervisor_crash_shards(),
        fault_storm_loss(),
        fault_storm_mix(),
        fault_heal_partition(),
        partition_kills_primary(),
        partition_kills_shard(),
    ]
}

/// Looks a built-in up by name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    builtins().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::schedule::compile;
    use crate::scenario::{run_spec, BackendKind};

    #[test]
    fn names_are_unique_and_lookup_works() {
        let all = builtins();
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        assert!(builtin("crash-storm").is_some());
        assert!(builtin("nope").is_none());
    }

    #[test]
    fn at_least_six_builtins_run_on_every_in_process_backend() {
        let portable = builtins()
            .into_iter()
            .filter(|s| s.supported_backends().len() == BackendKind::all().len())
            .count();
        assert!(portable >= 6, "only {portable} portable builtins");
    }

    #[test]
    fn every_builtin_compiles_and_runs_on_its_first_backend() {
        for spec in builtins() {
            let schedule = compile(&spec);
            assert_eq!(
                schedule.prelude.len(),
                spec.population,
                "{}: prelude spawns the population",
                spec.name
            );
            let kind = spec.supported_backends()[0];
            let out = run_spec(&spec, kind).expect("supported backend");
            assert!(
                out.report.ok(),
                "{} failed on {}: {}",
                spec.name,
                kind.name(),
                out.report.to_json()
            );
        }
    }

    #[test]
    fn supervisor_crash_builtins_schedule_crashes_over_replicas() {
        let family = [
            supervisor_crash_churn(),
            supervisor_crash_storm(),
            supervisor_crash_cold(),
            supervisor_crash_shards(),
        ];
        for spec in family {
            assert!(spec.replicas >= 2, "{}: needs a replica group", spec.name);
            assert!(!spec.sup_crashes.is_empty(), "{}: schedules no crash", spec.name);
            for &(at, topic) in &spec.sup_crashes {
                assert!(at < spec.rounds, "{}: crash outside schedule", spec.name);
                assert!(topic < spec.topics, "{}: crash on unknown topic", spec.name);
            }
        }
    }

    #[test]
    fn multi_topic_builtins_agree_between_multi_and_sharded() {
        for spec in [zipf_fanout(), shard_churn()] {
            let a = run_spec(&spec, BackendKind::MultiTopic).unwrap();
            let b = run_spec(&spec, BackendKind::Sharded).unwrap();
            assert!(a.report.ok(), "{}", a.report.to_json());
            assert!(b.report.ok(), "{}", b.report.to_json());
            assert_eq!(
                a.report.delivered_fingerprint, b.report.delivered_fingerprint,
                "{}: multi vs sharded delivered sets diverge",
                spec.name
            );
            assert_eq!(a.delivered, b.delivered);
        }
    }
}
