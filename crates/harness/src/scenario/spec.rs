//! [`ScenarioSpec`]: the declarative description of a workload.
//!
//! A spec names *what happens* — population, churn processes, topic
//! popularity, publish rate, crash storms, adversarial starts, stop
//! condition — and never *how a backend executes it*. The
//! [compiler](crate::scenario::schedule) turns a spec into a
//! deterministic, seeded event schedule; the
//! [engine](crate::scenario::engine) applies that schedule to any
//! [`PubSub`](skippub_core::PubSub) backend.

use skippub_core::{BackendKind, ProtocolConfig};
use skippub_sim::FaultSpec;

/// How subscribers (initial population and arrivals) pick their topic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Popularity {
    /// Deterministic even split: slot `i` subscribes to topic
    /// `i mod topics`.
    Uniform,
    /// Zipf-distributed popularity: topic `k` (0-based rank) is chosen
    /// with probability proportional to `1 / (k+1)^s`. The classic
    /// skewed fan-out of real topic-based workloads (a few hot topics,
    /// a long tail).
    Zipf {
        /// Skew exponent (`s = 0` degenerates to uniform draws; ~1 is
        /// the classic web-popularity skew).
        s: f64,
    },
}

/// When a scenario stops driving rounds (after the scheduled rounds are
/// exhausted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stop {
    /// Stop right after the scheduled rounds (steady-state measurement).
    FixedRounds,
    /// Keep stepping until every topic is legitimate (Definition 1), up
    /// to `max_extra` additional rounds.
    UntilLegit {
        /// Extra-round budget after the schedule.
        max_extra: u64,
    },
    /// Keep stepping until all publication stores agree (Theorem 17),
    /// up to `max_extra` additional rounds.
    UntilPubsConverged {
        /// Extra-round budget after the schedule.
        max_extra: u64,
    },
}

impl Stop {
    /// Short machine name used in reports and trace headers.
    pub fn name(&self) -> &'static str {
        match self {
            Stop::FixedRounds => "fixed_rounds",
            Stop::UntilLegit { .. } => "until_legit",
            Stop::UntilPubsConverged { .. } => "until_pubs_converged",
        }
    }

    /// Parses [`Stop::name`] back (budget from the second field).
    pub fn from_name(name: &str, max_extra: u64) -> Option<Stop> {
        match name {
            "fixed_rounds" => Some(Stop::FixedRounds),
            "until_legit" => Some(Stop::UntilLegit { max_extra }),
            "until_pubs_converged" => Some(Stop::UntilPubsConverged { max_extra }),
            _ => None,
        }
    }

    /// The extra-round budget (0 for fixed rounds).
    pub fn max_extra(&self) -> u64 {
        match self {
            Stop::FixedRounds => 0,
            Stop::UntilLegit { max_extra } | Stop::UntilPubsConverged { max_extra } => *max_extra,
        }
    }
}

/// What a churn burst does to its victims.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstKind {
    /// Victims crash without warning (§3.3). If `detect_after` is set,
    /// the failure detector reports every victim to the supervisor(s)
    /// that many rounds later; if `None` the crash goes unreported and
    /// recovery relies on the protocol's own probes.
    Crash {
        /// Detector latency in rounds, `None` = never reported.
        detect_after: Option<u64>,
    },
    /// Victims leave gracefully via `Unsubscribe` (Lemma 6).
    Leave,
}

/// A synchronized churn burst: `count` victims at round `at`.
///
/// Victims are drawn from the *churn-fodder* population (slots that are
/// not publishers), spread evenly over it, so no publication is lost to
/// a crashed author and delivered sets stay backend-comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// Scheduled round the burst fires in.
    pub at: u64,
    /// Number of victims.
    pub count: usize,
    /// Crash or graceful leave.
    pub kind: BurstKind,
}

/// A declarative scenario: node population and churn processes, topic
/// popularity, publish load, crash storms, adversarial initial
/// publication placement, and a stop condition — compiled into a
/// deterministic seeded schedule and executable on **any** `PubSub`
/// backend.
///
/// ```
/// use skippub_harness::scenario::{self, ScenarioSpec, Stop};
/// use skippub_core::BackendKind;
///
/// let spec = ScenarioSpec::new("doc-steady", 7)
///     .population(5)
///     .publishers(2)
///     .publish_prob(0.4)
///     .rounds(10)
///     .stop(Stop::FixedRounds);
/// let outcome = scenario::run_spec(&spec, BackendKind::Sim).unwrap();
/// assert!(outcome.report.ok(), "{}", outcome.report.to_json());
/// // Every publication the two publishers issued reached every member.
/// assert_eq!(outcome.report.total_pubs, outcome.report.ops.publishes);
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (reports, traces, CLI).
    pub name: String,
    /// Seed for schedule compilation *and* backend construction.
    pub seed: u64,
    /// Number of topics (`TopicId(0..topics)`); single-topic backends
    /// only run specs with `topics == 1`.
    pub topics: u32,
    /// Supervisor shards for the sharded backend (ignored elsewhere).
    pub shards: usize,
    /// Worker-thread cap for the sharded backend's parallel round
    /// executor (ignored elsewhere). Purely an execution knob — results
    /// are byte-identical for every value.
    pub threads: usize,
    /// Supervisor replicas per group (`1` = the paper's unreplicated
    /// supervisor; `≥ 2` maintains a replica group behind every
    /// supervisor endpoint, enabling [`ScenarioSpec::sup_crash`]).
    pub replicas: usize,
    /// Topic→shard rebalancing cadence for the sharded backend: every
    /// `r` rounds hot topics are moved off overloaded shards based on
    /// the per-partition delivered-work counters (`0` = placement is
    /// fixed by the consistent-hash ring). Deterministic and
    /// thread-count-invariant; ignored by single-supervisor backends.
    pub rebalance_every: u64,
    /// Scheduled supervisor-primary crashes, as `(round, topic)`: at
    /// the start of `round` the primary replica of the supervisor group
    /// responsible for `topic` is killed and a backup takes over. The
    /// compiler appends these **after** every RNG draw, so a spec
    /// stripped of them compiles to the byte-identical remaining
    /// schedule — the failover oracle's never-crashing baseline.
    pub sup_crashes: Vec<(u64, u32)>,
    /// Link-fault schedule armed at the start of the **run** phase
    /// (populate/warm/seed run fault-free, and fault-window rounds are
    /// relative to the run phase's first round). `None` = perfect links.
    /// Ignored by the threaded backend (real channels cannot be
    /// deterministically faulted).
    pub faults: Option<FaultSpec>,
    /// Protocol knobs applied to every subscriber.
    pub protocol: ProtocolConfig,
    /// Initial subscriber population (slots `0..population`).
    pub population: usize,
    /// How subscribers pick their topic.
    pub popularity: Popularity,
    /// The first `publishers` slots form the stable publishing core;
    /// they never churn, so no publication is lost mid-flood and
    /// delivered sets are comparable across backends.
    pub publishers: usize,
    /// Per-publisher, per-scheduled-round publish probability.
    pub publish_prob: f64,
    /// Payloads are padded to at least this many bytes.
    pub payload_bytes: usize,
    /// Adversarial start: this many publications are seeded directly
    /// into arbitrary (deterministically drawn) subscriber stores before
    /// the schedule runs — Theorem 17's arbitrary initial distribution.
    pub scattered_pubs: usize,
    /// Mean arrivals per scheduled round (fractional rates accumulate).
    pub arrivals_per_round: f64,
    /// Mean graceful departures per scheduled round, drawn from the
    /// churn-fodder population. Unlike a [`Burst`] (which asserts when
    /// it outnumbers the pool), a continuous process that outpaces the
    /// fodder simply runs the pool dry: accrued departures with nobody
    /// left to leave are dropped — the compiler never errors a spec
    /// whose churn dynamics self-limit.
    pub departures_per_round: f64,
    /// Synchronized churn bursts (crash storms, leave waves).
    pub bursts: Vec<Burst>,
    /// Scheduled rounds (the driven part of the workload).
    pub rounds: u64,
    /// Bootstrap the initial population to legitimacy before the
    /// schedule runs (a *warm* start; `false` = cold / adversarial
    /// start).
    pub warm: bool,
    /// Round budget for the warm bootstrap.
    pub warm_budget: u64,
    /// Stop condition applied after the scheduled rounds.
    pub stop: Stop,
    /// Post-stop convergence budget: the engine steps until publication
    /// stores agree (or the budget runs out) before draining final
    /// deliveries, so fixed-round schedules still end comparable.
    pub settle: u64,
}

impl ScenarioSpec {
    /// A minimal spec: one topic, default protocol, warm start, no
    /// churn, no publishes, fixed 0 rounds. Build it up with the
    /// chaining setters. The name must be non-empty and single-line (it
    /// is a trace-header line and a report field).
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        let name = name.into();
        assert!(
            !name.trim().is_empty() && !name.contains('\n'),
            "scenario name must be non-empty and single-line, got {name:?}"
        );
        ScenarioSpec {
            name,
            seed,
            topics: 1,
            shards: 1,
            threads: 1,
            replicas: 1,
            rebalance_every: 0,
            sup_crashes: Vec::new(),
            faults: None,
            protocol: ProtocolConfig::default(),
            population: 0,
            popularity: Popularity::Uniform,
            publishers: 0,
            publish_prob: 0.0,
            payload_bytes: 8,
            scattered_pubs: 0,
            arrivals_per_round: 0.0,
            departures_per_round: 0.0,
            bursts: Vec::new(),
            rounds: 0,
            warm: true,
            warm_budget: 4_000,
            stop: Stop::FixedRounds,
            settle: 1_000,
        }
    }

    /// Sets the topic count (`≥ 1`).
    pub fn topics(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one topic");
        self.topics = n;
        self
    }

    /// Sets the shard count for the sharded backend.
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one shard");
        self.shards = k;
        self
    }

    /// Sets the worker-thread cap for the sharded backend's parallel
    /// round executor (results are identical for every value).
    pub fn threads(mut self, t: usize) -> Self {
        assert!(t >= 1, "need at least one worker thread");
        self.threads = t;
        self
    }

    /// Sets the supervisor replica count (`≥ 1`; `1` = unreplicated).
    pub fn replicas(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one supervisor replica");
        self.replicas = k;
        self
    }

    /// Sets the topic→shard rebalancing cadence (`0` = off).
    pub fn rebalance_every(mut self, r: u64) -> Self {
        self.rebalance_every = r;
        self
    }

    /// Schedules a supervisor-primary crash at the start of round `at`,
    /// targeting the group responsible for `topic`. Requires
    /// `replicas ≥ 2` to actually fail anything over (the op is a
    /// uniform no-op on an unreplicated supervisor).
    pub fn sup_crash(mut self, at: u64, topic: u32) -> Self {
        self.sup_crashes.push((at, topic));
        self
    }

    /// Arms a link-fault schedule for the run phase (normalized so the
    /// header line and the armed plane are canonical).
    pub fn faults(mut self, mut spec: FaultSpec) -> Self {
        spec.normalize();
        self.faults = Some(spec);
        self
    }

    /// A copy of this spec with the fault schedule stripped — the
    /// fault-storm oracle's perfect-link twin. Fault arming happens
    /// outside the schedule compiler, so the twin compiles to the
    /// byte-identical op schedule.
    pub fn without_faults(&self) -> Self {
        let mut twin = self.clone();
        twin.faults = None;
        twin
    }

    /// Sets the protocol knobs.
    pub fn protocol(mut self, cfg: ProtocolConfig) -> Self {
        self.protocol = cfg;
        self
    }

    /// Sets the initial population.
    pub fn population(mut self, n: usize) -> Self {
        self.population = n;
        self
    }

    /// Sets the topic-popularity model.
    pub fn popularity(mut self, p: Popularity) -> Self {
        self.popularity = p;
        self
    }

    /// Sets the publisher-core size (clamped to the population by the
    /// compiler).
    pub fn publishers(mut self, n: usize) -> Self {
        self.publishers = n;
        self
    }

    /// Sets the per-publisher per-round publish probability.
    pub fn publish_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.publish_prob = p;
        self
    }

    /// Sets the minimum payload size.
    pub fn payload_bytes(mut self, n: usize) -> Self {
        self.payload_bytes = n;
        self
    }

    /// Seeds `n` publications into arbitrary stores before the schedule.
    pub fn scattered_pubs(mut self, n: usize) -> Self {
        self.scattered_pubs = n;
        self
    }

    /// Sets the arrival churn rate.
    pub fn arrivals_per_round(mut self, r: f64) -> Self {
        assert!(r >= 0.0);
        self.arrivals_per_round = r;
        self
    }

    /// Sets the graceful-departure churn rate.
    pub fn departures_per_round(mut self, r: f64) -> Self {
        assert!(r >= 0.0);
        self.departures_per_round = r;
        self
    }

    /// Adds a churn burst.
    pub fn burst(mut self, b: Burst) -> Self {
        self.bursts.push(b);
        self
    }

    /// Sets the scheduled round count.
    pub fn rounds(mut self, n: u64) -> Self {
        self.rounds = n;
        self
    }

    /// Cold start: skip the warm bootstrap (all joins run through the
    /// protocol from an arbitrary/empty initial state).
    pub fn cold(mut self) -> Self {
        self.warm = false;
        self
    }

    /// Sets the warm-bootstrap budget.
    pub fn warm_budget(mut self, n: u64) -> Self {
        self.warm_budget = n;
        self
    }

    /// Sets the stop condition.
    pub fn stop(mut self, s: Stop) -> Self {
        self.stop = s;
        self
    }

    /// Sets the settle budget.
    pub fn settle(mut self, n: u64) -> Self {
        self.settle = n;
        self
    }

    /// Whether `kind` can execute this spec (single-topic backends only
    /// serve `topics == 1`; multi-topic and sharded serve any count).
    pub fn supported(&self, kind: BackendKind) -> bool {
        match kind {
            BackendKind::Sim | BackendKind::Chaos => self.topics == 1,
            BackendKind::MultiTopic | BackendKind::Sharded => true,
        }
    }

    /// The in-process backends this spec runs on, in conformance-sweep
    /// order.
    pub fn supported_backends(&self) -> Vec<BackendKind> {
        BackendKind::all()
            .into_iter()
            .filter(|k| self.supported(*k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let s = ScenarioSpec::new("t", 3)
            .topics(4)
            .shards(2)
            .threads(4)
            .population(10)
            .publishers(2)
            .publish_prob(0.5)
            .rounds(7)
            .arrivals_per_round(0.5)
            .departures_per_round(0.25)
            .burst(Burst {
                at: 3,
                count: 2,
                kind: BurstKind::Leave,
            })
            .cold()
            .stop(Stop::UntilLegit { max_extra: 99 });
        assert_eq!(s.topics, 4);
        assert_eq!(s.threads, 4);
        assert_eq!(s.population, 10);
        assert!(!s.warm);
        assert_eq!(s.bursts.len(), 1);
        assert_eq!(s.stop.max_extra(), 99);
    }

    #[test]
    fn support_follows_topic_count() {
        let single = ScenarioSpec::new("s", 1);
        assert_eq!(single.supported_backends().len(), 4);
        let multi = ScenarioSpec::new("m", 1).topics(3);
        assert!(!multi.supported(BackendKind::Sim));
        assert!(!multi.supported(BackendKind::Chaos));
        assert!(multi.supported(BackendKind::MultiTopic));
        assert!(multi.supported(BackendKind::Sharded));
    }

    #[test]
    fn replica_knobs_chain_and_default_off() {
        let plain = ScenarioSpec::new("p", 1);
        assert_eq!(plain.replicas, 1);
        assert!(plain.sup_crashes.is_empty());
        let s = ScenarioSpec::new("r", 1)
            .replicas(3)
            .sup_crash(4, 0)
            .sup_crash(9, 0);
        assert_eq!(s.replicas, 3);
        assert_eq!(s.sup_crashes, vec![(4, 0), (9, 0)]);
    }

    #[test]
    fn stop_names_round_trip() {
        for s in [
            Stop::FixedRounds,
            Stop::UntilLegit { max_extra: 5 },
            Stop::UntilPubsConverged { max_extra: 5 },
        ] {
            assert_eq!(Stop::from_name(s.name(), s.max_extra()), Some(s));
        }
        assert_eq!(Stop::from_name("nope", 0), None);
    }
}
