//! The scenario executor: applies a compiled
//! [`Schedule`](super::schedule::Schedule) to any [`PubSub`] backend,
//! phase by phase, optionally recording every applied op to a
//! [`Trace`].
//!
//! Phases (all recorded as `phase` markers in traces):
//!
//! 1. **populate** — subscribe the initial population;
//! 2. **warm** — bootstrap to legitimacy (skipped for cold starts);
//! 3. **seed** — scatter adversarial publications into stores;
//! 4. **run** — the scheduled rounds (ops, then one step each);
//! 5. **stop** — extra rounds until the spec's stop condition holds;
//! 6. **settle** — extra rounds until publication stores agree, so
//!    delivered sets are comparable across backends;
//! 7. **drain** — drain every surviving member and assemble the report.

use super::report::{OpCounts, ScenarioReport, TopicReport};
use super::schedule::{compile, PlannedOp};
use super::spec::{ScenarioSpec, Stop};
use super::trace::{Trace, TraceLine};
use skippub_bits::Hash128;
use skippub_core::pubsub::{BackendSnapshot, Delivery, Op};
use skippub_core::{BackendKind, PubSub, SystemBuilder, TopicId};
use skippub_sim::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// One delivered publication in backend-agnostic, comparable form:
/// `(author, payload, key)`.
pub type DeliveredItem = (u64, Vec<u8>, String);

/// A per-topic delivered set.
pub type DeliveredSet = BTreeSet<DeliveredItem>;

/// Everything a scenario run produces beyond the JSON report — concrete
/// IDs for white-box probes (experiments use these for snapshot checks).
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The per-scenario report (JSON via
    /// [`ScenarioReport::to_json`]).
    pub report: ScenarioReport,
    /// Slot → assigned `NodeId`, in spawn order.
    pub slot_ids: Vec<NodeId>,
    /// IDs crashed by the schedule.
    pub crashed: Vec<NodeId>,
    /// IDs that left gracefully.
    pub left: Vec<NodeId>,
    /// Per-topic delivered set of the surviving members — taken from
    /// each topic's first member, which equals every other member's set
    /// whenever `report.members_agree` holds (and `report.ok()` implies
    /// it). When members disagree the report is already failing; this
    /// field then shows the first member's view as a diagnostic, not a
    /// consensus.
    pub delivered: BTreeMap<u32, DeliveredSet>,
}

/// Round-budget multiplier applied to warm/stop/settle budgets: the
/// chaos scheduler delivers each message with probability ~0.5, so its
/// convergence horizons are an order of magnitude longer than the
/// synchronous scheduler's.
pub fn budget_multiplier(kind: BackendKind) -> u64 {
    match kind {
        BackendKind::Chaos => 10,
        _ => 1,
    }
}

/// The [`SystemBuilder`] a spec maps onto (shared by the engine, the
/// CLI's threaded path, and the trace replayer).
pub fn builder_for(spec: &ScenarioSpec) -> SystemBuilder {
    SystemBuilder::new(spec.seed)
        .topics(spec.topics)
        .shards(spec.shards)
        .threads(spec.threads)
        .replicas(spec.replicas)
        .rebalance_every(spec.rebalance_every)
        .protocol(spec.protocol)
}

/// Builds the backend and runs the spec on it.
pub fn run_spec(spec: &ScenarioSpec, kind: BackendKind) -> Result<ScenarioOutcome, String> {
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} needs {} topics; backend {} serves exactly one",
            spec.name,
            spec.topics,
            kind.name()
        ));
    }
    let mut ps = builder_for(spec).build(kind);
    Ok(execute(ps.as_mut(), spec, budget_multiplier(kind), None))
}

/// Like [`run_spec`], but records every applied op into a replayable
/// [`Trace`].
pub fn run_recorded(
    spec: &ScenarioSpec,
    kind: BackendKind,
) -> Result<(ScenarioOutcome, Trace), String> {
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} does not support backend {}",
            spec.name,
            kind.name()
        ));
    }
    let mut ps = builder_for(spec).build(kind);
    let mut trace = Trace::new(spec, kind.name());
    let outcome = execute(ps.as_mut(), spec, budget_multiplier(kind), Some(&mut trace));
    Ok((outcome, trace))
}

/// Runs the spec against an already-constructed backend (the threaded
/// backend, or an experiment's pre-seeded world). `budget_mult` scales
/// the warm/stop/settle budgets.
pub fn run_on(ps: &mut dyn PubSub, spec: &ScenarioSpec, budget_mult: u64) -> ScenarioOutcome {
    execute(ps, spec, budget_mult, None)
}

/// A mid-run checkpoint: the backend snapshot plus the engine's churn
/// bookkeeping at the capture point — everything [`resume_spec`] needs
/// to warm-start the remainder of the scenario in a fresh process.
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// Name of the spec the snapshot was captured under (resume
    /// re-checks it; the schedule must be the one the bookkeeping
    /// indexes into).
    pub scenario: String,
    /// Spec seed at capture (resume re-checks it for the same reason).
    pub seed: u64,
    /// Scheduled rounds completed at capture.
    pub round: u64,
    /// Slot → assigned `NodeId` at capture, in spawn order.
    pub slot_ids: Vec<NodeId>,
    /// IDs crashed by the schedule before capture.
    pub crashed: Vec<NodeId>,
    /// IDs that left gracefully before capture.
    pub left: Vec<NodeId>,
    /// The backend checkpoint itself.
    pub snapshot: BackendSnapshot,
}

impl WarmStart {
    /// Serializes to the two-line warm-start file format: a header line
    /// with the engine bookkeeping, then the backend snapshot (itself a
    /// single line of tokens).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut text = format!(
            "scenariowarm 1 {} {} {}",
            self.scenario, self.seed, self.round
        );
        for list in [&self.slot_ids, &self.crashed, &self.left] {
            let _ = write!(text, " {}", list.len());
            for id in list {
                let _ = write!(text, " {}", id.0);
            }
        }
        text.push('\n');
        text.push_str(self.snapshot.as_text());
        text.push('\n');
        text
    }

    /// Parses the warm-start file format back.
    pub fn parse(text: &str) -> Result<WarmStart, String> {
        let (header, snap) = text
            .split_once('\n')
            .ok_or("warm-start file needs a header line and a snapshot line")?;
        let mut toks = header.split_ascii_whitespace();
        let mut tok = |what: &str| {
            toks.next()
                .ok_or_else(|| format!("warm-start header truncated at {what}"))
        };
        match (tok("magic")?, tok("version")?) {
            ("scenariowarm", "1") => {}
            (m, v) => return Err(format!("bad warm-start header: {m} {v}")),
        }
        let scenario = tok("scenario")?.to_string();
        let seed = tok("seed")?.parse::<u64>().map_err(|e| e.to_string())?;
        let round = tok("round")?.parse::<u64>().map_err(|e| e.to_string())?;
        let mut lists: [Vec<NodeId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = tok("list length")?
                .parse::<usize>()
                .map_err(|e| e.to_string())?;
            for _ in 0..n {
                list.push(NodeId(
                    tok("node id")?.parse::<u64>().map_err(|e| e.to_string())?,
                ));
            }
        }
        if toks.next().is_some() {
            return Err("trailing tokens in warm-start header".into());
        }
        let [slot_ids, crashed, left] = lists;
        let snapshot =
            BackendSnapshot::from_text(snap.trim_end()).map_err(|e| e.to_string())?;
        Ok(WarmStart {
            scenario,
            seed,
            round,
            slot_ids,
            crashed,
            left,
            snapshot,
        })
    }
}

/// Like [`run_spec`], but additionally captures a [`WarmStart`] after
/// `at_round` scheduled rounds (0 = right after the seed phase) and
/// runs the scenario to completion as usual. Errors if `at_round`
/// exceeds the schedule or the backend cannot snapshot.
pub fn run_spec_with_snapshot(
    spec: &ScenarioSpec,
    kind: BackendKind,
    at_round: u64,
) -> Result<(ScenarioOutcome, WarmStart), String> {
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} does not support backend {}",
            spec.name,
            kind.name()
        ));
    }
    let mut ps = builder_for(spec).build(kind);
    let (out, captured) = run_phases(
        ps.as_mut(),
        spec,
        budget_multiplier(kind),
        None,
        None,
        Some(at_round as usize),
    );
    match captured {
        Some(Ok(warm)) => Ok((out, warm)),
        Some(Err(e)) => Err(format!("snapshot at round {at_round}: {e}")),
        None => Err(format!(
            "--snapshot-at {at_round} is past the end of the schedule"
        )),
    }
}

/// Warm-starts the *remainder* of `spec` from a [`WarmStart`]: restores
/// the backend from the snapshot, then executes the scheduled rounds
/// after the capture point plus the usual stop/settle/drain phases.
/// On the deterministic backends the resumed run's delivered sets and
/// fingerprints equal the uninterrupted run's.
pub fn resume_spec(spec: &ScenarioSpec, warm: &WarmStart) -> Result<ScenarioOutcome, String> {
    if warm.scenario != spec.name || warm.seed != spec.seed {
        return Err(format!(
            "warm start is for scenario {:?} seed {}, not {:?} seed {}",
            warm.scenario, warm.seed, spec.name, spec.seed
        ));
    }
    let rounds = compile(spec).rounds.len();
    if warm.round as usize > rounds {
        return Err(format!(
            "warm start at round {} is past the {} scheduled rounds",
            warm.round, rounds
        ));
    }
    let mut ps = skippub_core::pubsub::restore(&warm.snapshot)?;
    let mult = if ps.backend_name() == "chaos" { 10 } else { 1 };
    let churn = Churn {
        slot_ids: warm.slot_ids.clone(),
        crashed: warm.crashed.clone(),
        left: warm.left.clone(),
    };
    let (out, _) = run_phases(
        ps.as_mut(),
        spec,
        mult,
        None,
        Some((churn, warm.round as usize)),
        None,
    );
    Ok(out)
}

/// Runs the spec on the threaded runtime (`skippub-net`): one OS thread
/// per node, 5 ms wall-clock poll slices as steps. The single driver
/// shared by the `scenarios` CLI and the conformance tests, so the two
/// cannot drift. Single-topic specs only.
pub fn run_threaded(spec: &ScenarioSpec) -> Result<ScenarioOutcome, String> {
    if spec.topics != 1 {
        return Err(format!(
            "scenario {:?} uses {} topics; the threaded backend serves one",
            spec.name, spec.topics
        ));
    }
    let mut net = skippub_net::NetBackend::from_builder(&builder_for(spec))
        .with_poll_interval(std::time::Duration::from_millis(5));
    let out = execute(&mut net, spec, 1, None);
    net.shutdown();
    Ok(out)
}

/// Applies ops + bookkeeping, and mirrors everything into the optional
/// trace.
struct Recorder<'a> {
    trace: Option<&'a mut Trace>,
    ops: OpCounts,
}

impl Recorder<'_> {
    fn phase(&mut self, name: &'static str) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Phase(name.to_string()));
        }
    }

    fn apply(&mut self, ps: &mut dyn PubSub, op: Op) -> Option<NodeId> {
        self.ops.record(&op);
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Op(op.clone()));
        }
        op.apply(ps)
    }

    fn step(&mut self, ps: &mut dyn PubSub) {
        self.apply(ps, Op::Step);
    }

    fn member(&mut self, id: NodeId, topic: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Member(id, topic));
        }
    }

    fn drain(&mut self, ps: &mut dyn PubSub, id: NodeId) -> Vec<Delivery> {
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Drain(id));
        }
        ps.drain_events(id)
    }
}

/// Run identity + backend configuration carried into the report header,
/// shared between live execution (from the spec) and trace replay (from
/// the trace header) so both assemble byte-identical JSON.
pub(crate) struct RunMeta<'a> {
    pub scenario: &'a str,
    pub seed: u64,
    pub topics: u32,
    pub shards: usize,
    pub threads: usize,
    /// Live clients at drain time, maintained by the caller's own op
    /// bookkeeping (spawns minus crashes — leavers stay live nodes on
    /// every backend) instead of a fresh `subscriber_ids()` scan+Vec of
    /// the backend; `assemble_report` cross-checks the two in debug
    /// builds.
    pub final_population: usize,
}

/// Phase bookkeeping shared between live execution and trace replay.
pub(crate) struct Phases {
    pub warm_rounds: u64,
    pub warm_ok: bool,
    pub scheduled_rounds: u64,
    pub stop_kind: &'static str,
    pub stop_rounds: u64,
    pub stop_ok: bool,
    pub settle_rounds: u64,
}

/// Whether the stop condition currently holds.
pub(crate) fn stop_met(ps: &dyn PubSub, stop: &Stop) -> bool {
    match stop {
        Stop::FixedRounds => true,
        Stop::UntilLegit { .. } => ps.is_legitimate(),
        Stop::UntilPubsConverged { .. } => ps.publications_converged().0,
    }
}

/// Engine churn bookkeeping at a point in the run: slot → id bindings
/// in spawn order plus the crash/leave lists the drain phase needs.
#[derive(Clone, Debug, Default)]
struct Churn {
    slot_ids: Vec<NodeId>,
    crashed: Vec<NodeId>,
    left: Vec<NodeId>,
}

/// Freezes the backend + bookkeeping into a [`WarmStart`].
fn capture_warm(
    ps: &dyn PubSub,
    spec: &ScenarioSpec,
    round: usize,
    churn: &Churn,
) -> Result<WarmStart, String> {
    Ok(WarmStart {
        scenario: spec.name.clone(),
        seed: spec.seed,
        round: round as u64,
        slot_ids: churn.slot_ids.clone(),
        crashed: churn.crashed.clone(),
        left: churn.left.clone(),
        snapshot: ps.save_snapshot()?,
    })
}

fn execute(
    ps: &mut dyn PubSub,
    spec: &ScenarioSpec,
    budget_mult: u64,
    trace: Option<&mut Trace>,
) -> ScenarioOutcome {
    run_phases(ps, spec, budget_mult, trace, None, None).0
}

/// The seven phases. `resume_from = Some((churn, round))` skips
/// populate/warm/seed and the first `round` scheduled rounds,
/// continuing from the restored bookkeeping; `capture_at = Some(R)`
/// snapshots the backend right before scheduled round `R`
/// (`R == rounds.len()` captures after the last round) and returns the
/// capture alongside the outcome (`None` when `R` is out of range).
fn run_phases(
    ps: &mut dyn PubSub,
    spec: &ScenarioSpec,
    budget_mult: u64,
    trace: Option<&mut Trace>,
    resume_from: Option<(Churn, usize)>,
    capture_at: Option<usize>,
) -> (ScenarioOutcome, Option<Result<WarmStart, String>>) {
    let schedule = compile(spec);
    let mut rec = Recorder {
        trace,
        ops: OpCounts::default(),
    };
    let fresh = resume_from.is_none();
    let (mut churn, start_round) = resume_from.unwrap_or_default();

    // Slot → bound ID lookups index `slot_ids` directly: the compiler
    // guarantees ops only reference already-spawned slots.
    let apply_planned =
        |rec: &mut Recorder, ps: &mut dyn PubSub, op: &PlannedOp, churn: &mut Churn| {
            match op {
                PlannedOp::Subscribe { slot, topic } => {
                    let id = rec
                        .apply(ps, Op::Subscribe { topic: TopicId(*topic) })
                        .expect("subscribe returns an id");
                    debug_assert_eq!(*slot, churn.slot_ids.len(), "slots spawn in order");
                    churn.slot_ids.push(id);
                }
                PlannedOp::Leave { slot, topic } => {
                    let id = churn.slot_ids[*slot];
                    churn.left.push(id);
                    rec.apply(
                        ps,
                        Op::Unsubscribe {
                            id,
                            topic: TopicId(*topic),
                        },
                    );
                }
                PlannedOp::Publish {
                    slot,
                    topic,
                    payload,
                } => {
                    rec.apply(
                        ps,
                        Op::Publish {
                            id: churn.slot_ids[*slot],
                            topic: TopicId(*topic),
                            payload: payload.clone(),
                        },
                    );
                }
                PlannedOp::Seed {
                    slot,
                    topic,
                    payload,
                } => {
                    let id = churn.slot_ids[*slot];
                    rec.apply(
                        ps,
                        Op::SeedPublication {
                            id,
                            topic: TopicId(*topic),
                            author: id.0,
                            payload: payload.clone(),
                        },
                    );
                }
                PlannedOp::Crash { slot } => {
                    let id = churn.slot_ids[*slot];
                    churn.crashed.push(id);
                    rec.apply(ps, Op::Crash { id });
                }
                PlannedOp::Report { slot } => {
                    rec.apply(ps, Op::ReportCrash { id: churn.slot_ids[*slot] });
                }
                PlannedOp::CrashSupervisor { topic } => {
                    // No churn bookkeeping: the supervisor is a virtual
                    // endpoint, not a slot — failover replaces it in
                    // place under the same NodeId.
                    rec.apply(ps, Op::CrashSupervisor { topic: TopicId(*topic) });
                }
            }
        };

    // Phases 1–3 already ran before the capture point on a resumed run
    // (re-warming mid-run would add steps the uninterrupted run never
    // takes, breaking determinism).
    let mut warm_rounds = 0;
    let mut warm_ok = true;
    if fresh {
        // 1. populate
        rec.phase("populate");
        for op in &schedule.prelude {
            apply_planned(&mut rec, ps, op, &mut churn);
        }

        // 2. warm
        rec.phase("warm");
        if spec.warm {
            let budget = spec.warm_budget.saturating_mul(budget_mult);
            loop {
                if ps.is_legitimate() {
                    break;
                }
                if warm_rounds >= budget {
                    warm_ok = false;
                    break;
                }
                rec.step(ps);
                warm_rounds += 1;
            }
        }

        // 3. seed
        rec.phase("seed");
        for op in &schedule.seeds {
            apply_planned(&mut rec, ps, op, &mut churn);
        }
    }

    // 4. run
    rec.phase("run");
    // Arm the link-fault plane at the run phase's first round: fault
    // windows are relative to here, and populate/warm/seed ran
    // fault-free. Resumed runs restore the already-armed plane (RNG
    // stream states included) inside the backend snapshot — re-arming
    // would rewind those streams.
    if fresh {
        if let Some(f) = &spec.faults {
            ps.set_faults(Some(f.clone()));
        }
    }
    let mut captured: Option<Result<WarmStart, String>> = None;
    for (idx, ops) in schedule.rounds.iter().enumerate() {
        if idx < start_round {
            continue;
        }
        if capture_at == Some(idx) {
            captured = Some(capture_warm(ps, spec, idx, &churn));
        }
        for op in ops {
            apply_planned(&mut rec, ps, op, &mut churn);
        }
        rec.step(ps);
    }
    if capture_at == Some(schedule.rounds.len()) {
        captured = Some(capture_warm(ps, spec, schedule.rounds.len(), &churn));
    }

    // 5. stop
    rec.phase("stop");
    let mut stop_rounds = 0;
    let mut stop_ok = true;
    let budget = spec.stop.max_extra().saturating_mul(budget_mult);
    loop {
        if stop_met(ps, &spec.stop) {
            break;
        }
        if stop_rounds >= budget {
            stop_ok = false;
            break;
        }
        rec.step(ps);
        stop_rounds += 1;
    }

    // 6. settle
    rec.phase("settle");
    let mut settle_rounds = 0;
    let budget = spec.settle.saturating_mul(budget_mult);
    while !ps.publications_converged().0 && settle_rounds < budget {
        rec.step(ps);
        settle_rounds += 1;
    }

    // 7. drain surviving members
    rec.phase("drain");
    let mut membership: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    let mut drained: BTreeMap<NodeId, Vec<Delivery>> = BTreeMap::new();
    for (topic, slots) in schedule.survivors_by_topic(spec.topics) {
        let entry = membership.entry(topic).or_default();
        for slot in slots {
            let id = churn.slot_ids[slot];
            entry.push(id);
            rec.member(id, topic);
            let events = rec.drain(ps, id);
            drained.insert(id, events);
        }
    }

    let phases = Phases {
        warm_rounds,
        warm_ok,
        scheduled_rounds: schedule.rounds.len() as u64,
        stop_kind: spec.stop.name(),
        stop_rounds,
        stop_ok,
        settle_rounds,
    };
    let Churn {
        slot_ids,
        crashed,
        left,
    } = churn;
    let meta = RunMeta {
        scenario: &spec.name,
        seed: spec.seed,
        topics: spec.topics,
        shards: spec.shards,
        threads: spec.threads,
        // The engine's own churn bookkeeping *is* the live-client list:
        // every spawn lands in `slot_ids`, every crash in `crashed`, and
        // graceful leavers remain live nodes on every backend.
        final_population: slot_ids.len() - crashed.len(),
    };
    let (report, delivered) =
        assemble_report(ps, &meta, phases, &membership, &drained, rec.ops);
    (
        ScenarioOutcome {
            report,
            slot_ids,
            crashed,
            left,
            delivered,
        },
        captured,
    )
}

/// Hex fingerprint of one delivered set.
fn fingerprint(set: &DeliveredSet) -> String {
    let mut buf = Vec::new();
    for (author, payload, key) in set {
        buf.extend_from_slice(&author.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(key.as_bytes());
        buf.push(b';');
    }
    format!("{:032x}", Hash128::of_bytes(&buf).0)
}

/// Builds the report (and the per-topic common delivered sets) from the
/// final backend state plus the run's bookkeeping. Shared by live
/// execution and trace replay so both assemble byte-identical JSON.
pub(crate) fn assemble_report(
    ps: &dyn PubSub,
    meta: &RunMeta<'_>,
    phases: Phases,
    membership: &BTreeMap<u32, Vec<NodeId>>,
    drained: &BTreeMap<NodeId, Vec<Delivery>>,
    ops: OpCounts,
) -> (ScenarioReport, BTreeMap<u32, DeliveredSet>) {
    let mut members_agree = true;
    let mut per_topic = Vec::new();
    let mut delivered: BTreeMap<u32, DeliveredSet> = BTreeMap::new();
    let mut all = Vec::new();
    for (&topic, members) in membership {
        let sets: Vec<DeliveredSet> = members
            .iter()
            .map(|id| {
                drained
                    .get(id)
                    .map(|events| {
                        events
                            .iter()
                            .filter(|d| d.topic.0 == topic)
                            .map(|d| (d.author, d.payload.clone(), d.key.to_string()))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        members_agree &= sets.windows(2).all(|w| w[0] == w[1]);
        // First member's set; identical to all others when members
        // agree, a diagnostic view (flagged by members_agree=false,
        // which fails the report) when they don't.
        let common = sets.into_iter().next().unwrap_or_default();
        let fp = fingerprint(&common);
        all.extend_from_slice(format!("t{topic}:{fp};").as_bytes());
        per_topic.push(TopicReport {
            topic,
            members: members.len(),
            pubs: common.len(),
            fingerprint: fp,
        });
        delivered.insert(topic, common);
    }
    let (pubs_converged, total_pubs) = ps.publications_converged();
    debug_assert_eq!(
        meta.final_population,
        ps.subscriber_ids().len(),
        "op-derived live-client count must match the backend's view"
    );
    let report = ScenarioReport {
        scenario: meta.scenario.to_string(),
        backend: ps.backend_name().to_string(),
        seed: meta.seed,
        topics: meta.topics,
        shards: meta.shards,
        threads: meta.threads,
        final_population: meta.final_population,
        warm_rounds: phases.warm_rounds,
        warm_ok: phases.warm_ok,
        scheduled_rounds: phases.scheduled_rounds,
        stop_kind: phases.stop_kind,
        stop_rounds: phases.stop_rounds,
        stop_ok: phases.stop_ok,
        settle_rounds: phases.settle_rounds,
        legit: ps.is_legitimate(),
        pubs_converged,
        total_pubs,
        members_agree,
        per_topic,
        delivered_fingerprint: format!("{:032x}", Hash128::of_bytes(&all).0),
        ops,
        stats: ps.stats(),
    };
    (report, delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::{Burst, BurstKind};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new("engine-test", 23)
            .population(8)
            .publishers(2)
            .publish_prob(0.4)
            .rounds(12)
            .burst(Burst {
                at: 3,
                count: 2,
                kind: BurstKind::Crash {
                    detect_after: Some(3),
                },
            })
            .stop(Stop::UntilLegit { max_extra: 3_000 })
    }

    #[test]
    fn runs_on_sim_and_reaches_all_verdicts() {
        let out = run_spec(&small_spec(), BackendKind::Sim).expect("supported");
        let r = &out.report;
        assert!(r.ok(), "{}", r.to_json());
        assert!(r.legit && r.pubs_converged);
        assert_eq!(r.ops.crashes, 2);
        assert_eq!(r.ops.reports, 2);
        assert_eq!(out.crashed.len(), 2);
        assert_eq!(r.final_population, 6, "8 initial - 2 crashed");
        assert_eq!(r.total_pubs, r.ops.publishes, "every publish delivered");
        assert_eq!(out.delivered[&0].len(), r.total_pubs);
    }

    #[test]
    fn identical_delivered_sets_across_in_process_backends() {
        let spec = small_spec();
        let mut reference: Option<(String, BTreeMap<u32, DeliveredSet>, String)> = None;
        for kind in spec.supported_backends() {
            let out = run_spec(&spec, kind).expect("supported");
            assert!(out.report.ok(), "{}", out.report.to_json());
            match &reference {
                None => {
                    reference = Some((
                        out.report.backend.clone(),
                        out.delivered,
                        out.report.delivered_fingerprint.clone(),
                    ))
                }
                Some((name, delivered, fp)) => {
                    assert_eq!(&out.delivered, delivered, "{} vs {name}", out.report.backend);
                    assert_eq!(&out.report.delivered_fingerprint, fp);
                }
            }
        }
    }

    #[test]
    fn multi_topic_spec_is_rejected_on_single_topic_backends() {
        let spec = ScenarioSpec::new("multi", 1).topics(3).population(6);
        assert!(run_spec(&spec, BackendKind::Sim).is_err());
        assert!(run_spec(&spec, BackendKind::MultiTopic).is_ok());
    }

    #[test]
    fn warm_start_resume_matches_uninterrupted_run() {
        let spec = small_spec();
        for kind in spec.supported_backends() {
            let reference = run_spec(&spec, kind).expect("supported");
            let (full, warm) = run_spec_with_snapshot(&spec, kind, 6).expect("in range");
            // Capturing must not perturb the capturing run itself.
            assert_eq!(
                full.report.delivered_fingerprint, reference.report.delivered_fingerprint,
                "{}", kind.name()
            );
            // File-format round trip, then resume from the parsed copy.
            let parsed = WarmStart::parse(&warm.to_text()).expect("parses back");
            assert_eq!(parsed.round, 6);
            assert_eq!(parsed.slot_ids, warm.slot_ids);
            assert_eq!(parsed.snapshot.as_text(), warm.snapshot.as_text());
            let resumed = resume_spec(&spec, &parsed).expect("resumes");
            assert_eq!(
                resumed.report.delivered_fingerprint, reference.report.delivered_fingerprint,
                "resume diverged on {}", kind.name()
            );
            assert_eq!(resumed.delivered, reference.delivered);
            assert_eq!(resumed.crashed, reference.crashed);
            assert!(resumed.report.ok(), "{}", resumed.report.to_json());
        }
    }

    #[test]
    fn warm_start_guards_reject_mismatches() {
        let spec = small_spec();
        // Past the end of the 12-round schedule.
        assert!(run_spec_with_snapshot(&spec, BackendKind::Sim, 13).is_err());
        // Capture right after the last round is still valid.
        let (_, warm) = run_spec_with_snapshot(&spec, BackendKind::Sim, 12).expect("boundary");
        let other = ScenarioSpec::new("other", 23).population(8);
        assert!(resume_spec(&other, &warm).is_err(), "wrong scenario name");
        let mut reseeded = small_spec();
        reseeded.seed = 99;
        assert!(resume_spec(&reseeded, &warm).is_err(), "wrong seed");
    }

    #[test]
    fn cold_start_skips_warm_phase() {
        let spec = ScenarioSpec::new("cold", 3)
            .population(5)
            .cold()
            .stop(Stop::UntilLegit { max_extra: 2_000 });
        let out = run_spec(&spec, BackendKind::Sim).unwrap();
        assert_eq!(out.report.warm_rounds, 0);
        assert!(out.report.stop_rounds > 0, "legitimacy forms in stop phase");
        assert!(out.report.ok());
    }
}
