//! The scenario executor: applies a compiled
//! [`Schedule`](super::schedule::Schedule) to any [`PubSub`] backend,
//! phase by phase, optionally recording every applied op to a
//! [`Trace`].
//!
//! Phases (all recorded as `phase` markers in traces):
//!
//! 1. **populate** — subscribe the initial population;
//! 2. **warm** — bootstrap to legitimacy (skipped for cold starts);
//! 3. **seed** — scatter adversarial publications into stores;
//! 4. **run** — the scheduled rounds (ops, then one step each);
//! 5. **stop** — extra rounds until the spec's stop condition holds;
//! 6. **settle** — extra rounds until publication stores agree, so
//!    delivered sets are comparable across backends;
//! 7. **drain** — drain every surviving member and assemble the report.

use super::report::{OpCounts, ScenarioReport, TopicReport};
use super::schedule::{compile, PlannedOp};
use super::spec::{ScenarioSpec, Stop};
use super::trace::{Trace, TraceLine};
use skippub_bits::Hash128;
use skippub_core::pubsub::{Delivery, Op};
use skippub_core::{BackendKind, PubSub, SystemBuilder, TopicId};
use skippub_sim::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// One delivered publication in backend-agnostic, comparable form:
/// `(author, payload, key)`.
pub type DeliveredItem = (u64, Vec<u8>, String);

/// A per-topic delivered set.
pub type DeliveredSet = BTreeSet<DeliveredItem>;

/// Everything a scenario run produces beyond the JSON report — concrete
/// IDs for white-box probes (experiments use these for snapshot checks).
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The per-scenario report (JSON via
    /// [`ScenarioReport::to_json`]).
    pub report: ScenarioReport,
    /// Slot → assigned `NodeId`, in spawn order.
    pub slot_ids: Vec<NodeId>,
    /// IDs crashed by the schedule.
    pub crashed: Vec<NodeId>,
    /// IDs that left gracefully.
    pub left: Vec<NodeId>,
    /// Per-topic delivered set of the surviving members — taken from
    /// each topic's first member, which equals every other member's set
    /// whenever `report.members_agree` holds (and `report.ok()` implies
    /// it). When members disagree the report is already failing; this
    /// field then shows the first member's view as a diagnostic, not a
    /// consensus.
    pub delivered: BTreeMap<u32, DeliveredSet>,
}

/// Round-budget multiplier applied to warm/stop/settle budgets: the
/// chaos scheduler delivers each message with probability ~0.5, so its
/// convergence horizons are an order of magnitude longer than the
/// synchronous scheduler's.
pub fn budget_multiplier(kind: BackendKind) -> u64 {
    match kind {
        BackendKind::Chaos => 10,
        _ => 1,
    }
}

/// The [`SystemBuilder`] a spec maps onto (shared by the engine, the
/// CLI's threaded path, and the trace replayer).
pub fn builder_for(spec: &ScenarioSpec) -> SystemBuilder {
    SystemBuilder::new(spec.seed)
        .topics(spec.topics)
        .shards(spec.shards)
        .threads(spec.threads)
        .protocol(spec.protocol)
}

/// Builds the backend and runs the spec on it.
pub fn run_spec(spec: &ScenarioSpec, kind: BackendKind) -> Result<ScenarioOutcome, String> {
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} needs {} topics; backend {} serves exactly one",
            spec.name,
            spec.topics,
            kind.name()
        ));
    }
    let mut ps = builder_for(spec).build(kind);
    Ok(execute(ps.as_mut(), spec, budget_multiplier(kind), None))
}

/// Like [`run_spec`], but records every applied op into a replayable
/// [`Trace`].
pub fn run_recorded(
    spec: &ScenarioSpec,
    kind: BackendKind,
) -> Result<(ScenarioOutcome, Trace), String> {
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} does not support backend {}",
            spec.name,
            kind.name()
        ));
    }
    let mut ps = builder_for(spec).build(kind);
    let mut trace = Trace::new(spec, kind.name());
    let outcome = execute(ps.as_mut(), spec, budget_multiplier(kind), Some(&mut trace));
    Ok((outcome, trace))
}

/// Runs the spec against an already-constructed backend (the threaded
/// backend, or an experiment's pre-seeded world). `budget_mult` scales
/// the warm/stop/settle budgets.
pub fn run_on(ps: &mut dyn PubSub, spec: &ScenarioSpec, budget_mult: u64) -> ScenarioOutcome {
    execute(ps, spec, budget_mult, None)
}

/// Runs the spec on the threaded runtime (`skippub-net`): one OS thread
/// per node, 5 ms wall-clock poll slices as steps. The single driver
/// shared by the `scenarios` CLI and the conformance tests, so the two
/// cannot drift. Single-topic specs only.
pub fn run_threaded(spec: &ScenarioSpec) -> Result<ScenarioOutcome, String> {
    if spec.topics != 1 {
        return Err(format!(
            "scenario {:?} uses {} topics; the threaded backend serves one",
            spec.name, spec.topics
        ));
    }
    let mut net = skippub_net::NetBackend::from_builder(&builder_for(spec))
        .with_poll_interval(std::time::Duration::from_millis(5));
    let out = execute(&mut net, spec, 1, None);
    net.shutdown();
    Ok(out)
}

/// Applies ops + bookkeeping, and mirrors everything into the optional
/// trace.
struct Recorder<'a> {
    trace: Option<&'a mut Trace>,
    ops: OpCounts,
}

impl Recorder<'_> {
    fn phase(&mut self, name: &'static str) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Phase(name.to_string()));
        }
    }

    fn apply(&mut self, ps: &mut dyn PubSub, op: Op) -> Option<NodeId> {
        self.ops.record(&op);
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Op(op.clone()));
        }
        op.apply(ps)
    }

    fn step(&mut self, ps: &mut dyn PubSub) {
        self.apply(ps, Op::Step);
    }

    fn member(&mut self, id: NodeId, topic: u32) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Member(id, topic));
        }
    }

    fn drain(&mut self, ps: &mut dyn PubSub, id: NodeId) -> Vec<Delivery> {
        if let Some(t) = self.trace.as_deref_mut() {
            t.lines.push(TraceLine::Drain(id));
        }
        ps.drain_events(id)
    }
}

/// Run identity + backend configuration carried into the report header,
/// shared between live execution (from the spec) and trace replay (from
/// the trace header) so both assemble byte-identical JSON.
pub(crate) struct RunMeta<'a> {
    pub scenario: &'a str,
    pub seed: u64,
    pub topics: u32,
    pub shards: usize,
    pub threads: usize,
    /// Live clients at drain time, maintained by the caller's own op
    /// bookkeeping (spawns minus crashes — leavers stay live nodes on
    /// every backend) instead of a fresh `subscriber_ids()` scan+Vec of
    /// the backend; `assemble_report` cross-checks the two in debug
    /// builds.
    pub final_population: usize,
}

/// Phase bookkeeping shared between live execution and trace replay.
pub(crate) struct Phases {
    pub warm_rounds: u64,
    pub warm_ok: bool,
    pub scheduled_rounds: u64,
    pub stop_kind: &'static str,
    pub stop_rounds: u64,
    pub stop_ok: bool,
    pub settle_rounds: u64,
}

/// Whether the stop condition currently holds.
pub(crate) fn stop_met(ps: &dyn PubSub, stop: &Stop) -> bool {
    match stop {
        Stop::FixedRounds => true,
        Stop::UntilLegit { .. } => ps.is_legitimate(),
        Stop::UntilPubsConverged { .. } => ps.publications_converged().0,
    }
}

fn execute(
    ps: &mut dyn PubSub,
    spec: &ScenarioSpec,
    budget_mult: u64,
    trace: Option<&mut Trace>,
) -> ScenarioOutcome {
    let schedule = compile(spec);
    let mut rec = Recorder {
        trace,
        ops: OpCounts::default(),
    };
    let mut slot_ids: Vec<NodeId> = Vec::with_capacity(schedule.slots.len());
    let mut crashed = Vec::new();
    let mut left = Vec::new();

    // Slot → bound ID lookups index `slot_ids` directly: the compiler
    // guarantees ops only reference already-spawned slots.
    let apply_planned = |rec: &mut Recorder,
                             ps: &mut dyn PubSub,
                             op: &PlannedOp,
                             slot_ids: &mut Vec<NodeId>,
                             crashed: &mut Vec<NodeId>,
                             left: &mut Vec<NodeId>| {
        match op {
            PlannedOp::Subscribe { slot, topic } => {
                let id = rec
                    .apply(ps, Op::Subscribe { topic: TopicId(*topic) })
                    .expect("subscribe returns an id");
                debug_assert_eq!(*slot, slot_ids.len(), "slots spawn in order");
                slot_ids.push(id);
            }
            PlannedOp::Leave { slot, topic } => {
                let id = slot_ids[*slot];
                left.push(id);
                rec.apply(
                    ps,
                    Op::Unsubscribe {
                        id,
                        topic: TopicId(*topic),
                    },
                );
            }
            PlannedOp::Publish {
                slot,
                topic,
                payload,
            } => {
                rec.apply(
                    ps,
                    Op::Publish {
                        id: slot_ids[*slot],
                        topic: TopicId(*topic),
                        payload: payload.clone(),
                    },
                );
            }
            PlannedOp::Seed {
                slot,
                topic,
                payload,
            } => {
                let id = slot_ids[*slot];
                rec.apply(
                    ps,
                    Op::SeedPublication {
                        id,
                        topic: TopicId(*topic),
                        author: id.0,
                        payload: payload.clone(),
                    },
                );
            }
            PlannedOp::Crash { slot } => {
                let id = slot_ids[*slot];
                crashed.push(id);
                rec.apply(ps, Op::Crash { id });
            }
            PlannedOp::Report { slot } => {
                rec.apply(ps, Op::ReportCrash { id: slot_ids[*slot] });
            }
        }
    };

    // 1. populate
    rec.phase("populate");
    for op in &schedule.prelude {
        apply_planned(&mut rec, ps, op, &mut slot_ids, &mut crashed, &mut left);
    }

    // 2. warm
    rec.phase("warm");
    let mut warm_rounds = 0;
    let mut warm_ok = true;
    if spec.warm {
        let budget = spec.warm_budget.saturating_mul(budget_mult);
        loop {
            if ps.is_legitimate() {
                break;
            }
            if warm_rounds >= budget {
                warm_ok = false;
                break;
            }
            rec.step(ps);
            warm_rounds += 1;
        }
    }

    // 3. seed
    rec.phase("seed");
    for op in &schedule.seeds {
        apply_planned(&mut rec, ps, op, &mut slot_ids, &mut crashed, &mut left);
    }

    // 4. run
    rec.phase("run");
    for ops in &schedule.rounds {
        for op in ops {
            apply_planned(&mut rec, ps, op, &mut slot_ids, &mut crashed, &mut left);
        }
        rec.step(ps);
    }

    // 5. stop
    rec.phase("stop");
    let mut stop_rounds = 0;
    let mut stop_ok = true;
    let budget = spec.stop.max_extra().saturating_mul(budget_mult);
    loop {
        if stop_met(ps, &spec.stop) {
            break;
        }
        if stop_rounds >= budget {
            stop_ok = false;
            break;
        }
        rec.step(ps);
        stop_rounds += 1;
    }

    // 6. settle
    rec.phase("settle");
    let mut settle_rounds = 0;
    let budget = spec.settle.saturating_mul(budget_mult);
    while !ps.publications_converged().0 && settle_rounds < budget {
        rec.step(ps);
        settle_rounds += 1;
    }

    // 7. drain surviving members
    rec.phase("drain");
    let mut membership: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
    let mut drained: BTreeMap<NodeId, Vec<Delivery>> = BTreeMap::new();
    for (topic, slots) in schedule.survivors_by_topic(spec.topics) {
        let entry = membership.entry(topic).or_default();
        for slot in slots {
            let id = slot_ids[slot];
            entry.push(id);
            rec.member(id, topic);
            let events = rec.drain(ps, id);
            drained.insert(id, events);
        }
    }

    let phases = Phases {
        warm_rounds,
        warm_ok,
        scheduled_rounds: schedule.rounds.len() as u64,
        stop_kind: spec.stop.name(),
        stop_rounds,
        stop_ok,
        settle_rounds,
    };
    let meta = RunMeta {
        scenario: &spec.name,
        seed: spec.seed,
        topics: spec.topics,
        shards: spec.shards,
        threads: spec.threads,
        // The engine's own churn bookkeeping *is* the live-client list:
        // every spawn lands in `slot_ids`, every crash in `crashed`, and
        // graceful leavers remain live nodes on every backend.
        final_population: slot_ids.len() - crashed.len(),
    };
    let (report, delivered) =
        assemble_report(ps, &meta, phases, &membership, &drained, rec.ops);
    ScenarioOutcome {
        report,
        slot_ids,
        crashed,
        left,
        delivered,
    }
}

/// Hex fingerprint of one delivered set.
fn fingerprint(set: &DeliveredSet) -> String {
    let mut buf = Vec::new();
    for (author, payload, key) in set {
        buf.extend_from_slice(&author.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(key.as_bytes());
        buf.push(b';');
    }
    format!("{:032x}", Hash128::of_bytes(&buf).0)
}

/// Builds the report (and the per-topic common delivered sets) from the
/// final backend state plus the run's bookkeeping. Shared by live
/// execution and trace replay so both assemble byte-identical JSON.
pub(crate) fn assemble_report(
    ps: &dyn PubSub,
    meta: &RunMeta<'_>,
    phases: Phases,
    membership: &BTreeMap<u32, Vec<NodeId>>,
    drained: &BTreeMap<NodeId, Vec<Delivery>>,
    ops: OpCounts,
) -> (ScenarioReport, BTreeMap<u32, DeliveredSet>) {
    let mut members_agree = true;
    let mut per_topic = Vec::new();
    let mut delivered: BTreeMap<u32, DeliveredSet> = BTreeMap::new();
    let mut all = Vec::new();
    for (&topic, members) in membership {
        let sets: Vec<DeliveredSet> = members
            .iter()
            .map(|id| {
                drained
                    .get(id)
                    .map(|events| {
                        events
                            .iter()
                            .filter(|d| d.topic.0 == topic)
                            .map(|d| (d.author, d.payload.clone(), d.key.to_string()))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        members_agree &= sets.windows(2).all(|w| w[0] == w[1]);
        // First member's set; identical to all others when members
        // agree, a diagnostic view (flagged by members_agree=false,
        // which fails the report) when they don't.
        let common = sets.into_iter().next().unwrap_or_default();
        let fp = fingerprint(&common);
        all.extend_from_slice(format!("t{topic}:{fp};").as_bytes());
        per_topic.push(TopicReport {
            topic,
            members: members.len(),
            pubs: common.len(),
            fingerprint: fp,
        });
        delivered.insert(topic, common);
    }
    let (pubs_converged, total_pubs) = ps.publications_converged();
    debug_assert_eq!(
        meta.final_population,
        ps.subscriber_ids().len(),
        "op-derived live-client count must match the backend's view"
    );
    let report = ScenarioReport {
        scenario: meta.scenario.to_string(),
        backend: ps.backend_name().to_string(),
        seed: meta.seed,
        topics: meta.topics,
        shards: meta.shards,
        threads: meta.threads,
        final_population: meta.final_population,
        warm_rounds: phases.warm_rounds,
        warm_ok: phases.warm_ok,
        scheduled_rounds: phases.scheduled_rounds,
        stop_kind: phases.stop_kind,
        stop_rounds: phases.stop_rounds,
        stop_ok: phases.stop_ok,
        settle_rounds: phases.settle_rounds,
        legit: ps.is_legitimate(),
        pubs_converged,
        total_pubs,
        members_agree,
        per_topic,
        delivered_fingerprint: format!("{:032x}", Hash128::of_bytes(&all).0),
        ops,
        stats: ps.stats(),
    };
    (report, delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::{Burst, BurstKind};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new("engine-test", 23)
            .population(8)
            .publishers(2)
            .publish_prob(0.4)
            .rounds(12)
            .burst(Burst {
                at: 3,
                count: 2,
                kind: BurstKind::Crash {
                    detect_after: Some(3),
                },
            })
            .stop(Stop::UntilLegit { max_extra: 3_000 })
    }

    #[test]
    fn runs_on_sim_and_reaches_all_verdicts() {
        let out = run_spec(&small_spec(), BackendKind::Sim).expect("supported");
        let r = &out.report;
        assert!(r.ok(), "{}", r.to_json());
        assert!(r.legit && r.pubs_converged);
        assert_eq!(r.ops.crashes, 2);
        assert_eq!(r.ops.reports, 2);
        assert_eq!(out.crashed.len(), 2);
        assert_eq!(r.final_population, 6, "8 initial - 2 crashed");
        assert_eq!(r.total_pubs, r.ops.publishes, "every publish delivered");
        assert_eq!(out.delivered[&0].len(), r.total_pubs);
    }

    #[test]
    fn identical_delivered_sets_across_in_process_backends() {
        let spec = small_spec();
        let mut reference: Option<(String, BTreeMap<u32, DeliveredSet>, String)> = None;
        for kind in spec.supported_backends() {
            let out = run_spec(&spec, kind).expect("supported");
            assert!(out.report.ok(), "{}", out.report.to_json());
            match &reference {
                None => {
                    reference = Some((
                        out.report.backend.clone(),
                        out.delivered,
                        out.report.delivered_fingerprint.clone(),
                    ))
                }
                Some((name, delivered, fp)) => {
                    assert_eq!(&out.delivered, delivered, "{} vs {name}", out.report.backend);
                    assert_eq!(&out.report.delivered_fingerprint, fp);
                }
            }
        }
    }

    #[test]
    fn multi_topic_spec_is_rejected_on_single_topic_backends() {
        let spec = ScenarioSpec::new("multi", 1).topics(3).population(6);
        assert!(run_spec(&spec, BackendKind::Sim).is_err());
        assert!(run_spec(&spec, BackendKind::MultiTopic).is_ok());
    }

    #[test]
    fn cold_start_skips_warm_phase() {
        let spec = ScenarioSpec::new("cold", 3)
            .population(5)
            .cold()
            .stop(Stop::UntilLegit { max_extra: 2_000 });
        let out = run_spec(&spec, BackendKind::Sim).unwrap();
        assert_eq!(out.report.warm_rounds, 0);
        assert!(out.report.stop_rounds > 0, "legitimacy forms in stop phase");
        assert!(out.report.ok());
    }
}
