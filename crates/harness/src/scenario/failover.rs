//! Supervisor-failover oracle: run a scenario whose schedule kills
//! supervisor primaries mid-flight, run the *same* schedule stripped of
//! those crashes, and require the two runs to be observationally
//! identical — same delivered publication sets, same per-topic final
//! checker-snapshot digests, both reports passing.
//!
//! The oracle is **exact**, not approximate, because the replicated
//! supervisor is a virtual endpoint: every database mutation flows
//! through the replicated op log, so the electee's replayed state
//! byte-equals the crashed primary's live state and the world cannot
//! tell the failover happened. The schedule compiler appends
//! `CrashSupervisor` ops after every RNG draw, so the stripped baseline
//! spec compiles to the byte-identical remaining schedule — the only
//! difference between the two runs is the failovers themselves.

use super::engine::{budget_multiplier, builder_for, run_on};
use super::spec::ScenarioSpec;
use skippub_core::{BackendKind, PubSub, TopicId};
use std::fmt::Write as _;

/// Canonical digest of one topic's final checker snapshot: the
/// supervisor's full database plus every member's label and believed
/// ring neighbours. Byte-identical digests mean byte-identical final
/// topology state, not merely an equivalent one.
pub fn topic_digest(ps: &dyn PubSub, topic: TopicId) -> String {
    let snap = ps.snapshot(topic);
    let mut text = String::new();
    for (id, actor) in snap.iter() {
        if let Some(sup) = actor.supervisor() {
            let _ = write!(text, "S{}:n={};", id.0, sup.n());
            for (label, node) in &sup.database {
                let _ = write!(text, "{label:?}->{node:?};");
            }
        } else if let Some(sub) = actor.subscriber() {
            let _ = write!(
                text,
                "C{}:{:?},{:?},{:?};",
                id.0,
                sub.label,
                sub.left.as_ref().map(|r| r.id),
                sub.right.as_ref().map(|r| r.id)
            );
        }
    }
    format!("{:032x}", skippub_bits::Hash128::of_bytes(text.as_bytes()).0)
}

/// Outcome of one failover-oracle run: the supervisor-crash run side by
/// side with its never-crashing baseline.
#[derive(Clone, Debug)]
pub struct FailoverReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend both runs executed on.
    pub backend: String,
    /// Supervisor replicas per group.
    pub replicas: usize,
    /// Scheduled supervisor-primary crashes.
    pub crashes: u64,
    /// Failovers the backend actually performed (must equal `crashes`:
    /// with `k ≥ 2` replicas every scheduled kill elects a backup).
    pub failovers: u64,
    /// Crash run passed all scenario verdicts.
    pub crash_ok: bool,
    /// Baseline (never-crashing) run passed all scenario verdicts.
    pub baseline_ok: bool,
    /// Crash run's delivered fingerprint.
    pub fingerprint: String,
    /// Baseline run's delivered fingerprint.
    pub baseline_fingerprint: String,
    /// Per-topic delivered sets are identical across the two runs.
    pub delivered_match: bool,
    /// Per-topic final checker-snapshot digests (crash run, ascending
    /// topic).
    pub digests: Vec<String>,
    /// Per-topic final checker-snapshot digests (baseline run).
    pub baseline_digests: Vec<String>,
}

impl FailoverReport {
    /// The oracle verdict: both runs pass, every scheduled crash failed
    /// over, and the crash run is observationally identical to the
    /// never-crashing baseline.
    pub fn ok(&self) -> bool {
        self.crash_ok
            && self.baseline_ok
            && self.failovers == self.crashes
            && self.delivered_match
            && self.fingerprint == self.baseline_fingerprint
            && self.digests == self.baseline_digests
    }

    /// Renders the report as JSON (same hand-rolled style as
    /// [`super::ScenarioReport`]).
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n  \"schema\": \"skippub-supervisor-failover/v1\",\n");
        let _ = writeln!(j, "  \"scenario\": {:?},", self.scenario);
        let _ = writeln!(j, "  \"backend\": {:?},", self.backend);
        let _ = writeln!(j, "  \"replicas\": {},", self.replicas);
        let _ = writeln!(
            j,
            "  \"failover\": {{\"crashes\": {}, \"failovers\": {}}},",
            self.crashes, self.failovers
        );
        let _ = writeln!(
            j,
            "  \"verdicts\": {{\"crash_ok\": {}, \"baseline_ok\": {}, \"delivered_match\": {}, \"digests_match\": {}}},",
            self.crash_ok,
            self.baseline_ok,
            self.delivered_match,
            self.digests == self.baseline_digests
        );
        let _ = writeln!(j, "  \"fingerprint\": {:?},", self.fingerprint);
        let _ = writeln!(
            j,
            "  \"baseline_fingerprint\": {:?},",
            self.baseline_fingerprint
        );
        j.push_str("  \"digests\": [");
        for (i, d) in self.digests.iter().enumerate() {
            let _ = write!(j, "{}{:?}", if i == 0 { "" } else { ", " }, d);
        }
        j.push_str("],\n");
        let _ = writeln!(j, "  \"ok\": {}", self.ok());
        j.push('}');
        j
    }
}

/// Runs the failover oracle: execute `spec` (which must schedule at
/// least one supervisor crash over a replicated supervisor) on `kind`,
/// execute the same spec stripped of its supervisor crashes, and
/// compare every observable.
pub fn run_supervisor_crash(
    spec: &ScenarioSpec,
    kind: BackendKind,
) -> Result<FailoverReport, String> {
    if spec.replicas < 2 {
        return Err(format!(
            "scenario {:?} has {} supervisor replica(s); the failover oracle needs ≥ 2",
            spec.name, spec.replicas
        ));
    }
    if spec.sup_crashes.is_empty() {
        return Err(format!(
            "scenario {:?} schedules no supervisor crashes",
            spec.name
        ));
    }
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} needs {} topics; backend {} serves exactly one",
            spec.name,
            spec.topics,
            kind.name()
        ));
    }
    let mult = budget_multiplier(kind);

    let mut crash_ps = builder_for(spec).build(kind);
    let crash_out = run_on(crash_ps.as_mut(), spec, mult);
    let failovers = crash_ps.supervisor_failovers();
    let digests: Vec<String> = (0..spec.topics)
        .map(|t| topic_digest(crash_ps.as_ref(), TopicId(t)))
        .collect();

    let mut baseline = spec.clone();
    baseline.sup_crashes.clear();
    let mut base_ps = builder_for(&baseline).build(kind);
    let base_out = run_on(base_ps.as_mut(), &baseline, mult);
    let baseline_digests: Vec<String> = (0..spec.topics)
        .map(|t| topic_digest(base_ps.as_ref(), TopicId(t)))
        .collect();

    Ok(FailoverReport {
        scenario: spec.name.clone(),
        backend: kind.name().to_string(),
        replicas: spec.replicas,
        crashes: spec.sup_crashes.len() as u64,
        failovers,
        crash_ok: crash_out.report.ok(),
        baseline_ok: base_out.report.ok(),
        fingerprint: crash_out.report.delivered_fingerprint.clone(),
        baseline_fingerprint: base_out.report.delivered_fingerprint.clone(),
        delivered_match: crash_out.delivered == base_out.delivered,
        digests,
        baseline_digests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::Stop;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("failover-test", 41)
            .population(9)
            .publishers(3)
            .publish_prob(0.4)
            .rounds(12)
            .replicas(3)
            .sup_crash(4, 0)
            .sup_crash(9, 0)
            .stop(Stop::UntilLegit { max_extra: 3_000 })
    }

    #[test]
    fn crash_run_matches_never_crashing_run_on_sim() {
        let r = run_supervisor_crash(&spec(), BackendKind::Sim).expect("runs");
        assert!(r.ok(), "{}", r.to_json());
        assert_eq!(r.crashes, 2);
        assert_eq!(r.failovers, 2, "every scheduled kill must fail over");
        assert!(r.delivered_match);
        assert_eq!(r.digests, r.baseline_digests);
    }

    #[test]
    fn oracle_rejects_unreplicated_and_crashless_specs() {
        let mut unreplicated = spec();
        unreplicated.replicas = 1;
        assert!(run_supervisor_crash(&unreplicated, BackendKind::Sim).is_err());
        let mut crashless = spec();
        crashless.sup_crashes.clear();
        assert!(run_supervisor_crash(&crashless, BackendKind::Sim).is_err());
    }
}
