//! [`ScenarioReport`]: the per-scenario JSON report the engine (and the
//! trace replayer) assembles.
//!
//! The JSON emission is hand-rolled with a **stable field order** so
//! that "record a trace → replay it → compare reports" can assert
//! byte-identical output (the repo's trace-determinism contract).

use skippub_core::pubsub::Op;
use skippub_core::Stats;
use std::fmt::Write as _;

/// Per-topic delivery summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopicReport {
    /// Topic ID.
    pub topic: u32,
    /// Members subscribed (and alive) at the end of the run.
    pub members: usize,
    /// Size of the members' common delivered set.
    pub pubs: usize,
    /// 128-bit hex fingerprint of the delivered set (topic, author,
    /// payload, key — sorted).
    pub fingerprint: String,
}

/// Counts of applied operations, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `subscribe` calls (initial population + arrivals).
    pub subscribes: u64,
    /// Graceful `unsubscribe` calls.
    pub leaves: u64,
    /// `publish` calls.
    pub publishes: usize,
    /// `seed_publication` calls (adversarial scattering).
    pub seeds: u64,
    /// `crash` calls.
    pub crashes: u64,
    /// `report_crash` calls.
    pub reports: u64,
    /// `crash_supervisor` calls (supervisor-replica failovers).
    pub sup_crashes: u64,
    /// `step` calls across all phases.
    pub steps: u64,
}

impl OpCounts {
    /// Tallies one applied op. The single op→counter mapping shared by
    /// the live engine and the trace replayer — the report's `ops`
    /// object is part of the byte-identical-replay contract, so the two
    /// sides must never drift.
    pub fn record(&mut self, op: &Op) {
        match op {
            Op::Subscribe { .. } => self.subscribes += 1,
            Op::Join { .. } => {}
            Op::Unsubscribe { .. } => self.leaves += 1,
            Op::Publish { .. } => self.publishes += 1,
            Op::SeedPublication { .. } => self.seeds += 1,
            Op::Crash { .. } => self.crashes += 1,
            Op::ReportCrash { .. } => self.reports += 1,
            Op::CrashSupervisor { .. } => self.sup_crashes += 1,
            Op::Step => self.steps += 1,
        }
    }
}

/// The result of executing one scenario on one backend.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend name (`sim`, `chaos`, `multi-topic`, `sharded`,
    /// `threaded`).
    pub backend: String,
    /// Spec seed.
    pub seed: u64,
    /// Topic count.
    pub topics: u32,
    /// Supervisor-shard count the backend was built with (1 for
    /// unsharded backends) — part of the self-describing config header.
    pub shards: usize,
    /// Worker-thread cap the backend was built with (an execution knob;
    /// results are identical for every value).
    pub threads: usize,
    /// Live clients at the end of the run.
    pub final_population: usize,
    /// Rounds the warm bootstrap took (0 for cold starts).
    pub warm_rounds: u64,
    /// Whether the warm bootstrap reached legitimacy within budget
    /// (`true` for cold starts — nothing was required).
    pub warm_ok: bool,
    /// Scheduled rounds driven.
    pub scheduled_rounds: u64,
    /// Stop condition name (`fixed_rounds`, `until_legit`,
    /// `until_pubs_converged`).
    pub stop_kind: &'static str,
    /// Extra rounds the stop condition ran after the schedule.
    pub stop_rounds: u64,
    /// Whether the stop condition was reached within budget.
    pub stop_ok: bool,
    /// Rounds the settle phase ran before stores agreed.
    pub settle_rounds: u64,
    /// Whether every topic's topology is legitimate at the end.
    pub legit: bool,
    /// Whether all publication stores agree at the end.
    pub pubs_converged: bool,
    /// Total distinct publications across topics.
    pub total_pubs: usize,
    /// Whether, per topic, every member drained the identical set.
    pub members_agree: bool,
    /// Per-topic summaries (every topic, ascending).
    pub per_topic: Vec<TopicReport>,
    /// Fingerprint over all topics' delivered sets.
    pub delivered_fingerprint: String,
    /// Applied-operation counts.
    pub ops: OpCounts,
    /// Backend traffic counters.
    pub stats: Stats,
}

impl ScenarioReport {
    /// Overall verdict: bootstrap reached, stop condition reached,
    /// stores converged, and members agreed.
    pub fn ok(&self) -> bool {
        self.warm_ok && self.stop_ok && self.pubs_converged && self.members_agree
    }

    /// Stable, pretty-printed JSON (field order fixed — see module
    /// docs).
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n  \"schema\": \"skippub-scenario-report/v1\",\n");
        let _ = writeln!(j, "  \"scenario\": {:?},", self.scenario);
        let _ = writeln!(j, "  \"backend\": {:?},", self.backend);
        let _ = writeln!(j, "  \"seed\": {},", self.seed);
        let _ = writeln!(j, "  \"topics\": {},", self.topics);
        let _ = writeln!(
            j,
            "  \"config\": {{\"shards\": {}, \"threads\": {}, \"seed\": {}}},",
            self.shards, self.threads, self.seed
        );
        let _ = writeln!(j, "  \"final_population\": {},", self.final_population);
        let _ = writeln!(j, "  \"ok\": {},", self.ok());
        let _ = writeln!(
            j,
            "  \"phases\": {{\"warm_rounds\": {}, \"warm_ok\": {}, \"scheduled_rounds\": {}, \"stop_kind\": {:?}, \"stop_rounds\": {}, \"stop_ok\": {}, \"settle_rounds\": {}}},",
            self.warm_rounds,
            self.warm_ok,
            self.scheduled_rounds,
            self.stop_kind,
            self.stop_rounds,
            self.stop_ok,
            self.settle_rounds
        );
        let _ = writeln!(
            j,
            "  \"checker\": {{\"legit\": {}, \"pubs_converged\": {}, \"total_pubs\": {}, \"members_agree\": {}}},",
            self.legit, self.pubs_converged, self.total_pubs, self.members_agree
        );
        j.push_str("  \"per_topic\": [\n");
        for (i, t) in self.per_topic.iter().enumerate() {
            let _ = writeln!(
                j,
                "    {{\"topic\": {}, \"members\": {}, \"pubs\": {}, \"fingerprint\": {:?}}}{}",
                t.topic,
                t.members,
                t.pubs,
                t.fingerprint,
                if i + 1 == self.per_topic.len() { "" } else { "," }
            );
        }
        j.push_str("  ],\n");
        let _ = writeln!(
            j,
            "  \"delivered_fingerprint\": {:?},",
            self.delivered_fingerprint
        );
        let _ = writeln!(
            j,
            "  \"ops\": {{\"subscribes\": {}, \"leaves\": {}, \"publishes\": {}, \"seeds\": {}, \"crashes\": {}, \"reports\": {}, \"sup_crashes\": {}, \"steps\": {}}},",
            self.ops.subscribes,
            self.ops.leaves,
            self.ops.publishes,
            self.ops.seeds,
            self.ops.crashes,
            self.ops.reports,
            self.ops.sup_crashes,
            self.ops.steps
        );
        // The imbalance gauges are computed from the integer counters
        // (fixed 4-decimal formatting), so the emission stays part of
        // the byte-identical-replay contract.
        let _ = write!(
            j,
            "  \"stats\": {{\"steps\": {}, \"sent\": {}, \"delivered\": {}, \"dropped\": {}, \"faults\": {{\"dropped\": {}, \"duplicated\": {}, \"reordered\": {}, \"delayed\": {}}}, \"peak_in_flight\": {}, \"lock_acquisitions\": {}, \"delivered_imbalance\": {:.4}, \"stepped_imbalance\": {:.4}, \"per_partition\": [",
            self.stats.steps,
            self.stats.sent,
            self.stats.delivered,
            self.stats.dropped,
            self.stats.dropped_by_fault,
            self.stats.duplicated,
            self.stats.reordered,
            self.stats.delayed,
            self.stats.peak_in_flight,
            self.stats.lock_acquisitions(),
            self.stats.delivered_imbalance(),
            self.stats.stepped_imbalance()
        );
        for (i, p) in self.stats.per_partition.iter().enumerate() {
            let _ = write!(
                j,
                "{{\"sent\": {}, \"delivered\": {}, \"dropped\": {}, \"faults\": {{\"dropped\": {}, \"duplicated\": {}, \"reordered\": {}, \"delayed\": {}}}, \"cross_envelopes\": {}, \"peak_in_flight\": {}, \"stepped\": {}, \"lock_acquisitions\": {}}}{}",
                p.sent,
                p.delivered,
                p.dropped,
                p.dropped_by_fault,
                p.duplicated,
                p.reordered,
                p.delayed,
                p.cross_envelopes,
                p.peak_in_flight,
                p.stepped,
                p.lock_acquisitions,
                if i + 1 == self.stats.per_partition.len() { "" } else { ", " }
            );
        }
        j.push_str("]}\n");
        j.push_str("}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skippub_core::PartitionStats;

    fn report() -> ScenarioReport {
        ScenarioReport {
            scenario: "unit".into(),
            backend: "sim".into(),
            seed: 7,
            topics: 1,
            shards: 2,
            threads: 4,
            final_population: 3,
            warm_rounds: 12,
            warm_ok: true,
            scheduled_rounds: 5,
            stop_kind: "fixed_rounds",
            stop_rounds: 0,
            stop_ok: true,
            settle_rounds: 2,
            legit: true,
            pubs_converged: true,
            total_pubs: 4,
            members_agree: true,
            per_topic: vec![TopicReport {
                topic: 0,
                members: 3,
                pubs: 4,
                fingerprint: "00ff".into(),
            }],
            delivered_fingerprint: "00ff".into(),
            ops: OpCounts {
                subscribes: 3,
                publishes: 4,
                steps: 19,
                ..OpCounts::default()
            },
            stats: Stats {
                steps: 19,
                sent: 100,
                delivered: 90,
                dropped: 0,
                dropped_by_fault: 2,
                duplicated: 1,
                reordered: 3,
                delayed: 4,
                peak_in_flight: 42,
                per_partition: vec![
                    PartitionStats {
                        sent: 60,
                        delivered: 55,
                        dropped: 0,
                        cross_envelopes: 3,
                        peak_in_flight: 30,
                        stepped: 100,
                        lock_acquisitions: 9,
                        dropped_by_fault: 2,
                        duplicated: 1,
                        reordered: 3,
                        delayed: 4,
                    },
                    PartitionStats {
                        sent: 40,
                        delivered: 35,
                        dropped: 0,
                        cross_envelopes: 1,
                        peak_in_flight: 12,
                        stepped: 80,
                        lock_acquisitions: 7,
                        ..PartitionStats::default()
                    },
                ],
            },
        }
    }

    #[test]
    fn json_is_stable_and_contains_fields() {
        let r = report();
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b, "emission must be deterministic");
        for needle in [
            "\"schema\": \"skippub-scenario-report/v1\"",
            "\"scenario\": \"unit\"",
            "\"config\": {\"shards\": 2, \"threads\": 4, \"seed\": 7}",
            "\"ok\": true",
            "\"stop_kind\": \"fixed_rounds\"",
            "\"fingerprint\": \"00ff\"",
            "\"publishes\": 4",
            "\"peak_in_flight\": 42",
            "\"lock_acquisitions\": 16, \"delivered_imbalance\": 1.2222, \"stepped_imbalance\": 1.1111",
            "\"faults\": {\"dropped\": 2, \"duplicated\": 1, \"reordered\": 3, \"delayed\": 4}",
            "\"per_partition\": [{\"sent\": 60, \"delivered\": 55, \"dropped\": 0, \"faults\": {\"dropped\": 2, \"duplicated\": 1, \"reordered\": 3, \"delayed\": 4}, \"cross_envelopes\": 3, \"peak_in_flight\": 30, \"stepped\": 100, \"lock_acquisitions\": 9}, {\"sent\": 40, \"delivered\": 35, \"dropped\": 0, \"faults\": {\"dropped\": 0, \"duplicated\": 0, \"reordered\": 0, \"delayed\": 0}, \"cross_envelopes\": 1, \"peak_in_flight\": 12, \"stepped\": 80, \"lock_acquisitions\": 7}]",
        ] {
            assert!(a.contains(needle), "missing {needle} in {a}");
        }
    }

    #[test]
    fn ok_requires_all_verdicts() {
        let mut r = report();
        assert!(r.ok());
        r.pubs_converged = false;
        assert!(!r.ok());
        r.pubs_converged = true;
        r.members_agree = false;
        assert!(!r.ok());
    }
}
