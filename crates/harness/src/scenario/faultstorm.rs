//! Link-fault-storm oracle: run a scenario under a seeded link-fault
//! schedule whose windows all close inside the scheduled rounds, run
//! the *same* schedule with perfect links, and require the faulted run
//! to heal — re-legitimization, publication re-convergence, and (for
//! loss/delay-only schedules) delivered-set equality with the
//! fault-free twin.
//!
//! The oracle is **exact** where the protocol's guarantees are exact:
//! the op schedule is compiled before faults exist (fault arming
//! happens at the run phase, outside the compiler), so the twin runs
//! apply the byte-identical op sequence and the only difference is the
//! fault plane itself. A loss/delay-only schedule cannot invent or
//! reorder protocol traffic, so after every window closes the
//! self-stabilizing protocol must converge to the *same* delivered
//! publication sets; duplication/reordering schedules may legitimately
//! converge along a different (still correct) trajectory, so for those
//! the oracle requires healing verdicts but not set equality.
//!
//! The `partition-kills-primary` family points a sever window at a
//! supervisor endpoint: the backend's sever watch must translate the
//! partition into a replica-group failover (no scripted
//! `crash_supervisor` anywhere in the schedule), and the oracle counts
//! `failovers == severed-primary windows`.

use super::engine::{budget_multiplier, builder_for, run_on};
use super::spec::ScenarioSpec;
use skippub_core::pubsub::SHARD_SUPERVISOR_BASE;
use skippub_core::BackendKind;
use skippub_sim::FaultCounts;
use std::fmt::Write as _;

/// Supervisor endpoint IDs a spec's backend exposes: the virtual
/// endpoint `NodeId(0)` on single-supervisor backends, one
/// `SHARD_SUPERVISOR_BASE + i` endpoint per shard on the sharded one.
fn supervisor_endpoints(spec: &ScenarioSpec, kind: BackendKind) -> Vec<u64> {
    match kind {
        BackendKind::Sharded => (0..spec.shards as u64)
            .map(|i| SHARD_SUPERVISOR_BASE + i)
            .collect(),
        _ => vec![0],
    }
}

/// How many failovers the sever schedule *demands*: one per
/// (sever window, contained supervisor endpoint) pair — each window's
/// rising edge kills that endpoint's primary exactly once. 0 when the
/// supervisor is unreplicated (severing it would wedge, so the oracle
/// rejects that combination up front).
pub fn severed_primaries(spec: &ScenarioSpec, kind: BackendKind) -> u64 {
    let Some(faults) = &spec.faults else { return 0 };
    let endpoints = supervisor_endpoints(spec, kind);
    faults
        .severs
        .iter()
        .map(|s| endpoints.iter().filter(|e| s.group.contains(e)).count() as u64)
        .sum()
}

/// Outcome of one fault-storm-oracle run: the faulted run side by side
/// with its perfect-link twin.
#[derive(Clone, Debug)]
pub struct FaultStormReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend both runs executed on.
    pub backend: String,
    /// Probabilistic rules in the schedule.
    pub rules: usize,
    /// Scheduled partitions in the schedule.
    pub severs: usize,
    /// Whether the schedule only loses/delays (no dup, no reorder) —
    /// the class for which delivered-set equality is required.
    pub loss_delay_only: bool,
    /// Every fault window closes inside the scheduled rounds, so the
    /// stop/settle phases run on healed links.
    pub windows_closed: bool,
    /// Faulted run passed all scenario verdicts.
    pub faulted_ok: bool,
    /// Perfect-link twin passed all scenario verdicts.
    pub baseline_ok: bool,
    /// Faulted run ends with every topic legitimate (post-settle
    /// re-legitimization).
    pub relegitimized: bool,
    /// Faulted run ends with all publication stores agreeing
    /// (publication re-convergence).
    pub reconverged: bool,
    /// What the plane actually did (graceful-degradation gauges).
    pub fault_counts: FaultCounts,
    /// Faulted run's delivered-envelope count over the twin's — the
    /// run-level delivery-success gauge (1.0 = no visible degradation;
    /// > 1.0 is common, healing costs extra traffic).
    pub delivery_ratio: f64,
    /// Failovers the sever schedule demands (severed supervisor
    /// primaries).
    pub severed_primaries: u64,
    /// Failovers the backend actually performed.
    pub failovers: u64,
    /// Faulted run's delivered fingerprint.
    pub fingerprint: String,
    /// Twin's delivered fingerprint.
    pub baseline_fingerprint: String,
    /// Per-topic delivered sets are identical across the two runs.
    pub delivered_match: bool,
}

impl FaultStormReport {
    /// The oracle verdict: both runs pass, every window closed, the
    /// faulted run re-legitimized and re-converged, every severed
    /// primary failed over, and — for loss/delay-only schedules — the
    /// delivered sets equal the twin's.
    pub fn ok(&self) -> bool {
        self.faulted_ok
            && self.baseline_ok
            && self.windows_closed
            && self.relegitimized
            && self.reconverged
            && self.failovers == self.severed_primaries
            && (!self.loss_delay_only
                || (self.delivered_match && self.fingerprint == self.baseline_fingerprint))
    }

    /// Renders the report as JSON (same hand-rolled style as
    /// [`super::ScenarioReport`]).
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n  \"schema\": \"skippub-fault-storm/v1\",\n");
        let _ = writeln!(j, "  \"scenario\": {:?},", self.scenario);
        let _ = writeln!(j, "  \"backend\": {:?},", self.backend);
        let _ = writeln!(
            j,
            "  \"schedule\": {{\"rules\": {}, \"severs\": {}, \"loss_delay_only\": {}, \"windows_closed\": {}}},",
            self.rules, self.severs, self.loss_delay_only, self.windows_closed
        );
        let _ = writeln!(
            j,
            "  \"faults\": {{\"dropped\": {}, \"duplicated\": {}, \"reordered\": {}, \"delayed\": {}}},",
            self.fault_counts.dropped_by_fault,
            self.fault_counts.duplicated,
            self.fault_counts.reordered,
            self.fault_counts.delayed
        );
        let _ = writeln!(
            j,
            "  \"verdicts\": {{\"faulted_ok\": {}, \"baseline_ok\": {}, \"relegitimized\": {}, \"reconverged\": {}, \"delivered_match\": {}}},",
            self.faulted_ok,
            self.baseline_ok,
            self.relegitimized,
            self.reconverged,
            self.delivered_match
        );
        let _ = writeln!(
            j,
            "  \"failover\": {{\"severed_primaries\": {}, \"failovers\": {}}},",
            self.severed_primaries, self.failovers
        );
        let _ = writeln!(j, "  \"delivery_ratio\": {:.4},", self.delivery_ratio);
        let _ = writeln!(j, "  \"fingerprint\": {:?},", self.fingerprint);
        let _ = writeln!(
            j,
            "  \"baseline_fingerprint\": {:?},",
            self.baseline_fingerprint
        );
        let _ = writeln!(j, "  \"ok\": {}", self.ok());
        j.push('}');
        j
    }
}

/// Runs the fault-storm oracle: execute `spec` (which must carry a
/// fault schedule) on `kind`, execute the same spec with perfect links,
/// and compare. Rejects schedules that sever a supervisor endpoint
/// without a replica group behind it — that partition could never heal
/// into a working system.
pub fn run_fault_storm(
    spec: &ScenarioSpec,
    kind: BackendKind,
) -> Result<FaultStormReport, String> {
    let Some(faults) = &spec.faults else {
        return Err(format!("scenario {:?} has no fault schedule", spec.name));
    };
    if faults.rules.is_empty() && faults.severs.is_empty() {
        return Err(format!("scenario {:?} has an empty fault schedule", spec.name));
    }
    if !spec.supported(kind) {
        return Err(format!(
            "scenario {:?} needs {} topics; backend {} serves exactly one",
            spec.name,
            spec.topics,
            kind.name()
        ));
    }
    let endpoints = supervisor_endpoints(spec, kind);
    let severs_supervisor = faults
        .severs
        .iter()
        .any(|s| endpoints.iter().any(|e| s.group.contains(e)));
    if severs_supervisor && spec.replicas < 2 {
        return Err(format!(
            "scenario {:?} severs a supervisor endpoint with {} replica(s); \
             partition-triggered failover needs ≥ 2",
            spec.name, spec.replicas
        ));
    }
    let mult = budget_multiplier(kind);

    let mut faulted_ps = builder_for(spec).build(kind);
    let faulted_out = run_on(faulted_ps.as_mut(), spec, mult);
    let failovers = faulted_ps.supervisor_failovers();
    let fault_counts = faulted_ps.fault_counts();

    let baseline = spec.without_faults();
    let mut base_ps = builder_for(&baseline).build(kind);
    let base_out = run_on(base_ps.as_mut(), &baseline, mult);

    let fr = &faulted_out.report;
    let br = &base_out.report;
    Ok(FaultStormReport {
        scenario: spec.name.clone(),
        backend: kind.name().to_string(),
        rules: faults.rules.len(),
        severs: faults.severs.len(),
        loss_delay_only: faults.is_loss_delay_only(),
        windows_closed: faults.max_window_end() <= spec.rounds,
        faulted_ok: fr.ok(),
        baseline_ok: br.ok(),
        relegitimized: fr.legit,
        reconverged: fr.pubs_converged,
        fault_counts,
        delivery_ratio: if br.stats.delivered == 0 {
            1.0
        } else {
            fr.stats.delivered as f64 / br.stats.delivered as f64
        },
        severed_primaries: severed_primaries(spec, kind),
        failovers,
        fingerprint: fr.delivered_fingerprint.clone(),
        baseline_fingerprint: br.delivered_fingerprint.clone(),
        delivered_match: faulted_out.delivered == base_out.delivered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::Stop;
    use skippub_sim::{FaultRule, FaultSpec, LinkClass, Sever};

    fn lossy_spec() -> ScenarioSpec {
        ScenarioSpec::new("storm-test", 77)
            .population(8)
            .publishers(2)
            .publish_prob(0.4)
            .rounds(14)
            .faults(FaultSpec {
                seed: 5,
                rules: vec![FaultRule {
                    drop: 0.3,
                    ..FaultRule::pass(1, 9, LinkClass::All)
                }],
                severs: vec![],
            })
            .stop(Stop::UntilLegit { max_extra: 4_000 })
    }

    #[test]
    fn lossy_run_heals_and_matches_its_twin_on_sim() {
        let r = run_fault_storm(&lossy_spec(), BackendKind::Sim).expect("runs");
        assert!(r.loss_delay_only);
        assert!(r.fault_counts.dropped_by_fault > 0, "storm must bite");
        assert!(r.ok(), "{}", r.to_json());
        assert!(r.delivered_match);
    }

    #[test]
    fn dup_reorder_schedule_drops_the_equality_requirement() {
        let mut spec = lossy_spec();
        spec = spec.faults(FaultSpec {
            seed: 5,
            rules: vec![FaultRule {
                drop: 0.15,
                dup: 0.2,
                reorder: 0.3,
                reorder_max: 3,
                ..FaultRule::pass(1, 9, LinkClass::All)
            }],
            severs: vec![],
        });
        let r = run_fault_storm(&spec, BackendKind::Sim).expect("runs");
        assert!(!r.loss_delay_only);
        assert!(r.fault_counts.duplicated > 0 || r.fault_counts.reordered > 0);
        assert!(r.ok(), "{}", r.to_json());
    }

    #[test]
    fn severed_supervisor_fails_over_without_a_scripted_crash() {
        let spec = ScenarioSpec::new("sever-sup-test", 78)
            .population(8)
            .publishers(2)
            .publish_prob(0.3)
            .rounds(16)
            .replicas(3)
            .faults(FaultSpec {
                seed: 9,
                rules: vec![],
                severs: vec![Sever {
                    from_round: 3,
                    to_round: 8,
                    group: vec![0],
                }],
            })
            .stop(Stop::UntilLegit { max_extra: 6_000 });
        let r = run_fault_storm(&spec, BackendKind::Sim).expect("runs");
        assert_eq!(r.severed_primaries, 1);
        assert_eq!(r.failovers, 1, "{}", r.to_json());
        assert!(r.ok(), "{}", r.to_json());
    }

    #[test]
    fn oracle_rejects_faultless_and_unreplicated_sever_specs() {
        let mut faultless = lossy_spec();
        faultless.faults = None;
        assert!(run_fault_storm(&faultless, BackendKind::Sim).is_err());

        let mut unreplicated = lossy_spec();
        unreplicated = unreplicated.faults(FaultSpec {
            seed: 1,
            rules: vec![],
            severs: vec![Sever {
                from_round: 2,
                to_round: 5,
                group: vec![0],
            }],
        });
        assert!(
            run_fault_storm(&unreplicated, BackendKind::Sim).is_err(),
            "severing an unreplicated supervisor must be rejected"
        );
    }
}
