//! The scenario engine: declarative workloads over the [`PubSub`]
//! facade.
//!
//! The ROADMAP's north star asks for "as many scenarios as you can
//! imagine" across backends; related systems (PSVR, VCube-PS) evaluate
//! under churn processes, skewed topic popularity, and adversarial
//! starts. This module makes those workload shapes *declarative*: a
//! [`ScenarioSpec`] describes population, arrival/departure churn,
//! topic popularity (uniform or Zipf), per-publisher publish rate,
//! crash storms with failure-detector patterns, adversarial initial
//! publication placement, and a stop condition — and is compiled
//! ([`schedule::compile`]) into a deterministic, seeded event schedule
//! executed ([`run_spec`] / [`run_on`]) against **any** backend behind
//! the facade.
//!
//! Because the compiled schedule references clients by spawn-order slot
//! (IDs are assigned identically on every backend), one spec produces
//! **identical delivered publication sets** on the sim, chaos,
//! multi-topic, and sharded backends — asserted by
//! `tests/facade_conformance.rs` and by the `scenarios` CLI's
//! `--backend all` sweep.
//!
//! Every applied op can be recorded to a replayable [`Trace`]
//! ([`run_recorded`]): replaying reproduces the run and its JSON
//! [`ScenarioReport`] byte for byte on the deterministic backends — the
//! repro contract for failures found under scenario workloads.
//!
//! ```
//! use skippub_harness::scenario::{self, BackendKind, Stop, ScenarioSpec};
//!
//! // A tiny crash-recovery workload, same spec on two backends:
//! let spec = ScenarioSpec::new("mini", 9)
//!     .population(6)
//!     .publishers(2)
//!     .publish_prob(0.5)
//!     .rounds(6)
//!     .stop(Stop::UntilLegit { max_extra: 2_000 });
//! let sim = scenario::run_spec(&spec, BackendKind::Sim).unwrap();
//! let sharded = scenario::run_spec(&spec, BackendKind::Sharded).unwrap();
//! assert!(sim.report.ok() && sharded.report.ok());
//! assert_eq!(
//!     sim.report.delivered_fingerprint,
//!     sharded.report.delivered_fingerprint,
//! );
//! ```
//!
//! [`PubSub`]: skippub_core::PubSub

pub mod engine;
pub mod failover;
pub mod faultstorm;
pub mod library;
pub mod recovery;
pub mod report;
pub mod schedule;
pub mod spec;
pub mod trace;

pub use engine::{
    budget_multiplier, builder_for, resume_spec, run_on, run_recorded, run_spec,
    run_spec_with_snapshot, run_threaded, DeliveredItem, DeliveredSet, ScenarioOutcome, WarmStart,
};
pub use failover::{run_supervisor_crash, FailoverReport};
pub use faultstorm::{run_fault_storm, severed_primaries, FaultStormReport};
pub use library::{builtin, builtins};
pub use recovery::{run_crash_recovery, CrashRecoveryReport};
pub use report::{OpCounts, ScenarioReport, TopicReport};
pub use schedule::{compile, Fate, PlannedOp, Schedule, SlotPlan};
pub use spec::{Burst, BurstKind, Popularity, ScenarioSpec, Stop};
pub use trace::{Trace, TraceLine};

// Backend selection is part of the scenario vocabulary; re-export it so
// scenario scripts need only this module.
pub use skippub_core::BackendKind;

// So are fault schedules (the `.faults(...)` setter's vocabulary).
pub use skippub_sim::{FaultCounts, FaultRule, FaultSpec, LinkClass, Sever};
