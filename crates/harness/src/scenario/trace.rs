//! Trace recording and replay: every applied op (and every drain) of a
//! scenario run, serialized to a compact line format and replayable to
//! reproduce the run — byte for byte on the deterministic backends.
//!
//! A trace is self-contained: its header carries everything needed to
//! rebuild the backend (`SystemBuilder` knobs + backend kind), and its
//! body is the exact op sequence (including `step`s and phase markers).
//! Replaying applies the ops to a fresh backend and reassembles the
//! [`ScenarioReport`] through the same code path as the live run, so
//! `record → replay → to_json()` is byte-identical — the repro contract
//! for failures found under scenario workloads.
//!
//! The threaded backend can be *recorded* (via the CLI) but not
//! byte-replayed: wall-clock slices are not reproducible.

use super::engine::{assemble_report, stop_met, Phases, RunMeta};
use super::report::{OpCounts, ScenarioReport};
use super::spec::{ScenarioSpec, Stop};
use skippub_core::pubsub::ops;
use skippub_core::pubsub::{Delivery, Op};
use skippub_core::{BackendKind, ProbeMode, ProtocolConfig, PubSub, SystemBuilder};
use skippub_sim::{FaultSpec, NodeId};
use std::collections::BTreeMap;

/// One body line of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceLine {
    /// Phase marker (`populate`, `warm`, `seed`, `run`, `stop`,
    /// `settle`, `drain`).
    Phase(String),
    /// An applied facade operation.
    Op(Op),
    /// Final-membership marker: node is a member of topic at drain time.
    Member(NodeId, u32),
    /// A `drain_events` call (drains are stateful — the cursor advances
    /// — so replays must repeat them in order).
    Drain(NodeId),
}

/// A recorded scenario run.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Scenario name (report metadata).
    pub scenario: String,
    /// Backend the run executed on.
    pub backend: String,
    /// Builder seed.
    pub seed: u64,
    /// Topic count.
    pub topics: u32,
    /// Shard count.
    pub shards: usize,
    /// Worker-thread cap for the sharded backend (recorded so replays
    /// rebuild the exact configuration; results are identical for every
    /// value — determinism is the executor's contract).
    pub threads: usize,
    /// Supervisor replicas per group (recorded so replays rebuild a
    /// replicated backend — `crashsup` ops are no-ops without one).
    pub replicas: usize,
    /// Topic→shard rebalancing cadence (recorded so replays re-enable
    /// the rebalancer — placement moves are part of the trajectory).
    pub rebalance_every: u64,
    /// Link-fault schedule armed at the run phase (recorded so replays
    /// re-arm the same seeded plane — fault fates are part of the
    /// trajectory). `None` = perfect links.
    pub faults: Option<FaultSpec>,
    /// Whether the run had a warm phase (replay needs it to reproduce
    /// the `warm_ok` verdict).
    pub warm: bool,
    /// Stop condition (kind + budget, for the report's `stop_kind`).
    pub stop: Stop,
    /// Protocol knobs.
    pub protocol: ProtocolConfig,
    /// The op/phase/drain sequence.
    pub lines: Vec<TraceLine>,
}

fn probe_mode_name(m: ProbeMode) -> &'static str {
    match m {
        ProbeMode::Randomized => "randomized",
        ProbeMode::Token => "token",
        ProbeMode::TokenHybrid => "token-hybrid",
    }
}

fn probe_mode_from(name: &str) -> Result<ProbeMode, String> {
    match name {
        "randomized" => Ok(ProbeMode::Randomized),
        "token" => Ok(ProbeMode::Token),
        "token-hybrid" => Ok(ProbeMode::TokenHybrid),
        other => Err(format!("unknown probe mode {other:?}")),
    }
}

impl Trace {
    /// An empty trace carrying `spec`'s header, ready for the engine to
    /// append lines to.
    pub fn new(spec: &ScenarioSpec, backend: &str) -> Self {
        Trace {
            scenario: spec.name.clone(),
            backend: backend.to_string(),
            seed: spec.seed,
            topics: spec.topics,
            shards: spec.shards,
            threads: spec.threads,
            replicas: spec.replicas,
            rebalance_every: spec.rebalance_every,
            faults: spec.faults.clone(),
            warm: spec.warm,
            stop: spec.stop,
            protocol: spec.protocol,
            lines: Vec::new(),
        }
    }

    /// Serializes the trace (inverse of [`Trace::parse`]).
    pub fn serialize(&self) -> String {
        let mut s = String::new();
        s.push_str("skippub-trace v1\n");
        s.push_str(&format!("scenario {}\n", self.scenario));
        s.push_str(&format!("backend {}\n", self.backend));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("topics {}\n", self.topics));
        s.push_str(&format!("shards {}\n", self.shards));
        s.push_str(&format!("threads {}\n", self.threads));
        s.push_str(&format!("replicas {}\n", self.replicas));
        s.push_str(&format!("rebalance {}\n", self.rebalance_every));
        if let Some(f) = &self.faults {
            s.push_str(&format!("faults {}\n", f.to_line()));
        }
        s.push_str(&format!("warm {}\n", self.warm));
        s.push_str(&format!("stop {} {}\n", self.stop.name(), self.stop.max_extra()));
        let p = &self.protocol;
        s.push_str(&format!(
            "protocol {} {} {} {} {} {} {}\n",
            p.key_bits,
            p.anti_entropy,
            p.flooding,
            p.probes,
            probe_mode_name(p.probe_mode),
            p.shortcuts,
            p.verify_shortcuts
        ));
        s.push_str("---\n");
        for line in &self.lines {
            match line {
                TraceLine::Phase(name) => s.push_str(&format!("phase {name}\n")),
                TraceLine::Op(op) => {
                    s.push_str(&op.to_line());
                    s.push('\n');
                }
                TraceLine::Member(id, topic) => s.push_str(&format!("member {} {topic}\n", id.0)),
                TraceLine::Drain(id) => s.push_str(&format!("drain {}\n", id.0)),
            }
        }
        s
    }

    /// Parses a serialized trace.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty trace")?;
        if magic.trim() != "skippub-trace v1" {
            return Err(format!("bad magic {magic:?}"));
        }
        let mut scenario = None;
        let mut backend = None;
        let mut seed = None;
        let mut topics = None;
        let mut shards = None;
        let mut threads = None;
        let mut replicas = None;
        let mut rebalance = None;
        let mut faults = None;
        let mut warm = None;
        let mut stop = None;
        let mut protocol = None;
        for line in lines.by_ref() {
            let line = line.trim_end();
            if line == "---" {
                break;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad header line {line:?}"))?;
            match key {
                "scenario" => scenario = Some(rest.to_string()),
                "backend" => backend = Some(rest.to_string()),
                "seed" => seed = Some(rest.parse::<u64>().map_err(|e| e.to_string())?),
                "topics" => topics = Some(rest.parse::<u32>().map_err(|e| e.to_string())?),
                "shards" => shards = Some(rest.parse::<usize>().map_err(|e| e.to_string())?),
                "threads" => threads = Some(rest.parse::<usize>().map_err(|e| e.to_string())?),
                "replicas" => replicas = Some(rest.parse::<usize>().map_err(|e| e.to_string())?),
                "rebalance" => rebalance = Some(rest.parse::<u64>().map_err(|e| e.to_string())?),
                "faults" => faults = Some(FaultSpec::parse_line(rest)?),
                "warm" => warm = Some(rest.parse::<bool>().map_err(|e| e.to_string())?),
                "stop" => {
                    let (name, max) = rest
                        .split_once(' ')
                        .ok_or_else(|| format!("bad stop line {rest:?}"))?;
                    let max = max.parse::<u64>().map_err(|e| e.to_string())?;
                    stop = Some(
                        Stop::from_name(name, max).ok_or_else(|| format!("bad stop {name:?}"))?,
                    );
                }
                "protocol" => {
                    let f: Vec<&str> = rest.split_ascii_whitespace().collect();
                    if f.len() != 7 {
                        return Err(format!("protocol needs 7 fields, got {}", f.len()));
                    }
                    let b = |s: &str| s.parse::<bool>().map_err(|e| e.to_string());
                    protocol = Some(ProtocolConfig {
                        key_bits: f[0].parse().map_err(|e: std::num::ParseIntError| e.to_string())?,
                        anti_entropy: b(f[1])?,
                        flooding: b(f[2])?,
                        probes: b(f[3])?,
                        probe_mode: probe_mode_from(f[4])?,
                        shortcuts: b(f[5])?,
                        verify_shortcuts: b(f[6])?,
                    });
                }
                other => return Err(format!("unknown header key {other:?}")),
            }
        }
        let mut body = Vec::new();
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("phase ") {
                body.push(TraceLine::Phase(name.to_string()));
            } else if let Some(rest) = line.strip_prefix("member ") {
                let (id, topic) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("bad member line {line:?}"))?;
                body.push(TraceLine::Member(
                    NodeId(id.parse().map_err(|e: std::num::ParseIntError| e.to_string())?),
                    topic.parse().map_err(|e: std::num::ParseIntError| e.to_string())?,
                ));
            } else if let Some(id) = line.strip_prefix("drain ") {
                body.push(TraceLine::Drain(NodeId(
                    id.parse().map_err(|e: std::num::ParseIntError| e.to_string())?,
                )));
            } else {
                body.push(TraceLine::Op(Op::parse_line(line)?));
            }
        }
        Ok(Trace {
            scenario: scenario.ok_or("missing scenario header")?,
            backend: backend.ok_or("missing backend header")?,
            seed: seed.ok_or("missing seed header")?,
            topics: topics.ok_or("missing topics header")?,
            shards: shards.ok_or("missing shards header")?,
            // Absent in traces recorded before the parallel executor
            // existed; one worker reproduces them exactly.
            threads: threads.unwrap_or(1),
            // Absent in traces recorded before supervisor replication
            // existed; an unreplicated backend reproduces them exactly.
            replicas: replicas.unwrap_or(1),
            // Absent in traces recorded before rebalancing existed; a
            // fixed ring placement reproduces them exactly.
            rebalance_every: rebalance.unwrap_or(0),
            // Absent in traces recorded before the fault plane existed
            // (and in every fault-free trace); perfect links reproduce
            // them exactly.
            faults,
            warm: warm.ok_or("missing warm header")?,
            stop: stop.ok_or("missing stop header")?,
            protocol: protocol.ok_or("missing protocol header")?,
            lines: body,
        })
    }

    /// The backend kind this trace was recorded on, if it is one of the
    /// replayable in-process kinds.
    pub fn backend_kind(&self) -> Option<BackendKind> {
        BackendKind::all()
            .into_iter()
            .find(|k| k.name() == self.backend)
    }

    /// Replays the trace against a freshly built backend and reassembles
    /// the report. On the deterministic backends the JSON is
    /// byte-identical to the recorded run's.
    pub fn replay(&self) -> Result<ScenarioReport, String> {
        let kind = self.backend_kind().ok_or_else(|| {
            format!(
                "backend {:?} is not replayable (threaded runs are wall-clock)",
                self.backend
            )
        })?;
        let builder = SystemBuilder::new(self.seed)
            .topics(self.topics)
            .shards(self.shards)
            .threads(self.threads)
            .replicas(self.replicas)
            .rebalance_every(self.rebalance_every)
            .protocol(self.protocol);
        let mut ps = builder.build(kind);
        self.replay_on(ps.as_mut())
    }

    /// Replays against a caller-provided backend (must match the header
    /// construction for byte-identical output).
    pub fn replay_on(&self, ps: &mut dyn PubSub) -> Result<ScenarioReport, String> {
        let mut phase: &'static str = "";
        let mut steps: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut ops = OpCounts::default();
        let mut warm_ok = !self.warm;
        let mut stop_ok = false;
        // Pre-seed every topic, mirroring the live engine's
        // `survivors_by_topic`: a topic whose members all churned away
        // still appears (empty) in the report, and `member` lines alone
        // would drop it.
        let mut membership: BTreeMap<u32, Vec<NodeId>> =
            (0..self.topics).map(|t| (t, Vec::new())).collect();
        let mut drained: BTreeMap<NodeId, Vec<Delivery>> = BTreeMap::new();
        // Live-client bookkeeping from the op stream (distinct crashed
        // ids: traces come from files, so a hand-edited double-crash or
        // crash-without-subscribe must not underflow or miscount).
        let mut spawned = 0usize;
        let mut crashed: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
        let phase_key = |name: &str| -> Result<&'static str, String> {
            ["populate", "warm", "seed", "run", "stop", "settle", "drain"]
                .into_iter()
                .find(|p| *p == name)
                .ok_or_else(|| format!("unknown phase {name:?}"))
        };
        let mut end_phase = |phase: &str, ps: &mut dyn PubSub| {
            // Verdicts are probed exactly where the live engine decided
            // them: at the end of their phase.
            match phase {
                "warm" if self.warm => warm_ok = ps.is_legitimate(),
                "stop" => stop_ok = stop_met(ps, &self.stop),
                _ => {}
            }
        };
        for line in &self.lines {
            match line {
                TraceLine::Phase(name) => {
                    if !phase.is_empty() {
                        end_phase(phase, ps);
                    }
                    phase = phase_key(name)?;
                    // Mirror the live engine: the plane arms at the run
                    // phase's first round, so replayed fault fates draw
                    // from the identical per-link streams.
                    if phase == "run" {
                        if let Some(f) = &self.faults {
                            ps.set_faults(Some(f.clone()));
                        }
                    }
                }
                TraceLine::Op(op) => {
                    ops.record(op);
                    match op {
                        Op::Step => {
                            if phase.is_empty() {
                                return Err("step before the first phase marker".into());
                            }
                            *steps.entry(phase).or_default() += 1;
                        }
                        Op::Subscribe { .. } => spawned += 1,
                        Op::Crash { id } => {
                            crashed.insert(*id);
                        }
                        _ => {}
                    }
                    op.apply(ps);
                }
                TraceLine::Member(id, topic) => {
                    membership.entry(*topic).or_default().push(*id);
                }
                TraceLine::Drain(id) => {
                    drained.insert(*id, ps.drain_events(*id));
                }
            }
        }
        if !phase.is_empty() {
            end_phase(phase, ps);
        }
        let phases = Phases {
            warm_rounds: steps.get("warm").copied().unwrap_or(0),
            warm_ok,
            scheduled_rounds: steps.get("run").copied().unwrap_or(0),
            stop_kind: self.stop.name(),
            stop_rounds: steps.get("stop").copied().unwrap_or(0),
            stop_ok,
            settle_rounds: steps.get("settle").copied().unwrap_or(0),
        };
        let meta = RunMeta {
            scenario: &self.scenario,
            seed: self.seed,
            topics: self.topics,
            shards: self.shards,
            threads: self.threads,
            // Same derivation as the live engine's bookkeeping (spawns
            // minus distinct crashed ids); engine-recorded traces agree
            // by construction, and corrupted traces saturate instead of
            // underflowing.
            final_population: spawned.saturating_sub(crashed.len()),
        };
        let (report, _) = assemble_report(ps, &meta, phases, &membership, &drained, ops);
        Ok(report)
    }
}

// Re-export the payload hex helpers next to the trace format they serve.
pub use ops::{decode_hex, encode_hex};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::engine::run_recorded;
    use crate::scenario::spec::{Burst, BurstKind};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("trace-test", 91)
            .population(7)
            .publishers(2)
            .publish_prob(0.5)
            .rounds(8)
            .burst(Burst {
                at: 2,
                count: 1,
                kind: BurstKind::Crash {
                    detect_after: Some(2),
                },
            })
            .stop(Stop::UntilLegit { max_extra: 2_000 })
    }

    #[test]
    fn serialize_parse_round_trips() {
        let (_, trace) = run_recorded(&spec(), BackendKind::Sim).unwrap();
        let text = trace.serialize();
        let parsed = Trace::parse(&text).expect("parse");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.serialize(), text);
    }

    #[test]
    fn replay_reproduces_the_report_byte_for_byte() {
        for kind in [BackendKind::Sim, BackendKind::Chaos, BackendKind::Sharded] {
            let (out, trace) = run_recorded(&spec(), kind).unwrap();
            let replayed = Trace::parse(&trace.serialize())
                .expect("parse")
                .replay()
                .expect("replay");
            assert_eq!(
                replayed.to_json(),
                out.report.to_json(),
                "replay must be byte-identical on {}",
                kind.name()
            );
        }
    }

    #[test]
    fn replay_keeps_topics_whose_members_all_churned_away() {
        // shard-churn has 12 topics with 2 fodder members each and ~10
        // churn events, so some topic routinely ends with zero surviving
        // members — it must still appear (empty) in the replayed report.
        let spec = crate::scenario::library::shard_churn();
        let (out, trace) = run_recorded(&spec, BackendKind::MultiTopic).unwrap();
        assert_eq!(out.report.per_topic.len(), 12);
        let replayed = Trace::parse(&trace.serialize())
            .expect("parse")
            .replay()
            .expect("replay");
        assert_eq!(replayed.per_topic.len(), 12);
        assert_eq!(
            replayed.to_json(),
            out.report.to_json(),
            "multi-topic replay must be byte-identical, empty topics included"
        );
    }

    #[test]
    fn faulted_trace_replays_byte_identically_and_parses_leniently() {
        use skippub_sim::{FaultRule, LinkClass};
        let spec = spec().faults(FaultSpec {
            seed: 3,
            rules: vec![FaultRule {
                drop: 0.25,
                ..FaultRule::pass(0, 5, LinkClass::All)
            }],
            severs: vec![],
        });
        let (out, trace) = run_recorded(&spec, BackendKind::Sim).unwrap();
        assert!(
            out.report.stats.dropped_by_fault > 0,
            "the plane must actually bite for this to test anything"
        );
        let text = trace.serialize();
        assert!(text.contains("\nfaults seed=3"), "header line missing:\n{text}");
        let replayed = Trace::parse(&text)
            .expect("parse")
            .replay()
            .expect("replay");
        assert_eq!(
            replayed.to_json(),
            out.report.to_json(),
            "faulted replay must re-arm the identical plane"
        );
        // Lenient parse: traces recorded before the fault plane existed
        // carry no `faults` line and must still parse (as perfect links).
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("faults "))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = Trace::parse(&stripped).expect("lenient parse");
        assert!(parsed.faults.is_none());
        // And corrupted fault lines are rejected, not ignored.
        assert!(Trace::parse(&text.replace("faults seed=3", "faults seed=x")).is_err());
    }

    #[test]
    fn replay_rejects_unknown_backend() {
        let (_, mut trace) = run_recorded(&spec(), BackendKind::Sim).unwrap();
        trace.backend = "threaded".into();
        assert!(trace.replay().is_err());
    }

    #[test]
    fn parse_rejects_corruption() {
        let (_, trace) = run_recorded(&spec(), BackendKind::Sim).unwrap();
        let text = trace.serialize();
        assert!(Trace::parse(&text.replace("skippub-trace v1", "nope")).is_err());
        assert!(Trace::parse(&text.replace("stop until_legit", "stop sideways")).is_err());
        let mut truncated = text.clone();
        truncated = truncated.replace("seed 91\n", "");
        assert!(Trace::parse(&truncated).is_err());
    }
}
