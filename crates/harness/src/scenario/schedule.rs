//! The schedule compiler: [`ScenarioSpec`] → deterministic event
//! schedule.
//!
//! Compilation is a pure function of the spec (all randomness flows
//! through one `StdRng` seeded from `spec.seed`), and the schedule
//! references clients by **slot** — the index in spawn order — rather
//! than by `NodeId`. Because every backend assigns client IDs
//! identically (1, 2, 3, …), the same schedule drives every backend to
//! the same publication sets; the engine binds slots to concrete IDs at
//! execution time.

use super::spec::{BurstKind, Popularity, ScenarioSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One scheduled operation, in slot space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannedOp {
    /// Spawn the client for `slot`, subscribed to `topic`.
    Subscribe {
        /// Slot the new client binds to.
        slot: usize,
        /// Topic subscribed to.
        topic: u32,
    },
    /// Graceful leave.
    Leave {
        /// Leaving slot.
        slot: usize,
        /// Topic left.
        topic: u32,
    },
    /// Publish from a publisher-core slot.
    Publish {
        /// Publishing slot.
        slot: usize,
        /// Topic published on.
        topic: u32,
        /// Payload (already padded).
        payload: Vec<u8>,
    },
    /// Seed a publication directly into `slot`'s store (adversarial
    /// initial distribution); the engine sets the author to `slot`'s ID.
    Seed {
        /// Hosting slot.
        slot: usize,
        /// Topic of the publication.
        topic: u32,
        /// Payload.
        payload: Vec<u8>,
    },
    /// Crash without warning.
    Crash {
        /// Crashing slot.
        slot: usize,
    },
    /// Failure-detector report for an earlier crash.
    Report {
        /// Reported slot.
        slot: usize,
    },
    /// Kill the primary replica of the supervisor group responsible for
    /// `topic`; a backup is elected and installed in its place. Slots
    /// are untouched — the supervisor is a virtual endpoint, not a
    /// client.
    CrashSupervisor {
        /// Topic whose responsible supervisor group loses its primary.
        topic: u32,
    },
}

/// What ultimately happens to a slot within the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Alive and subscribed at the end of the schedule.
    Survives,
    /// Leaves gracefully at the given scheduled round.
    Leaves(u64),
    /// Crashes at the given scheduled round.
    Crashes(u64),
}

/// Compile-time record of one client slot.
#[derive(Clone, Copy, Debug)]
pub struct SlotPlan {
    /// The slot's (single) topic.
    pub topic: u32,
    /// Scheduled round the slot arrives in (`None` = initial
    /// population, spawned before the warm phase).
    pub arrives: Option<u64>,
    /// Publisher-core member (never churns)?
    pub publisher: bool,
    /// The slot's fate.
    pub fate: Fate,
}

/// The compiled schedule: prelude subscribes, adversarial seeds, per-round
/// op lists, and the slot table.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Initial-population subscribes (applied before the warm phase).
    pub prelude: Vec<PlannedOp>,
    /// Scattered publications (applied after warm, before round 0).
    pub seeds: Vec<PlannedOp>,
    /// Ops applied at the start of each scheduled round.
    pub rounds: Vec<Vec<PlannedOp>>,
    /// Per-slot plan, indexed by slot.
    pub slots: Vec<SlotPlan>,
}

impl Schedule {
    /// Slots still subscribed at the end of the schedule, grouped by
    /// topic (every topic in `0..topics` appears, possibly empty).
    pub fn survivors_by_topic(&self, topics: u32) -> BTreeMap<u32, Vec<usize>> {
        let mut by_topic: BTreeMap<u32, Vec<usize>> =
            (0..topics).map(|t| (t, Vec::new())).collect();
        for (slot, plan) in self.slots.iter().enumerate() {
            if plan.fate == Fate::Survives {
                by_topic.entry(plan.topic).or_default().push(slot);
            }
        }
        by_topic
    }

    /// Total number of `Publish` ops in the schedule.
    pub fn publish_count(&self) -> usize {
        self.rounds
            .iter()
            .flatten()
            .filter(|op| matches!(op, PlannedOp::Publish { .. }))
            .count()
    }
}

/// Draws a topic under the given popularity model. `Uniform` is a
/// deterministic round-robin over `slot`; `Zipf` consumes one RNG draw
/// against the precomputed CDF.
fn pick_topic(
    popularity: Popularity,
    slot: usize,
    topics: u32,
    zipf_cdf: &[f64],
    rng: &mut StdRng,
) -> u32 {
    match popularity {
        Popularity::Uniform => (slot % topics as usize) as u32,
        Popularity::Zipf { .. } => {
            let u: f64 = rng.random_range(0.0..1.0);
            zipf_cdf
                .iter()
                .position(|&c| u < c)
                .unwrap_or(topics as usize - 1) as u32
        }
    }
}

/// Zipf CDF over `topics` ranks with exponent `s` (empty for uniform).
fn zipf_cdf(popularity: Popularity, topics: u32) -> Vec<f64> {
    let Popularity::Zipf { s } = popularity else {
        return Vec::new();
    };
    let weights: Vec<f64> = (0..topics).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Publish/seed payload: a unique stem padded to the spec's minimum
/// size. Uniqueness keeps publication keys distinct; padding models the
/// configured message size.
fn payload(stem: String, min_bytes: usize) -> Vec<u8> {
    let mut bytes = stem.into_bytes();
    while bytes.len() < min_bytes {
        bytes.push(b'.');
    }
    bytes
}

/// Compiles `spec` into its deterministic schedule.
///
/// Invariants the compiler maintains so delivered sets are identical on
/// every backend (see `docs/scenarios.md`):
///
/// * publishers never crash or leave (no publication is lost with its
///   author before flooding/anti-entropy can spread it);
/// * scattered publications are hosted only on slots that survive the
///   whole schedule;
/// * burst victims and departure draws come from live churn-fodder
///   slots only, so an op never targets an already-dead node.
pub fn compile(spec: &ScenarioSpec) -> Schedule {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5CE7_A810_5EED_u64);
    let cdf = zipf_cdf(spec.popularity, spec.topics);
    let publishers = spec.publishers.min(spec.population);

    // --- slot table: initial population, then arrivals ---
    let mut slots: Vec<SlotPlan> = (0..spec.population)
        .map(|slot| SlotPlan {
            topic: pick_topic(spec.popularity, slot, spec.topics, &cdf, &mut rng),
            arrives: None,
            publisher: slot < publishers,
            fate: Fate::Survives,
        })
        .collect();
    let mut rounds: Vec<Vec<PlannedOp>> = (0..spec.rounds).map(|_| Vec::new()).collect();

    let mut arrival_acc = 0.0f64;
    for (r, ops) in rounds.iter_mut().enumerate() {
        arrival_acc += spec.arrivals_per_round;
        while arrival_acc >= 1.0 {
            arrival_acc -= 1.0;
            let slot = slots.len();
            let topic = pick_topic(spec.popularity, slot, spec.topics, &cdf, &mut rng);
            slots.push(SlotPlan {
                topic,
                arrives: Some(r as u64),
                publisher: false,
                fate: Fate::Survives,
            });
            ops.push(PlannedOp::Subscribe { slot, topic });
        }
    }

    // --- churn: bursts first (fixed rounds), then the departure process ---
    // Fodder = non-publisher slots; a victim must be alive (spawned, not
    // yet departed) at its round.
    let alive_fodder = |slots: &[SlotPlan], r: u64| -> Vec<usize> {
        slots
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                !p.publisher
                    && p.fate == Fate::Survives
                    && p.arrives.map(|a| a < r).unwrap_or(true)
            })
            .map(|(slot, _)| slot)
            .collect()
    };
    for burst in &spec.bursts {
        assert!(
            burst.at < spec.rounds,
            "burst at round {} outside schedule of {} rounds (bursts need rounds > at)",
            burst.at,
            spec.rounds
        );
        let pool = alive_fodder(&slots, burst.at);
        assert!(
            pool.len() >= burst.count,
            "burst wants {} victims, only {} churn-fodder slots alive",
            burst.count,
            pool.len()
        );
        // Spread victims evenly over the pool (matches the classic
        // experiment victim pattern and avoids adjacent-ring bias).
        let stride = (pool.len() / burst.count).max(1);
        let victims: Vec<usize> = pool.iter().copied().step_by(stride).take(burst.count).collect();
        for &slot in &victims {
            match burst.kind {
                BurstKind::Crash { detect_after } => {
                    slots[slot].fate = Fate::Crashes(burst.at);
                    rounds[burst.at as usize].push(PlannedOp::Crash { slot });
                    if let Some(delay) = detect_after {
                        let when = burst.at + delay;
                        // Erroring (like the burst.at bounds check) beats
                        // silently shortening the declared detector
                        // latency by clamping into the schedule.
                        assert!(
                            when < spec.rounds,
                            "detector report at round {when} outside schedule of {} rounds \
                             (crash at {} + detect_after {delay})",
                            spec.rounds,
                            burst.at
                        );
                        rounds[when as usize].push(PlannedOp::Report { slot });
                    }
                }
                BurstKind::Leave => {
                    slots[slot].fate = Fate::Leaves(burst.at);
                    rounds[burst.at as usize].push(PlannedOp::Leave {
                        slot,
                        topic: slots[slot].topic,
                    });
                }
            }
        }
    }
    let mut departure_acc = 0.0f64;
    for r in 0..spec.rounds {
        departure_acc += spec.departures_per_round;
        while departure_acc >= 1.0 {
            departure_acc -= 1.0;
            let pool = alive_fodder(&slots, r);
            if pool.is_empty() {
                break;
            }
            let slot = pool[rng.random_range(0..pool.len())];
            slots[slot].fate = Fate::Leaves(r);
            rounds[r as usize].push(PlannedOp::Leave {
                slot,
                topic: slots[slot].topic,
            });
        }
    }

    // --- publish load: stable core, Bernoulli per round ---
    for (r, ops) in rounds.iter_mut().enumerate() {
        for (slot, plan) in slots.iter().enumerate().take(publishers) {
            if rng.random_bool(spec.publish_prob) {
                ops.push(PlannedOp::Publish {
                    slot,
                    topic: plan.topic,
                    payload: payload(format!("p{slot}r{r}"), spec.payload_bytes),
                });
            }
        }
    }

    // --- adversarial start: scatter publications over surviving slots ---
    let survivors: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, p)| p.fate == Fate::Survives && p.arrives.is_none())
        .map(|(slot, _)| slot)
        .collect();
    assert!(
        spec.scattered_pubs == 0 || !survivors.is_empty(),
        "scattered publications need at least one surviving initial slot"
    );
    let seeds: Vec<PlannedOp> = (0..spec.scattered_pubs)
        .map(|i| {
            let slot = survivors[(i * 7 + 3) % survivors.len()];
            PlannedOp::Seed {
                slot,
                topic: slots[slot].topic,
                payload: payload(format!("scatter-{i}"), spec.payload_bytes),
            }
        })
        .collect();

    // --- supervisor-primary crashes: appended after every RNG draw, so
    // a spec stripped of them (`sup_crashes` cleared) compiles to the
    // byte-identical remaining schedule — the failover oracle's
    // never-crashing baseline.
    for &(at, topic) in &spec.sup_crashes {
        assert!(
            at < spec.rounds,
            "supervisor crash at round {at} outside schedule of {} rounds",
            spec.rounds
        );
        assert!(
            topic < spec.topics,
            "supervisor crash targets topic {topic}, spec has {} topics",
            spec.topics
        );
        rounds[at as usize].push(PlannedOp::CrashSupervisor { topic });
    }

    let prelude: Vec<PlannedOp> = (0..spec.population)
        .map(|slot| PlannedOp::Subscribe {
            slot,
            topic: slots[slot].topic,
        })
        .collect();

    Schedule {
        prelude,
        seeds,
        rounds,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::Burst;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("sched-test", 11)
            .population(12)
            .publishers(3)
            .publish_prob(0.5)
            .rounds(10)
            .arrivals_per_round(0.5)
            .departures_per_round(0.3)
            .burst(Burst {
                at: 4,
                count: 2,
                kind: BurstKind::Crash {
                    detect_after: Some(3),
                },
            })
    }

    #[test]
    fn compilation_is_deterministic() {
        let a = compile(&spec());
        let b = compile(&spec());
        assert_eq!(a.prelude, b.prelude);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.seeds, b.seeds);
    }

    #[test]
    fn publishers_never_churn() {
        let s = compile(&spec());
        for (slot, plan) in s.slots.iter().enumerate() {
            if plan.publisher {
                assert_eq!(plan.fate, Fate::Survives, "publisher slot {slot} churned");
            }
        }
        for op in s.rounds.iter().flatten() {
            if let PlannedOp::Crash { slot } | PlannedOp::Leave { slot, .. } = op {
                assert!(!s.slots[*slot].publisher);
            }
        }
    }

    #[test]
    fn bursts_and_arrivals_land_in_their_rounds() {
        let s = compile(&spec());
        let crashes: Vec<usize> = s.rounds[4]
            .iter()
            .filter_map(|op| match op {
                PlannedOp::Crash { slot } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), 2);
        let reports: Vec<usize> = s.rounds[7]
            .iter()
            .filter_map(|op| match op {
                PlannedOp::Report { slot } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(reports, crashes, "detector reports the same victims");
        // 0.5 arrivals/round over 10 rounds = 5 arrivals.
        let arrivals = s.slots.iter().filter(|p| p.arrives.is_some()).count();
        assert_eq!(arrivals, 5);
    }

    #[test]
    fn seeds_only_host_on_survivors() {
        let s = compile(&spec().scattered_pubs(9));
        assert_eq!(s.seeds.len(), 9);
        for op in &s.seeds {
            let PlannedOp::Seed { slot, .. } = op else {
                panic!("non-seed op in seeds")
            };
            assert_eq!(s.slots[*slot].fate, Fate::Survives);
        }
    }

    #[test]
    fn zipf_skews_and_uniform_splits() {
        let uni = compile(
            &ScenarioSpec::new("u", 5)
                .topics(4)
                .population(40)
                .rounds(1),
        );
        let by_topic = uni.survivors_by_topic(4);
        for t in 0..4 {
            assert_eq!(by_topic[&t].len(), 10, "uniform splits evenly");
        }
        let zipf = compile(
            &ScenarioSpec::new("z", 5)
                .topics(4)
                .population(200)
                .popularity(Popularity::Zipf { s: 1.3 })
                .rounds(1),
        );
        let by_topic = zipf.survivors_by_topic(4);
        assert!(
            by_topic[&0].len() > by_topic[&3].len() + 10,
            "zipf must skew toward rank 0: {:?}",
            by_topic.iter().map(|(t, v)| (*t, v.len())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stripping_supervisor_crashes_changes_nothing_else() {
        // The failover oracle compares a crash run against the same spec
        // with `sup_crashes` cleared; that only works if the crash ops
        // consume no randomness — every other op must land identically.
        let crash = compile(&spec().replicas(3).sup_crash(3, 0).sup_crash(8, 0));
        let plain = compile(&spec());
        assert_eq!(crash.prelude, plain.prelude);
        assert_eq!(crash.seeds, plain.seeds);
        assert_eq!(crash.rounds.len(), plain.rounds.len());
        for (r, (c, p)) in crash.rounds.iter().zip(&plain.rounds).enumerate() {
            let stripped: Vec<&PlannedOp> = c
                .iter()
                .filter(|op| !matches!(op, PlannedOp::CrashSupervisor { .. }))
                .collect();
            let plain_ops: Vec<&PlannedOp> = p.iter().collect();
            assert_eq!(stripped, plain_ops, "round {r} diverges beyond the crash ops");
        }
        let crashes: Vec<usize> = crash
            .rounds
            .iter()
            .enumerate()
            .filter(|(_, ops)| {
                ops.iter()
                    .any(|op| matches!(op, PlannedOp::CrashSupervisor { .. }))
            })
            .map(|(r, _)| r)
            .collect();
        assert_eq!(crashes, vec![3, 8], "crash ops land in their rounds");
    }

    #[test]
    fn publish_count_matches_ops() {
        let s = compile(&spec());
        let n = s
            .rounds
            .iter()
            .flatten()
            .filter(|op| matches!(op, PlannedOp::Publish { .. }))
            .count();
        assert_eq!(s.publish_count(), n);
        assert!(n > 0, "0.5 prob × 3 publishers × 10 rounds should publish");
    }
}
