//! Crash-recovery scenario family: checkpoint a workload
//! mid-stabilization, restore it in a fresh backend, corrupt `k`
//! channels with bogus protocol messages, and require the restored
//! system to re-stabilize within a budget.
//!
//! The paper's self-stabilization guarantee says legitimacy re-forms
//! from *any* initial state; this family exercises that guarantee
//! through the checkpoint path — a restore is just another "initial
//! state", and a corrupted restore must heal exactly like a corrupted
//! live system. The channel corruption mirrors the admissible-message
//! adversary of `skippub_core::scenarios::Adversary::CorruptChannels`:
//! well-formed protocol messages with stale or fabricated labels.

use super::engine::{budget_multiplier, run_spec_with_snapshot, WarmStart};
use super::schedule::compile;
use super::spec::ScenarioSpec;
use skippub_core::pubsub::{MultiTopicBackend, ShardedBackend, SimBackend};
use skippub_core::topics::TopicMsg;
use skippub_core::{BackendKind, Msg, NodeRef, PubSub, TopicId};
use skippub_ringmath::Label;
use skippub_sim::NodeId;
use std::fmt::Write as _;

/// Outcome of one crash-recovery run.
#[derive(Clone, Debug)]
pub struct CrashRecoveryReport {
    /// Scenario the checkpoint was captured under.
    pub scenario: String,
    /// Backend name of the restored system.
    pub backend: String,
    /// Scheduled round the checkpoint was captured at (half the
    /// schedule, so traffic is still in flight).
    pub snapshot_round: u64,
    /// Serialized checkpoint size.
    pub snapshot_bytes: usize,
    /// Live members at restore time (corruption targets).
    pub survivors: usize,
    /// Bogus protocol messages injected into restored channels.
    pub corrupted: usize,
    /// Rounds the restored+corrupted system took to re-reach
    /// legitimacy.
    pub relegit_rounds: u64,
    /// Whether legitimacy re-formed within the budget.
    pub relegit_ok: bool,
    /// Rounds until publication stores re-converged after that.
    pub resettle_rounds: u64,
    /// Whether publication stores re-converged within the budget.
    pub resettle_ok: bool,
    /// Publications present once re-converged.
    pub total_pubs: usize,
}

impl CrashRecoveryReport {
    /// Did the restored system fully recover?
    pub fn ok(&self) -> bool {
        self.relegit_ok && self.resettle_ok
    }

    /// Renders the report as JSON (same hand-rolled style as
    /// [`super::ScenarioReport`]).
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n  \"schema\": \"skippub-crash-recovery/v1\",\n");
        let _ = writeln!(j, "  \"scenario\": {:?},", self.scenario);
        let _ = writeln!(j, "  \"backend\": {:?},", self.backend);
        let _ = writeln!(j, "  \"snapshot_round\": {},", self.snapshot_round);
        let _ = writeln!(j, "  \"snapshot_bytes\": {},", self.snapshot_bytes);
        let _ = writeln!(j, "  \"survivors\": {},", self.survivors);
        let _ = writeln!(j, "  \"corrupted\": {},", self.corrupted);
        let _ = writeln!(
            j,
            "  \"recovery\": {{\"relegit_rounds\": {}, \"relegit_ok\": {}, \"resettle_rounds\": {}, \"resettle_ok\": {}, \"total_pubs\": {}}},",
            self.relegit_rounds,
            self.relegit_ok,
            self.resettle_rounds,
            self.resettle_ok,
            self.total_pubs
        );
        let _ = writeln!(j, "  \"ok\": {}", self.ok());
        j.push('}');
        j
    }
}

/// Rounds stepped after injection so every bogus message is delivered
/// and processed before recovery is measured.
const ABSORB_ROUNDS: usize = 3;

/// Deterministic splitmix64 step — the corruption stream must not
/// depend on a global RNG so runs are reproducible from the seed alone.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bogus_label(state: &mut u64) -> Label {
    let frac = mix(state);
    let len = 1 + (mix(state) % 10) as u8;
    Label::from_parts(frac, len).expect("len in range")
}

/// A well-formed protocol message with fabricated content — the
/// admissible corruption the paper's adversary is allowed.
fn bogus_msg(state: &mut u64, about: NodeId) -> Msg {
    match mix(state) % 3 {
        0 => Msg::Intro {
            node: NodeRef::new(bogus_label(state), about),
            cyc: mix(state) & 1 == 0,
        },
        1 => Msg::Check {
            sender: NodeRef::new(bogus_label(state), about),
            assumed: bogus_label(state),
            cyc: mix(state) & 1 == 0,
        },
        _ => Msg::SetData {
            pred: Some(NodeRef::new(bogus_label(state), about)),
            label: Some(bogus_label(state)),
            succ: None,
        },
    }
}

/// Restores the checkpoint into a concrete backend and injects `k`
/// bogus messages into survivor channels. The facade deliberately has
/// no injection surface, so restoration goes through the concrete
/// types' `world_mut` escape hatches.
fn restore_corrupted(
    warm: &WarmStart,
    targets: &[NodeId],
    k: usize,
    topics: u32,
    seed: u64,
) -> Result<Box<dyn PubSub>, String> {
    if targets.is_empty() {
        return Err("no surviving members to corrupt".into());
    }
    let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
    let pick = |state: &mut u64| targets[(mix(state) as usize) % targets.len()];
    match warm.snapshot.kind.as_str() {
        "sim" | "chaos" => {
            let mut b = SimBackend::from_snapshot(&warm.snapshot)?;
            for _ in 0..k {
                let (to, about) = (pick(&mut state), pick(&mut state));
                let msg = bogus_msg(&mut state, about);
                b.sim_mut().world_mut().inject(to, msg);
            }
            Ok(Box::new(b))
        }
        "multi-topic" => {
            let mut b = MultiTopicBackend::from_snapshot(&warm.snapshot)?;
            for _ in 0..k {
                let (to, about) = (pick(&mut state), pick(&mut state));
                let topic = TopicId((mix(&mut state) % topics.max(1) as u64) as u32);
                let msg = bogus_msg(&mut state, about);
                b.world_mut().inject(to, TopicMsg { topic, msg });
            }
            Ok(Box::new(b))
        }
        "sharded" => {
            let mut b = ShardedBackend::from_snapshot(&warm.snapshot)?;
            for _ in 0..k {
                let (to, about) = (pick(&mut state), pick(&mut state));
                let topic = TopicId((mix(&mut state) % topics.max(1) as u64) as u32);
                let msg = bogus_msg(&mut state, about);
                b.world_mut().inject(to, TopicMsg { topic, msg });
            }
            Ok(Box::new(b))
        }
        kind => Err(format!("crash recovery cannot restore kind {kind:?}")),
    }
}

/// Runs the crash-recovery family: execute `spec` on `kind` while
/// checkpointing halfway through the scheduled rounds, restore the
/// checkpoint into a fresh backend, inject `corrupt` bogus messages
/// into survivor channels, and drive the restored system until it is
/// legitimate and publication stores converge again.
pub fn run_crash_recovery(
    spec: &ScenarioSpec,
    kind: BackendKind,
    corrupt: usize,
) -> Result<CrashRecoveryReport, String> {
    let at_round = (compile(spec).rounds.len() / 2) as u64;
    let (_, warm) = run_spec_with_snapshot(spec, kind, at_round)?;
    // Crashed nodes are gone from the world; leavers are still live
    // protocol participants, so they stay valid corruption targets.
    let survivors: Vec<NodeId> = warm
        .slot_ids
        .iter()
        .copied()
        .filter(|id| !warm.crashed.contains(id))
        .collect();
    let mut ps = restore_corrupted(&warm, &survivors, corrupt, spec.topics, spec.seed)?;
    let mult = budget_multiplier(kind);
    // Let the corrupted channels drain first: legitimacy is a predicate
    // over node *state*, so bogus in-flight messages only disturb it
    // once processed. Measuring recovery before they land would let a
    // still-legitimate snapshot report instant success.
    for _ in 0..ABSORB_ROUNDS {
        ps.step();
    }
    let (relegit_rounds, relegit_ok) =
        ps.until_legit(spec.warm_budget.saturating_mul(mult));
    let (resettle_rounds, resettle_ok) =
        ps.until_pubs_converged(spec.settle.saturating_mul(mult));
    let (_, total_pubs) = ps.publications_converged();
    Ok(CrashRecoveryReport {
        scenario: spec.name.clone(),
        backend: ps.backend_name().to_string(),
        snapshot_round: warm.round,
        snapshot_bytes: warm.snapshot.byte_len(),
        survivors: survivors.len(),
        corrupted: corrupt,
        relegit_rounds,
        relegit_ok,
        resettle_rounds,
        resettle_ok,
        total_pubs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::Stop;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("crash-recovery-test", 77)
            .population(10)
            .publishers(3)
            .publish_prob(0.5)
            .rounds(10)
            .stop(Stop::UntilLegit { max_extra: 3_000 })
    }

    #[test]
    fn corrupted_restore_relegitimizes_on_sim() {
        let r = run_crash_recovery(&spec(), BackendKind::Sim, 25).expect("runs");
        assert!(r.ok(), "{}", r.to_json());
        assert_eq!(r.snapshot_round, 5);
        assert!(r.snapshot_bytes > 0);
        assert_eq!(r.survivors, 10);
        // The protocol may absorb admissible corruption without the
        // state predicate ever flipping (that is the success story), so
        // only the recovery verdicts are asserted, not a disturbance.
    }

    #[test]
    fn corrupted_restore_relegitimizes_on_sharded() {
        let s = spec().topics(3).shards(2);
        let r = run_crash_recovery(&s, BackendKind::Sharded, 25).expect("runs");
        assert!(r.ok(), "{}", r.to_json());
        assert_eq!(r.backend, "sharded");
    }
}
