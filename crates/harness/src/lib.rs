//! # skippub-harness
//!
//! Experiment drivers reproducing **every figure and every quantitative
//! claim** of the paper (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded results). Each experiment builds its
//! workload, runs the protocol in the deterministic simulator, and emits
//! a table whose "paper" column carries the claimed value next to the
//! measured one.
//!
//! Run them via the `experiments` binary:
//!
//! ```text
//! cargo run -p skippub-harness --release --bin experiments -- all
//! cargo run -p skippub-harness --release --bin experiments -- convergence --scale full --seed 7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod table;

pub use table::Table;

/// Experiment scale: `Small` keeps every experiment under ~a second (used
/// by tests); `Full` runs the sweeps recorded in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sweeps for CI/tests.
    Small,
    /// The full recorded sweeps.
    Full,
}

impl Scale {
    /// Picks `small` or `full` depending on scale.
    pub fn pick<T: Copy>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// One experiment's rendered result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment ID (e.g. "E4").
    pub id: &'static str,
    /// Paper artefact reproduced (e.g. "Theorem 5").
    pub artefact: &'static str,
    /// One-line claim under test.
    pub claim: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Pass/fail verdicts ("shape" checks, not exact-number checks).
    pub verdicts: Vec<(String, bool)>,
}

impl Report {
    /// Whether every verdict holds.
    pub fn ok(&self) -> bool {
        self.verdicts.iter().all(|(_, ok)| *ok)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "━━━ {} — {} ━━━", self.id, self.artefact)?;
        writeln!(f, "claim: {}", self.claim)?;
        for t in &self.tables {
            writeln!(f, "\n{t}")?;
        }
        for (v, ok) in &self.verdicts {
            writeln!(f, "[{}] {v}", if *ok { "PASS" } else { "FAIL" })?;
        }
        Ok(())
    }
}
