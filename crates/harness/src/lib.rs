//! # skippub-harness
//!
//! Workload drivers: the declarative [`scenario`] engine plus the
//! E-series [`experiments`] reproducing **every figure and every
//! quantitative claim** of the paper (`docs/paper_map.md` maps each
//! paper artefact to its implementation and its checking experiment).
//!
//! * [`scenario`] — `ScenarioSpec` → deterministic compiled schedule →
//!   execution on **any** `PubSub` backend, with trace record/replay
//!   and a built-in workload library (see `docs/scenarios.md`). Run via
//!   the `scenarios` binary.
//! * [`experiments`] — each experiment builds its workload (the
//!   churn/convergence ones as thin scenario-spec wrappers), runs the
//!   protocol, and emits a table whose verdicts assert the paper's
//!   claims. Run via the `experiments` binary.
//!
//! ```text
//! cargo run -p skippub-harness --release --bin scenarios -- all
//! cargo run -p skippub-harness --release --bin experiments -- all
//! cargo run -p skippub-harness --release --bin experiments -- convergence --scale full --seed 7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scenario;
mod table;

pub use table::Table;

/// Experiment scale: `Small` keeps every experiment under ~a second (used
/// by tests); `Full` runs the sweeps recorded in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sweeps for CI/tests.
    Small,
    /// The full recorded sweeps.
    Full,
}

impl Scale {
    /// Picks `small` or `full` depending on scale.
    pub fn pick<T: Copy>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// One experiment's rendered result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment ID (e.g. "E4").
    pub id: &'static str,
    /// Paper artefact reproduced (e.g. "Theorem 5").
    pub artefact: &'static str,
    /// One-line claim under test.
    pub claim: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Pass/fail verdicts ("shape" checks, not exact-number checks).
    pub verdicts: Vec<(String, bool)>,
}

impl Report {
    /// Whether every verdict holds.
    pub fn ok(&self) -> bool {
        self.verdicts.iter().all(|(_, ok)| *ok)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "━━━ {} — {} ━━━", self.id, self.artefact)?;
        writeln!(f, "claim: {}", self.claim)?;
        for t in &self.tables {
            writeln!(f, "\n{t}")?;
        }
        for (v, ok) in &self.verdicts {
            writeln!(f, "[{}] {v}", if *ok { "PASS" } else { "FAIL" })?;
        }
        Ok(())
    }
}
