//! CLI: run declarative scenarios from the built-in library on any
//! backend, emit per-scenario JSON reports, record/replay traces.
//!
//! ```text
//! scenarios --list                         # available scenarios
//! scenarios all                            # every builtin, conformance sweep
//! scenarios crash-storm                    # one scenario, all supported backends
//! scenarios crash-storm --backend sim      # one backend
//! scenarios crash-storm --backend threaded # the OS-thread runtime
//! scenarios steady-state --seed 9 --out reports/
//! scenarios crash-storm --backend sim --trace run.trace
//! scenarios replay run.trace               # re-execute a recorded trace
//!
//! # checkpoint/restore:
//! scenarios crash-storm --backend sim --snapshot-at 6 --out-snapshot warm.snap
//! scenarios crash-storm --from-snapshot warm.snap   # warm-start the rest
//! scenarios crash-recovery crash-storm --corrupt 25 # restore + corrupt + re-legit
//!
//! # supervisor failover, oracle-checked against a never-crashing run:
//! scenarios supervisor-crash supervisor-crash-churn --backend all
//!
//! # link faults: run a builtin's fault schedule, or inject one ad hoc
//! scenarios fault-storm fault-storm-loss --backend all
//! scenarios fault-storm partition-kills-primary
//! scenarios steady-state --faults 'seed=7;rule=0..10,all,0.2,0,0,0,0,0'
//! ```
//!
//! Running a scenario on multiple backends asserts the conformance
//! contract: the delivered-publication fingerprints must be identical
//! across the in-process backends. A `--from-snapshot` run self-asserts
//! the same contract against a fresh uninterrupted run. Exit code 1
//! means a scenario failed a verdict (or a conformance mismatch); 2
//! means a usage or I/O error (bad flags, unknown names,
//! unreadable/unwritable paths).

use skippub_harness::scenario::{
    self, builtin, builtins, BackendKind, FaultSpec, ScenarioSpec, Trace, WarmStart,
};

fn usage() -> ! {
    eprintln!(
        "usage: scenarios <name|all|replay FILE|crash-recovery NAME|supervisor-crash NAME|fault-storm NAME> [--backend sim|chaos|multi-topic|sharded|threaded|all] [--seed N] [--rounds N] [--threads N] [--rebalance N] [--faults SPEC] [--out DIR] [--trace FILE] [--snapshot-at R --out-snapshot FILE] [--from-snapshot FILE] [--corrupt K] [--list]"
    );
    std::process::exit(2);
}

/// Flag-compatibility guards for `--faults`: the flag injects a fault
/// schedule into the spec, which is meaningless (or worse, silently
/// double-applied) in modes that already carry one.
fn faults_flag_conflict(
    faults: bool,
    replay: bool,
    from_snapshot: bool,
    threaded: bool,
) -> Option<&'static str> {
    if !faults {
        return None;
    }
    if replay {
        return Some("replay takes no --faults (the trace header carries the fault schedule)");
    }
    if from_snapshot {
        return Some(
            "--from-snapshot takes no --faults (the snapshot carries the already-armed plane; \
             re-arming would rewind its RNG streams)",
        );
    }
    if threaded {
        return Some(
            "the threaded runtime cannot deterministically fault real channels; \
             --faults needs an in-process backend",
        );
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("scenarios: {msg}");
    std::process::exit(2);
}

/// One backend selection: an in-process kind, or the threaded runtime.
#[derive(Clone, Copy, PartialEq)]
enum Target {
    InProcess(BackendKind),
    Threaded,
}

impl Target {
    fn name(&self) -> &'static str {
        match self {
            Target::InProcess(k) => k.name(),
            Target::Threaded => "threaded",
        }
    }
}

fn parse_target(name: &str) -> Option<Target> {
    if name == "threaded" {
        return Some(Target::Threaded);
    }
    BackendKind::all()
        .into_iter()
        .find(|k| k.name() == name)
        .map(Target::InProcess)
}

/// Runs `spec` on `target`, returning the outcome report JSON and the
/// delivered fingerprint (recording a trace when asked).
fn run_one(
    spec: &ScenarioSpec,
    target: Target,
    trace_path: Option<&str>,
) -> Result<(String, String, bool), String> {
    match target {
        Target::InProcess(kind) => {
            if let Some(path) = trace_path {
                let (out, trace) = scenario::run_recorded(spec, kind)?;
                std::fs::write(path, trace.serialize())
                    .map_err(|e| format!("write {path}: {e}"))?;
                eprintln!("recorded trace to {path}");
                Ok((
                    out.report.to_json(),
                    out.report.delivered_fingerprint.clone(),
                    out.report.ok(),
                ))
            } else {
                let out = scenario::run_spec(spec, kind)?;
                Ok((
                    out.report.to_json(),
                    out.report.delivered_fingerprint.clone(),
                    out.report.ok(),
                ))
            }
        }
        Target::Threaded => {
            if trace_path.is_some() {
                return Err("threaded runs are wall-clock; traces are not replayable".into());
            }
            let out = scenario::run_threaded(spec)?;
            Ok((
                out.report.to_json(),
                out.report.delivered_fingerprint.clone(),
                out.report.ok(),
            ))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut replay_file: Option<String> = None;
    let mut backend = "all".to_string();
    let mut backend_set = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut rebalance: Option<u64> = None;
    let mut out_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut rounds: Option<u64> = None;
    let mut snapshot_at: Option<u64> = None;
    let mut out_snapshot: Option<String> = None;
    let mut from_snapshot: Option<String> = None;
    let mut corrupt: usize = 25;
    let mut faults_arg: Option<String> = None;
    let mut recovery = false;
    let mut failover = false;
    let mut storm = false;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        let take = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match args[i].as_str() {
            "--list" => list = true,
            "--backend" => {
                backend = take(&args, i, "--backend");
                backend_set = true;
                i += 1;
            }
            "--seed" => {
                seed = Some(
                    take(&args, i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--seed needs a number")),
                );
                i += 1;
            }
            "--rounds" => {
                rounds = Some(
                    take(&args, i, "--rounds")
                        .parse()
                        .unwrap_or_else(|_| fail("--rounds needs a number")),
                );
                i += 1;
            }
            "--threads" => {
                let t: usize = take(&args, i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads needs a number"));
                if t < 1 {
                    fail("--threads needs at least 1");
                }
                threads = Some(t);
                i += 1;
            }
            "--rebalance" => {
                rebalance = Some(
                    take(&args, i, "--rebalance")
                        .parse()
                        .unwrap_or_else(|_| fail("--rebalance needs a round cadence (0 = off)")),
                );
                i += 1;
            }
            "--out" => {
                out_dir = Some(take(&args, i, "--out"));
                i += 1;
            }
            "--trace" => {
                trace_path = Some(take(&args, i, "--trace"));
                i += 1;
            }
            "--snapshot-at" => {
                snapshot_at = Some(
                    take(&args, i, "--snapshot-at")
                        .parse()
                        .unwrap_or_else(|_| fail("--snapshot-at needs a round number")),
                );
                i += 1;
            }
            "--out-snapshot" => {
                out_snapshot = Some(take(&args, i, "--out-snapshot"));
                i += 1;
            }
            "--from-snapshot" => {
                from_snapshot = Some(take(&args, i, "--from-snapshot"));
                i += 1;
            }
            "--corrupt" => {
                corrupt = take(&args, i, "--corrupt")
                    .parse()
                    .unwrap_or_else(|_| fail("--corrupt needs a count"));
                i += 1;
            }
            "--faults" => {
                faults_arg = Some(take(&args, i, "--faults"));
                i += 1;
            }
            "crash-recovery" if name.is_none() && !recovery => recovery = true,
            "supervisor-crash" if name.is_none() && !failover => failover = true,
            "fault-storm" if name.is_none() && !storm => storm = true,
            "replay" if name.is_none() => {
                replay_file = Some(take(&args, i, "replay"));
                i += 1;
                name = Some("replay".into());
            }
            other if name.is_none() && !other.starts_with("--") => name = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
        i += 1;
    }

    if list {
        println!("built-in scenarios:");
        for s in builtins() {
            let backends: Vec<&str> = s
                .supported_backends()
                .iter()
                .map(|k| k.name())
                .chain((s.topics == 1).then_some("threaded"))
                .collect();
            println!("  {:<24} topics={:<3} backends: {}", s.name, s.topics, backends.join(","));
        }
        return;
    }

    // --- replay mode ---
    if let Some(path) = replay_file {
        // A trace fixes its backend, seed, and thread count in the
        // header; overriding them would break byte-identity, so reject
        // rather than ignore.
        if backend_set || seed.is_some() || threads.is_some() || rebalance.is_some() || trace_path.is_some() {
            fail("replay takes no --backend/--seed/--threads/--rebalance/--trace (the trace header fixes them)");
        }
        if let Some(msg) = faults_flag_conflict(faults_arg.is_some(), true, false, false) {
            fail(msg);
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        let trace = Trace::parse(&text).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
        let report = trace
            .replay()
            .unwrap_or_else(|e| fail(&format!("replay {path}: {e}")));
        print!("{}", report.to_json());
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("mkdir {dir}: {e}")));
            let out = format!("{dir}/{}.{}.replay.json", report.scenario, report.backend);
            std::fs::write(&out, report.to_json())
                .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
            eprintln!("wrote {out}");
        }
        std::process::exit(if report.ok() { 0 } else { 1 });
    }

    // --- run mode ---
    let name = name.unwrap_or_else(|| usage());
    let specs: Vec<ScenarioSpec> = if name == "all" {
        builtins()
    } else {
        match builtin(&name) {
            Some(s) => vec![s],
            None => fail(&format!("unknown scenario {name:?}; use --list")),
        }
    };
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("mkdir {dir}: {e}")));
    }
    if trace_path.is_some() && (backend == "all" || specs.len() > 1) {
        fail("--trace needs a single scenario and a single backend");
    }

    let chosen: Option<Target> = if backend == "all" {
        None
    } else {
        Some(parse_target(&backend).unwrap_or_else(|| fail(&format!("unknown backend {backend:?}"))))
    };

    if let Some(msg) = faults_flag_conflict(
        faults_arg.is_some(),
        false,
        from_snapshot.is_some(),
        chosen == Some(Target::Threaded),
    ) {
        fail(msg);
    }
    let faults_spec: Option<FaultSpec> = faults_arg.as_deref().map(|s| {
        FaultSpec::parse_line(s).unwrap_or_else(|e| fail(&format!("--faults: {e}")))
    });

    // --- checkpoint / warm-start / crash-recovery modes ---
    if snapshot_at.is_some() != out_snapshot.is_some() {
        fail("--snapshot-at and --out-snapshot go together");
    }
    let modes = snapshot_at.is_some() as usize
        + from_snapshot.is_some() as usize
        + recovery as usize
        + failover as usize
        + storm as usize;
    if modes > 1 {
        fail("--snapshot-at, --from-snapshot, crash-recovery, supervisor-crash, and fault-storm are mutually exclusive");
    }
    if modes == 1 {
        if specs.len() != 1 {
            fail("checkpoint modes need a single scenario");
        }
        if trace_path.is_some() {
            fail("checkpoint modes do not record traces");
        }
        let mut spec = specs.into_iter().next().unwrap();
        if let Some(s) = seed {
            spec.seed = s;
        }
        if let Some(r) = rounds {
            spec.rounds = r;
        }
        if let Some(t) = threads {
            spec = spec.threads(t);
        }
        if let Some(r) = rebalance {
            spec = spec.rebalance_every(r);
        }
        if let Some(f) = &faults_spec {
            spec = spec.faults(f.clone());
        }

        // Capture: run to completion, writing the warm-start file.
        if let (Some(at), Some(path)) = (snapshot_at, &out_snapshot) {
            let kind = match chosen {
                Some(Target::InProcess(k)) => k,
                Some(Target::Threaded) => fail("the threaded runtime cannot snapshot"),
                None => fail("--snapshot-at needs a single --backend"),
            };
            let (out, warm) = scenario::run_spec_with_snapshot(&spec, kind, at)
                .unwrap_or_else(|e| fail(&e));
            std::fs::write(path, warm.to_text())
                .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!(
                "wrote warm start at round {} ({} snapshot bytes) to {path}",
                warm.round,
                warm.snapshot.byte_len()
            );
            print!("{}", out.report.to_json());
            std::process::exit(if out.report.ok() { 0 } else { 1 });
        }

        // Resume: warm-start the rest, self-asserting conformance with
        // a fresh uninterrupted run of the same spec.
        if let Some(path) = &from_snapshot {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
            let warm = WarmStart::parse(&text).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
            let kind = BackendKind::all()
                .into_iter()
                .find(|k| k.name() == warm.snapshot.kind)
                .unwrap_or_else(|| fail(&format!("snapshot kind {:?} is not a backend", warm.snapshot.kind)));
            let resumed = scenario::resume_spec(&spec, &warm).unwrap_or_else(|e| fail(&e));
            print!("{}", resumed.report.to_json());
            let fresh = scenario::run_spec(&spec, kind).unwrap_or_else(|e| fail(&e));
            if resumed.report.delivered_fingerprint != fresh.report.delivered_fingerprint {
                eprintln!(
                    "WARM-START MISMATCH: resumed run delivers {} but an uninterrupted run delivers {}",
                    resumed.report.delivered_fingerprint, fresh.report.delivered_fingerprint
                );
                std::process::exit(1);
            }
            eprintln!(
                "resumed from round {}: delivered fingerprint matches the uninterrupted run",
                warm.round
            );
            std::process::exit(if resumed.report.ok() { 0 } else { 1 });
        }

        // Supervisor-failover oracle: run the scenario's scheduled
        // supervisor-primary crashes, run the same schedule stripped of
        // them, and self-assert the two runs are observationally
        // identical (delivered sets + final checker digests). Exit 1 on
        // divergence.
        if failover {
            let kinds: Vec<BackendKind> = match chosen {
                Some(Target::InProcess(k)) => vec![k],
                Some(Target::Threaded) => {
                    fail("the threaded runtime cannot run the failover oracle")
                }
                None => spec.supported_backends(),
            };
            let mut failed = false;
            for kind in kinds {
                let started = std::time::Instant::now();
                let report =
                    scenario::run_supervisor_crash(&spec, kind).unwrap_or_else(|e| fail(&e));
                eprintln!(
                    "=== supervisor-crash {} on {} ({:.2?}) {}",
                    spec.name,
                    kind.name(),
                    started.elapsed(),
                    if report.ok() { "ok" } else { "DIVERGED" }
                );
                println!("{}", report.to_json());
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{}.{}.failover.json", spec.name, kind.name());
                    std::fs::write(&path, report.to_json())
                        .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
                }
                failed |= !report.ok();
            }
            std::process::exit(if failed { 1 } else { 0 });
        }

        // Link-fault-storm oracle: run the scenario's fault schedule
        // (builtin or injected via --faults), run the same schedule on
        // perfect links, and self-assert healing — re-legitimization,
        // re-convergence, partition-triggered failovers, and (for
        // loss/delay-only schedules) delivered-set equality. Exit 1 on
        // a failed verdict.
        if storm {
            let kinds: Vec<BackendKind> = match chosen {
                Some(Target::InProcess(k)) => vec![k],
                Some(Target::Threaded) => {
                    fail("the threaded runtime cannot run the fault-storm oracle")
                }
                None => spec.supported_backends(),
            };
            let mut failed = false;
            for kind in kinds {
                let started = std::time::Instant::now();
                let report = scenario::run_fault_storm(&spec, kind).unwrap_or_else(|e| fail(&e));
                eprintln!(
                    "=== fault-storm {} on {} ({:.2?}) {}",
                    spec.name,
                    kind.name(),
                    started.elapsed(),
                    if report.ok() { "ok" } else { "FAILED" }
                );
                println!("{}", report.to_json());
                if let Some(dir) = &out_dir {
                    let path = format!("{dir}/{}.{}.faultstorm.json", spec.name, kind.name());
                    std::fs::write(&path, report.to_json())
                        .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
                }
                failed |= !report.ok();
            }
            std::process::exit(if failed { 1 } else { 0 });
        }

        // Crash recovery: checkpoint mid-run, restore, corrupt, re-legit.
        let kinds: Vec<BackendKind> = match chosen {
            Some(Target::InProcess(k)) => vec![k],
            Some(Target::Threaded) => fail("the threaded runtime cannot snapshot"),
            None => spec.supported_backends(),
        };
        let mut failed = false;
        for kind in kinds {
            let started = std::time::Instant::now();
            let report = scenario::run_crash_recovery(&spec, kind, corrupt)
                .unwrap_or_else(|e| fail(&e));
            eprintln!(
                "=== crash-recovery {} on {} ({:.2?}) {}",
                spec.name,
                kind.name(),
                started.elapsed(),
                if report.ok() { "ok" } else { "FAILED" }
            );
            println!("{}", report.to_json());
            if let Some(dir) = &out_dir {
                let path = format!("{dir}/{}.{}.recovery.json", spec.name, kind.name());
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            }
            failed |= !report.ok();
        }
        std::process::exit(if failed { 1 } else { 0 });
    }

    let mut failures = 0usize;
    for mut spec in specs {
        if let Some(s) = seed {
            spec.seed = s;
        }
        if let Some(r) = rounds {
            spec.rounds = r;
        }
        // Worker-thread cap for the sharded backend's parallel round
        // executor — an execution knob only: delivered sets and reports
        // (minus the config header) are identical for every value.
        if let Some(t) = threads {
            spec = spec.threads(t);
        }
        // Topic→shard rebalancing cadence (sharded backend only; 0 =
        // off). Deterministic: reports are identical for every thread
        // count at any fixed cadence.
        if let Some(r) = rebalance {
            spec = spec.rebalance_every(r);
        }
        // Ad-hoc link-fault schedule, armed at the run phase exactly
        // like a builtin's.
        if let Some(f) = &faults_spec {
            spec = spec.faults(f.clone());
        }
        let targets: Vec<Target> = match chosen {
            None => spec
                .supported_backends()
                .into_iter()
                .map(Target::InProcess)
                .collect(),
            Some(t) => {
                // A faulted builtin on the threaded runtime would
                // silently run fault-free (real channels cannot be
                // deterministically faulted) — skip, don't mislead.
                if t == Target::Threaded && spec.faults.is_some() {
                    eprintln!(
                        "=== {} skipped on threaded (fault schedules need an in-process backend)",
                        spec.name
                    );
                    continue;
                }
                let supported = match t {
                    Target::InProcess(kind) => spec.supported(kind),
                    Target::Threaded => spec.topics == 1,
                };
                if !supported {
                    eprintln!(
                        "=== {} skipped on {} (spec has {} topics; backend serves one)",
                        spec.name,
                        t.name(),
                        spec.topics
                    );
                    continue;
                }
                vec![t]
            }
        };
        let mut reference: Option<(&'static str, String)> = None;
        for target in targets {
            let started = std::time::Instant::now();
            match run_one(&spec, target, trace_path.as_deref()) {
                Err(e) => fail(&e),
                Ok((json, fingerprint, ok)) => {
                    eprintln!(
                        "=== {} on {} ({:.2?}) {}",
                        spec.name,
                        target.name(),
                        started.elapsed(),
                        if ok { "ok" } else { "FAILED" }
                    );
                    print!("{json}");
                    if let Some(dir) = &out_dir {
                        let path = format!("{dir}/{}.{}.json", spec.name, target.name());
                        std::fs::write(&path, &json)
                            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
                    }
                    if !ok {
                        failures += 1;
                    }
                    // Conformance across in-process backends of one sweep.
                    if let Target::InProcess(_) = target {
                        match &reference {
                            None => reference = Some((target.name(), fingerprint)),
                            Some((ref_name, ref_fp)) => {
                                if *ref_fp != fingerprint {
                                    eprintln!(
                                        "CONFORMANCE MISMATCH: {} delivers {} but {} delivers {}",
                                        target.name(),
                                        fingerprint,
                                        ref_name,
                                        ref_fp
                                    );
                                    failures += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario run(s) FAILED");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_flag_is_rejected_with_replay() {
        let msg = faults_flag_conflict(true, true, false, false).expect("conflict");
        assert!(msg.contains("replay"), "{msg}");
    }

    #[test]
    fn faults_flag_is_rejected_with_from_snapshot() {
        let msg = faults_flag_conflict(true, false, true, false).expect("conflict");
        assert!(msg.contains("--from-snapshot"), "{msg}");
    }

    #[test]
    fn faults_flag_is_rejected_on_the_threaded_backend() {
        let msg = faults_flag_conflict(true, false, false, true).expect("conflict");
        assert!(msg.contains("threaded"), "{msg}");
    }

    #[test]
    fn faults_flag_alone_is_accepted_and_absence_conflicts_with_nothing() {
        assert!(faults_flag_conflict(true, false, false, false).is_none());
        assert!(faults_flag_conflict(false, true, true, true).is_none());
    }
}
