//! CLI: reproduce the paper's figures and quantitative claims.
//!
//! ```text
//! experiments all                         # run everything (small scale)
//! experiments all --scale full            # the sweeps recorded in EXPERIMENTS.md
//! experiments convergence --seed 7        # one experiment
//! experiments --list                      # available experiments
//! ```

use skippub_harness::{experiments, Report, Scale};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => Scale::Full,
                    Some("small") => Scale::Small,
                    other => {
                        eprintln!("unknown scale {other:?} (use small|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--list" => list = true,
            other if name.is_none() => name = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let registry = experiments::registry();
    if list {
        println!("available experiments:");
        for (n, _) in &registry {
            println!("  {n}");
        }
        return;
    }
    let name = name.unwrap_or_else(|| "all".to_string());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut failures = 0usize;
    let run = |out: &mut dyn Write, n: &str, f: fn(Scale, u64) -> Report| -> bool {
        let started = std::time::Instant::now();
        let report = f(scale, seed);
        writeln!(out, "{report}").expect("stdout");
        writeln!(out, "({n} finished in {:.2?})\n", started.elapsed()).expect("stdout");
        report.ok()
    };
    if name == "all" {
        for (n, f) in registry {
            if !run(&mut out, n, f) {
                failures += 1;
            }
        }
    } else {
        match registry.into_iter().find(|(n, _)| *n == name) {
            Some((n, f)) => {
                if !run(&mut out, n, f) {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment {name:?}; use --list");
                std::process::exit(2);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) FAILED");
        std::process::exit(1);
    }
}
