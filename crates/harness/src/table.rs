//! Minimal aligned text tables for experiment output.

use std::fmt;

/// A titled table with aligned columns.
#[derive(Clone, Debug)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:>w$} |", c, w = width[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub(crate) fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["1".into(), "10.00".into()]);
        t.row(vec!["100".into(), "2.50".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("|   1 | 10.00 |"));
        assert!(s.contains("| 100 |  2.50 |"));
    }
}
