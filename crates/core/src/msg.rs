//! Wire messages of the `BuildSR` + publication protocols.
//!
//! Every message is an action call `⟨label⟩(⟨parameters⟩)` in the paper's
//! model. Node references travel as [`NodeRef`] tuples `(label, id)`
//! exactly as in the pseudo-code — the label half may be **stale** (the
//! paper's "corrupted labels"), which the extended `BuildRing` protocol
//! detects and repairs via [`Msg::Check`].

use skippub_ringmath::Label;
use skippub_sim::NodeId;
use skippub_trie::{NodeSummary, Publication};

/// A remote reference: the paper's tuple `t = (label_t, v_t)`.
///
/// The `id` is authoritative (IDs are never corrupted, §1.1); the `label`
/// is what the *holder believes* the node's label to be and may be wrong
/// in non-legitimate states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeRef {
    /// The believed label of the node.
    pub label: Label,
    /// The node's unique, incorruptible ID.
    pub id: NodeId,
}

impl NodeRef {
    /// Convenience constructor.
    pub fn new(label: Label, id: NodeId) -> Self {
        NodeRef { label, id }
    }
}

/// All protocol messages (one skip ring / one topic).
#[derive(Clone, Debug)]
pub enum Msg {
    // ------------------------- ring / list -------------------------
    /// Periodic neighbourhood check (extended `BuildRing`, §2.2): the
    /// sender introduces itself and states the label it believes the
    /// receiver has; the receiver corrects it if stale.
    Check {
        /// The sender's self-reference (their current label).
        sender: NodeRef,
        /// What the sender believes the *receiver's* label is.
        assumed: Label,
        /// Whether this concerns the cyclic closure edge (`CYC`) or a
        /// list edge (`LIN`).
        cyc: bool,
    },
    /// Introduce / delegate a node reference (`Introduce` / `Linearize`
    /// in Algorithms 1–2). `cyc` marks ring-closure candidates.
    Intro {
        /// The reference being introduced.
        node: NodeRef,
        /// `CYC` vs `LIN` flag.
        cyc: bool,
    },
    /// "Delete all your references to `node`" — sent by unsubscribed or
    /// unlabeled nodes in response to introductions (Lemma 6).
    RemoveConnections {
        /// The node to forget.
        node: NodeId,
    },

    // ------------------------- supervisor --------------------------
    /// `Subscribe(v)` — integrate `v` into the topic (Algorithm 3).
    Subscribe {
        /// The joining subscriber.
        node: NodeId,
    },
    /// `Unsubscribe(v)` — remove `v` from the topic (Algorithm 3).
    Unsubscribe {
        /// The leaving subscriber.
        node: NodeId,
    },
    /// `GetConfiguration(u)` — ask the supervisor to send `u` its correct
    /// configuration. Carries the *target* node, so a subscriber can
    /// request a configuration for a neighbour (§3.2.1 action (iii)).
    ///
    /// `requester` (a §3.3 extension, DESIGN.md §5): when the target is
    /// unknown to the supervisor — e.g. a crashed node evicted by the
    /// failure detector — the supervisor answers the requester with
    /// `RemoveConnections(target)`. This is how knowledge from the *single*
    /// supervisor-side failure detector reaches subscribers still holding
    /// references to dead nodes, at constant per-request cost.
    GetConfiguration {
        /// The node whose configuration should be (re-)sent.
        node: NodeId,
        /// Who asked (None for self-probes).
        requester: Option<NodeId>,
    },
    /// `SetData(pred, label, succ)` — the supervisor hands a subscriber
    /// its configuration. All fields `None` means "you are not part of
    /// this topic": the unsubscribe permission of §4.1 step 4.
    SetData {
        /// Ring predecessor (wrapping), if any.
        pred: Option<NodeRef>,
        /// The subscriber's label, or `None` to reset.
        label: Option<Label>,
        /// Ring successor (wrapping), if any.
        succ: Option<NodeRef>,
    },

    // ------------------------- shortcuts ---------------------------
    /// `IntroduceShortcut(l, v)` — establish/refresh a shortcut slot
    /// (Algorithm 4, §3.2.2).
    IntroduceShortcut {
        /// The shortcut partner being introduced.
        node: NodeRef,
    },
    /// Shortcut-slot label verification: "I believe your label is
    /// `assumed` (you are one of my shortcuts)". Matching labels need no
    /// reply; a mismatch is answered with an `Intro` carrying the correct
    /// label, which purges the stale slot at the sender. One random slot
    /// is probed per timeout, keeping per-process maintenance constant
    /// (the paper's §2.2 label-check extension applied to `E_S`).
    CheckShortcut {
        /// The prober.
        sender: NodeRef,
        /// The label the prober has the receiver filed under.
        assumed: Label,
    },

    // --------------------- §6 token variant -------------------------
    /// The deterministic verification token ([`ProbeMode::Token`],
    /// paper §6 future work): issued by the supervisor to the subscriber
    /// holding label `l(0)`, forwarded rightward along the ring; each
    /// holder requests its configuration. `ttl` bounds the walk so
    /// corrupted right-pointers cannot cycle a token forever.
    ///
    /// [`ProbeMode::Token`]: crate::ProbeMode::Token
    Token {
        /// Issue number; the supervisor ignores stale returns.
        seq: u64,
        /// Remaining hops before the token self-destructs.
        ttl: u32,
    },
    /// The ring maximum (no right neighbour) hands the token back to the
    /// supervisor, which resets its regeneration timer.
    TokenReturn {
        /// Issue number being returned.
        seq: u64,
    },

    // ------------------------ publications -------------------------
    /// `CheckTrie(sender, tuples)` — Patricia-trie anti-entropy probe
    /// (Algorithm 5).
    CheckTrie {
        /// Who to answer to.
        sender: NodeId,
        /// Node summaries to compare.
        tuples: Vec<NodeSummary>,
    },
    /// `CheckAndPublish(sender, tuples, prefix)` — continue checking and
    /// ship everything under `prefix` back to `sender` (Algorithm 5).
    CheckAndPublish {
        /// Who to answer to.
        sender: NodeId,
        /// Zero or one cover summaries to keep checking.
        tuples: Vec<NodeSummary>,
        /// Prefix of publications the sender is missing.
        prefix: skippub_bits::BitStr,
    },
    /// `Publish(P)` — deliver publications (Algorithm 5).
    Publish {
        /// The publications.
        pubs: Vec<Publication>,
    },
    /// `PublishNew(p)` — flood a fresh publication along all edges
    /// (§4.3). The `hops` counter is measurement metadata for experiment
    /// E9 (delivery distance); protocol logic never branches on it.
    PublishNew {
        /// The new publication.
        publication: Publication,
        /// Hops travelled so far (1 = direct from the author).
        hops: u32,
    },
}

impl Msg {
    /// Metrics classification (see [`skippub_sim::Protocol::msg_kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Check { .. } => "Check",
            Msg::Intro { .. } => "Intro",
            Msg::RemoveConnections { .. } => "RemoveConnections",
            Msg::Subscribe { .. } => "Subscribe",
            Msg::Unsubscribe { .. } => "Unsubscribe",
            Msg::GetConfiguration { .. } => "GetConfiguration",
            Msg::SetData { .. } => "SetData",
            Msg::IntroduceShortcut { .. } => "IntroduceShortcut",
            Msg::CheckShortcut { .. } => "CheckShortcut",
            Msg::Token { .. } => "Token",
            Msg::TokenReturn { .. } => "TokenReturn",
            Msg::CheckTrie { .. } => "CheckTrie",
            Msg::CheckAndPublish { .. } => "CheckAndPublish",
            Msg::Publish { .. } => "Publish",
            Msg::PublishNew { .. } => "PublishNew",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let l: Label = "0".parse().unwrap();
        let r = NodeRef::new(l, NodeId(1));
        let msgs = [
            Msg::Check {
                sender: r,
                assumed: l,
                cyc: false,
            },
            Msg::Intro { node: r, cyc: true },
            Msg::RemoveConnections { node: NodeId(1) },
            Msg::Subscribe { node: NodeId(1) },
            Msg::Unsubscribe { node: NodeId(1) },
            Msg::GetConfiguration {
                node: NodeId(1),
                requester: None,
            },
            Msg::SetData {
                pred: None,
                label: None,
                succ: None,
            },
            Msg::IntroduceShortcut { node: r },
            Msg::CheckShortcut {
                sender: r,
                assumed: l,
            },
            Msg::Token { seq: 0, ttl: 1 },
            Msg::TokenReturn { seq: 0 },
            Msg::CheckTrie {
                sender: NodeId(1),
                tuples: vec![],
            },
            Msg::CheckAndPublish {
                sender: NodeId(1),
                tuples: vec![],
                prefix: skippub_bits::BitStr::new(),
            },
            Msg::Publish { pubs: vec![] },
            Msg::PublishNew {
                publication: Publication::new(1, b"x".to_vec()),
                hops: 1,
            },
        ];
        let mut kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }
}
