//! Replicated supervisor: a self-stabilizing replicated state machine
//! over the supervisor database, lifting the paper's "the supervisor
//! never crashes" assumption (ROADMAP item 4).
//!
//! The supervisor of each topic is already a **deterministic state
//! machine**: its state is a pure function of the sequence of semantic
//! operations applied to it (`Subscribe`, `Unsubscribe`,
//! `GetConfiguration`, `Timeout`, `TokenReturn`, `Suspect`) — the
//! handlers draw no randomness and read nothing but their own fields.
//! Replication therefore follows the classic replicated-log
//! construction (cf. Self-Stabilizing Paxos, arXiv 1305.4263): the
//! *primary* replica appends every operation the live supervisor
//! executes to an ordered log ([`ReplicaLog`]), and the backup replicas
//! adopt that log via periodic **anti-entropy** and replay it through
//! the *same* handler code. Log positions are content-addressed with a
//! [`Hash128`] prefix chain, so two replicas can find their longest
//! common prefix by comparing O(log n) hashes and converge from **any**
//! initial log state — including adversarial ones — by truncating to
//! the common prefix and adopting the primary's suffix. This makes the
//! replica layer itself self-stabilizing: corruption of a backup's log
//! is repaired by the next anti-entropy round, exactly like corruption
//! of a subscriber's ring pointers is repaired by BuildSR.
//!
//! **Election** is deterministic: the primary is the live replica with
//! the lowest label (a monotone u64 assigned at spawn). When the
//! failure-detector feed reports the primary crashed
//! ([`ReplicaGroup::fail_primary`]), the lowest surviving label takes
//! over, adopts the longest live log, a fresh replacement replica is
//! spawned (empty log; anti-entropy syncs it), and the new primary's
//! replayed state is installed at the *same* protocol endpoint
//! (virtual-endpoint takeover) — in-flight protocol messages addressed
//! to the supervisor are re-homed without any client-side change and
//! without losing legitimacy.
//!
//! **Agreement** (`all live replicas' digests equal`) is folded into
//! the legitimacy predicate by the backends: a system with a replicated
//! supervisor is legitimate only if the replicas behave as *one logical
//! supervisor*.

use crate::msg::Msg;
use crate::supervisor::Supervisor;
use crate::topics::TopicId;
use skippub_bits::Hash128;
use skippub_sim::NodeId;
use skippub_snapshot::{Snap, SnapError, SnapReader, SnapVec, SnapWriter};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Seed for the throwaway replay contexts. Supervisor handlers draw no
/// randomness, so the value is irrelevant — it only has to be fixed.
const REPLAY_SEED: u64 = 0x5EED_5EED;

/// One supervisor-semantic operation, without its topic tag. This is
/// what an instrumented [`Supervisor`] pushes to its outbox; the
/// backend draining the outbox knows which topic's supervisor it
/// drained and wraps the kind into a topic-tagged [`RepOp`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepOpKind {
    /// `Subscribe(v)` reached the supervisor.
    Subscribe {
        /// Subscribing node.
        v: NodeId,
    },
    /// `Unsubscribe(v)` reached the supervisor.
    Unsubscribe {
        /// Leaving node.
        v: NodeId,
    },
    /// `GetConfiguration(u)` reached the supervisor.
    GetConfig {
        /// Node whose configuration is requested.
        u: NodeId,
        /// Original requester, when it differs from `u`.
        requester: Option<NodeId>,
    },
    /// The supervisor's periodic `Timeout` fired.
    Timeout,
    /// The §6 verification token came home.
    TokenReturn {
        /// Token issue number.
        seq: u64,
    },
    /// The failure detector reported `v` crashed.
    Suspect {
        /// Suspected node.
        v: NodeId,
    },
}

/// A topic-tagged supervisor operation: one log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepOp {
    /// Topic whose supervisor instance executed the operation.
    pub topic: TopicId,
    /// The operation itself.
    pub kind: RepOpKind,
}

impl RepOp {
    /// Stable byte encoding used for the content-addressed prefix chain.
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.topic.0.to_le_bytes());
        match &self.kind {
            RepOpKind::Subscribe { v } => {
                buf.push(0);
                buf.extend_from_slice(&v.0.to_le_bytes());
            }
            RepOpKind::Unsubscribe { v } => {
                buf.push(1);
                buf.extend_from_slice(&v.0.to_le_bytes());
            }
            RepOpKind::GetConfig { u, requester } => {
                buf.push(2);
                buf.extend_from_slice(&u.0.to_le_bytes());
                match requester {
                    None => buf.push(0),
                    Some(r) => {
                        buf.push(1);
                        buf.extend_from_slice(&r.0.to_le_bytes());
                    }
                }
            }
            RepOpKind::Timeout => buf.push(3),
            RepOpKind::TokenReturn { seq } => {
                buf.push(4);
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            RepOpKind::Suspect { v } => {
                buf.push(5);
                buf.extend_from_slice(&v.0.to_le_bytes());
            }
        }
    }
}

impl Snap for RepOpKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            RepOpKind::Subscribe { v } => {
                w.put_u64(0);
                v.save(w);
            }
            RepOpKind::Unsubscribe { v } => {
                w.put_u64(1);
                v.save(w);
            }
            RepOpKind::GetConfig { u, requester } => {
                w.put_u64(2);
                u.save(w);
                requester.save(w);
            }
            RepOpKind::Timeout => w.put_u64(3),
            RepOpKind::TokenReturn { seq } => {
                w.put_u64(4);
                seq.save(w);
            }
            RepOpKind::Suspect { v } => {
                w.put_u64(5);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u64()? {
            0 => RepOpKind::Subscribe { v: Snap::load(r)? },
            1 => RepOpKind::Unsubscribe { v: Snap::load(r)? },
            2 => RepOpKind::GetConfig {
                u: Snap::load(r)?,
                requester: Snap::load(r)?,
            },
            3 => RepOpKind::Timeout,
            4 => RepOpKind::TokenReturn { seq: Snap::load(r)? },
            5 => RepOpKind::Suspect { v: Snap::load(r)? },
            n => return Err(SnapError::Malformed(format!("unknown rep-op tag {n}"))),
        })
    }
}

impl Snap for RepOp {
    fn save(&self, w: &mut SnapWriter) {
        self.topic.save(w);
        self.kind.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RepOp {
            topic: Snap::load(r)?,
            kind: Snap::load(r)?,
        })
    }
}

/// An ordered operation log with a content-addressed prefix chain:
/// `hash[i] = H(hash[i-1] ‖ encode(op[i]))`. Equal hashes at index `i`
/// imply equal prefixes `ops[..=i]`, so the longest common prefix of
/// two logs is found by comparing hashes (monotone ⇒ binary search).
#[derive(Clone, Debug, Default)]
pub struct ReplicaLog {
    ops: Vec<RepOp>,
    hashes: Vec<Hash128>,
}

impl ReplicaLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations in the log.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the log holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, oldest first.
    pub fn ops(&self) -> &[RepOp] {
        &self.ops
    }

    /// Hash of the whole log (zero for the empty log). Two logs with
    /// equal heads and equal lengths are equal.
    pub fn head(&self) -> Hash128 {
        self.hashes.last().copied().unwrap_or(Hash128(0))
    }

    /// Appends one operation, extending the prefix chain.
    pub fn push(&mut self, op: RepOp) {
        let mut buf = Vec::with_capacity(48);
        buf.extend_from_slice(&self.head().0.to_le_bytes());
        op.encode(&mut buf);
        self.hashes.push(Hash128::of_bytes(&buf));
        self.ops.push(op);
    }

    /// Drops every operation from index `n` on.
    pub fn truncate(&mut self, n: usize) {
        self.ops.truncate(n);
        self.hashes.truncate(n);
    }

    /// Length of the longest common prefix with `other`, computed by
    /// comparing chain hashes. Fast path: when one log extends the
    /// other, a single hash comparison suffices.
    pub fn lcp(&self, other: &ReplicaLog) -> usize {
        let max = self.len().min(other.len());
        if max == 0 {
            return 0;
        }
        if self.hashes[max - 1] == other.hashes[max - 1] {
            return max;
        }
        // Prefix equality is monotone in the index: binary-search the
        // largest i with equal hashes.
        let (mut lo, mut hi) = (0usize, max - 1); // lcp in [lo, hi)
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.hashes[mid] == other.hashes[mid] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl Snap for ReplicaLog {
    fn save(&self, w: &mut SnapWriter) {
        // Hashes are recomputed on load — saving them would only add
        // bytes that must agree with the ops anyway.
        SnapVec(self.ops.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let ops: Vec<RepOp> = SnapVec::load(r)?.0;
        let mut log = ReplicaLog::new();
        for op in ops {
            log.push(op);
        }
        Ok(log)
    }
}

/// Applies one logged operation to a replica's state map by running the
/// *same* supervisor handler the live endpoint ran. Sends produced by
/// the handler are dropped: backups simulate, only the live endpoint
/// talks to the network.
fn apply_rep_op(
    state: &mut BTreeMap<TopicId, Supervisor>,
    sup_id: NodeId,
    token_enabled: bool,
    op: &RepOp,
) {
    let sup = state.entry(op.topic).or_insert_with(|| {
        let mut s = Supervisor::new(sup_id);
        s.token_enabled = token_enabled;
        s
    });
    let kind = op.kind.clone();
    let _dropped: Vec<(NodeId, Msg)> =
        skippub_sim::testing::run_handler(sup_id, REPLAY_SEED, |ctx| match kind {
            RepOpKind::Subscribe { v } => sup.on_subscribe(ctx, v),
            RepOpKind::Unsubscribe { v } => sup.on_unsubscribe(ctx, v),
            RepOpKind::GetConfig { u, requester } => sup.on_get_configuration(ctx, u, requester),
            RepOpKind::Timeout => sup.timeout(ctx),
            RepOpKind::TokenReturn { seq } => sup.on_token_return(seq),
            RepOpKind::Suspect { v } => sup.suspect(v),
        });
}

/// Textual digest of one topic-supervisor state; replicas agree exactly
/// when these strings (hashed) agree for every topic.
fn write_sup_digest(out: &mut String, topic: TopicId, s: &Supervisor) {
    let _ = write!(
        out,
        "t{}:id={};next={};epoch={};tok={},{},{},{};",
        topic.0, s.id.0, s.next, s.db_epoch, s.token_enabled, s.token_seq, s.token_outstanding,
        s.token_age
    );
    for (l, v) in &s.database {
        let _ = write!(out, "{l:?}->{v:?};");
    }
    for v in &s.suspected {
        let _ = write!(out, "sus{};", v.0);
    }
    let c = &s.counters;
    let _ = write!(
        out,
        "c={},{},{},{},{},{},{}|",
        c.roundrobin_configs,
        c.subscribe_msgs,
        c.unsubscribe_msgs,
        c.repairs,
        c.evictions,
        c.tokens_issued,
        c.tokens_returned
    );
}

/// One supervisor replica: a log plus the state replayed from it.
#[derive(Clone, Debug)]
pub struct SupervisorReplica {
    /// Election label: the live replica with the lowest label is the
    /// primary. Monotone across spawns, never reused.
    pub label: u64,
    /// False once the failure detector reported this replica crashed.
    pub alive: bool,
    /// The replicated operation log.
    pub log: ReplicaLog,
    /// State machine replayed from `log[..applied]`.
    state: BTreeMap<TopicId, Supervisor>,
    /// Replay cursor into `log`.
    applied: usize,
    /// Cached digest of `state`; cleared whenever `state` moves.
    digest: RefCell<Option<Hash128>>,
}

impl SupervisorReplica {
    fn new(label: u64) -> Self {
        SupervisorReplica {
            label,
            alive: true,
            log: ReplicaLog::new(),
            state: BTreeMap::new(),
            applied: 0,
            digest: RefCell::new(None),
        }
    }

    /// Replays any unapplied log suffix. O(new ops).
    fn catch_up(&mut self, sup_id: NodeId, token_enabled: bool) {
        if self.applied >= self.log.len() {
            return;
        }
        for i in self.applied..self.log.len() {
            apply_rep_op(&mut self.state, sup_id, token_enabled, &self.log.ops()[i]);
        }
        self.applied = self.log.len();
        *self.digest.borrow_mut() = None;
    }

    /// Forgets all replayed state (used when the log was truncated below
    /// the replay cursor — replay restarts from the beginning, which is
    /// exactly how the replica recovers from an adversarial log).
    fn reset_state(&mut self) {
        self.state.clear();
        self.applied = 0;
        *self.digest.borrow_mut() = None;
    }

    /// Digest of the replayed state (cached until the state moves).
    pub fn digest(&self) -> Hash128 {
        if let Some(h) = *self.digest.borrow() {
            return h;
        }
        let mut text = String::new();
        for (topic, sup) in &self.state {
            write_sup_digest(&mut text, *topic, sup);
        }
        let h = Hash128::of_bytes(text.as_bytes());
        *self.digest.borrow_mut() = Some(h);
        h
    }

    /// The replayed per-topic supervisor states.
    pub fn state(&self) -> &BTreeMap<TopicId, Supervisor> {
        &self.state
    }
}

impl Snap for SupervisorReplica {
    fn save(&self, w: &mut SnapWriter) {
        self.label.save(w);
        self.alive.save(w);
        self.log.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let label = Snap::load(r)?;
        let alive = Snap::load(r)?;
        let log = Snap::load(r)?;
        Ok(SupervisorReplica {
            label,
            alive,
            log,
            state: BTreeMap::new(),
            applied: 0,
            digest: RefCell::new(None),
        })
    }
}

/// A group of supervisor replicas behind one logical supervisor
/// endpoint. `k = 1` models the paper's original assumption (a single,
/// never-replaced supervisor); `k ≥ 2` tolerates primary crashes.
#[derive(Clone, Debug)]
pub struct ReplicaGroup {
    /// The logical supervisor endpoint the group shadows.
    sup_id: NodeId,
    /// Seed value for `token_enabled` on replayed topic supervisors
    /// (mirrors how the backend constructs its live supervisor).
    token_enabled: bool,
    replicas: Vec<SupervisorReplica>,
    /// Next election label to assign; monotone, never reused.
    next_label: u64,
    /// Label of the current primary.
    primary: u64,
    /// Bumped on every observable change (log growth, anti-entropy
    /// repair, failover). Lets checkers cache agreement verdicts.
    version: u64,
    /// Completed primary failovers.
    failovers: u64,
}

impl ReplicaGroup {
    /// A fresh group of `k ≥ 1` replicas with empty logs; replica 0 is
    /// the initial primary.
    pub fn new(k: usize, sup_id: NodeId, token_enabled: bool) -> Self {
        let k = k.max(1);
        ReplicaGroup {
            sup_id,
            token_enabled,
            replicas: (0..k as u64).map(SupervisorReplica::new).collect(),
            next_label: k as u64,
            primary: 0,
            version: 0,
            failovers: 0,
        }
    }

    /// Replica count (live + crashed).
    pub fn k(&self) -> usize {
        self.replicas.len()
    }

    /// Number of live replicas.
    pub fn live_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.alive).count()
    }

    /// Label of the current primary.
    pub fn primary_label(&self) -> u64 {
        self.primary
    }

    /// Completed failovers.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Monotone change counter (for cached agreement checks).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The replicas (test/diagnostic access).
    pub fn replicas(&self) -> &[SupervisorReplica] {
        &self.replicas
    }

    /// Whether the group can survive a primary crash right now.
    pub fn can_fail_over(&self) -> bool {
        self.live_count() >= 2
    }

    fn primary_index(&self) -> usize {
        self.replicas
            .iter()
            .position(|r| r.label == self.primary)
            .expect("primary label always present")
    }

    /// Appends operations drained from the live supervisor of `topic`
    /// to the primary's log.
    pub fn record_topic(&mut self, topic: TopicId, kinds: Vec<RepOpKind>) {
        if kinds.is_empty() {
            return;
        }
        let idx = self.primary_index();
        for kind in kinds {
            self.replicas[idx].log.push(RepOp { topic, kind });
        }
        self.version += 1;
    }

    /// One anti-entropy round: every live backup adopts the primary's
    /// log (truncate to the longest common prefix, then append the
    /// primary's suffix), and every live replica replays its unapplied
    /// suffix. Converges from any initial log state — an adversarial
    /// backup log is repaired in one round.
    pub fn anti_entropy(&mut self) {
        let pidx = self.primary_index();
        let plen = self.replicas[pidx].log.len();
        let mut changed = false;
        for i in 0..self.replicas.len() {
            if i == pidx || !self.replicas[i].alive {
                continue;
            }
            let lcp = self.replicas[i].log.lcp(&self.replicas[pidx].log);
            if lcp < self.replicas[i].log.len() {
                // Divergent suffix: drop it (the primary's order wins).
                self.replicas[i].log.truncate(lcp);
                if self.replicas[i].applied > lcp {
                    self.replicas[i].reset_state();
                }
                changed = true;
            }
            if lcp < plen {
                for j in lcp..plen {
                    let op = self.replicas[pidx].log.ops()[j].clone();
                    self.replicas[i].log.push(op);
                }
                changed = true;
            }
        }
        let (sup_id, token_enabled) = (self.sup_id, self.token_enabled);
        for r in &mut self.replicas {
            if r.alive {
                r.catch_up(sup_id, token_enabled);
            }
        }
        if changed {
            self.version += 1;
        }
    }

    /// Overwrites replica `idx`'s log (adversarial initial state for
    /// tests): state is forgotten and replayed from the injected log.
    pub fn inject_log(&mut self, idx: usize, ops: Vec<RepOp>) {
        let r = &mut self.replicas[idx];
        r.log = ReplicaLog::new();
        for op in ops {
            r.log.push(op);
        }
        r.reset_state();
        let (sup_id, token_enabled) = (self.sup_id, self.token_enabled);
        self.replicas[idx].catch_up(sup_id, token_enabled);
        self.version += 1;
    }

    /// Failure-detector input: the current primary crashed. Elects the
    /// live replica with the lowest label, lets it adopt the longest
    /// live log, and spawns a fresh replacement replica (synced by the
    /// next anti-entropy round). Returns `false` — and changes nothing —
    /// when no backup is live (`k = 1` keeps the paper's "supervisor
    /// never crashes" reading: such reports are uniform no-ops).
    pub fn fail_primary(&mut self) -> bool {
        if !self.can_fail_over() {
            return false;
        }
        let pidx = self.primary_index();
        self.replicas[pidx].alive = false;
        // Deterministic election: lowest live label.
        let new_primary = self
            .replicas
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.label)
            .min()
            .expect("can_fail_over checked a live backup exists");
        self.primary = new_primary;
        // The new primary adopts the longest live log (all live logs are
        // prefixes of each other after anti-entropy; this covers the
        // window where a longer sibling exists).
        let longest = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive)
            .max_by_key(|(_, r)| r.log.len())
            .map(|(i, _)| i)
            .expect("live replica exists");
        let nidx = self.primary_index();
        if self.replicas[longest].log.len() > self.replicas[nidx].log.len() {
            let lcp = self.replicas[nidx].log.lcp(&self.replicas[longest].log);
            if lcp < self.replicas[nidx].log.len() {
                self.replicas[nidx].log.truncate(lcp);
                if self.replicas[nidx].applied > lcp {
                    self.replicas[nidx].reset_state();
                }
            }
            for j in lcp..self.replicas[longest].log.len() {
                let op = self.replicas[longest].log.ops()[j].clone();
                self.replicas[nidx].log.push(op);
            }
        }
        // Spawn the replacement so repeated primary crashes stay
        // survivable; its empty log is synced by anti-entropy.
        let label = self.next_label;
        self.next_label += 1;
        self.replicas.push(SupervisorReplica::new(label));
        self.failovers += 1;
        self.version += 1;
        self.anti_entropy();
        true
    }

    /// All live replicas hold identical replayed states. With one live
    /// replica this is trivially true.
    pub fn agreement(&self) -> bool {
        let mut digests = self.replicas.iter().filter(|r| r.alive).map(|r| r.digest());
        match digests.next() {
            None => false,
            Some(first) => digests.all(|d| d == first),
        }
    }

    /// Combined digest of the live replicas (diagnostics / snapshots).
    pub fn group_digest(&self) -> Hash128 {
        let mut buf = Vec::new();
        for r in self.replicas.iter().filter(|r| r.alive) {
            buf.extend_from_slice(&r.label.to_le_bytes());
            buf.extend_from_slice(&r.digest().0.to_le_bytes());
        }
        Hash128::of_bytes(&buf)
    }

    /// Clones of the new primary's replayed topic supervisors, marked
    /// live (`replicated = true`, empty outbox) — ready to install at
    /// the protocol endpoint after a failover.
    pub fn primary_topics(&self) -> BTreeMap<TopicId, Supervisor> {
        let pidx = self.primary_index();
        self.replicas[pidx]
            .state
            .iter()
            .map(|(t, s)| {
                let mut s = s.clone();
                s.replicated = true;
                s.outbox.clear();
                (*t, s)
            })
            .collect()
    }

    /// Like [`ReplicaGroup::primary_topics`] for a single topic; a
    /// fresh supervisor when the log never touched `topic`.
    pub fn primary_topic(&self, topic: TopicId) -> Supervisor {
        self.primary_topics().remove(&topic).unwrap_or_else(|| {
            let mut s = Supervisor::new(self.sup_id);
            s.token_enabled = self.token_enabled;
            s.replicated = true;
            s
        })
    }
}

impl Snap for ReplicaGroup {
    fn save(&self, w: &mut SnapWriter) {
        self.sup_id.save(w);
        self.token_enabled.save(w);
        self.next_label.save(w);
        self.primary.save(w);
        self.version.save(w);
        self.failovers.save(w);
        SnapVec(self.replicas.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let sup_id = Snap::load(r)?;
        let token_enabled = Snap::load(r)?;
        let next_label = Snap::load(r)?;
        let primary = Snap::load(r)?;
        let version = Snap::load(r)?;
        let failovers = Snap::load(r)?;
        let replicas: Vec<SupervisorReplica> = SnapVec::load(r)?.0;
        let mut g = ReplicaGroup {
            sup_id,
            token_enabled,
            replicas,
            next_label,
            primary,
            version,
            failovers,
        };
        if g.replicas.is_empty() || !g.replicas.iter().any(|x| x.label == g.primary) {
            return Err(SnapError::Malformed("replica group without primary".into()));
        }
        // Rebuild replayed state; the log is the durable truth.
        let (sup_id, token_enabled) = (g.sup_id, g.token_enabled);
        for rep in &mut g.replicas {
            if rep.alive {
                rep.catch_up(sup_id, token_enabled);
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(topic: u32, kind: RepOpKind) -> RepOp {
        RepOp {
            topic: TopicId(topic),
            kind,
        }
    }

    fn sub(v: u64) -> RepOpKind {
        RepOpKind::Subscribe { v: NodeId(v) }
    }

    #[test]
    fn log_prefix_hashes_detect_divergence() {
        let mut a = ReplicaLog::new();
        let mut b = ReplicaLog::new();
        for i in 1..=5 {
            a.push(op(0, sub(i)));
            b.push(op(0, sub(i)));
        }
        assert_eq!(a.lcp(&b), 5);
        assert_eq!(a.head(), b.head());
        b.push(op(0, sub(99)));
        assert_eq!(a.lcp(&b), 5, "a is a prefix of b");
        let mut c = ReplicaLog::new();
        c.push(op(0, sub(1)));
        c.push(op(0, sub(42))); // diverges at index 1
        c.push(op(0, sub(3)));
        assert_eq!(a.lcp(&c), 1);
        assert_eq!(c.lcp(&a), 1);
        assert_eq!(a.lcp(&ReplicaLog::new()), 0);
    }

    #[test]
    fn record_and_anti_entropy_converges_backups() {
        let mut g = ReplicaGroup::new(3, NodeId(0), false);
        g.record_topic(TopicId(0), vec![sub(1), sub(2), sub(3)]);
        g.anti_entropy();
        assert!(g.agreement());
        for r in g.replicas() {
            assert_eq!(r.log.len(), 3);
            assert_eq!(r.state()[&TopicId(0)].n(), 3);
        }
        // Replays produce identical epochs and counters, not just DBs.
        let d0 = g.replicas()[0].digest();
        assert!(g.replicas().iter().all(|r| r.digest() == d0));
    }

    #[test]
    fn adversarial_backup_log_is_repaired() {
        let mut g = ReplicaGroup::new(3, NodeId(0), false);
        g.record_topic(TopicId(0), vec![sub(1), sub(2)]);
        g.anti_entropy();
        // Corrupt backup 2 with a totally unrelated log.
        g.inject_log(
            2,
            vec![op(7, sub(50)), op(7, sub(51)), op(7, sub(52)), op(7, sub(53))],
        );
        assert!(!g.agreement(), "corruption must be visible");
        g.anti_entropy();
        assert!(g.agreement(), "one round repairs any backup log");
        assert_eq!(g.replicas()[2].log.len(), 2);
    }

    #[test]
    fn failover_elects_lowest_live_label_and_spawns_replacement() {
        let mut g = ReplicaGroup::new(3, NodeId(0), false);
        g.record_topic(TopicId(0), vec![sub(1), sub(2), sub(3)]);
        g.anti_entropy();
        assert_eq!(g.primary_label(), 0);
        assert!(g.fail_primary());
        assert_eq!(g.primary_label(), 1, "lowest surviving label");
        assert_eq!(g.k(), 4, "replacement spawned");
        assert_eq!(g.live_count(), 3);
        assert_eq!(g.failovers(), 1);
        assert!(g.agreement(), "replacement synced by anti-entropy");
        // The installed state matches what the old primary held.
        let st = g.primary_topic(TopicId(0));
        assert_eq!(st.n(), 3);
        assert!(st.replicated);
        // Second failover: labels 2,3 remain; 2 wins.
        assert!(g.fail_primary());
        assert_eq!(g.primary_label(), 2);
    }

    #[test]
    fn single_replica_group_never_fails_over() {
        let mut g = ReplicaGroup::new(1, NodeId(0), false);
        g.record_topic(TopicId(0), vec![sub(1)]);
        g.anti_entropy();
        assert!(!g.can_fail_over());
        assert!(!g.fail_primary(), "k = 1 keeps the paper's assumption");
        assert_eq!(g.failovers(), 0);
        assert_eq!(g.live_count(), 1);
        assert!(g.agreement(), "a single live replica agrees trivially");
    }

    #[test]
    fn replay_matches_a_directly_driven_supervisor() {
        use crate::msg::Msg;
        // Drive a live supervisor through a mixed handler sequence…
        let mut live = Supervisor::new(NodeId(0));
        live.replicated = true;
        let mut kinds = Vec::new();
        let mut run = |s: &mut Supervisor, k: RepOpKind| {
            let kk = k.clone();
            let _: Vec<(NodeId, Msg)> =
                skippub_sim::testing::run_handler(NodeId(0), 1, |ctx| match kk {
                    RepOpKind::Subscribe { v } => s.on_subscribe(ctx, v),
                    RepOpKind::Unsubscribe { v } => s.on_unsubscribe(ctx, v),
                    RepOpKind::GetConfig { u, requester } => {
                        s.on_get_configuration(ctx, u, requester)
                    }
                    RepOpKind::Timeout => s.timeout(ctx),
                    RepOpKind::TokenReturn { seq } => s.on_token_return(seq),
                    RepOpKind::Suspect { v } => s.suspect(v),
                });
            kinds.push(k);
        };
        for v in 1..=5 {
            run(&mut live, sub(v));
        }
        run(&mut live, RepOpKind::Timeout);
        run(&mut live, RepOpKind::Unsubscribe { v: NodeId(2) });
        run(&mut live, RepOpKind::Suspect { v: NodeId(3) });
        run(&mut live, RepOpKind::Timeout);
        run(
            &mut live,
            RepOpKind::GetConfig {
                u: NodeId(4),
                requester: Some(NodeId(5)),
            },
        );
        // …and the instrumented outbox must carry exactly that sequence.
        assert_eq!(live.outbox, kinds);
        // A replica replaying the log reaches the identical state.
        let mut g = ReplicaGroup::new(2, NodeId(0), false);
        g.record_topic(TopicId(0), live.outbox.clone());
        g.anti_entropy();
        let replayed = g.primary_topic(TopicId(0));
        assert_eq!(replayed.database, live.database);
        assert_eq!(replayed.next, live.next);
        assert_eq!(replayed.db_epoch, live.db_epoch);
        assert_eq!(replayed.suspected, live.suspected);
        assert_eq!(replayed.counters.evictions, live.counters.evictions);
        assert_eq!(replayed.counters.repairs, live.counters.repairs);
    }

    #[test]
    fn group_snapshot_round_trips_byte_exactly() {
        let mut g = ReplicaGroup::new(3, NodeId(0), true);
        g.record_topic(TopicId(0), vec![sub(1), sub(2)]);
        g.record_topic(TopicId(1), vec![sub(3), RepOpKind::Timeout]);
        g.anti_entropy();
        g.fail_primary();
        let mut w = SnapWriter::new();
        g.save(&mut w);
        let snap = w.finish("replica-test");
        let mut r = snap.reader().expect("reader");
        let g2 = ReplicaGroup::load(&mut r).expect("load");
        r.finish().expect("fully consumed");
        assert_eq!(g2.primary_label(), g.primary_label());
        assert_eq!(g2.failovers(), g.failovers());
        assert_eq!(g2.group_digest(), g.group_digest());
        let mut w2 = SnapWriter::new();
        g2.save(&mut w2);
        assert_eq!(
            w2.finish("replica-test").as_text(),
            snap.as_text(),
            "re-save must be byte-exact"
        );
    }
}
