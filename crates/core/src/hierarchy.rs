//! Hierarchical topics (§1.3): "better scalability can be achieved by
//! organizing topics in a hierarchical manner".
//!
//! This layer gives the flat multi-topic system of [`crate::topics`] a
//! path-structured namespace (`"sports/football/premier"`). Subscribing
//! to an interior path subscribes to its **entire subtree** — including
//! topics created later — while each concrete path still maps to its own
//! independent `BuildSR` skip ring, so dissemination cost stays
//! per-subtopic.
//!
//! The directory itself is supervisor-side state in a real deployment
//! (the paper has the supervisor predefine topics); here it is a plain
//! data structure the embedding drives, like the consistent-hashing map
//! in [`crate::sharding`].

use crate::topics::{MultiActor, TopicId};
use skippub_sim::{NodeId, World};
use std::collections::{BTreeMap, BTreeSet};

/// A path-structured topic directory with subtree subscriptions.
#[derive(Clone, Debug, Default)]
pub struct TopicDirectory {
    next: u32,
    ids: BTreeMap<String, TopicId>,
    /// Clients subscribed to whole subtrees, by subtree root path.
    subtree_subs: BTreeMap<String, BTreeSet<NodeId>>,
}

fn normalize(path: &str) -> String {
    path.trim_matches('/').to_string()
}

fn is_under(root: &str, path: &str) -> bool {
    root.is_empty() || path == root || path.starts_with(&format!("{root}/"))
}

impl TopicDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the topic for `path`. Returns the
    /// topic plus the clients that must auto-join because they subscribe
    /// to an enclosing subtree.
    pub fn topic(&mut self, path: &str) -> (TopicId, Vec<NodeId>) {
        let path = normalize(&path.to_ascii_lowercase());
        assert!(!path.is_empty(), "topic path must be non-empty");
        if let Some(&id) = self.ids.get(&path) {
            return (id, Vec::new());
        }
        let id = TopicId(self.next);
        self.next += 1;
        self.ids.insert(path.clone(), id);
        // Subtree subscribers of any ancestor must join the new topic.
        let mut joiners: BTreeSet<NodeId> = BTreeSet::new();
        for (root, subs) in &self.subtree_subs {
            if is_under(root, &path) {
                joiners.extend(subs.iter().copied());
            }
        }
        (id, joiners.into_iter().collect())
    }

    /// Looks up an existing topic.
    pub fn lookup(&self, path: &str) -> Option<TopicId> {
        self.ids
            .get(&normalize(&path.to_ascii_lowercase()))
            .copied()
    }

    /// All existing topics under `root` (inclusive).
    pub fn subtree(&self, root: &str) -> Vec<(String, TopicId)> {
        let root = normalize(&root.to_ascii_lowercase());
        self.ids
            .iter()
            .filter(|(p, _)| is_under(&root, p))
            .map(|(p, id)| (p.clone(), *id))
            .collect()
    }

    /// Records a subtree subscription and returns the topics the client
    /// must join *now* (later creations are returned by [`Self::topic`]).
    pub fn subscribe_subtree(&mut self, client: NodeId, root: &str) -> Vec<TopicId> {
        let root_n = normalize(&root.to_ascii_lowercase());
        self.subtree_subs
            .entry(root_n.clone())
            .or_default()
            .insert(client);
        self.subtree(&root_n)
            .into_iter()
            .map(|(_, id)| id)
            .collect()
    }

    /// Drops a subtree subscription; returns the topics to leave.
    pub fn unsubscribe_subtree(&mut self, client: NodeId, root: &str) -> Vec<TopicId> {
        let root_n = normalize(&root.to_ascii_lowercase());
        if let Some(subs) = self.subtree_subs.get_mut(&root_n) {
            subs.remove(&client);
            if subs.is_empty() {
                self.subtree_subs.remove(&root_n);
            }
        }
        // Leave only topics not covered by another of the client's roots.
        let other_roots: Vec<String> = self
            .subtree_subs
            .iter()
            .filter(|(_, subs)| subs.contains(&client))
            .map(|(r, _)| r.clone())
            .collect();
        self.subtree(&root_n)
            .into_iter()
            .filter(|(p, _)| !other_roots.iter().any(|r| is_under(r, p)))
            .map(|(_, id)| id)
            .collect()
    }

    /// Number of distinct topics.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no topics exist yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Convenience driver for a hierarchical deployment over a
/// [`World<MultiActor>`]: keeps the directory and the per-client topic
/// instances in step.
pub struct HierarchicalPubSub {
    /// The directory (supervisor-side state in a real deployment).
    pub directory: TopicDirectory,
}

impl Default for HierarchicalPubSub {
    fn default() -> Self {
        Self::new()
    }
}

impl HierarchicalPubSub {
    /// New empty hierarchy.
    pub fn new() -> Self {
        HierarchicalPubSub {
            directory: TopicDirectory::new(),
        }
    }

    /// Subscribes `client` to the subtree rooted at `path`.
    pub fn subscribe(&mut self, world: &mut World<MultiActor>, client: NodeId, path: &str) {
        for t in self.directory.subscribe_subtree(client, path) {
            if let Some(c) = world.node_mut(client) {
                c.join_topic(t);
            }
        }
    }

    /// Unsubscribes `client` from the subtree rooted at `path`.
    pub fn unsubscribe(&mut self, world: &mut World<MultiActor>, client: NodeId, path: &str) {
        for t in self.directory.unsubscribe_subtree(client, path) {
            if let Some(c) = world.node_mut(client) {
                c.leave_topic(t);
            }
        }
    }

    /// Resolves `path` for publishing, auto-joining every subtree
    /// subscriber of the (possibly new) topic. Returns the topic.
    pub fn resolve_for_publish(&mut self, world: &mut World<MultiActor>, path: &str) -> TopicId {
        let (topic, joiners) = self.directory.topic(path);
        for j in joiners {
            if let Some(c) = world.node_mut(j) {
                c.join_topic(topic);
            }
        }
        topic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolConfig;
    use skippub_trie::Publication;

    const SUP: NodeId = NodeId(0);

    #[test]
    fn directory_paths_and_subtrees() {
        let mut d = TopicDirectory::new();
        let (a, _) = d.topic("Sports/Football");
        let (b, _) = d.topic("sports/tennis");
        let (c, _) = d.topic("news");
        assert_ne!(a, b);
        assert_eq!(d.lookup("SPORTS/FOOTBALL"), Some(a));
        let sub = d.subtree("sports");
        assert_eq!(sub.len(), 2);
        assert!(!sub.iter().any(|(_, id)| *id == c));
        assert_eq!(d.subtree("").len(), 3, "empty root covers everything");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn duplicate_topic_is_stable() {
        let mut d = TopicDirectory::new();
        let (a, _) = d.topic("x/y");
        let (b, joiners) = d.topic("x/y");
        assert_eq!(a, b);
        assert!(joiners.is_empty());
    }

    #[test]
    fn subtree_subscription_covers_future_topics() {
        let mut d = TopicDirectory::new();
        d.topic("sports/football");
        let now = d.subscribe_subtree(NodeId(5), "sports");
        assert_eq!(now.len(), 1);
        // A topic created later under the subtree lists the subscriber.
        let (_, joiners) = d.topic("sports/cricket");
        assert_eq!(joiners, vec![NodeId(5)]);
        // Outside the subtree: no auto-join.
        let (_, joiners) = d.topic("politics/local");
        assert!(joiners.is_empty());
    }

    #[test]
    fn unsubscribe_respects_overlapping_roots() {
        let mut d = TopicDirectory::new();
        d.topic("a/b/c");
        d.topic("a/x");
        d.subscribe_subtree(NodeId(1), "a");
        d.subscribe_subtree(NodeId(1), "a/b");
        // Leaving "a" must keep "a/b/c" (still covered by root "a/b").
        let leave = d.unsubscribe_subtree(NodeId(1), "a");
        let leave_paths: Vec<TopicId> = leave;
        assert_eq!(leave_paths, vec![d.lookup("a/x").unwrap()]);
    }

    #[test]
    fn end_to_end_subtree_delivery() {
        let mut world: World<MultiActor> = World::new(31);
        world.add_node(SUP, MultiActor::new_supervisor(SUP));
        let cfg = ProtocolConfig::default();
        for i in 1..=3u64 {
            world.add_node(NodeId(i), MultiActor::new_client(NodeId(i), SUP, cfg));
        }
        let mut h = HierarchicalPubSub::new();
        // Client 1 follows all of sports; client 2 only football; client 3
        // follows politics.
        h.directory.topic("sports/football");
        h.subscribe(&mut world, NodeId(1), "sports");
        h.subscribe(&mut world, NodeId(2), "sports/football");
        h.directory.topic("politics");
        h.subscribe(&mut world, NodeId(3), "politics");
        for _ in 0..150 {
            world.run_round();
        }
        // A brand-new subtopic appears; client 1 auto-joins, client 2
        // does not.
        let tennis = h.resolve_for_publish(&mut world, "sports/tennis");
        for _ in 0..150 {
            world.run_round();
        }
        // Publish into tennis from client 1.
        world.with_node(NodeId(1), |actor, _| {
            let s = actor.topic_subscriber_mut(tennis).expect("auto-joined");
            s.trie.insert(Publication::new(1, b"ace".to_vec()));
        });
        for _ in 0..150 {
            world.run_round();
        }
        assert_eq!(
            world
                .node(NodeId(1))
                .unwrap()
                .topic_subscriber(tennis)
                .map(|s| s.trie.len()),
            Some(1)
        );
        assert!(
            world
                .node(NodeId(2))
                .unwrap()
                .topic_subscriber(tennis)
                .is_none(),
            "football-only client must not join tennis"
        );
        assert!(world
            .node(NodeId(3))
            .unwrap()
            .topic_subscriber(tennis)
            .is_none());
    }
}
