//! The [`Actor`] enum: one process of the system — either the supervisor
//! or a subscriber — implementing the simulator's [`Protocol`] trait.
//!
//! Stray messages (a subscriber receiving `Subscribe`, the supervisor
//! receiving `Check`, …) are possible in corrupted initial states; they
//! are consumed without effect, matching the paper's requirement that a
//! corrupted message "cannot trigger an infinite chain of corrupted
//! messages" (Theorem 8 proof).

use crate::msg::Msg;
use crate::subscriber::Subscriber;
use crate::supervisor::Supervisor;
use skippub_sim::{Ctx, Protocol};

/// A process: supervisor or subscriber.
#[derive(Clone, Debug)]
pub enum Actor {
    /// The topic's supervisor.
    Supervisor(Supervisor),
    /// A subscriber (boxed: subscribers carry a Patricia trie and are much
    /// larger than the enum's other variant).
    Subscriber(Box<Subscriber>),
}

impl Actor {
    /// View as supervisor, if it is one.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        match self {
            Actor::Supervisor(s) => Some(s),
            Actor::Subscriber(_) => None,
        }
    }

    /// Mutable view as supervisor.
    pub fn supervisor_mut(&mut self) -> Option<&mut Supervisor> {
        match self {
            Actor::Supervisor(s) => Some(s),
            Actor::Subscriber(_) => None,
        }
    }

    /// View as subscriber, if it is one.
    pub fn subscriber(&self) -> Option<&Subscriber> {
        match self {
            Actor::Supervisor(_) => None,
            Actor::Subscriber(s) => Some(s),
        }
    }

    /// Mutable view as subscriber.
    pub fn subscriber_mut(&mut self) -> Option<&mut Subscriber> {
        match self {
            Actor::Supervisor(_) => None,
            Actor::Subscriber(s) => Some(s),
        }
    }
}

/// Routes a message to the right supervisor handler. Messages that make
/// no sense at a supervisor are corrupted channel content: consumed,
/// never propagated.
pub(crate) fn dispatch_supervisor(sup: &mut Supervisor, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
    match msg {
        Msg::Subscribe { node } => sup.on_subscribe(ctx, node),
        Msg::Unsubscribe { node } => sup.on_unsubscribe(ctx, node),
        Msg::GetConfiguration { node, requester } => sup.on_get_configuration(ctx, node, requester),
        Msg::TokenReturn { seq } => sup.on_token_return(seq),
        _ => {}
    }
}

/// Routes a message to the right subscriber handler.
pub(crate) fn dispatch_subscriber(sub: &mut Subscriber, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
    match msg {
        Msg::Check {
            sender,
            assumed,
            cyc,
        } => sub.on_check(ctx, sender, assumed, cyc),
        Msg::Intro { node, cyc } => sub.incorporate(ctx, node, cyc),
        Msg::RemoveConnections { node } => sub.on_remove_connections(node),
        Msg::SetData { pred, label, succ } => sub.on_set_data(ctx, pred, label, succ),
        Msg::IntroduceShortcut { node } => sub.on_introduce_shortcut(ctx, node),
        Msg::CheckShortcut { sender, assumed } => sub.on_check_shortcut(ctx, sender, assumed),
        Msg::Token { seq, ttl } => sub.on_token(ctx, seq, ttl),
        Msg::TokenReturn { .. } => sub.counters.ignored_msgs += 1,
        Msg::CheckTrie { sender, tuples } => sub.on_check_trie(ctx, sender, tuples),
        Msg::CheckAndPublish {
            sender,
            tuples,
            prefix,
        } => sub.on_check_and_publish(ctx, sender, tuples, prefix),
        Msg::Publish { pubs } => sub.on_publish(pubs),
        Msg::PublishNew { publication, hops } => sub.on_publish_new(ctx, publication, hops),
        Msg::Subscribe { .. } | Msg::Unsubscribe { .. } | Msg::GetConfiguration { .. } => {
            sub.counters.ignored_msgs += 1;
        }
    }
}

impl Protocol for Actor {
    type Msg = Msg;

    // Every dispatch is wrapped in state-change detection feeding the
    // single topic's dirty channels (keys `topo_key(0)` / `pubs_key(0)`)
    // so the incremental checker re-judges only after an actual change —
    // see `crate::dirty` for why detection is state-driven, not
    // message-kind-driven.

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        match self {
            Actor::Supervisor(sup) => {
                let epoch = sup.db_epoch;
                dispatch_supervisor(sup, ctx, msg);
                if sup.db_epoch != epoch {
                    ctx.mark_dirty(crate::dirty::topo_key(0));
                }
            }
            Actor::Subscriber(sub) => {
                let (topo, pubs) =
                    crate::dirty::subscriber_delta(sub, |sub| dispatch_subscriber(sub, ctx, msg));
                if topo {
                    ctx.mark_dirty(crate::dirty::topo_key(0));
                }
                if pubs {
                    ctx.mark_dirty(crate::dirty::pubs_key(0));
                }
            }
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Actor::Supervisor(sup) => {
                let epoch = sup.db_epoch;
                sup.timeout(ctx);
                if sup.db_epoch != epoch {
                    ctx.mark_dirty(crate::dirty::topo_key(0));
                }
            }
            Actor::Subscriber(sub) => {
                let (topo, pubs) = crate::dirty::subscriber_delta(sub, |sub| sub.timeout(ctx));
                if topo {
                    ctx.mark_dirty(crate::dirty::topo_key(0));
                }
                if pubs {
                    ctx.mark_dirty(crate::dirty::pubs_key(0));
                }
            }
        }
    }

    fn msg_kind(msg: &Msg) -> &'static str {
        msg.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use skippub_sim::NodeId;

    #[test]
    fn accessors() {
        let mut sup = Actor::Supervisor(Supervisor::new(NodeId(0)));
        let mut sub = Actor::Subscriber(Box::new(Subscriber::new(
            NodeId(1),
            NodeId(0),
            ProtocolConfig::default(),
        )));
        assert!(sup.supervisor().is_some());
        assert!(sup.subscriber().is_none());
        assert!(sub.subscriber().is_some());
        assert!(sub.supervisor_mut().is_none());
        assert!(sub.subscriber_mut().is_some());
        assert!(sup.supervisor_mut().is_some());
    }

    #[test]
    fn stray_messages_are_consumed() {
        let mut sup = Actor::Supervisor(Supervisor::new(NodeId(0)));
        let sent = skippub_sim::testing::run_handler(NodeId(0), 1, |ctx| {
            sup.on_message(ctx, Msg::Publish { pubs: vec![] });
        });
        assert!(sent.is_empty());
        let mut sub = Actor::Subscriber(Box::new(Subscriber::new(
            NodeId(1),
            NodeId(0),
            ProtocolConfig::default(),
        )));
        let sent = skippub_sim::testing::run_handler(NodeId(1), 1, |ctx| {
            sub.on_message(ctx, Msg::Subscribe { node: NodeId(5) });
        });
        assert!(sent.is_empty());
        assert_eq!(sub.subscriber().unwrap().counters.ignored_msgs, 1);
    }
}
