//! Change detection feeding the simulator's dirty-channel table —
//! the invalidation half of the incremental checker (DESIGN.md
//! § Incremental checking).
//!
//! Each topic owns two dirty channels: a **topology** channel covering
//! everything [`crate::checker::check_topology_parts`] reads (the
//! supervisor's database; each member's label, list/ring edges, shortcut
//! slots and membership intent; the member set itself) and a
//! **publications** channel covering what Theorem 17's convergence
//! predicate reads (each membership-wanting member's trie key set).
//! A cached verdict for a topic stays valid exactly while its channel's
//! version holds still, so every state transition that can move a
//! verdict must bump the channel:
//!
//! * **Handler-driven transitions** (message deliveries, timeouts) are
//!   caught by *state-change detection*, not by message kind: the
//!   actor wrappers compare the legitimacy-relevant state around each
//!   dispatch in **O(1)** ([`subscriber_delta`]: `Copy` fields exactly,
//!   the shortcut map via its monotone
//!   [`shortcut_epoch`](crate::Subscriber::shortcut_epoch), the trie
//!   via `(len, root hash)`; supervisors compare their
//!   [`db_epoch`](crate::Supervisor::db_epoch)) and mark only on an
//!   actual change. Kind-based gating would be both too coarse —
//!   `SetData` refreshes and `Check`/`CheckShortcut` probes flow every
//!   round in legitimate states without changing anything — and too
//!   narrow: `IntroduceShortcut` and `CheckShortcut` mutate shortcut
//!   slots yet are not in [`crate::checker::mutating_kinds`].
//! * **External operations** (subscribe/join/leave/crash/publish/seed
//!   calls through a backend) bump the affected channels directly via
//!   `World::bump_dirty` — the facade intercepts every one of them.

use crate::subscriber::Subscriber;

/// Dirty-channel key of topic `t`'s topology state.
#[inline]
pub(crate) fn topo_key(topic: u32) -> u32 {
    2 * topic
}

/// Dirty-channel key of topic `t`'s publication stores.
#[inline]
pub(crate) fn pubs_key(topic: u32) -> u32 {
    2 * topic + 1
}

/// Runs `f` on the subscriber and reports
/// `(topology_changed, publications_changed)` in **O(1)**: label,
/// list/ring edges and membership intent compare exactly (`Copy`
/// fields); the shortcut map compares via its monotone
/// [`shortcut_epoch`](Subscriber::shortcut_epoch) (bumped by every
/// protocol-path mutation — see the field docs); the trie compares via
/// `(len, root hash)` (the Merkle root pins the key set, which is all
/// the convergence predicate sees).
pub(crate) fn subscriber_delta(
    s: &mut Subscriber,
    f: impl FnOnce(&mut Subscriber),
) -> (bool, bool) {
    let topo_before = (
        s.label,
        s.left,
        s.right,
        s.ring,
        s.wants_membership,
        s.shortcut_epoch,
    );
    let pubs_before = (s.trie.len(), s.trie.root_hash());
    f(s);
    let topo = topo_before
        != (
            s.label,
            s.left,
            s.right,
            s.ring,
            s.wants_membership,
            s.shortcut_epoch,
        );
    let pubs = pubs_before != (s.trie.len(), s.trie.root_hash());
    (topo, pubs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::NodeRef;
    use crate::ProtocolConfig;
    use skippub_sim::{testing, NodeId};
    use skippub_trie::Publication;

    #[test]
    fn delta_detects_each_field_class() {
        let mut s = Subscriber::new(NodeId(1), NodeId(0), ProtocolConfig::default());
        assert_eq!(subscriber_delta(&mut s, |_| {}), (false, false));
        assert_eq!(
            subscriber_delta(&mut s, |s| s.label = Some("01".parse().unwrap())),
            (true, false)
        );
        assert_eq!(
            subscriber_delta(&mut s, |s| {
                s.trie.insert(Publication::new(1, b"x".to_vec()));
            }),
            (false, true)
        );
        // Shortcut mutations are tracked through the epoch, which every
        // protocol-path write bumps: filling a slot changes it, refiling
        // the identical value does not.
        s.shortcuts.insert("1".parse().unwrap(), None);
        let intro = NodeRef::new("1".parse().unwrap(), NodeId(9));
        assert_eq!(
            subscriber_delta(&mut s, |s| {
                testing::run_handler(NodeId(1), 3, |ctx| s.on_introduce_shortcut(ctx, intro));
            }),
            (true, false)
        );
        assert_eq!(
            subscriber_delta(&mut s, |s| {
                testing::run_handler(NodeId(1), 3, |ctx| s.on_introduce_shortcut(ctx, intro));
            }),
            (false, false)
        );
        assert_eq!(
            subscriber_delta(&mut s, |s| s.wants_membership = false),
            (true, false)
        );
    }
}
