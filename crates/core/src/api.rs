//! High-level simulation API — what examples and downstream users drive.
//!
//! [`SkipRingSim`] wraps a simulated world containing one supervisor and
//! any number of subscribers of a single topic, exposing the user-facing
//! operations of the paper (subscribe, unsubscribe, publish, crash) plus
//! experiment probes (legitimacy, convergence runs, metrics).

use crate::actor::Actor;
use crate::checker;
use crate::config::ProtocolConfig;
use crate::msg::Msg;
use crate::scenarios::{self, SUPERVISOR};
use crate::subscriber::Subscriber;
use crate::supervisor::Supervisor;
use skippub_bits::BitStr;
use skippub_sim::{ChaosConfig, Metrics, NodeId, World};
use skippub_trie::{PayloadInterner, Publication};

/// A single-topic self-stabilizing supervised publish-subscribe system
/// running in the deterministic simulator.
pub struct SkipRingSim {
    world: World<Actor>,
    cfg: ProtocolConfig,
    next_id: u64,
    interner: PayloadInterner,
}

impl SkipRingSim {
    /// Creates a system with a supervisor and no subscribers.
    pub fn new(seed: u64, cfg: ProtocolConfig) -> Self {
        let mut world = World::new(seed);
        let mut sup = Supervisor::new(SUPERVISOR);
        sup.token_enabled = cfg.probe_mode != crate::ProbeMode::Randomized;
        world.add_node(SUPERVISOR, Actor::Supervisor(sup));
        SkipRingSim {
            world,
            cfg,
            next_id: 1,
            interner: PayloadInterner::new(),
        }
    }

    /// Wraps an existing world (from the scenario builders).
    pub fn from_world(world: World<Actor>, cfg: ProtocolConfig) -> Self {
        let next_id = world.ids().iter().map(|id| id.0).max().unwrap_or(0) + 1;
        SkipRingSim {
            world,
            cfg,
            next_id,
            interner: PayloadInterner::new(),
        }
    }

    /// Reassembles a system from checkpointed parts — the **exact**
    /// restore path (unlike [`from_world`](Self::from_world), which
    /// re-derives `next_id` and starts an empty payload pool): the
    /// world carries RNG stream positions and in-flight channels, and
    /// the interner is the saved payload pool.
    pub fn from_parts(
        world: World<Actor>,
        cfg: ProtocolConfig,
        next_id: u64,
        interner: PayloadInterner,
    ) -> Self {
        SkipRingSim {
            world,
            cfg,
            next_id,
            interner,
        }
    }

    /// The protocol configuration new subscribers join with.
    pub fn cfg(&self) -> ProtocolConfig {
        self.cfg
    }

    /// The ID the next [`add_subscriber`](Self::add_subscriber) call
    /// will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The payload pool backing [`publish`](Self::publish): repeated
    /// payloads collapse to one shared allocation.
    pub fn payload_interner(&self) -> &PayloadInterner {
        &self.interner
    }

    /// Adds a fresh subscriber; it joins the topic via its first timeout
    /// (§3.2.1 action (i)). Returns its ID.
    pub fn add_subscriber(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.world.add_node(
            id,
            Actor::Subscriber(Box::new(Subscriber::new(id, SUPERVISOR, self.cfg))),
        );
        id
    }

    /// Adds a subscriber and immediately delivers its `Subscribe` to the
    /// supervisor's channel (skipping the first-timeout latency).
    pub fn add_subscriber_eager(&mut self) -> NodeId {
        let id = self.add_subscriber();
        self.world.inject(SUPERVISOR, Msg::Subscribe { node: id });
        id
    }

    /// Marks a subscriber as leaving; its next timeout sends
    /// `Unsubscribe` and the system self-stabilizes around it (Lemma 6).
    pub fn unsubscribe(&mut self, id: NodeId) {
        if let Some(s) = self.world.node_mut(id).and_then(Actor::subscriber_mut) {
            s.wants_membership = false;
        }
    }

    /// Crashes a subscriber without warning (§3.3).
    pub fn crash(&mut self, id: NodeId) {
        self.world.crash(id);
    }

    /// Failure-detector feed: report `id` crashed to the supervisor
    /// (eventually-correct detector — the harness decides the delay).
    pub fn report_crash(&mut self, id: NodeId) {
        if let Some(sup) = self
            .world
            .node_mut(SUPERVISOR)
            .and_then(Actor::supervisor_mut)
        {
            sup.suspect(id);
        }
    }

    /// Publishes `payload` at subscriber `id`; returns the publication
    /// key, or `None` if the node does not exist.
    pub fn publish(&mut self, id: NodeId, payload: Vec<u8>) -> Option<BitStr> {
        let shared = self.interner.intern(payload);
        self.world.with_node(id, |actor, ctx| {
            actor
                .subscriber_mut()
                .map(|s| s.publish_local_shared(ctx, shared))
        })?
    }

    /// Sets the per-node per-round delivery budget (`None` = unbounded;
    /// see [`World::set_delivery_budget`]).
    pub fn set_delivery_budget(&mut self, budget: Option<u32>) {
        self.world.set_delivery_budget(budget);
    }

    /// High-water mark of in-flight messages, sampled at round starts.
    pub fn peak_in_flight(&self) -> usize {
        self.world.peak_in_flight()
    }

    /// One synchronous round (every node: drain channel, then timeout).
    pub fn run_round(&mut self) {
        self.world.run_round();
    }

    /// Runs rounds until the topology is legitimate; returns
    /// `(rounds, reached)`.
    pub fn run_until_legit(&mut self, max_rounds: u64) -> (u64, bool) {
        let mut r = 0;
        loop {
            if checker::is_legitimate(&self.world) {
                return (r, true);
            }
            if r >= max_rounds {
                return (r, false);
            }
            self.world.run_round();
            r += 1;
        }
    }

    /// Runs chaos rounds (random delays/reordering) until legitimate.
    pub fn run_chaos_until_legit(&mut self, cfg: ChaosConfig, max_rounds: u64) -> (u64, bool) {
        let mut r = 0;
        loop {
            if checker::is_legitimate(&self.world) {
                return (r, true);
            }
            if r >= max_rounds {
                return (r, false);
            }
            self.world.run_chaos_round(cfg);
            r += 1;
        }
    }

    /// Runs rounds until all tries agree (Theorem 17); returns
    /// `(rounds, reached)`.
    pub fn run_until_pubs_converged(&mut self, max_rounds: u64) -> (u64, bool) {
        let mut r = 0;
        loop {
            if checker::publications_converged(&self.world).0 {
                return (r, true);
            }
            if r >= max_rounds {
                return (r, false);
            }
            self.world.run_round();
            r += 1;
        }
    }

    /// Whether the topology is currently legitimate.
    pub fn is_legitimate(&self) -> bool {
        checker::is_legitimate(&self.world)
    }

    /// Detailed legitimacy report.
    pub fn report(&self) -> checker::LegitReport {
        checker::check_topology(&self.world)
    }

    /// Whether all subscribers store the same publication set, and its
    /// size.
    pub fn publications_converged(&self) -> (bool, usize) {
        checker::publications_converged(&self.world)
    }

    /// Immutable access to a subscriber.
    pub fn subscriber(&self, id: NodeId) -> Option<&Subscriber> {
        self.world.node(id).and_then(Actor::subscriber)
    }

    /// Immutable access to the supervisor.
    pub fn supervisor(&self) -> &Supervisor {
        self.world
            .node(SUPERVISOR)
            .and_then(Actor::supervisor)
            .expect("supervisor exists")
    }

    /// IDs of live subscribers.
    pub fn subscriber_ids(&self) -> Vec<NodeId> {
        scenarios::subscriber_ids(&self.world)
    }

    /// Simulator metrics.
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    /// The supervisor's node ID.
    pub fn supervisor_id(&self) -> NodeId {
        SUPERVISOR
    }

    /// Read access to the underlying world (checkers, snapshots,
    /// experiment probes). The field itself is private so ordinary
    /// clients go through the methods (or the [`crate::pubsub`] facade).
    pub fn world(&self) -> &World<Actor> {
        &self.world
    }

    /// Raw mutable access to the underlying world — the escape hatch for
    /// adversarial initializers and white-box tests that corrupt protocol
    /// state in place. Not for examples or ordinary clients.
    pub fn world_mut(&mut self) -> &mut World<Actor> {
        &mut self.world
    }

    /// Inserts `publication` directly into subscriber `id`'s store,
    /// bypassing flooding — models a publication that arrived through an
    /// unmodelled channel (Theorem 17's arbitrary initial distribution).
    /// Returns whether it was new; `None` if `id` is not a live
    /// subscriber.
    pub fn seed_publication(&mut self, id: NodeId, publication: Publication) -> Option<bool> {
        self.world
            .node_mut(id)
            .and_then(Actor::subscriber_mut)
            .map(|s| s.trie.insert(publication))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_small_topic() {
        let mut sim = SkipRingSim::new(11, ProtocolConfig::topology_only());
        for _ in 0..4 {
            sim.add_subscriber();
        }
        let (rounds, ok) = sim.run_until_legit(200);
        assert!(
            ok,
            "bootstrap must converge; report: {:?}",
            sim.report().issues
        );
        assert!(rounds > 0);
        assert_eq!(sim.supervisor().n(), 4);
    }

    #[test]
    fn publish_reaches_everyone() {
        let mut sim = SkipRingSim::new(12, ProtocolConfig::default());
        let ids: Vec<NodeId> = (0..6).map(|_| sim.add_subscriber()).collect();
        let (_, ok) = sim.run_until_legit(300);
        assert!(ok);
        sim.publish(ids[0], b"hello world".to_vec()).unwrap();
        let (rounds, ok) = sim.run_until_pubs_converged(100);
        assert!(ok, "publication must reach everyone");
        // Flooding should deliver fast (well under anti-entropy bounds).
        assert!(rounds <= 5, "flooding took {rounds} rounds");
        for id in ids {
            assert_eq!(sim.subscriber(id).unwrap().trie.len(), 1);
        }
    }

    #[test]
    fn unsubscribe_shrinks_topic() {
        let mut sim = SkipRingSim::new(13, ProtocolConfig::topology_only());
        let ids: Vec<NodeId> = (0..5).map(|_| sim.add_subscriber()).collect();
        let (_, ok) = sim.run_until_legit(300);
        assert!(ok);
        sim.unsubscribe(ids[1]);
        let (_, ok) = sim.run_until_legit(300);
        assert!(
            ok,
            "must re-stabilize after unsubscribe: {:?}",
            sim.report().issues
        );
        assert_eq!(sim.supervisor().n(), 4);
        assert!(sim.subscriber(ids[1]).unwrap().label.is_none());
    }

    #[test]
    fn crash_recovery_via_failure_detector() {
        let mut sim = SkipRingSim::new(14, ProtocolConfig::topology_only());
        let ids: Vec<NodeId> = (0..6).map(|_| sim.add_subscriber()).collect();
        let (_, ok) = sim.run_until_legit(300);
        assert!(ok);
        sim.crash(ids[2]);
        sim.crash(ids[4]);
        // Eventually-correct detector reports after a few rounds.
        for _ in 0..3 {
            sim.run_round();
        }
        sim.report_crash(ids[2]);
        sim.report_crash(ids[4]);
        let (_, ok) = sim.run_until_legit(400);
        assert!(
            ok,
            "must re-stabilize after crashes: {:?}",
            sim.report().issues
        );
        assert_eq!(sim.supervisor().n(), 4);
    }
}
