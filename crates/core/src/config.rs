//! Protocol tuning knobs.

/// How configuration verification traffic is generated (paper §6 poses
/// the deterministic variant as future work; we implement both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// The paper's §3.2.1 design: the supervisor pushes one round-robin
    /// configuration per timeout, and subscribers probe randomly with
    /// probability `1/(2^k·k²)` (Theorem 5).
    #[default]
    Randomized,
    /// The §6 future-work design, verbatim: a supervisor-issued **token**
    /// walks the ring; each holder requests its configuration
    /// deterministically and passes the token right; the maximum returns
    /// it. The supervisor pushes nothing autonomously (no round-robin, no
    /// randomized probes), regenerating the token when it fails to
    /// return. Every node is verified exactly once per circulation — a
    /// deterministic staleness bound with ~zero variance.
    ///
    /// **Reproduces the paper's own caveat**: "the token-passing scheme
    /// has to be able to deal with multiple connected components" (§6) —
    /// pure token mode provably stalls on partitioned initial states
    /// whose component minimum carries label `"0"` (experiment E15).
    Token,
    /// Token verification plus the randomized action-(ii) fallback: the
    /// deterministic staleness bound of [`ProbeMode::Token`] *and* full
    /// Theorem-8 convergence (components absorb via the fallback probes).
    TokenHybrid,
}

/// Configuration shared by all subscribers of a topic.
///
/// Defaults follow the paper; experiments override individual knobs (e.g.
/// disabling flooding to measure pure anti-entropy convergence, E8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Key length `m` for publication keys (paper §4.2).
    pub key_bits: usize,
    /// Run the periodic Patricia-trie anti-entropy probe (`PublishTimeout`,
    /// Algorithm 5).
    pub anti_entropy: bool,
    /// Flood fresh publications along all edges (`PublishNew`, §4.3).
    pub flooding: bool,
    /// Enable the probabilistic configuration probes of §3.2.1 (ii)/(iv).
    /// Disabled only by closure experiments that must count zero probes.
    pub probes: bool,
    /// Verification-traffic strategy (randomized probes vs. §6 token).
    pub probe_mode: ProbeMode,
    /// Enable shortcut maintenance (§3.2.2). Disabling yields a plain
    /// self-stabilizing ring — the ablation baseline for E9/E10.
    pub shortcuts: bool,
    /// Enable the per-timeout `CheckShortcut` slot verification — our
    /// documented extension (DESIGN.md §7.4). Disabling reproduces the
    /// paper's verbatim protocol, in which stale slot bindings can
    /// circulate between introducers indefinitely; experiment E14
    /// measures the difference.
    pub verify_shortcuts: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            key_bits: 64,
            anti_entropy: true,
            flooding: true,
            probes: true,
            probe_mode: ProbeMode::Randomized,
            shortcuts: true,
            verify_shortcuts: true,
        }
    }
}

impl ProtocolConfig {
    /// Configuration with publication machinery disabled — used by
    /// topology-only experiments so message counters are not polluted.
    pub fn topology_only() -> Self {
        ProtocolConfig {
            anti_entropy: false,
            flooding: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ProtocolConfig::default();
        assert!(c.anti_entropy && c.flooding && c.probes && c.shortcuts);
        assert_eq!(c.key_bits, 64);
        let t = ProtocolConfig::topology_only();
        assert!(!t.anti_entropy && !t.flooding);
        assert!(t.probes && t.shortcuts);
    }
}
