//! Tests for the §6 deterministic token-passing variant.

use crate::scenarios::{self, Adversary};
use crate::{Msg, ProbeMode, ProtocolConfig, SkipRingSim};

fn token_cfg() -> ProtocolConfig {
    ProtocolConfig {
        probe_mode: ProbeMode::Token,
        ..ProtocolConfig::topology_only()
    }
}

#[test]
fn token_circulates_and_returns() {
    let cfg = token_cfg();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(8, 1, cfg), cfg);
    for _ in 0..60 {
        sim.run_round();
    }
    let sup = sim.supervisor();
    assert!(sup.counters.tokens_issued >= 1, "token must be issued");
    assert!(
        sup.counters.tokens_returned >= 1,
        "token must complete circulations ({} issued)",
        sup.counters.tokens_issued
    );
    // Every subscriber was visited.
    for id in sim.subscriber_ids() {
        assert!(
            sim.subscriber(id).expect("live").counters.tokens_seen >= 1,
            "{id} never saw the token"
        );
    }
}

#[test]
fn token_mode_sends_no_randomized_probes() {
    let cfg = token_cfg();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(16, 2, cfg), cfg);
    for _ in 0..200 {
        sim.run_round();
    }
    for id in sim.subscriber_ids() {
        assert_eq!(
            sim.subscriber(id).expect("live").counters.config_probes,
            0,
            "randomized action-(ii)/(iv) probes must be silent in a legitimate token run"
        );
    }
    // GetConfiguration traffic exists — driven by the token.
    assert!(sim.metrics().kind("GetConfiguration") > 0);
    assert!(sim.metrics().kind("Token") > 0);
}

#[test]
fn pure_token_converges_from_single_component_adversaries() {
    // The §6 caveat, measured: pure determinism handles every family
    // except multi-component states (whose "0"-labelled component minima
    // never probe) — exactly what the paper flagged as the open problem.
    let cfg = token_cfg();
    for adv in [
        Adversary::RandomState,
        Adversary::CorruptDatabase,
        Adversary::ShuffledLabels,
        Adversary::CorruptChannels,
    ] {
        let world = scenarios::adversarial_world(12, 9, cfg, adv);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let (rounds, ok) = sim.run_until_legit(30_000);
        assert!(
            ok,
            "{} stuck after {rounds} rounds under pure token mode",
            adv.name()
        );
    }
}

#[test]
fn pure_token_stalls_on_partitions_hybrid_does_not() {
    let pure = token_cfg();
    let world = scenarios::adversarial_world(12, 9, pure, Adversary::Partitioned(4));
    let mut sim = SkipRingSim::from_world(world, pure);
    let (_, ok) = sim.run_until_legit(4_000);
    assert!(
        !ok,
        "pure token mode should exhibit the §6 multi-component stall"
    );

    let hybrid = ProtocolConfig {
        probe_mode: ProbeMode::TokenHybrid,
        ..ProtocolConfig::topology_only()
    };
    let world = scenarios::adversarial_world(12, 9, hybrid, Adversary::Partitioned(4));
    let mut sim = SkipRingSim::from_world(world, hybrid);
    let (rounds, ok) = sim.run_until_legit(30_000);
    assert!(ok, "hybrid mode stuck after {rounds} rounds");
}

#[test]
fn hybrid_converges_from_all_adversaries() {
    let cfg = ProtocolConfig {
        probe_mode: ProbeMode::TokenHybrid,
        ..ProtocolConfig::topology_only()
    };
    for adv in Adversary::all() {
        let world = scenarios::adversarial_world(10, 13, cfg, adv);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let (rounds, ok) = sim.run_until_legit(30_000);
        assert!(
            ok,
            "{} stuck after {rounds} rounds under hybrid mode",
            adv.name()
        );
    }
}

#[test]
fn token_regenerates_after_holder_crash() {
    let cfg = token_cfg();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(8, 3, cfg), cfg);
    for _ in 0..10 {
        sim.run_round();
    }
    let issued_before = sim.supervisor().counters.tokens_issued;
    // Crash a mid-ring node; any token it holds (or that is sent to it)
    // vanishes. The supervisor must regenerate within its age bound.
    let victim = sim.subscriber_ids()[3];
    sim.crash(victim);
    sim.report_crash(victim);
    for _ in 0..(2 * 8 + 40) {
        sim.run_round();
    }
    let sup = sim.supervisor();
    assert!(
        sup.counters.tokens_issued > issued_before,
        "token must be reissued after loss"
    );
    let (_, ok) = sim.run_until_legit(10_000);
    assert!(ok);
}

#[test]
fn stale_token_returns_are_ignored() {
    let cfg = token_cfg();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(4, 4, cfg), cfg);
    for _ in 0..10 {
        sim.run_round();
    }
    let seq = sim.supervisor().token_seq;
    let outstanding = sim.supervisor().token_outstanding;
    // Inject a return for a long-gone issue number.
    let sup_id = sim.supervisor_id();
    sim.world_mut().inject(
        sup_id,
        Msg::TokenReturn {
            seq: seq.wrapping_sub(1),
        },
    );
    sim.run_round();
    // An outstanding token stays outstanding despite the stale return
    // (modulo it genuinely returning this round — check only when it was
    // outstanding and the real return can't have been this fast).
    if outstanding && sim.supervisor().token_age > 0 {
        assert!(
            sim.supervisor().token_outstanding || sim.supervisor().counters.tokens_returned > 0
        );
    }
}

#[test]
fn token_ttl_kills_cycles() {
    // A token with ttl 0 must not be forwarded even with a right edge.
    let cfg = token_cfg();
    let mut s = crate::Subscriber::new(skippub_sim::NodeId(7), skippub_sim::NodeId(0), cfg);
    s.label = Some("0".parse().unwrap());
    s.right = Some(crate::NodeRef::new(
        "1".parse().unwrap(),
        skippub_sim::NodeId(8),
    ));
    let sent = skippub_sim::testing::run_handler(skippub_sim::NodeId(7), 1, |ctx| {
        s.on_token(ctx, 999, 0);
    });
    assert!(
        !sent.iter().any(|(_, m)| matches!(m, Msg::Token { .. })),
        "ttl-0 token must not be forwarded"
    );
    // With ttl > 0 it is forwarded, decremented.
    let sent = skippub_sim::testing::run_handler(skippub_sim::NodeId(7), 1, |ctx| {
        s.on_token(ctx, 999, 3);
    });
    assert!(sent
        .iter()
        .any(|(to, m)| *to == skippub_sim::NodeId(8) && matches!(m, Msg::Token { ttl: 2, .. })));
}

#[test]
fn token_mode_supervisor_load_is_comparable() {
    // In the round scheduler a token can advance several hops per round
    // (each hop costs one config reply), so the supervisor rate is
    // *comparable* to randomized mode, not lower; the token's win is the
    // deterministic coverage below, not raw message count.
    let run = |mode: ProbeMode| -> f64 {
        let cfg = ProtocolConfig {
            probe_mode: mode,
            ..ProtocolConfig::topology_only()
        };
        let mut sim = SkipRingSim::from_world(scenarios::legit_world(32, 6, cfg), cfg);
        for _ in 0..50 {
            sim.run_round(); // warm-up
        }
        let before = sim.metrics().clone();
        let window = 400u64;
        for _ in 0..window {
            sim.run_round();
        }
        let d = sim.metrics().diff(&before);
        d.sent_by(sim.supervisor_id()) as f64 / window as f64
    };
    let randomized = run(ProbeMode::Randomized);
    let token = run(ProbeMode::Token);
    assert!(
        token <= randomized * 1.6 + 0.5,
        "token supervisor rate {token:.2} vs randomized {randomized:.2}"
    );
}

#[test]
fn token_coverage_is_deterministic() {
    // Every subscriber is verified (receives a SetData) within a bounded
    // window under token mode — no coupon-collector tail.
    let n = 24usize;
    let cfg = token_cfg();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(n, 8, cfg), cfg);
    for _ in 0..(2 * n as u64 + 20) {
        sim.run_round();
    }
    for id in sim.subscriber_ids() {
        assert!(
            sim.subscriber(id).expect("live").counters.configs_received >= 1,
            "{id} not verified within one guaranteed circulation window"
        );
    }
}
