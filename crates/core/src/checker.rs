//! Legitimate-state predicates (Definition 1's "set of legitimate states",
//! made executable).
//!
//! The checker evaluates *global* snapshots of a simulated world; the
//! protocol cannot self-certify. A state is legitimate when:
//!
//! 1. the supervisor's database is non-corrupted and matches the live,
//!    membership-wanting subscriber population (Lemma 9 / 10);
//! 2. every subscriber stores exactly the label the database assigns
//!    (Lemma 11);
//! 3. list/ring edges form the sorted ring of Definition 2 — interior
//!    nodes hold `left`/`right`, the extrema hold the wrap edge in `ring`
//!    (Lemma 11);
//! 4. every subscriber's shortcut slots hold exactly the derived shortcut
//!    labels, each resolved to the correct node (Lemma 12).
//!
//! A separate predicate checks publication convergence (Theorem 17): all
//! subscribers' Patricia tries contain the same publication set.

use crate::actor::Actor;
use crate::msg::{Msg, NodeRef};
use crate::subscriber::Subscriber;
use crate::supervisor::Supervisor;
use skippub_bits::Hash128;
use skippub_ringmath::{shortcut, Label};
use skippub_sim::{NodeId, Protocol, World};
use std::collections::BTreeMap;

/// Outcome of a legitimacy check.
#[derive(Clone, Debug, Default)]
pub struct LegitReport {
    /// Human-readable violations (empty ⇔ legitimate).
    pub issues: Vec<String>,
}

impl LegitReport {
    /// Whether the snapshot is legitimate.
    pub fn ok(&self) -> bool {
        self.issues.is_empty()
    }

    fn note(&mut self, msg: String) {
        if self.issues.len() < 64 {
            self.issues.push(msg);
        }
    }
}

/// Expected edges for one subscriber, derived from the database ring.
struct Expect {
    left: Option<NodeRef>,
    right: Option<NodeRef>,
    ring: Option<NodeRef>,
}

fn expected_edges(sorted: &[(Label, NodeId)], i: usize) -> Expect {
    let n = sorted.len();
    if n == 1 {
        return Expect {
            left: None,
            right: None,
            ring: None,
        };
    }
    let r = |j: usize| NodeRef::new(sorted[j].0, sorted[j].1);
    if i == 0 {
        Expect {
            left: None,
            right: Some(r(1)),
            ring: Some(r(n - 1)),
        }
    } else if i == n - 1 {
        Expect {
            left: Some(r(n - 2)),
            right: None,
            ring: Some(r(0)),
        }
    } else {
        Expect {
            left: Some(r(i - 1)),
            right: Some(r(i + 1)),
            ring: None,
        }
    }
}

fn check_edge(
    report: &mut LegitReport,
    who: NodeId,
    name: &str,
    got: Option<NodeRef>,
    want: Option<NodeRef>,
) {
    match (got, want) {
        (None, None) => {}
        (Some(g), Some(w)) if g == w => {}
        (g, w) => report.note(format!("{who}: {name} is {g:?}, expected {w:?}")),
    }
}

/// Full topology legitimacy check of a world snapshot.
pub fn check_topology(world: &World<Actor>) -> LegitReport {
    // --- locate the supervisor ---
    let supervisors: Vec<NodeId> = world
        .iter()
        .filter(|(_, a)| a.supervisor().is_some())
        .map(|(id, _)| id)
        .collect();
    if supervisors.len() != 1 {
        let mut report = LegitReport::default();
        report.note(format!(
            "expected exactly 1 supervisor, found {}",
            supervisors.len()
        ));
        return report;
    }
    let sup = world
        .node(supervisors[0])
        .and_then(Actor::supervisor)
        .expect("found above");
    check_topology_parts(
        sup,
        world.iter().filter_map(|(id, a)| a.subscriber().map(|s| (id, s))),
    )
}

/// Topology legitimacy over an explicit supervisor + member set — the
/// entry point the multi-topic/sharded backends use to judge one topic
/// *by reference* (no per-poll world cloning).
pub fn check_topology_parts<'a>(
    sup: &Supervisor,
    members: impl IntoIterator<Item = (NodeId, &'a Subscriber)>,
) -> LegitReport {
    let mut report = LegitReport::default();

    // --- database validity (Lemma 9) ---
    let mut db: Vec<(Label, NodeId)> = Vec::with_capacity(sup.database.len());
    for (l, v) in &sup.database {
        match v {
            None => report.note(format!("database has (label {l}, ⊥)")),
            Some(node) => db.push((*l, *node)),
        }
    }
    // Labels must be exactly {l(0), …, l(n−1)} — as a *set*; the BTreeMap
    // iterates them in ring order, not insertion order.
    let n = db.len() as u64;
    for (l, _) in &db {
        match l.index() {
            Some(i) if i < n => {}
            _ => report.note(format!("database label {l} is outside l(0..{n})")),
        }
    }
    {
        let mut nodes: Vec<NodeId> = db.iter().map(|(_, v)| *v).collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() as u64 != n {
            report.note("database maps several labels to one subscriber".into());
        }
    }
    // --- membership agreement (Lemma 10) ---
    let members: BTreeMap<NodeId, &Subscriber> = members.into_iter().collect();
    for (_, v) in &db {
        match members.get(v) {
            None => report.note(format!("database references dead/unknown node {v}")),
            Some(s) if !s.wants_membership => {
                report.note(format!("database still holds unsubscribing node {v}"))
            }
            Some(_) => {}
        }
    }
    for (id, s) in &members {
        if s.wants_membership && !db.iter().any(|(_, v)| v == id) {
            report.note(format!("live subscriber {id} missing from database"));
        }
        if !s.wants_membership && s.label.is_some() {
            report.note(format!("departed subscriber {id} still labelled"));
        }
    }
    if !report.ok() {
        return report; // edge checks below assume a sane database
    }

    // --- per-subscriber state (Lemmas 11–12) ---
    // db is sorted by label (BTreeMap order = ring order).
    for (i, (label, v)) in db.iter().enumerate() {
        let Some(s) = members.get(v) else {
            // Unreachable after the membership section returned above on
            // any db entry without a live member — but the old code
            // `continue`d here *silently*, which would have judged a
            // db-references-dead-node world by its remaining members had
            // the early return ever been relaxed. Note it defensively so
            // the diagnostic and fast boolean paths can never disagree
            // on this edge (regression-tested).
            report.note(format!("database references dead/unknown node {v}"));
            continue;
        };
        if s.label != Some(*label) {
            report.note(format!(
                "{v}: label is {:?}, database says {label}",
                s.label
            ));
            continue;
        }
        let want = expected_edges(&db, i);
        check_edge(&mut report, *v, "left", s.left, want.left);
        check_edge(&mut report, *v, "right", s.right, want.right);
        check_edge(&mut report, *v, "ring", s.ring, want.ring);
        // Shortcuts (only meaningful when ring edges are right).
        if s.cfg.shortcuts {
            let eff_left = s.eff_left();
            let eff_right = s.eff_right();
            if let (Some(el), Some(er)) = (eff_left, eff_right) {
                let expected = shortcut::expected_shortcuts(*label, el.label, er.label);
                let want_map: BTreeMap<Label, NodeId> = expected
                    .iter()
                    .filter_map(|t| {
                        db.iter()
                            .find(|(l, _)| *l == t.label)
                            .map(|(_, id)| (t.label, *id))
                    })
                    .collect();
                if want_map.len() != expected.len() {
                    report.note(format!(
                        "{v}: some expected shortcut labels missing from db"
                    ));
                }
                let got: BTreeMap<Label, Option<NodeId>> = s.shortcuts.clone();
                for (l, want_id) in &want_map {
                    match got.get(l) {
                        Some(Some(id)) if id == want_id => {}
                        other => report.note(format!(
                            "{v}: shortcut {l} is {other:?}, expected {want_id}"
                        )),
                    }
                }
                for l in got.keys() {
                    if !want_map.contains_key(l) {
                        report.note(format!("{v}: unexpected shortcut slot {l}"));
                    }
                }
            } else if db.len() > 1 {
                report.note(format!("{v}: missing effective ring neighbours"));
            }
        }
    }
    report
}

/// Convenience wrapper: `true` iff the snapshot is topology-legitimate.
pub fn is_legitimate(world: &World<Actor>) -> bool {
    check_topology(world).ok()
}

/// Reusable buffers for the fast boolean checker: with a warm scratch,
/// [`fast_check_parts`] performs **zero heap allocations** per call —
/// the property the steady-state polling loop's counting-allocator test
/// pins.
#[derive(Clone, Debug, Default)]
pub struct CheckScratch {
    /// The database flattened in label (= ring) order.
    db: Vec<(Label, NodeId)>,
    /// `(node id, index into db)` sorted by id, for O(log n) membership
    /// lookups.
    by_id: Vec<(u64, u32)>,
    /// Shortcut-derivation buffer.
    expected: Vec<shortcut::ShortcutTarget>,
}

/// Boolean twin of [`check_topology_parts`]: same verdict on every
/// input (`fast_check_parts(sup, m, s) == check_topology_parts(sup, m).ok()`,
/// property-tested on randomly corrupted worlds), but built for the
/// polling hot path — no `String` formatting, no per-call `BTreeMap`s or
/// clones, and shortcut targets resolved by **binary search on the
/// label-sorted database slice** (O(log ring)) instead of a linear scan.
///
/// `members` must yield each live subscriber of the topic exactly once,
/// in ascending id order (both world shapes iterate that way).
pub fn fast_check_parts<'a>(
    sup: &Supervisor,
    members: impl IntoIterator<Item = (NodeId, &'a Subscriber)>,
    scratch: &mut CheckScratch,
) -> bool {
    let CheckScratch { db, by_id, expected } = scratch;
    db.clear();
    by_id.clear();

    // --- database validity (Lemma 9) ---
    for (l, v) in &sup.database {
        match v {
            None => return false, // (label, ⊥)
            Some(node) => db.push((*l, *node)),
        }
    }
    let n = db.len() as u64;
    for (l, _) in db.iter() {
        // Distinct labels with a valid index < n are exactly {l(0..n)}.
        match l.index() {
            Some(i) if i < n => {}
            _ => return false,
        }
    }
    by_id.extend(db.iter().enumerate().map(|(i, (_, v))| (v.0, i as u32)));
    by_id.sort_unstable_by_key(|&(id, _)| id);
    if by_id.windows(2).any(|w| w[0].0 == w[1].0) {
        return false; // several labels map to one subscriber
    }

    // --- one pass over the members: Lemma 10 membership agreement
    // interleaved with the per-subscriber Lemma 11–12 checks ---
    let mut matched = 0u64;
    for (id, s) in members {
        let pos = by_id
            .binary_search_by_key(&id.0, |&(i, _)| i)
            .ok()
            .map(|k| by_id[k].1 as usize);
        match (s.wants_membership, pos) {
            // Live, membership-wanting subscriber missing from the db.
            (true, None) => return false,
            // The db still holds an unsubscribing node.
            (false, Some(_)) => return false,
            // Departed subscriber must have dropped its label.
            (false, None) => {
                if s.label.is_some() {
                    return false;
                }
            }
            (true, Some(i)) => {
                matched += 1;
                let (label, _) = db[i];
                if s.label != Some(label) {
                    return false;
                }
                let want = expected_edges(db, i);
                if s.left != want.left || s.right != want.right || s.ring != want.ring {
                    return false;
                }
                if s.cfg.shortcuts {
                    match (s.eff_left(), s.eff_right()) {
                        (Some(el), Some(er)) => {
                            shortcut::expected_shortcuts_into(label, el.label, er.label, expected);
                            for t in expected.iter() {
                                // O(log ring) resolution on the sorted db.
                                let Ok(j) = db.binary_search_by_key(&t.label, |&(l, _)| l) else {
                                    return false; // expected label missing from db
                                };
                                match s.shortcuts.get(&t.label) {
                                    Some(Some(holder)) if *holder == db[j].1 => {}
                                    _ => return false,
                                }
                            }
                            // Expected labels are distinct (level is a
                            // function of the label lengths), so equal
                            // cardinality ⇒ no unexpected slots.
                            if s.shortcuts.len() != expected.len() {
                                return false;
                            }
                        }
                        _ if db.len() > 1 => return false, // missing effective neighbours
                        _ => {}
                    }
                }
            }
        }
    }
    // Every db entry must have been claimed by a live wanting member
    // (values are distinct, so `matched` counts distinct entries).
    matched == n
}

/// Boolean twin of [`check_topology`] over a whole single-topic world —
/// the supervisor-count gate plus [`fast_check_parts`]. Allocation-free
/// with a warm scratch.
pub fn fast_check_topology(world: &World<Actor>, scratch: &mut CheckScratch) -> bool {
    let mut sup = None;
    for (_, a) in world.iter() {
        if let Some(s) = a.supervisor() {
            if sup.replace(s).is_some() {
                return false; // more than one supervisor
            }
        }
    }
    let Some(sup) = sup else {
        return false; // no supervisor at all
    };
    fast_check_parts(
        sup,
        world.iter().filter_map(|(id, a)| a.subscriber().map(|s| (id, s))),
        scratch,
    )
}

/// Publication convergence (Theorem 17): every membership-wanting
/// subscriber stores the same key set, which is the union of all stored
/// key sets. Returns `(converged, union_size)`.
pub fn publications_converged(world: &World<Actor>) -> (bool, usize) {
    publications_converged_of(world.iter().filter_map(|(_, a)| a.subscriber()))
}

/// [`publications_converged`] over an explicit subscriber set — used by
/// the multi-topic/sharded backends to judge one topic by reference.
pub fn publications_converged_of<'a>(
    subs: impl IntoIterator<Item = &'a Subscriber>,
) -> (bool, usize) {
    let tries: Vec<&Subscriber> = subs
        .into_iter()
        .filter(|s| s.wants_membership)
        .collect();
    let mut union: std::collections::BTreeSet<&skippub_bits::BitStr> =
        std::collections::BTreeSet::new();
    for s in &tries {
        for k in s.trie.iter_keys() {
            union.insert(k);
        }
    }
    let ok = tries.iter().all(|s| s.trie.len() == union.len());
    let hashes: Vec<_> = tries.iter().map(|s| s.trie.root_hash()).collect();
    let ok = ok && hashes.windows(2).all(|w| w[0] == w[1]);
    (ok, union.len())
}

/// Root-hash fast path for Theorem 17: two tries hold the same key set
/// **iff** their Merkle root hashes agree (pinned by the trie crate's
/// `root_hash_equality_iff_same_keys` test), so when every
/// membership-wanting subscriber reports the same root hash the stores
/// are converged and the union size can be read off any one trie — O(1)
/// per subscriber, no key-set union, no allocation. Only when hashes
/// *disagree* (a transient, pre-convergence state) does it fall back to
/// the exact union of [`publications_converged_of`], so the returned
/// pair is identical to the from-scratch computation on every input.
///
/// `subs` is a closure because the fallback needs a second pass.
pub fn pubs_converged_fast<'a, I, F>(subs: F) -> (bool, usize)
where
    F: Fn() -> I,
    I: IntoIterator<Item = &'a Subscriber>,
{
    let mut first: Option<(Option<Hash128>, usize)> = None;
    for s in subs() {
        if !s.wants_membership {
            continue;
        }
        let h = s.trie.root_hash();
        match first {
            None => first = Some((h, s.trie.len())),
            Some((f, _)) if f == h => {}
            Some(_) => return publications_converged_of(subs()),
        }
    }
    match first {
        Some((_, len)) => (true, len),
        None => (true, 0),
    }
}

/// Snapshot of message-kind counters for closure experiments: in a
/// legitimate state, topology-mutating messages must stay absent.
pub fn mutating_kinds() -> &'static [&'static str] {
    &[
        "Intro",
        "SetData",
        "Subscribe",
        "Unsubscribe",
        "RemoveConnections",
    ]
}

/// Count of topology-mutating messages sent so far in a world.
pub fn mutating_msgs(world: &World<Actor>) -> u64 {
    mutating_kinds()
        .iter()
        .map(|k| world.metrics().kind(k))
        .sum()
}

/// Helper for experiments: a stricter legitimacy that also requires the
/// in-flight channels to carry no mutating messages. Note `SetData`
/// *does* keep flowing in legitimate states (the supervisor's round-robin
/// refresh), so it is exempted here; closure is about *effect*, which
/// experiment E12 verifies by diffing state snapshots.
pub fn world_quiescent(world: &World<Actor>) -> bool {
    is_legitimate(world)
}

// `Protocol` must be in scope for `World::<Actor>` methods used here.
#[allow(unused)]
fn _assert_protocol<T: Protocol<Msg = Msg>>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::ProtocolConfig;

    #[test]
    fn legit_world_passes() {
        for n in [1usize, 2, 3, 4, 5, 8, 16, 33] {
            let world = scenarios::legit_world(n, 7, ProtocolConfig::topology_only());
            let report = check_topology(&world);
            assert!(report.ok(), "n={n}: {:?}", report.issues);
        }
    }

    #[test]
    fn detects_wrong_label() {
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let ids = scenarios::subscriber_ids(&world);
        let s = world.node_mut(ids[0]).unwrap().subscriber_mut().unwrap();
        s.label = Some("111".parse().unwrap());
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn detects_missing_edge() {
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let ids = scenarios::subscriber_ids(&world);
        let s = world.node_mut(ids[1]).unwrap().subscriber_mut().unwrap();
        s.left = None;
        s.right = None;
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn detects_corrupt_database() {
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let sup_id = scenarios::supervisor_id(&world);
        let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
        let l: Label = "0101".parse().unwrap();
        sup.database.insert(l, None);
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn detects_wrong_shortcut() {
        let mut world = scenarios::legit_world(8, 7, ProtocolConfig::topology_only());
        let ids = scenarios::subscriber_ids(&world);
        for id in ids {
            let s = world.node_mut(id).unwrap().subscriber_mut().unwrap();
            if !s.shortcuts.is_empty() {
                let k = *s.shortcuts.keys().next().unwrap();
                s.shortcuts.insert(k, None);
                break;
            }
        }
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn publications_converged_on_empty() {
        let world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let (ok, n) = publications_converged(&world);
        assert!(ok);
        assert_eq!(n, 0);
    }

    /// The boolean fast path must agree with the diagnostic path on
    /// every corruption the diagnostic unit tests above exercise (the
    /// broad randomized agreement proptest lives in
    /// `tests/checker_equiv.rs`).
    #[test]
    fn fast_check_agrees_with_diagnostic_on_unit_corruptions() {
        let mut scratch = CheckScratch::default();
        let agree = |world: &World<Actor>, scratch: &mut CheckScratch| {
            let full = check_topology(world).ok();
            let fast = fast_check_topology(world, scratch);
            assert_eq!(fast, full, "paths disagree: {:?}", check_topology(world).issues);
            full
        };
        for n in [1usize, 2, 4, 8, 33] {
            let world = scenarios::legit_world(n, 7, ProtocolConfig::default());
            assert!(agree(&world, &mut scratch), "n={n} must be legitimate");
        }
        let mut world = scenarios::legit_world(8, 7, ProtocolConfig::default());
        let ids = scenarios::subscriber_ids(&world);
        // Wrong label.
        world.node_mut(ids[0]).unwrap().subscriber_mut().unwrap().label =
            Some("111111".parse().unwrap());
        assert!(!agree(&world, &mut scratch));
        // Dropped edge.
        let mut world = scenarios::legit_world(8, 7, ProtocolConfig::default());
        world.node_mut(ids[2]).unwrap().subscriber_mut().unwrap().right = None;
        assert!(!agree(&world, &mut scratch));
        // Corrupt database value.
        let mut world = scenarios::legit_world(8, 7, ProtocolConfig::default());
        let sup_id = scenarios::supervisor_id(&world);
        let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
        let l: Label = "0101".parse().unwrap();
        sup.database.insert(l, None);
        assert!(!agree(&world, &mut scratch));
        // Poisoned shortcut slot.
        let mut world = scenarios::legit_world(8, 7, ProtocolConfig::default());
        for id in scenarios::subscriber_ids(&world) {
            let s = world.node_mut(id).unwrap().subscriber_mut().unwrap();
            if let Some(k) = s.shortcuts.keys().next().copied() {
                s.shortcuts.insert(k, None);
                break;
            }
        }
        assert!(!agree(&world, &mut scratch));
        // Crashed supervisor: zero supervisors in the snapshot.
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::default());
        world.crash(scenarios::supervisor_id(&world));
        assert!(!agree(&world, &mut scratch));
    }

    /// Regression for the latent asymmetry: a database entry whose node
    /// is not among the members must fail on *both* paths, and the
    /// diagnostic must say so.
    #[test]
    fn db_referencing_dead_node_fails_on_both_paths() {
        let world = scenarios::legit_world(5, 11, ProtocolConfig::default());
        let sup_id = scenarios::supervisor_id(&world);
        let sup = world.node(sup_id).unwrap().supervisor().unwrap();
        let ids = scenarios::subscriber_ids(&world);
        let dead = ids[2];
        // Present the checker with a member set missing one db-referenced
        // node — exactly what a crashed-but-not-yet-evicted world shows.
        let members = || {
            world
                .iter()
                .filter_map(|(id, a)| a.subscriber().map(|s| (id, s)))
                .filter(|(id, _)| *id != dead)
        };
        let report = check_topology_parts(sup, members());
        assert!(!report.ok());
        assert!(
            report.issues.iter().any(|i| i.contains("dead/unknown")),
            "diagnostic must name the dead reference: {:?}",
            report.issues
        );
        let mut scratch = CheckScratch::default();
        assert!(!fast_check_parts(sup, members(), &mut scratch));
    }

    #[test]
    fn fast_pubs_path_matches_exact_union() {
        use skippub_trie::Publication;
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::default());
        let ids = scenarios::subscriber_ids(&world);
        let subs = |w: &World<Actor>| {
            w.iter()
                .filter_map(|(_, a)| a.subscriber())
                .cloned()
                .collect::<Vec<_>>()
        };
        let check = |w: &World<Actor>| {
            let owned = subs(w);
            let fast = pubs_converged_fast(|| owned.iter());
            let full = publications_converged_of(owned.iter());
            assert_eq!(fast, full);
            fast
        };
        assert_eq!(check(&world), (true, 0));
        // One node learns a publication: divergent (exact union path).
        world
            .node_mut(ids[0])
            .unwrap()
            .subscriber_mut()
            .unwrap()
            .trie
            .insert(Publication::new(ids[0].0, b"solo".to_vec()));
        assert_eq!(check(&world), (false, 1));
        // Everyone learns it: converged via the root-hash fast path.
        for &id in &ids[1..] {
            world
                .node_mut(id)
                .unwrap()
                .subscriber_mut()
                .unwrap()
                .trie
                .insert(Publication::new(ids[0].0, b"solo".to_vec()));
        }
        assert_eq!(check(&world), (true, 1));
    }
}
