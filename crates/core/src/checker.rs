//! Legitimate-state predicates (Definition 1's "set of legitimate states",
//! made executable).
//!
//! The checker evaluates *global* snapshots of a simulated world; the
//! protocol cannot self-certify. A state is legitimate when:
//!
//! 1. the supervisor's database is non-corrupted and matches the live,
//!    membership-wanting subscriber population (Lemma 9 / 10);
//! 2. every subscriber stores exactly the label the database assigns
//!    (Lemma 11);
//! 3. list/ring edges form the sorted ring of Definition 2 — interior
//!    nodes hold `left`/`right`, the extrema hold the wrap edge in `ring`
//!    (Lemma 11);
//! 4. every subscriber's shortcut slots hold exactly the derived shortcut
//!    labels, each resolved to the correct node (Lemma 12).
//!
//! A separate predicate checks publication convergence (Theorem 17): all
//! subscribers' Patricia tries contain the same publication set.

use crate::actor::Actor;
use crate::msg::{Msg, NodeRef};
use crate::subscriber::Subscriber;
use crate::supervisor::Supervisor;
use skippub_ringmath::{shortcut, Label};
use skippub_sim::{NodeId, Protocol, World};
use std::collections::BTreeMap;

/// Outcome of a legitimacy check.
#[derive(Clone, Debug, Default)]
pub struct LegitReport {
    /// Human-readable violations (empty ⇔ legitimate).
    pub issues: Vec<String>,
}

impl LegitReport {
    /// Whether the snapshot is legitimate.
    pub fn ok(&self) -> bool {
        self.issues.is_empty()
    }

    fn note(&mut self, msg: String) {
        if self.issues.len() < 64 {
            self.issues.push(msg);
        }
    }
}

/// Expected edges for one subscriber, derived from the database ring.
struct Expect {
    left: Option<NodeRef>,
    right: Option<NodeRef>,
    ring: Option<NodeRef>,
}

fn expected_edges(sorted: &[(Label, NodeId)], i: usize) -> Expect {
    let n = sorted.len();
    if n == 1 {
        return Expect {
            left: None,
            right: None,
            ring: None,
        };
    }
    let r = |j: usize| NodeRef::new(sorted[j].0, sorted[j].1);
    if i == 0 {
        Expect {
            left: None,
            right: Some(r(1)),
            ring: Some(r(n - 1)),
        }
    } else if i == n - 1 {
        Expect {
            left: Some(r(n - 2)),
            right: None,
            ring: Some(r(0)),
        }
    } else {
        Expect {
            left: Some(r(i - 1)),
            right: Some(r(i + 1)),
            ring: None,
        }
    }
}

fn check_edge(
    report: &mut LegitReport,
    who: NodeId,
    name: &str,
    got: Option<NodeRef>,
    want: Option<NodeRef>,
) {
    match (got, want) {
        (None, None) => {}
        (Some(g), Some(w)) if g == w => {}
        (g, w) => report.note(format!("{who}: {name} is {g:?}, expected {w:?}")),
    }
}

/// Full topology legitimacy check of a world snapshot.
pub fn check_topology(world: &World<Actor>) -> LegitReport {
    // --- locate the supervisor ---
    let supervisors: Vec<NodeId> = world
        .iter()
        .filter(|(_, a)| a.supervisor().is_some())
        .map(|(id, _)| id)
        .collect();
    if supervisors.len() != 1 {
        let mut report = LegitReport::default();
        report.note(format!(
            "expected exactly 1 supervisor, found {}",
            supervisors.len()
        ));
        return report;
    }
    let sup = world
        .node(supervisors[0])
        .and_then(Actor::supervisor)
        .expect("found above");
    check_topology_parts(
        sup,
        world.iter().filter_map(|(id, a)| a.subscriber().map(|s| (id, s))),
    )
}

/// Topology legitimacy over an explicit supervisor + member set — the
/// entry point the multi-topic/sharded backends use to judge one topic
/// *by reference* (no per-poll world cloning).
pub fn check_topology_parts<'a>(
    sup: &Supervisor,
    members: impl IntoIterator<Item = (NodeId, &'a Subscriber)>,
) -> LegitReport {
    let mut report = LegitReport::default();

    // --- database validity (Lemma 9) ---
    let mut db: Vec<(Label, NodeId)> = Vec::with_capacity(sup.database.len());
    for (l, v) in &sup.database {
        match v {
            None => report.note(format!("database has (label {l}, ⊥)")),
            Some(node) => db.push((*l, *node)),
        }
    }
    // Labels must be exactly {l(0), …, l(n−1)} — as a *set*; the BTreeMap
    // iterates them in ring order, not insertion order.
    let n = db.len() as u64;
    for (l, _) in &db {
        match l.index() {
            Some(i) if i < n => {}
            _ => report.note(format!("database label {l} is outside l(0..{n})")),
        }
    }
    {
        let mut nodes: Vec<NodeId> = db.iter().map(|(_, v)| *v).collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() as u64 != n {
            report.note("database maps several labels to one subscriber".into());
        }
    }
    // --- membership agreement (Lemma 10) ---
    let members: BTreeMap<NodeId, &Subscriber> = members.into_iter().collect();
    for (_, v) in &db {
        match members.get(v) {
            None => report.note(format!("database references dead/unknown node {v}")),
            Some(s) if !s.wants_membership => {
                report.note(format!("database still holds unsubscribing node {v}"))
            }
            Some(_) => {}
        }
    }
    for (id, s) in &members {
        if s.wants_membership && !db.iter().any(|(_, v)| v == id) {
            report.note(format!("live subscriber {id} missing from database"));
        }
        if !s.wants_membership && s.label.is_some() {
            report.note(format!("departed subscriber {id} still labelled"));
        }
    }
    if !report.ok() {
        return report; // edge checks below assume a sane database
    }

    // --- per-subscriber state (Lemmas 11–12) ---
    // db is sorted by label (BTreeMap order = ring order).
    for (i, (label, v)) in db.iter().enumerate() {
        let Some(s) = members.get(v) else { continue };
        if s.label != Some(*label) {
            report.note(format!(
                "{v}: label is {:?}, database says {label}",
                s.label
            ));
            continue;
        }
        let want = expected_edges(&db, i);
        check_edge(&mut report, *v, "left", s.left, want.left);
        check_edge(&mut report, *v, "right", s.right, want.right);
        check_edge(&mut report, *v, "ring", s.ring, want.ring);
        // Shortcuts (only meaningful when ring edges are right).
        if s.cfg.shortcuts {
            let eff_left = s.eff_left();
            let eff_right = s.eff_right();
            if let (Some(el), Some(er)) = (eff_left, eff_right) {
                let expected = shortcut::expected_shortcuts(*label, el.label, er.label);
                let want_map: BTreeMap<Label, NodeId> = expected
                    .iter()
                    .filter_map(|t| {
                        db.iter()
                            .find(|(l, _)| *l == t.label)
                            .map(|(_, id)| (t.label, *id))
                    })
                    .collect();
                if want_map.len() != expected.len() {
                    report.note(format!(
                        "{v}: some expected shortcut labels missing from db"
                    ));
                }
                let got: BTreeMap<Label, Option<NodeId>> = s.shortcuts.clone();
                for (l, want_id) in &want_map {
                    match got.get(l) {
                        Some(Some(id)) if id == want_id => {}
                        other => report.note(format!(
                            "{v}: shortcut {l} is {other:?}, expected {want_id}"
                        )),
                    }
                }
                for l in got.keys() {
                    if !want_map.contains_key(l) {
                        report.note(format!("{v}: unexpected shortcut slot {l}"));
                    }
                }
            } else if db.len() > 1 {
                report.note(format!("{v}: missing effective ring neighbours"));
            }
        }
    }
    report
}

/// Convenience wrapper: `true` iff the snapshot is topology-legitimate.
pub fn is_legitimate(world: &World<Actor>) -> bool {
    check_topology(world).ok()
}

/// Publication convergence (Theorem 17): every membership-wanting
/// subscriber stores the same key set, which is the union of all stored
/// key sets. Returns `(converged, union_size)`.
pub fn publications_converged(world: &World<Actor>) -> (bool, usize) {
    publications_converged_of(world.iter().filter_map(|(_, a)| a.subscriber()))
}

/// [`publications_converged`] over an explicit subscriber set — used by
/// the multi-topic/sharded backends to judge one topic by reference.
pub fn publications_converged_of<'a>(
    subs: impl IntoIterator<Item = &'a Subscriber>,
) -> (bool, usize) {
    let tries: Vec<&Subscriber> = subs
        .into_iter()
        .filter(|s| s.wants_membership)
        .collect();
    let mut union: std::collections::BTreeSet<skippub_bits::BitStr> =
        std::collections::BTreeSet::new();
    for s in &tries {
        for k in s.trie.keys() {
            union.insert(k);
        }
    }
    let ok = tries.iter().all(|s| s.trie.len() == union.len());
    let hashes: Vec<_> = tries.iter().map(|s| s.trie.root_hash()).collect();
    let ok = ok && hashes.windows(2).all(|w| w[0] == w[1]);
    (ok, union.len())
}

/// Snapshot of message-kind counters for closure experiments: in a
/// legitimate state, topology-mutating messages must stay absent.
pub fn mutating_kinds() -> &'static [&'static str] {
    &[
        "Intro",
        "SetData",
        "Subscribe",
        "Unsubscribe",
        "RemoveConnections",
    ]
}

/// Count of topology-mutating messages sent so far in a world.
pub fn mutating_msgs(world: &World<Actor>) -> u64 {
    mutating_kinds()
        .iter()
        .map(|k| world.metrics().kind(k))
        .sum()
}

/// Helper for experiments: a stricter legitimacy that also requires the
/// in-flight channels to carry no mutating messages. Note `SetData`
/// *does* keep flowing in legitimate states (the supervisor's round-robin
/// refresh), so it is exempted here; closure is about *effect*, which
/// experiment E12 verifies by diffing state snapshots.
pub fn world_quiescent(world: &World<Actor>) -> bool {
    is_legitimate(world)
}

// `Protocol` must be in scope for `World::<Actor>` methods used here.
#[allow(unused)]
fn _assert_protocol<T: Protocol<Msg = Msg>>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::ProtocolConfig;

    #[test]
    fn legit_world_passes() {
        for n in [1usize, 2, 3, 4, 5, 8, 16, 33] {
            let world = scenarios::legit_world(n, 7, ProtocolConfig::topology_only());
            let report = check_topology(&world);
            assert!(report.ok(), "n={n}: {:?}", report.issues);
        }
    }

    #[test]
    fn detects_wrong_label() {
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let ids = scenarios::subscriber_ids(&world);
        let s = world.node_mut(ids[0]).unwrap().subscriber_mut().unwrap();
        s.label = Some("111".parse().unwrap());
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn detects_missing_edge() {
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let ids = scenarios::subscriber_ids(&world);
        let s = world.node_mut(ids[1]).unwrap().subscriber_mut().unwrap();
        s.left = None;
        s.right = None;
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn detects_corrupt_database() {
        let mut world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let sup_id = scenarios::supervisor_id(&world);
        let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
        let l: Label = "0101".parse().unwrap();
        sup.database.insert(l, None);
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn detects_wrong_shortcut() {
        let mut world = scenarios::legit_world(8, 7, ProtocolConfig::topology_only());
        let ids = scenarios::subscriber_ids(&world);
        for id in ids {
            let s = world.node_mut(id).unwrap().subscriber_mut().unwrap();
            if !s.shortcuts.is_empty() {
                let k = *s.shortcuts.keys().next().unwrap();
                s.shortcuts.insert(k, None);
                break;
            }
        }
        assert!(!is_legitimate(&world));
    }

    #[test]
    fn publications_converged_on_empty() {
        let world = scenarios::legit_world(4, 7, ProtocolConfig::topology_only());
        let (ok, n) = publications_converged(&world);
        assert!(ok);
        assert_eq!(n, 0);
    }
}
