//! Incremental verdict caching for the polling predicates
//! (`is_legitimate` / `publications_converged`) — the read side of the
//! dirty-channel scheme described in `crate::dirty` and DESIGN.md
//! § Incremental checking.
//!
//! Each topic's cached verdict is keyed on its dirty-channel version:
//! a poll re-judges a topic **only if the version moved** since the
//! cached verdict was produced, and a re-judge iterates the topic's
//! **member index** (topic → subscriber ids, maintained by the facade
//! ops) instead of scanning every node in the world once per topic.
//! Steady-state polls therefore cost O(topics) version reads — zero
//! allocations (counting-allocator-tested) — instead of the old
//! O(topics × world) scan, and a churn burst touching `k` topics costs
//! O(Σ members of those k topics).
//!
//! Correctness: the verdict is **identical** to the from-scratch
//! checker on every input. The judge functions are the boolean twins in
//! [`crate::checker`] (property-tested equal to the diagnostic path),
//! and a cached verdict is reused only while the topic's version holds
//! still, which the invalidation argument (every verdict-moving
//! transition bumps the version) makes exact — cross-checked every
//! round by the churn conformance tests.

use crate::checker::{self, CheckScratch};
use crate::replica::ReplicaGroup;
use crate::topics::{MultiActor, TopicId};
use crate::{Actor, Supervisor};
use skippub_sim::{NodeId, NodeView, World};

/// One cached boolean verdict: valid while the topic's dirty-channel
/// version still equals `version`.
#[derive(Clone, Copy, Debug)]
struct Cached<T: Copy> {
    version: u64,
    value: T,
}

/// Sentinel "never judged / invalidated" version. Dirty counters count
/// up from 0 one bump at a time, so they never reach it.
const INVALID: u64 = u64::MAX;

impl<T: Copy + Default> Default for Cached<T> {
    fn default() -> Self {
        Cached {
            version: INVALID,
            value: T::default(),
        }
    }
}

/// Cached replica-agreement verdict, keyed on a [`ReplicaGroup`]'s
/// monotone version counter — the incremental-checker extension for
/// replicated supervisors. With `k ≥ 2` replicas, legitimacy
/// additionally requires all live replicas to hold identical replayed
/// database states (the group behaves as *one logical supervisor*);
/// this cache makes that an O(1) version read per poll, re-comparing
/// digests only when the group actually changed.
#[derive(Default)]
pub(crate) struct ReplicaAgreement {
    cache: Cached<bool>,
}

impl ReplicaAgreement {
    /// Cached-or-recomputed agreement of `group` (`None` = unreplicated
    /// supervisor, trivially one logical supervisor).
    pub(crate) fn check(&mut self, group: Option<&ReplicaGroup>) -> bool {
        let Some(g) = group else { return true };
        let version = g.version();
        if self.cache.version == version {
            return self.cache.value;
        }
        let value = g.agreement();
        self.cache = Cached { version, value };
        value
    }

    /// Multi-group variant (the sharded backend: one group per shard).
    /// Versions are monotone, so their sum strictly increases whenever
    /// any group changes — a valid cache key for the conjunction.
    pub(crate) fn check_many(&mut self, groups: &[ReplicaGroup]) -> bool {
        if groups.is_empty() {
            return true;
        }
        let version: u64 = groups.iter().map(|g| g.version()).sum();
        if self.cache.version == version {
            return self.cache.value;
        }
        let value = groups.iter().all(|g| g.agreement());
        self.cache = Cached { version, value };
        value
    }

    fn invalidate(&mut self) {
        self.cache.version = INVALID;
    }
}

/// Verdict caches + per-topic member index for the multi-topic world
/// shapes (serial and partitioned).
pub(crate) struct IncChecker {
    topo: Vec<Cached<bool>>,
    pubs: Vec<Cached<(bool, usize)>>,
    /// Per-topic member ids, ascending. A superset of the true member
    /// set between re-judges (ids whose instance dropped are purged on
    /// the next re-judge, which the instance-drop bump guarantees
    /// happens before the verdict is read); never missing a true member
    /// unless `members_stale`.
    members: Vec<Vec<NodeId>>,
    scratch: CheckScratch,
    /// Set by the raw-world escape hatch: the next judge rebuilds the
    /// member index from a full world scan.
    members_stale: bool,
    /// Replica-agreement verdict (replicated supervisors).
    replicas: ReplicaAgreement,
    /// A/B switch: `true` routes the facade predicates through the
    /// pre-PR from-scratch path (kept callable for benchmarking).
    full: bool,
}

impl IncChecker {
    pub(crate) fn new(topics: u32) -> Self {
        IncChecker {
            topo: vec![Cached::default(); topics as usize],
            pubs: vec![Cached::default(); topics as usize],
            members: vec![Vec::new(); topics as usize],
            scratch: CheckScratch::default(),
            members_stale: false,
            replicas: ReplicaAgreement::default(),
            full: false,
        }
    }

    /// Cached replica-agreement component of the legitimacy predicate.
    pub(crate) fn replicas_agree(&mut self, group: Option<&ReplicaGroup>) -> bool {
        self.replicas.check(group)
    }

    /// Cached agreement over several replica groups (sharded backend:
    /// one per shard; an empty slice means replication is off).
    pub(crate) fn replica_groups_agree(&mut self, groups: &[ReplicaGroup]) -> bool {
        self.replicas.check_many(groups)
    }

    /// Routes the facade predicates through the from-scratch checker
    /// (`true`) or the incremental layer (`false`, the default).
    pub(crate) fn set_full(&mut self, full: bool) {
        self.full = full;
        self.invalidate_all();
    }

    pub(crate) fn full(&self) -> bool {
        self.full
    }

    /// Drops every cached verdict and schedules a member-index rebuild —
    /// called when raw world access may have changed anything.
    pub(crate) fn invalidate_all(&mut self) {
        for c in &mut self.topo {
            c.version = INVALID;
        }
        for c in &mut self.pubs {
            c.version = INVALID;
        }
        self.replicas.invalidate();
        self.members_stale = true;
    }

    /// Records `id` as a member of `topic` (subscribe/join ops).
    pub(crate) fn add_member(&mut self, topic: TopicId, id: NodeId) {
        let list = &mut self.members[topic.0 as usize];
        if let Err(pos) = list.binary_search(&id) {
            list.insert(pos, id);
        }
    }

    /// Removes `id` from `topic`'s index (crash ops).
    pub(crate) fn remove_member(&mut self, topic: TopicId, id: NodeId) {
        let list = &mut self.members[topic.0 as usize];
        if let Ok(pos) = list.binary_search(&id) {
            list.remove(pos);
        }
    }

    fn rebuild_members<V: NodeView<MultiActor>>(&mut self, world: &V) {
        for list in &mut self.members {
            list.clear();
        }
        for (id, actor) in world.nodes() {
            for (t, _) in actor.subscriptions() {
                // World iteration ascends by id, so pushes stay sorted.
                self.members[t.0 as usize].push(id);
            }
        }
        self.members_stale = false;
    }

    /// Whole-system legitimacy: every topic's cached-or-rejudged
    /// verdict. `topo_version(t)` reads topic `t`'s topology channel,
    /// `sup_of(t)` names its responsible supervisor — the only two
    /// points where the multi-topic and sharded backends differ.
    pub(crate) fn all_legit<V: NodeView<MultiActor>>(
        &mut self,
        world: &V,
        topics: u32,
        topo_version: impl Fn(u32) -> u64,
        sup_of: impl Fn(TopicId) -> NodeId,
    ) -> bool {
        (0..topics).all(|t| {
            let topic = TopicId(t);
            self.topic_legit(world, topo_version(t), sup_of(topic), topic)
        })
    }

    /// Whole-system publication convergence: converged iff every topic
    /// converged; the total is the sum of per-topic union sizes either
    /// way (matching the single-topic backends).
    pub(crate) fn all_pubs<V: NodeView<MultiActor>>(
        &mut self,
        world: &V,
        topics: u32,
        pubs_version: impl Fn(u32) -> u64,
    ) -> (bool, usize) {
        let mut all_ok = true;
        let mut total = 0;
        for t in 0..topics {
            let (ok, n) = self.topic_pubs(world, pubs_version(t), TopicId(t));
            all_ok &= ok;
            total += n;
        }
        (all_ok, total)
    }

    /// Topology verdict for one topic: cached while `version` holds.
    fn topic_legit<V: NodeView<MultiActor>>(
        &mut self,
        world: &V,
        version: u64,
        sup_id: NodeId,
        topic: TopicId,
    ) -> bool {
        let t = topic.0 as usize;
        if self.topo[t].version == version {
            return self.topo[t].value;
        }
        if self.members_stale {
            self.rebuild_members(world);
        }
        // Purge ids whose instance is gone (departures completed since
        // the last judge), then judge the remaining members by reference.
        self.members[t]
            .retain(|id| world.peek(*id).is_some_and(|a| a.topic_subscriber(topic).is_some()));
        let members = self.members[t]
            .iter()
            .filter_map(|id| world.peek(*id).and_then(|a| a.topic_subscriber(topic).map(|s| (*id, s))));
        let ok = match world.peek(sup_id).and_then(|a| a.topic_supervisor(topic)) {
            Some(sup) => checker::fast_check_parts(sup, members, &mut self.scratch),
            // Topic never contacted: judged against an empty supervisor.
            None => checker::fast_check_parts(&Supervisor::new(sup_id), members, &mut self.scratch),
        };
        self.topo[t] = Cached { version, value: ok };
        ok
    }

    /// Publication-convergence verdict for one topic: cached while
    /// `version` holds; root-hash fast path on a re-judge.
    fn topic_pubs<V: NodeView<MultiActor>>(
        &mut self,
        world: &V,
        version: u64,
        topic: TopicId,
    ) -> (bool, usize) {
        let t = topic.0 as usize;
        if self.pubs[t].version == version {
            return self.pubs[t].value;
        }
        if self.members_stale {
            self.rebuild_members(world);
        }
        // Ids without an instance are skipped, not purged — purging is
        // the topology judge's job, and a dropped instance (always
        // non-membership-wanting by then) cannot affect this predicate.
        let value = checker::pubs_converged_fast(|| {
            self.members[t]
                .iter()
                .filter_map(|id| world.peek(*id).and_then(|a| a.topic_subscriber(topic)))
        });
        self.pubs[t] = Cached { version, value };
        value
    }
}

/// Verdict caches for the single-topic [`World<Actor>`] backend: same
/// version-keyed invalidation; a re-judge runs the boolean whole-world
/// checker (one topic, so the member index degenerates to "the world").
pub(crate) struct SimChecker {
    topo: Cached<bool>,
    pubs: Cached<(bool, usize)>,
    scratch: CheckScratch,
    /// Replica-agreement verdict (replicated supervisors).
    replicas: ReplicaAgreement,
    full: bool,
}

impl SimChecker {
    pub(crate) fn new() -> Self {
        SimChecker {
            topo: Cached::default(),
            pubs: Cached::default(),
            scratch: CheckScratch::default(),
            replicas: ReplicaAgreement::default(),
            full: false,
        }
    }

    /// Cached replica-agreement component of the legitimacy predicate.
    pub(crate) fn replicas_agree(&mut self, group: Option<&ReplicaGroup>) -> bool {
        self.replicas.check(group)
    }

    pub(crate) fn set_full(&mut self, full: bool) {
        self.full = full;
        self.invalidate_all();
    }

    pub(crate) fn full(&self) -> bool {
        self.full
    }

    pub(crate) fn invalidate_all(&mut self) {
        self.topo.version = INVALID;
        self.pubs.version = INVALID;
        self.replicas.invalidate();
    }

    pub(crate) fn legit(&mut self, world: &World<Actor>, version: u64) -> bool {
        if self.topo.version == version {
            return self.topo.value;
        }
        let ok = checker::fast_check_topology(world, &mut self.scratch);
        self.topo = Cached { version, value: ok };
        ok
    }

    pub(crate) fn pubs(&mut self, world: &World<Actor>, version: u64) -> (bool, usize) {
        if self.pubs.version == version {
            return self.pubs.value;
        }
        let value = checker::pubs_converged_fast(|| {
            world.iter().filter_map(|(_, a)| a.subscriber())
        });
        self.pubs = Cached { version, value };
        value
    }
}
