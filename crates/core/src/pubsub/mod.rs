//! The backend-agnostic client API: one [`PubSub`] facade over every way
//! this repository can run the paper's system.
//!
//! The paper describes *one* abstraction — supervised topic-based
//! publish-subscribe with subscribe/unsubscribe/publish and
//! self-stabilization guarantees — and this module exposes it through one
//! trait, regardless of which machinery executes the protocol:
//!
//! | backend | construction | what runs underneath |
//! |---|---|---|
//! | [`SimBackend`] | [`SystemBuilder::build_sim`] | single-topic deterministic simulator (synchronous rounds) |
//! | [`SimBackend`] (chaos) | [`SystemBuilder::build_chaos`] | same, under the chaos scheduler (random delay/reorder) |
//! | [`MultiTopicBackend`] | [`SystemBuilder::build_multi`] | one `BuildSR` instance per topic at one supervisor (§4) |
//! | [`ShardedBackend`] | [`SystemBuilder::build_sharded`] | topics consistent-hashed onto multiple supervisors (§1.3) |
//! | `NetBackend` (in `skippub-net`) | `NetBackend::from_builder` | one OS thread per node, real delays; rounds become wall-clock quiescence polling |
//!
//! A scenario written against `&mut dyn PubSub` therefore runs unmodified
//! on all of them — the cross-backend conformance suite
//! (`tests/facade_conformance.rs`) asserts that the *delivered publication
//! sets* agree across backends, which is exactly the comparison
//! PSVR-style related work makes central.
//!
//! Clients observe deliveries through [`PubSub::drain_events`] instead of
//! reaching into `subscriber.trie`; topology inspection goes through
//! [`PubSub::snapshot`], which yields a per-topic [`World`] the
//! [`crate::checker`] predicates (and any custom probe) can judge.

mod incremental;
mod multi;
pub mod ops;
mod sharded;
mod sim;

pub use multi::MultiTopicBackend;
pub use ops::Op;
pub use sharded::{ShardedBackend, SHARD_SUPERVISOR_BASE};
pub use sim::SimBackend;

use crate::topics::TopicId;
use crate::{Actor, ProtocolConfig};
use skippub_bits::BitStr;
use skippub_sim::{ChaosConfig, FaultCounts, FaultSpec, NodeId, World};
pub use skippub_snapshot::BackendSnapshot;
use skippub_snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use skippub_trie::{PatriciaTrie, Publication};
use std::collections::{BTreeMap, BTreeSet};

/// One publication observed in a subscriber's store — the unit returned
/// by [`PubSub::drain_events`]. Includes the subscriber's own
/// publications (a local publish "delivers" to its author immediately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Topic the publication belongs to.
    pub topic: TopicId,
    /// The derived publication key `h̄_m(author, payload)`.
    pub key: BitStr,
    /// ID of the publishing subscriber.
    pub author: u64,
    /// The published content.
    pub payload: Vec<u8>,
}

/// Backend-agnostic traffic counters, comparable across simulated and
/// threaded executions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Progress units executed so far: simulated rounds, or wall-clock
    /// poll slices for the threaded backend.
    pub steps: u64,
    /// Messages handed to the transport.
    pub sent: u64,
    /// Messages delivered to a handler.
    pub delivered: u64,
    /// Messages consumed without effect (crashed / unknown receivers).
    pub dropped: u64,
    /// High-water mark of in-flight messages, sampled at step starts.
    /// For partitioned backends this is the sum of per-partition peaks
    /// (a deterministic, thread-count-invariant upper bound on the true
    /// simultaneous peak); 0 for backends that do not track it.
    pub peak_in_flight: u64,
    /// Messages discarded by the link-fault plane (loss rules and
    /// scheduled partitions); disjoint from `dropped`, which counts the
    /// protocol-level drops (crashed / unknown receivers).
    pub dropped_by_fault: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages pushed out of arrival order by reordering faults.
    pub reordered: u64,
    /// Messages held back extra rounds by delay faults.
    pub delayed: u64,
    /// Per-partition counters, indexed by partition (= shard) — empty
    /// for unpartitioned backends. The existing total fields above stay
    /// the sum over partitions, so parallel runs remain comparable with
    /// serial ones while staying observable per shard.
    pub per_partition: Vec<PartitionStats>,
}

impl Stats {
    /// Max/mean ratio of the given per-partition extractor — the
    /// skew gauge the rebalancer optimizes. `1.0` is a perfectly even
    /// spread; returns `1.0` when unpartitioned or when every
    /// partition is at zero (an idle system is not skewed). Computed
    /// from the integer counters on demand so `Stats` stays `Eq` and
    /// byte-comparable across thread counts.
    fn imbalance(&self, f: impl Fn(&PartitionStats) -> u64) -> f64 {
        if self.per_partition.len() < 2 {
            return 1.0;
        }
        let total: u64 = self.per_partition.iter().map(&f).sum();
        if total == 0 {
            return 1.0;
        }
        let max = self.per_partition.iter().map(&f).max().unwrap_or(0);
        (max * self.per_partition.len() as u64) as f64 / total as f64
    }

    /// Max/mean imbalance of per-partition *delivered* messages — the
    /// skew the paper's workload induces when hot topics hash onto one
    /// shard.
    pub fn delivered_imbalance(&self) -> f64 {
        self.imbalance(|p| p.delivered)
    }

    /// Max/mean imbalance of per-partition node activations (`stepped`)
    /// — the executor-level work gauge: a partition full of idle nodes
    /// still steps them, so this complements [`delivered_imbalance`]
    /// with the cost of *hosting* rather than *serving*.
    ///
    /// [`delivered_imbalance`]: Stats::delivered_imbalance
    pub fn stepped_imbalance(&self) -> f64 {
        self.imbalance(|p| p.stepped)
    }

    /// Total cross-partition mailbox lock acquisitions — with batched
    /// flushing, bounded by `(partitions + partitions²) · steps`
    /// regardless of envelope volume.
    pub fn lock_acquisitions(&self) -> u64 {
        self.per_partition.iter().map(|p| p.lock_acquisitions).sum()
    }
}

/// Traffic counters of one partition of a partitioned backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Messages handed to the transport by this partition's nodes.
    pub sent: u64,
    /// Messages delivered to handlers in this partition.
    pub delivered: u64,
    /// Messages consumed without effect in this partition.
    pub dropped: u64,
    /// Cross-partition envelopes this partition emitted.
    pub cross_envelopes: u64,
    /// This partition's own in-flight high-water mark.
    pub peak_in_flight: u64,
    /// Node activations this partition executed (its share of the
    /// executor's per-round work, independent of message traffic).
    pub stepped: u64,
    /// Mailbox lock acquisitions this partition performed: one per
    /// inbound drain plus one per non-empty outbound batch — data-
    /// determined, so identical across thread counts.
    pub lock_acquisitions: u64,
    /// Messages this partition's fault plane discarded.
    pub dropped_by_fault: u64,
    /// Extra copies this partition's fault plane injected.
    pub duplicated: u64,
    /// Messages this partition's fault plane reordered.
    pub reordered: u64,
    /// Messages this partition's fault plane delayed.
    pub delayed: u64,
}

/// Copies simulator [`FaultCounts`] onto the matching [`Stats`] fields.
pub(crate) fn apply_fault_counts(stats: &mut Stats, c: FaultCounts) {
    stats.dropped_by_fault = c.dropped_by_fault;
    stats.duplicated = c.duplicated;
    stats.reordered = c.reordered;
    stats.delayed = c.delayed;
}

/// Copies one partition's [`FaultCounts`] onto its [`PartitionStats`].
pub(crate) fn apply_partition_fault_counts(p: &mut PartitionStats, c: FaultCounts) {
    p.dropped_by_fault = c.dropped_by_fault;
    p.duplicated = c.duplicated;
    p.reordered = c.reordered;
    p.delayed = c.delayed;
}

/// The simulated backends a [`SystemBuilder`] can construct behind a
/// `Box<dyn PubSub>`. (The threaded backend lives in `skippub-net`,
/// which depends on this crate; build it with `NetBackend::from_builder`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Single-topic deterministic simulator, synchronous rounds.
    Sim,
    /// Single-topic simulator under the chaos scheduler.
    Chaos,
    /// Multi-topic system (§4): one `BuildSR` per topic, one supervisor.
    MultiTopic,
    /// Multi-topic system with topics consistent-hashed onto multiple
    /// supervisors (§1.3).
    Sharded,
}

impl BackendKind {
    /// All simulated backend kinds, for conformance sweeps.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::Sim,
            BackendKind::Chaos,
            BackendKind::MultiTopic,
            BackendKind::Sharded,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Chaos => "chaos",
            BackendKind::MultiTopic => "multi-topic",
            BackendKind::Sharded => "sharded",
        }
    }
}

/// The backend-agnostic client API of the supervised publish-subscribe
/// system.
///
/// Operations on unknown or crashed *nodes* are total: rejected via a
/// return value (`publish`, `seed_publication`) or no-ops, matching the
/// protocol's own tolerance of corrupted inputs. Passing a `TopicId`
/// outside `0..topic_count` is a caller bug and panics (single-topic
/// backends serve exactly `TopicId(0)`).
pub trait PubSub {
    /// Short backend name for tables and test output.
    fn backend_name(&self) -> &'static str;

    /// Number of topics this system serves (`1` for single-topic
    /// backends).
    fn topic_count(&self) -> u32;

    /// Adds a fresh subscriber and subscribes it to `topic`; the join
    /// happens through the protocol (first `Timeout` sends `Subscribe`).
    /// Returns the new node's ID. Client IDs are assigned identically
    /// (1, 2, 3, …) across backends so publication keys — derived from
    /// `(author, payload)` — agree between executions.
    fn subscribe(&mut self, topic: TopicId) -> NodeId;

    /// Subscribes the *existing* client `id` to `topic`. On single-topic
    /// backends this re-affirms membership (a node that previously
    /// unsubscribed will rejoin).
    fn join(&mut self, id: NodeId, topic: TopicId);

    /// Asks client `id` to leave `topic`; the system self-stabilizes
    /// around the departure (Lemma 6).
    fn unsubscribe(&mut self, id: NodeId, topic: TopicId);

    /// Publishes `payload` at client `id` on `topic`; returns the derived
    /// publication key, or `None` if `id` is not a live subscriber of
    /// `topic`.
    fn publish(&mut self, id: NodeId, topic: TopicId, payload: Vec<u8>) -> Option<BitStr>;

    /// Inserts `publication` directly into `id`'s store for `topic`,
    /// bypassing flooding — models a publication that arrived through an
    /// unmodelled channel (Theorem 17's arbitrary initial distribution).
    /// Returns whether the publication was new.
    fn seed_publication(&mut self, id: NodeId, topic: TopicId, publication: Publication) -> bool;

    /// Crashes node `id` without warning (§3.3): state vanishes,
    /// in-flight messages to it are consumed.
    fn crash(&mut self, id: NodeId);

    /// Failure-detector feed: report `id` crashed to the supervisor(s).
    /// The harness decides the detection delay, as in the paper's
    /// eventually-correct detector model.
    fn report_crash(&mut self, id: NodeId);

    /// One unit of progress: a synchronous round (sim), a chaos round
    /// (chaos), or a short wall-clock slice (threaded backend).
    fn step(&mut self);

    /// Whether every topic's topology currently satisfies the
    /// legitimate-state predicate (Definition 1).
    fn is_legitimate(&self) -> bool;

    /// Whether all subscribers (per topic) store the same publication
    /// set (Theorem 17); returns `(converged, total publications)`.
    fn publications_converged(&self) -> (bool, usize);

    /// Returns the publications that appeared in `id`'s store since the
    /// last drain (ordered by topic, then key). Empty for unknown or
    /// crashed nodes.
    fn drain_events(&mut self, id: NodeId) -> Vec<Delivery>;

    /// IDs of live clients (excluding supervisors), ascending.
    fn subscriber_ids(&self) -> Vec<NodeId>;

    /// A deterministic single-topic snapshot of `topic`: the responsible
    /// supervisor plus every subscriber instance of that topic, cloned
    /// into a fresh [`World`] that [`crate::checker`] predicates (or any
    /// custom probe) can judge.
    fn snapshot(&self, topic: TopicId) -> World<Actor>;

    /// Backend-agnostic traffic counters.
    fn stats(&self) -> Stats;

    /// Serializes this backend's **complete** state — actor states,
    /// in-flight channels, RNG stream positions, payload pool, delivery
    /// cursors — into a portable snapshot that [`restore`] turns back
    /// into a running backend whose continued execution is
    /// byte-identical to the uninterrupted original. Backends without
    /// checkpoint support (the threaded `NetBackend`) return `Err`.
    fn save_snapshot(&self) -> Result<BackendSnapshot, String> {
        Err(format!(
            "backend {:?} does not support snapshots",
            self.backend_name()
        ))
    }

    /// Arms (or disarms, with `None`) the deterministic link-fault
    /// plane: from the *current* step on, messages cross channels that
    /// may drop, duplicate, reorder, or delay them, and scheduled
    /// partitions sever edge sets for bounded windows — all drawn from
    /// per-link SplitMix64 streams seeded by `spec.seed`, so outcomes
    /// are byte-identical across worker-thread counts. Backends without
    /// fault injection (the threaded `NetBackend`) ignore the call.
    fn set_faults(&mut self, spec: Option<FaultSpec>) {
        let _ = spec;
    }

    /// Cumulative fault-plane counters (all zero when no plane is
    /// armed or the backend does not support injection).
    fn fault_counts(&self) -> FaultCounts {
        FaultCounts::default()
    }

    /// Number of supervisor replicas behind each logical supervisor
    /// endpoint (`1` = the paper's unreplicated supervisor).
    fn supervisor_replicas(&self) -> usize {
        1
    }

    /// Crashes the **primary supervisor replica** responsible for
    /// `topic`: the endpoint's state is wiped (the process died) and,
    /// when a live backup exists, the deterministic election installs
    /// the new primary's replayed state at the same endpoint. Returns
    /// whether a failover happened; with one replica this is a uniform
    /// no-op (`false`) — the paper's "supervisor never crashes"
    /// assumption is kept rather than destroying the system.
    fn crash_supervisor(&mut self, topic: TopicId) -> bool {
        let _ = topic;
        false
    }

    /// Completed supervisor failovers across all replica groups.
    fn supervisor_failovers(&self) -> u64 {
        0
    }

    /// Steps until every topic is legitimate; returns `(steps, reached)`.
    fn until_legit(&mut self, max_steps: u64) -> (u64, bool) {
        let mut s = 0;
        loop {
            if self.is_legitimate() {
                return (s, true);
            }
            if s >= max_steps {
                return (s, false);
            }
            self.step();
            s += 1;
        }
    }

    /// Steps until all publication stores agree; returns
    /// `(steps, reached)`.
    fn until_pubs_converged(&mut self, max_steps: u64) -> (u64, bool) {
        let mut s = 0;
        loop {
            if self.publications_converged().0 {
                return (s, true);
            }
            if s >= max_steps {
                return (s, false);
            }
            self.step();
            s += 1;
        }
    }
}

/// Per-`(node, topic)` cursor state: the key set already reported, plus
/// the trie's Merkle root hash at the last drain. An unchanged root
/// hash means an unchanged key set (the trie crate pins this), so a
/// repeat drain of a quiet topic is **O(1) with zero allocation** — no
/// leaf walk, no key clones.
#[derive(Clone, Debug, Default)]
struct SeenTopic {
    root: Option<skippub_bits::Hash128>,
    keys: BTreeSet<BitStr>,
}

/// Bookkeeping helper for implementing [`PubSub::drain_events`] on a new
/// backend: remembers, per `(node, topic)`, which publication keys have
/// already been reported, and diffs a trie against that cursor.
#[derive(Clone, Debug, Default)]
pub struct EventCursor {
    seen: BTreeMap<(u64, u32), SeenTopic>,
}

impl EventCursor {
    /// Fresh cursor: every stored publication counts as undelivered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all bookkeeping for `id`. Backends call this when a node
    /// crashes so dead nodes' key sets do not accumulate across a
    /// long-running churn workload.
    pub fn forget(&mut self, id: NodeId) {
        self.seen.retain(|&(nid, _), _| nid != id.0);
    }

    /// Diffs the given per-topic tries of node `id` against the cursor,
    /// returning (and remembering) every publication not yet reported.
    /// A drain whose tries are all unchanged since the last call (the
    /// common polling case) returns an empty `Vec` without allocating:
    /// the per-topic root-hash short-circuit skips the leaf walks, and
    /// an empty `Vec` holds no heap buffer.
    pub fn drain<'a>(
        &mut self,
        id: NodeId,
        tries: impl IntoIterator<Item = (TopicId, &'a PatriciaTrie)>,
    ) -> Vec<Delivery> {
        let mut out = Vec::new();
        for (topic, trie) in tries {
            let seen = self.seen.entry((id.0, topic.0)).or_default();
            // Root-hash short-circuit: same Merkle root ⇔ same key set
            // as the last drain ⇒ nothing new on this topic.
            let root = trie.root_hash();
            if seen.root == root {
                continue;
            }
            for p in trie.iter_publications() {
                if !seen.keys.contains(p.key()) {
                    seen.keys.insert(p.key().clone());
                    out.push(Delivery {
                        topic,
                        key: p.key().clone(),
                        author: p.author(),
                        payload: p.payload().to_vec(),
                    });
                }
            }
            seen.root = root;
        }
        out.sort_by(|a, b| (a.topic, &a.key).cmp(&(b.topic, &b.key)));
        out
    }
}

impl Snap for SeenTopic {
    fn save(&self, w: &mut SnapWriter) {
        self.root.save(w);
        self.keys.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SeenTopic {
            root: Snap::load(r)?,
            keys: Snap::load(r)?,
        })
    }
}

/// Cursors are part of a backend snapshot: which publications have
/// already been reported to the client is observable state (a restored
/// backend must not re-deliver, nor swallow undelivered ones).
impl Snap for EventCursor {
    fn save(&self, w: &mut SnapWriter) {
        self.seen.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EventCursor {
            seen: Snap::load(r)?,
        })
    }
}

/// Rebuilds a running backend from a snapshot produced by
/// [`PubSub::save_snapshot`], dispatching on the snapshot's kind tag.
///
/// The restored backend's continued execution is byte-identical to the
/// original's: same RNG draws, same message schedules, same delivered
/// sets, same checker verdicts — the facade conformance suite replays
/// restored backends against uninterrupted references to pin this.
pub fn restore(snap: &BackendSnapshot) -> Result<Box<dyn PubSub>, String> {
    match snap.kind.as_str() {
        "sim" | "chaos" => Ok(Box::new(SimBackend::from_snapshot(snap)?)),
        "multi-topic" => Ok(Box::new(MultiTopicBackend::from_snapshot(snap)?)),
        "sharded" => Ok(Box::new(ShardedBackend::from_snapshot(snap)?)),
        kind => Err(format!("unknown snapshot kind {kind:?}")),
    }
}

/// Maps simulator [`Metrics`](skippub_sim::Metrics) onto the
/// backend-agnostic [`Stats`] — shared by every simulated backend.
/// `peak_in_flight` comes from the world, not the metrics (it is slab
/// state, not a traffic counter).
pub(crate) fn stats_of(m: &skippub_sim::Metrics, peak_in_flight: u64) -> Stats {
    Stats {
        steps: m.rounds,
        sent: m.sent_total,
        delivered: m.delivered_total,
        dropped: m.dropped,
        peak_in_flight,
        ..Stats::default()
    }
}

/// Constructs any simulated backend behind the [`PubSub`] facade from one
/// set of knobs: topic count, shard count, [`ProtocolConfig`],
/// [`ChaosConfig`], seed.
///
/// ```
/// use skippub_core::pubsub::{PubSub, SystemBuilder};
/// use skippub_core::topics::TopicId;
///
/// let mut ps = SystemBuilder::new(7).build_sim();
/// let alice = ps.subscribe(TopicId(0));
/// let bob = ps.subscribe(TopicId(0));
/// assert!(ps.until_legit(500).1);
/// ps.publish(alice, TopicId(0), b"hello".to_vec()).unwrap();
/// assert!(ps.until_pubs_converged(100).1);
/// assert_eq!(ps.drain_events(bob).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    seed: u64,
    topics: u32,
    shards: usize,
    vnodes: usize,
    replicas: usize,
    threads: usize,
    rebalance_every: u64,
    protocol: ProtocolConfig,
    chaos: Option<ChaosConfig>,
    budget: Option<u32>,
    faults: Option<FaultSpec>,
}

impl SystemBuilder {
    /// A builder with the given RNG seed and defaults: one topic, one
    /// shard, 64 consistent-hash virtual nodes, one supervisor replica
    /// (the paper's never-crashing supervisor), one worker thread,
    /// default protocol, no chaos.
    pub fn new(seed: u64) -> Self {
        SystemBuilder {
            seed,
            topics: 1,
            shards: 1,
            vnodes: 64,
            replicas: 1,
            threads: 1,
            rebalance_every: 0,
            protocol: ProtocolConfig::default(),
            chaos: None,
            budget: None,
            faults: None,
        }
    }

    /// Sets the number of topics (`≥ 1`); topics are `TopicId(0..n)`.
    pub fn topics(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one topic");
        self.topics = n;
        self
    }

    /// Sets the number of supervisor shards (`≥ 1`) for
    /// [`SystemBuilder::build_sharded`].
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one shard");
        self.shards = k;
        self
    }

    /// Sets the virtual nodes per shard on the consistent-hash ring.
    pub fn vnodes(mut self, v: usize) -> Self {
        assert!(v >= 1);
        self.vnodes = v;
        self
    }

    /// Sets the number of supervisor replicas (`≥ 1`) behind each
    /// logical supervisor endpoint. `1` (the default) is the paper's
    /// unreplicated supervisor with zero overhead; `k ≥ 2` records every
    /// supervisor operation to a replicated, self-stabilizing op log
    /// ([`crate::replica::ReplicaGroup`]) so a primary crash fails over
    /// to a backup with identical replayed state.
    pub fn replicas(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one supervisor replica");
        self.replicas = k;
        self
    }

    /// Sets the worker-thread cap (`≥ 1`) for the sharded backend's
    /// parallel round executor. Purely an execution knob: results are
    /// byte-identical for every value (the executor never uses more
    /// workers than shards). Other backends ignore it.
    pub fn threads(mut self, t: usize) -> Self {
        assert!(t >= 1, "need at least one worker thread");
        self.threads = t;
        self
    }

    /// Enables deterministic topic→shard rebalancing on the sharded
    /// backend: every `r` rounds the backend re-examines the
    /// per-partition delivered-work counters and moves hot topics off
    /// overloaded shards (`0`, the default, disables it). The decision
    /// reads only round-synchronous state, so trajectories stay
    /// byte-identical across thread counts. Backends with a single
    /// supervisor (sim, chaos, multi-topic) have nothing to move and
    /// ignore the knob; mutually exclusive with `replicas ≥ 2`.
    pub fn rebalance_every(mut self, r: u64) -> Self {
        self.rebalance_every = r;
        self
    }

    /// Sets the protocol knobs applied to every subscriber.
    pub fn protocol(mut self, cfg: ProtocolConfig) -> Self {
        self.protocol = cfg;
        self
    }

    /// Sets the chaos-scheduler tuning used by
    /// [`SystemBuilder::build_chaos`].
    pub fn chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }

    /// Sets the per-node per-step delivery budget (`≥ 1`). `None` (the
    /// default) is the paper's unbounded synchronous model and leaves
    /// trajectories byte-identical to builds without the knob; with
    /// `Some(b)` every node processes at most `b` messages per step and
    /// carries the rest over, bounding in-flight memory under bursts
    /// (e.g. flooding) at the cost of added delivery latency.
    pub fn delivery_budget(mut self, budget: Option<u32>) -> Self {
        if let Some(b) = budget {
            assert!(b >= 1, "a zero budget would never deliver anything");
        }
        self.budget = budget;
        self
    }

    /// Arms the deterministic link-fault plane at build time: every
    /// simulated backend starts with the given loss / duplication /
    /// reordering / delay rules and scheduled partitions, with windows
    /// relative to round 0. `None` (the default) keeps channels perfect
    /// and trajectories byte-identical to builds without the knob.
    pub fn faults(mut self, spec: Option<FaultSpec>) -> Self {
        self.faults = spec;
        self
    }

    /// The configured fault spec, if any.
    pub fn faults_value(&self) -> Option<&FaultSpec> {
        self.faults.as_ref()
    }

    /// The configured RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured protocol knobs.
    pub fn protocol_config(&self) -> ProtocolConfig {
        self.protocol
    }

    /// The configured topic count.
    pub fn topic_count(&self) -> u32 {
        self.topics
    }

    /// The configured per-node per-step delivery budget.
    pub fn delivery_budget_value(&self) -> Option<u32> {
        self.budget
    }

    /// The configured rebalancing cadence (`0` = disabled).
    pub fn rebalance_every_value(&self) -> u64 {
        self.rebalance_every
    }

    /// Single-topic deterministic simulator (synchronous rounds).
    /// Requires `topics == 1`.
    pub fn build_sim(&self) -> SimBackend {
        assert!(self.topics == 1, "sim backend serves exactly one topic");
        let mut b = SimBackend::new(self.seed, self.protocol, None);
        b.set_delivery_budget(self.budget);
        b.set_replicas(self.replicas);
        b.set_faults(self.faults.clone());
        b
    }

    /// Single-topic simulator under the chaos scheduler (the configured
    /// [`ChaosConfig`], or its default). Requires `topics == 1`.
    pub fn build_chaos(&self) -> SimBackend {
        assert!(self.topics == 1, "sim backend serves exactly one topic");
        let mut b = SimBackend::new(
            self.seed,
            self.protocol,
            Some(self.chaos.unwrap_or_default()),
        );
        b.set_delivery_budget(self.budget);
        b.set_replicas(self.replicas);
        b.set_faults(self.faults.clone());
        b
    }

    /// Multi-topic system (§4): one supervisor hosting one `BuildSR`
    /// instance per topic. Runs on the partitioned executor: clients
    /// spread round-robin over [`SystemBuilder::shards`] partitions,
    /// stepped by up to [`SystemBuilder::threads`] workers (defaults:
    /// one of each — the serial execution).
    pub fn build_multi(&self) -> MultiTopicBackend {
        let mut b =
            MultiTopicBackend::new(self.seed, self.topics, self.shards, self.threads, self.protocol);
        b.set_delivery_budget(self.budget);
        b.set_replicas(self.replicas);
        b.set_faults(self.faults.clone());
        b
    }

    /// Sharded multi-topic system (§1.3): topics consistent-hashed onto
    /// `shards` supervisors, each shard a partition of the parallel
    /// round executor (stepped by up to [`SystemBuilder::threads`]
    /// workers).
    pub fn build_sharded(&self) -> ShardedBackend {
        let mut b = ShardedBackend::new(
            self.seed,
            self.topics,
            self.shards,
            self.vnodes,
            self.threads,
            self.protocol,
        );
        b.set_delivery_budget(self.budget);
        b.set_replicas(self.replicas);
        b.set_rebalance_every(self.rebalance_every);
        b.set_faults(self.faults.clone());
        b
    }

    /// Builds the requested backend kind behind a trait object — the
    /// entry point for scenario scripts that sweep backends.
    pub fn build(&self, kind: BackendKind) -> Box<dyn PubSub> {
        match kind {
            BackendKind::Sim => Box::new(self.build_sim()),
            BackendKind::Chaos => Box::new(self.build_chaos()),
            BackendKind::MultiTopic => Box::new(self.build_multi()),
            BackendKind::Sharded => Box::new(self.build_sharded()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_knobs() {
        let b = SystemBuilder::new(9)
            .topics(3)
            .shards(2)
            .vnodes(8)
            .replicas(3)
            .protocol(ProtocolConfig::topology_only());
        assert_eq!(b.seed(), 9);
        assert_eq!(b.topic_count(), 3);
        assert!(!b.protocol_config().flooding);
    }

    #[test]
    fn replicas_knob_reaches_every_backend() {
        for kind in BackendKind::all() {
            let ps = SystemBuilder::new(4).replicas(3).build(kind);
            assert_eq!(ps.supervisor_replicas(), 3, "{}", ps.backend_name());
            let ps1 = SystemBuilder::new(4).build(kind);
            assert_eq!(ps1.supervisor_replicas(), 1, "{}", ps1.backend_name());
        }
    }

    #[test]
    fn report_crash_on_supervisor_routes_to_replica_group() {
        // Pins the once-silent behavior: a crash report on a supervisor
        // endpoint now routes to its replica group on every backend.
        // With k = 3 it triggers exactly one deterministic failover and
        // the system stays legitimate; with k = 1 it is a uniform no-op
        // (the paper's never-crashing supervisor), not a panic and not
        // a self-suspect.
        for kind in BackendKind::all() {
            let sup_id = match kind {
                BackendKind::Sharded => NodeId(SHARD_SUPERVISOR_BASE),
                _ => NodeId(0),
            };
            let mut ps = SystemBuilder::new(77).replicas(3).build(kind);
            for _ in 0..4 {
                ps.subscribe(TopicId(0));
            }
            assert!(ps.until_legit(4000).1, "{}", ps.backend_name());
            assert_eq!(ps.supervisor_failovers(), 0);
            ps.report_crash(sup_id);
            assert_eq!(ps.supervisor_failovers(), 1, "{}", ps.backend_name());
            assert!(
                ps.until_legit(4000).1,
                "{} must re-legitimize after failover",
                ps.backend_name()
            );

            let mut ps1 = SystemBuilder::new(77).build(kind);
            for _ in 0..4 {
                ps1.subscribe(TopicId(0));
            }
            assert!(ps1.until_legit(4000).1);
            ps1.report_crash(sup_id);
            assert_eq!(ps1.supervisor_failovers(), 0);
            assert!(
                ps1.is_legitimate(),
                "{} k=1 supervisor report must be a no-op",
                ps1.backend_name()
            );
        }
    }

    #[test]
    fn build_returns_every_kind() {
        for kind in BackendKind::all() {
            let b = SystemBuilder::new(4);
            let ps = b.build(kind);
            assert_eq!(ps.backend_name(), kind.name());
            assert_eq!(ps.topic_count(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "exactly one topic")]
    fn sim_rejects_multiple_topics() {
        let _ = SystemBuilder::new(1).topics(2).build_sim();
    }

    #[test]
    fn event_cursor_reports_each_publication_once() {
        let mut trie = PatriciaTrie::new();
        trie.insert(Publication::new(1, b"a".to_vec()));
        let mut cur = EventCursor::new();
        let ev = cur.drain(NodeId(5), [(TopicId(0), &trie)]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].author, 1);
        assert_eq!(ev[0].payload, b"a");
        assert!(cur.drain(NodeId(5), [(TopicId(0), &trie)]).is_empty());
        trie.insert(Publication::new(2, b"b".to_vec()));
        assert_eq!(cur.drain(NodeId(5), [(TopicId(0), &trie)]).len(), 1);
        // A different node has its own cursor.
        assert_eq!(cur.drain(NodeId(6), [(TopicId(0), &trie)]).len(), 2);
    }
}
