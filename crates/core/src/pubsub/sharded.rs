//! [`ShardedBackend`]: §1.3's scaling remark as a *drivable system* —
//! topics are consistent-hashed onto multiple supervisor nodes (via
//! [`SupervisorShards`]), and the shards execute as **partitions of a
//! [`PartitionedWorld`]** stepped by the deterministic parallel round
//! executor.
//!
//! Placement policy: shard `i`'s supervisor lives in partition `i`, and
//! every client is placed in the partition of the shard serving its
//! *first* topic — so the common case (a client's whole life on one
//! shard) is entirely intra-partition, and only multi-shard clients
//! exchange cross-partition envelopes. Results are byte-identical for
//! every [`SystemBuilder::threads`](super::SystemBuilder::threads)
//! setting — worker count is an execution knob, never a semantics knob.

use super::incremental::IncChecker;
use super::{BackendSnapshot, Delivery, EventCursor, PartitionStats, PubSub, Stats};
use crate::dirty::{pubs_key, topo_key};
use crate::replica::ReplicaGroup;
use crate::sharding::SupervisorShards;
use crate::topics::{MultiActor, TopicId};
use crate::{Actor, ProtocolConfig};
use skippub_bits::BitStr;
use skippub_sim::{FaultCounts, FaultSpec, Metrics, NodeId, PartitionedState, PartitionedWorld, World};
use skippub_snapshot::{Snap, SnapVec, SnapWriter};
use skippub_trie::{PayloadInterner, Publication};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Base of the supervisor ID range. Client IDs count up from 1 exactly
/// as on every other backend (so publication keys agree across
/// backends); shard supervisors live far above any realistic client
/// population.
pub const SHARD_SUPERVISOR_BASE: u64 = 1 << 32;

/// The sharded multi-topic backend: `k` supervisors, each responsible
/// for the topics whose hash falls in its sub-interval of the
/// consistent-hash ring. Clients route every subscribe/publish for a
/// topic to that topic's shard; a shard failure therefore only affects
/// its own sub-interval of topics. Each shard (supervisor + the clients
/// homed on it) is one partition of the underlying
/// [`PartitionedWorld`], stepped in parallel by up to `threads` workers
/// with bit-identical results for any worker count.
pub struct ShardedBackend {
    world: PartitionedWorld<MultiActor>,
    shards: SupervisorShards,
    sup_ids: Vec<NodeId>,
    cfg: ProtocolConfig,
    topics: u32,
    next_id: u64,
    cursor: EventCursor,
    /// Which shards each client has ever been routed to (registration-
    /// time membership): the failure-detector feed consults this so a
    /// crash report only reaches the shard(s) that actually met the
    /// node, instead of linearly scanning every shard per suspect.
    /// Entries persist across the node's crash — the report arrives
    /// *after* the crash — and are bounded by total registrations.
    met: BTreeMap<u64, Vec<u32>>,
    /// Incremental verdict caches + member index (`RefCell`: the
    /// facade's polling predicates take `&self`).
    inc: RefCell<IncChecker>,
    interner: PayloadInterner,
    /// Supervisor replica groups, one per shard, in shard-index order.
    /// Empty = the paper's unreplicated supervisors. Each shard fails
    /// over independently: a primary crash only affects its own
    /// sub-interval of topics.
    groups: Vec<ReplicaGroup>,
    /// Topic → shard placement overrides installed by the deterministic
    /// rebalancer; consulted before the consistent-hash ring. Empty
    /// until the first rebalance moves a topic.
    overrides: BTreeMap<u32, u32>,
    /// Rebalance cadence in rounds (0 = off): at every round multiple,
    /// per-partition delivered-work deltas are examined and skewed topic
    /// placements corrected via supervisor-mediated handoff.
    rebalance_every: u64,
    /// Completed topic handoffs (for reports and tests).
    rebalances: u64,
    /// Per-partition delivered totals at the last rebalance decision —
    /// the baseline that turns cumulative counters into per-window
    /// deltas.
    last_delivered: Vec<u64>,
    /// `(sever index, shard index)` pairs whose scheduled partition has
    /// already taken that shard's supervisor down: each sever window
    /// isolating a shard endpoint fires its replica-group failover
    /// exactly once, at the window's rising edge.
    sever_fired: BTreeSet<(u64, u64)>,
}

impl ShardedBackend {
    pub(crate) fn new(
        seed: u64,
        topics: u32,
        shard_count: usize,
        vnodes: usize,
        threads: usize,
        cfg: ProtocolConfig,
    ) -> Self {
        assert!(shard_count >= 1);
        let sup_ids: Vec<NodeId> = (0..shard_count as u64)
            .map(|i| NodeId(SHARD_SUPERVISOR_BASE + i))
            .collect();
        let mut world = PartitionedWorld::new(seed, shard_count, threads);
        for (i, &s) in sup_ids.iter().enumerate() {
            world.add_node(s, MultiActor::new_supervisor(s), i as u32);
        }
        ShardedBackend {
            shards: SupervisorShards::new(&sup_ids, vnodes),
            world,
            sup_ids,
            cfg,
            topics,
            next_id: 1,
            cursor: EventCursor::new(),
            met: BTreeMap::new(),
            inc: RefCell::new(IncChecker::new(topics)),
            interner: PayloadInterner::new(),
            groups: Vec::new(),
            overrides: BTreeMap::new(),
            rebalance_every: 0,
            rebalances: 0,
            last_delivered: vec![0; shard_count],
            sever_fired: BTreeSet::new(),
        }
    }

    /// Configures `k` supervisor replicas behind every shard endpoint.
    /// `k = 1` disables replication (the paper's model). Call before
    /// driving the system: each replica log starts at the current state.
    pub fn set_replicas(&mut self, k: usize) {
        assert!(
            k < 2 || self.rebalance_every == 0,
            "topic rebalancing and supervisor replication are mutually \
             exclusive (a handoff would have to transfer the replica log)"
        );
        for &s in &self.sup_ids {
            if let Some(sup) = self.world.node_mut(s) {
                sup.set_replicated(k >= 2);
            }
        }
        self.groups = if k >= 2 {
            // Lazily instantiated topic supervisors run with the token
            // machinery off, so replicas replay with the same setting.
            self.sup_ids
                .iter()
                .map(|&s| ReplicaGroup::new(k, s, false))
                .collect()
        } else {
            Vec::new()
        };
    }

    /// Drains every shard endpoint's recorded operations (shards in
    /// index order, topics ascending within a shard — deterministic for
    /// any worker count, since the outboxes are part of the bit-exact
    /// world state) and runs one anti-entropy round per group. Called
    /// after every facade operation that can execute supervisor
    /// handlers, so outboxes are always empty at facade boundaries.
    fn sync_groups(&mut self) {
        for (i, group) in self.groups.iter_mut().enumerate() {
            if let Some(sup) = self.world.node_mut(self.sup_ids[i]) {
                for (topic, kinds) in sup.drain_outboxes() {
                    group.record_topic(topic, kinds);
                }
            }
            group.anti_entropy();
        }
    }

    /// The replica groups (one per shard), when replication is
    /// configured; empty otherwise.
    pub fn replica_groups(&self) -> &[ReplicaGroup] {
        &self.groups
    }

    /// Fails shard `i`'s primary replica and installs the electee's
    /// replayed per-topic state at the shard endpoint. Returns `false`
    /// when no failover is possible (unreplicated, or no live backup).
    fn fail_shard(&mut self, i: usize) -> bool {
        self.sync_groups();
        let Some(group) = self.groups.get_mut(i) else {
            return false;
        };
        if !group.fail_primary() {
            return false;
        }
        let installed = group.primary_topics();
        if let Some(sup) = self.world.node_mut(self.sup_ids[i]) {
            sup.install_topics(installed);
        }
        // Only this shard's sub-interval of topics changed, but the
        // verdict caches are all dropped anyway by invalidate_all.
        for t in 0..self.topics {
            self.world.bump_dirty(topo_key(t));
        }
        self.inc.get_mut().invalidate_all();
        true
    }

    /// The payload pool behind `publish`: repeated payloads (across
    /// authors and topics) collapse to one shared allocation.
    pub fn payload_interner(&self) -> &PayloadInterner {
        &self.interner
    }

    /// Routes the facade's polling predicates through the pre-PR
    /// from-scratch checker (`true`) instead of the incremental layer —
    /// kept callable for A/B benchmarking.
    pub fn set_full_checking(&mut self, full: bool) {
        self.inc.get_mut().set_full(full);
    }

    /// From-scratch legitimacy over every topic (the pre-PR path: one
    /// whole-world scan per topic through the diagnostic checker),
    /// regardless of the A/B switch.
    pub fn is_legitimate_full(&self) -> bool {
        (0..self.topics).all(|t| {
            let t = TopicId(t);
            super::multi::topic_is_legit(&self.world, self.supervisor_for(t), t)
        })
    }

    /// From-scratch publication convergence (the pre-PR per-poll global
    /// key union), regardless of the switch.
    pub fn publications_converged_full(&self) -> (bool, usize) {
        super::multi::fold_pubs_converged(&self.world, self.topics)
    }

    /// The consistent-hash ring mapping topics to supervisors.
    pub fn shards(&self) -> &SupervisorShards {
        &self.shards
    }

    /// IDs of the shard supervisors.
    pub fn supervisor_ids(&self) -> &[NodeId] {
        &self.sup_ids
    }

    /// The supervisor responsible for `topic`: a rebalancer override if
    /// one is installed, the consistent-hash ring otherwise. Every
    /// routing decision in the backend goes through here.
    pub fn supervisor_for(&self, topic: TopicId) -> NodeId {
        match self.overrides.get(&topic.0) {
            Some(&shard) => self.sup_ids[shard as usize],
            None => self.shards.supervisor_for(topic),
        }
    }

    /// Sets the rebalance cadence in rounds (`0` disables; the initial
    /// state). Mutually exclusive with supervisor replication: a topic
    /// handoff moves the supervisor instance but not the shard's replica
    /// log, so combining the two would desynchronize failover state.
    pub fn set_rebalance_every(&mut self, every: u64) {
        assert!(
            every == 0 || self.groups.is_empty(),
            "topic rebalancing and supervisor replication are mutually \
             exclusive (a handoff would have to transfer the replica log)"
        );
        self.rebalance_every = every;
    }

    /// The configured rebalance cadence in rounds (0 = off).
    pub fn rebalance_every(&self) -> u64 {
        self.rebalance_every
    }

    /// Completed topic handoffs so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Current placement overrides (topic → shard index) installed by
    /// the rebalancer.
    pub fn placement_overrides(&self) -> &BTreeMap<u32, u32> {
        &self.overrides
    }

    /// The underlying partitioned world, for white-box probes.
    pub fn world(&self) -> &PartitionedWorld<MultiActor> {
        &self.world
    }

    /// Mutable access to the underlying world (adversarial injection).
    /// Raw access may change anything, so every cached checker verdict
    /// is dropped and the member index is rebuilt on the next poll.
    pub fn world_mut(&mut self) -> &mut PartitionedWorld<MultiActor> {
        self.inc.get_mut().invalidate_all();
        &mut self.world
    }

    /// Rebuilds a backend from a `sharded` snapshot. The consistent-hash
    /// ring is **not** serialized: it is a pure function of the
    /// supervisor IDs and replica count, both of which are, so restore
    /// rebuilds it. The checker restarts cold with an invalidated member
    /// index (a fresh `IncChecker` trusts its — empty — index), so the
    /// first poll re-scans the world.
    pub fn from_snapshot(snap: &BackendSnapshot) -> Result<Self, String> {
        if snap.kind != "sharded" {
            return Err(format!("expected a sharded snapshot, got {:?}", snap.kind));
        }
        let mut r = snap.reader().map_err(|e| e.to_string())?;
        let err = |e: skippub_snapshot::SnapError| e.to_string();
        let cfg = ProtocolConfig::load(&mut r).map_err(err)?;
        let topics = u32::load(&mut r).map_err(err)?;
        let next_id = u64::load(&mut r).map_err(err)?;
        let vnodes = usize::load(&mut r).map_err(err)?;
        let sup_ids = SnapVec::<NodeId>::load(&mut r).map_err(err)?.0;
        let met_len = u64::load(&mut r).map_err(err)? as usize;
        let mut met = BTreeMap::new();
        for _ in 0..met_len {
            let key = u64::load(&mut r).map_err(err)?;
            let shards = SnapVec::<u32>::load(&mut r).map_err(err)?.0;
            met.insert(key, shards);
        }
        let interner = PayloadInterner::load(&mut r).map_err(err)?;
        let world = PartitionedState::<MultiActor>::load(&mut r).map_err(err)?;
        let cursor = EventCursor::load(&mut r).map_err(err)?;
        let group_len = u64::load(&mut r).map_err(err)? as usize;
        let mut groups = Vec::with_capacity(group_len);
        for _ in 0..group_len {
            groups.push(ReplicaGroup::load(&mut r).map_err(err)?);
        }
        let overrides = BTreeMap::<u32, u32>::load(&mut r).map_err(err)?;
        let rebalance_every = u64::load(&mut r).map_err(err)?;
        let rebalances = u64::load(&mut r).map_err(err)?;
        let last_delivered = SnapVec::<u64>::load(&mut r).map_err(err)?.0;
        let sever_fired = BTreeSet::<(u64, u64)>::load(&mut r).map_err(err)?;
        r.finish().map_err(err)?;
        if sup_ids.is_empty() || vnodes == 0 {
            return Err("sharded snapshot needs >=1 supervisor and >=1 ring point".to_string());
        }
        if !groups.is_empty() && groups.len() != sup_ids.len() {
            return Err("sharded snapshot replica groups disagree with shard count".to_string());
        }
        if overrides.values().any(|&s| s as usize >= sup_ids.len())
            || last_delivered.len() != sup_ids.len()
        {
            return Err("sharded snapshot rebalancer state disagrees with shard count".to_string());
        }
        let mut inc = IncChecker::new(topics);
        inc.invalidate_all();
        Ok(ShardedBackend {
            shards: SupervisorShards::new(&sup_ids, vnodes),
            world: PartitionedWorld::from_state(world),
            sup_ids,
            cfg,
            topics,
            next_id,
            cursor,
            met,
            inc: RefCell::new(inc),
            interner,
            groups,
            overrides,
            rebalance_every,
            rebalances,
            last_delivered,
            sever_fired,
        })
    }

    /// Aggregated simulator metrics over all shard partitions (per-kind
    /// and per-node counters; per-shard load is
    /// `metrics().sent_by(shard_id)`). Per-partition metrics are
    /// available via [`PartitionedWorld::partition_metrics`].
    pub fn metrics(&self) -> Metrics {
        self.world.metrics()
    }

    /// Sets the per-node per-step delivery budget on every shard
    /// partition (`None` = unbounded).
    pub fn set_delivery_budget(&mut self, budget: Option<u32>) {
        self.world.set_delivery_budget(budget);
    }

    /// Runs `n` synchronous rounds as one batch: with `threads > 1` the
    /// worker scope is spawned once for the whole batch instead of per
    /// [`PubSub::step`] call, which is how bulk drives (benchmarks,
    /// fixed-round warmups) should step the backend. Results are
    /// identical to `n` single steps — and to any worker count.
    pub fn run_rounds(&mut self, n: u64) {
        if self.rebalance_every == 0 {
            self.world.run_rounds(n);
            // One drain for the whole batch: per-topic op order is the
            // same as draining every round (outboxes append in execution
            // order), and replay is per-topic, so the replicated state
            // is identical.
            self.sync_groups();
            self.watch_severs();
        } else {
            // Rebalance decisions fire at fixed round numbers, so a
            // batch must hit the same boundaries as n single steps.
            for _ in 0..n {
                self.world.run_rounds(1);
                self.maybe_rebalance();
            }
        }
    }

    /// Partition index of the shard owned by supervisor `sup`.
    fn shard_index(&self, sup: NodeId) -> u32 {
        (sup.0 - SHARD_SUPERVISOR_BASE) as u32
    }

    /// Fires replica-group failovers for shards whose supervisor sits
    /// inside an active sever window — once per `(sever, shard)` pair,
    /// at the window's rising edge: the scheduled *partition* (not a
    /// scripted crash) is what takes the primary down. Sampled at
    /// stepping boundaries, so the edge is seen on the first step
    /// inside the window.
    fn watch_severs(&mut self) {
        for i in 0..self.sup_ids.len() {
            let Some(idx) = self.world.active_sever_containing(self.sup_ids[i]) else {
                continue;
            };
            if self.sever_fired.insert((idx as u64, i as u64)) {
                self.fail_shard(i);
            }
        }
    }

    /// Records that `id` was routed to `shard` (detector-feed routing).
    fn note_met(&mut self, id: NodeId, shard: u32) {
        let shards = self.met.entry(id.0).or_default();
        if !shards.contains(&shard) {
            shards.push(shard);
        }
    }

    fn assert_topic(&self, topic: TopicId) {
        assert!(
            topic.0 < self.topics,
            "topic {topic:?} outside 0..{}",
            self.topics
        );
    }

    /// Fires a rebalance decision when the cadence says so. Decisions
    /// are a pure function of round-synchronous world state (round
    /// number, per-partition delivered counters, supervisor databases)
    /// — never wall clock or worker identity — so outcomes are
    /// digest-identical for every thread count.
    fn maybe_rebalance(&mut self) {
        let r = self.world.round();
        if self.rebalance_every == 0 || r == 0 || !r.is_multiple_of(self.rebalance_every) {
            return;
        }
        self.rebalance();
    }

    /// One rebalance decision, applied at a round boundary.
    ///
    /// Load model: each partition's delivered-work delta since the last
    /// decision (the per-partition `Stats` counters) is apportioned over
    /// the topics it hosts by supervisor-side member count — Zipf-hot
    /// topics carry most of their shard's delta. A longest-processing-
    /// time assignment then spreads the loaded topics over shards
    /// (heaviest first onto the currently lightest shard, ties broken by
    /// lowest index), and every topic whose assignment differs from its
    /// current owner is handed off. A hysteresis gate skips the whole
    /// decision while delivered-work max/mean ≤ 1.25, so a balanced
    /// system never churns placements.
    fn rebalance(&mut self) {
        let parts = self.world.partition_count();
        let delivered: Vec<u64> = (0..parts)
            .map(|i| self.world.partition_metrics(i).delivered_total)
            .collect();
        let delta: Vec<u64> = delivered
            .iter()
            .zip(&self.last_delivered)
            .map(|(d, l)| d.saturating_sub(*l))
            .collect();
        self.last_delivered = delivered;
        let total: u64 = delta.iter().sum();
        if parts < 2 || total == 0 {
            return;
        }
        let maxd = *delta.iter().max().expect("parts >= 2");
        if maxd * (parts as u64) * 4 <= total * 5 {
            return; // max/mean ≤ 1.25 — balanced enough, don't churn
        }
        let owner: Vec<u32> = (0..self.topics)
            .map(|t| self.shard_index(self.supervisor_for(TopicId(t))))
            .collect();
        let members: Vec<u64> = (0..self.topics as usize)
            .map(|t| {
                let sup = self.sup_ids[owner[t] as usize];
                self.world
                    .node(sup)
                    .and_then(|a| a.topic_supervisor(TopicId(t as u32)))
                    .map(|s| s.n() as u64)
                    .unwrap_or(0)
            })
            .collect();
        let members_of: Vec<u64> = (0..parts)
            .map(|p| {
                (0..self.topics as usize)
                    .filter(|&t| owner[t] == p as u32)
                    .map(|t| members[t])
                    .sum()
            })
            .collect();
        let load: Vec<u64> = (0..self.topics as usize)
            .map(|t| {
                let p = owner[t] as usize;
                (delta[p] * members[t]).checked_div(members_of[p]).unwrap_or(0)
            })
            .collect();
        let mut hot: Vec<usize> = (0..self.topics as usize).filter(|&t| load[t] > 0).collect();
        hot.sort_by(|&a, &b| load[b].cmp(&load[a]).then(a.cmp(&b)));
        let mut new_load = vec![0u64; parts];
        let mut assign = owner.clone();
        for t in hot {
            let best = (0..parts)
                .min_by_key(|&p| (new_load[p], p))
                .expect("parts >= 2");
            assign[t] = best as u32;
            new_load[best] += load[t];
        }
        for t in 0..self.topics {
            if assign[t as usize] != owner[t as usize] {
                self.move_topic(TopicId(t), assign[t as usize]);
            }
        }
        self.rebalance_clients();
    }

    /// Spreads subscriber actors over partitions. A topic's delivered
    /// work (flood fan-out, ring probes) runs at its *subscribers*, and
    /// subscribers of one topic need not be co-located — cross-partition
    /// gossip rides the batched mailbox path. So after the supervisor
    /// endpoints are placed, clients get their own LPT pass: per-client
    /// load proxy = Σ member-count over its subscriptions (the messages
    /// a client handles per publish scale with topic size), heaviest
    /// client first onto the currently lightest partition, ties broken
    /// by lowest id / lowest partition. Pure function of
    /// round-synchronous supervisor state, so placement is identical at
    /// every thread count.
    fn rebalance_clients(&mut self) {
        let parts = self.world.partition_count();
        if parts < 2 {
            return;
        }
        let members: Vec<u64> = (0..self.topics)
            .map(|t| {
                let sup = self.supervisor_for(TopicId(t));
                self.world
                    .node(sup)
                    .and_then(|a| a.topic_supervisor(TopicId(t)))
                    .map(|s| s.n() as u64)
                    .unwrap_or(0)
            })
            .collect();
        let mut clients: Vec<(u64, NodeId)> = self
            .world
            .iter()
            .filter(|(_, a)| a.is_client())
            .map(|(id, a)| {
                let load: u64 = a
                    .topic_ids()
                    .iter()
                    .map(|t| members.get(t.0 as usize).copied().unwrap_or(0))
                    .sum();
                (load, id)
            })
            .collect();
        clients.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut new_load = vec![0u64; parts];
        for (load, id) in clients {
            let best = (0..parts)
                .min_by_key(|&p| (new_load[p], p))
                .expect("parts >= 2");
            // `max(1)` so idle clients still round-robin instead of
            // piling onto partition 0.
            new_load[best] += load.max(1);
            self.world.move_node(id, best as u32);
        }
    }

    /// Hands `topic` off to shard `dest`: extracts the supervisor
    /// instance from the old owner (leaving a forwarding tombstone for
    /// stale in-flight messages), installs it at the new owner under its
    /// identity, retargets every subscribed client's instance in
    /// ascending id order, and installs the routing override. Client
    /// *placement* is handled separately by [`Self::rebalance_clients`]
    /// — the supervisor endpoint and the subscriber work it fronts are
    /// balanced independently.
    fn move_topic(&mut self, topic: TopicId, dest: u32) {
        let old = self.supervisor_for(topic);
        let new = self.sup_ids[dest as usize];
        if old == new {
            return;
        }
        let instance = self
            .world
            .node_mut(old)
            .and_then(|a| a.begin_move(topic, new));
        if let Some(instance) = instance {
            if let Some(a) = self.world.node_mut(new) {
                a.adopt_topic(topic, instance);
            }
        }
        let subscribed: Vec<NodeId> = self
            .world
            .iter()
            .filter(|(_, a)| {
                a.topic_subscriber(topic).is_some()
                    || matches!(a, MultiActor::Client { departed, .. }
                        if departed.contains_key(&topic))
            })
            .map(|(id, _)| id)
            .collect();
        self.overrides.insert(topic.0, dest);
        for &id in &subscribed {
            if let Some(a) = self.world.node_mut(id) {
                a.retarget_topic(topic, new);
            }
            self.note_met(id, dest);
        }
        self.world.bump_dirty(topo_key(topic.0));
        self.world.bump_dirty(pubs_key(topic.0));
        self.inc.get_mut().invalidate_all();
        self.rebalances += 1;
    }
}

impl PubSub for ShardedBackend {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn topic_count(&self) -> u32 {
        self.topics
    }

    fn subscribe(&mut self, topic: TopicId) -> NodeId {
        self.assert_topic(topic);
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let sup = self.supervisor_for(topic);
        let shard = self.shard_index(sup);
        let mut client = MultiActor::new_client(id, self.sup_ids[0], self.cfg);
        client.join_topic_at(topic, sup);
        // Home partition: the shard of the client's first topic (type
        // docs — later joins to other shards stay cross-partition).
        self.world.add_node(id, client, shard);
        self.note_met(id, shard);
        self.inc.get_mut().add_member(topic, id);
        self.world.bump_dirty(topo_key(topic.0));
        self.world.bump_dirty(pubs_key(topic.0));
        id
    }

    fn join(&mut self, id: NodeId, topic: TopicId) {
        self.assert_topic(topic);
        let sup = self.supervisor_for(topic);
        let shard = self.shard_index(sup);
        if let Some(a) = self.world.node_mut(id) {
            a.join_topic_at(topic, sup);
            self.note_met(id, shard);
            self.inc.get_mut().add_member(topic, id);
            self.world.bump_dirty(topo_key(topic.0));
            self.world.bump_dirty(pubs_key(topic.0));
        }
    }

    fn unsubscribe(&mut self, id: NodeId, topic: TopicId) {
        self.assert_topic(topic);
        if let Some(a) = self.world.node_mut(id) {
            a.leave_topic(topic);
            self.world.bump_dirty(topo_key(topic.0));
            self.world.bump_dirty(pubs_key(topic.0));
        }
    }

    fn publish(&mut self, id: NodeId, topic: TopicId, payload: Vec<u8>) -> Option<BitStr> {
        self.assert_topic(topic);
        let shared = self.interner.intern(payload);
        let key = self.world.with_node(id, |actor, ctx| {
            actor.publish_local_shared(ctx, topic, shared)
        })??;
        self.world.bump_dirty(pubs_key(topic.0));
        Some(key)
    }

    fn seed_publication(&mut self, id: NodeId, topic: TopicId, publication: Publication) -> bool {
        self.assert_topic(topic);
        let fresh = self
            .world
            .node_mut(id)
            .map(|a| a.seed_publication(topic, publication))
            .unwrap_or(false);
        if fresh {
            self.world.bump_dirty(pubs_key(topic.0));
        }
        fresh
    }

    fn crash(&mut self, id: NodeId) {
        if let Some(actor) = self.world.node(id) {
            let topics: Vec<TopicId> = actor.topic_ids();
            let inc = self.inc.get_mut();
            for t in topics {
                inc.remove_member(t, id);
                self.world.bump_dirty(topo_key(t.0));
                self.world.bump_dirty(pubs_key(t.0));
            }
        }
        self.world.crash(id);
        self.cursor.forget(id);
    }

    fn report_crash(&mut self, id: NodeId) {
        if id.0 >= SHARD_SUPERVISOR_BASE {
            // A crash report on a shard supervisor endpoint routes to
            // that shard's replica group (previously a silent no-op —
            // supervisors never appear in `met`): with live backups
            // this triggers failover; unreplicated it stays a uniform
            // no-op. Reports on IDs outside the shard range are ignored.
            let idx = (id.0 - SHARD_SUPERVISOR_BASE) as usize;
            if idx < self.sup_ids.len() {
                self.fail_shard(idx);
            }
            return;
        }
        // The detector feed is routed by registration-time membership:
        // only the shard(s) that met the node are told. Suspecting a
        // node no shard ever met is a true no-op (regression-tested).
        let Some(shards) = self.met.get(&id.0) else {
            return;
        };
        for &shard in shards {
            let sup = self.sup_ids[shard as usize];
            if let Some(s) = self.world.node_mut(sup) {
                s.suspect(id);
            }
        }
        self.sync_groups();
    }

    fn step(&mut self) {
        self.world.run_round();
        self.sync_groups();
        self.maybe_rebalance();
        self.watch_severs();
    }

    fn is_legitimate(&self) -> bool {
        let mut inc = self.inc.borrow_mut();
        if !inc.replica_groups_agree(&self.groups) {
            return false;
        }
        if inc.full() {
            return self.is_legitimate_full();
        }
        inc.all_legit(
            &self.world,
            self.topics,
            |t| self.world.dirty_version(topo_key(t)),
            |t| self.supervisor_for(t),
        )
    }

    fn publications_converged(&self) -> (bool, usize) {
        let mut inc = self.inc.borrow_mut();
        if inc.full() {
            return self.publications_converged_full();
        }
        inc.all_pubs(&self.world, self.topics, |t| {
            self.world.dirty_version(pubs_key(t))
        })
    }

    fn drain_events(&mut self, id: NodeId) -> Vec<Delivery> {
        super::multi::drain_client_events(&self.world, &mut self.cursor, id)
    }

    fn subscriber_ids(&self) -> Vec<NodeId> {
        super::multi::client_ids(&self.world)
    }

    fn snapshot(&self, topic: TopicId) -> World<Actor> {
        self.assert_topic(topic);
        super::multi::snapshot_topic(&self.world, self.supervisor_for(topic), topic)
    }

    fn stats(&self) -> Stats {
        let mut stats =
            super::stats_of(&self.world.metrics(), self.world.peak_in_flight() as u64);
        super::apply_fault_counts(&mut stats, self.world.fault_counts());
        stats.per_partition = (0..self.world.partition_count())
            .map(|i| {
                let m = self.world.partition_metrics(i);
                let mut p = PartitionStats {
                    sent: m.sent_total,
                    delivered: m.delivered_total,
                    dropped: m.dropped,
                    cross_envelopes: self.world.cross_envelopes(i),
                    peak_in_flight: self.world.partition_peak_in_flight(i) as u64,
                    stepped: self.world.partition_stepped(i),
                    lock_acquisitions: self.world.partition_lock_acquisitions(i),
                    ..PartitionStats::default()
                };
                super::apply_partition_fault_counts(&mut p, self.world.partition_fault_counts(i));
                p
            })
            .collect();
        stats
    }

    fn set_faults(&mut self, spec: Option<FaultSpec>) {
        self.world.set_faults(spec);
    }

    fn fault_counts(&self) -> FaultCounts {
        self.world.fault_counts()
    }

    fn save_snapshot(&self) -> Result<BackendSnapshot, String> {
        let mut w = SnapWriter::new();
        self.cfg.save(&mut w);
        self.topics.save(&mut w);
        self.next_id.save(&mut w);
        self.shards.replicas().save(&mut w);
        SnapVec(self.sup_ids.clone()).save(&mut w);
        w.put_u64(self.met.len() as u64);
        for (key, shards) in &self.met {
            key.save(&mut w);
            SnapVec(shards.clone()).save(&mut w);
        }
        self.interner.save(&mut w);
        self.world.export_state().save(&mut w);
        self.cursor.save(&mut w);
        w.put_u64(self.groups.len() as u64);
        for g in &self.groups {
            g.save(&mut w);
        }
        self.overrides.save(&mut w);
        self.rebalance_every.save(&mut w);
        self.rebalances.save(&mut w);
        SnapVec(self.last_delivered.clone()).save(&mut w);
        self.sever_fired.save(&mut w);
        Ok(w.finish(self.backend_name()))
    }

    fn supervisor_replicas(&self) -> usize {
        // The weakest shard bounds the system's remaining redundancy.
        self.groups
            .iter()
            .map(|g| g.live_count())
            .min()
            .unwrap_or(1)
    }

    fn supervisor_failovers(&self) -> u64 {
        self.groups.iter().map(|g| g.failovers()).sum()
    }

    fn crash_supervisor(&mut self, topic: TopicId) -> bool {
        self.assert_topic(topic);
        let sup = self.supervisor_for(topic);
        let idx = self.shard_index(sup) as usize;
        self.fail_shard(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubsub::SystemBuilder;

    #[test]
    fn topics_land_on_distinct_shards_and_stabilize() {
        let topics = 8u32;
        let mut ps = SystemBuilder::new(51)
            .topics(topics)
            .shards(4)
            .protocol(ProtocolConfig::topology_only())
            .build_sharded();
        // Routing must spread topics over more than one shard.
        let distinct: std::collections::BTreeSet<NodeId> = (0..topics)
            .map(|t| ps.supervisor_for(TopicId(t)))
            .collect();
        assert!(distinct.len() > 1, "consistent hashing must shard topics");
        for t in 0..topics {
            for _ in 0..3 {
                ps.subscribe(TopicId(t));
            }
        }
        let (_, ok) = ps.until_legit(4000);
        assert!(ok, "every shard's topics must stabilize");
        // Each topic's snapshot places its own shard as the supervisor.
        for t in 0..topics {
            let snap = ps.snapshot(TopicId(t));
            let sup_id = crate::scenarios::supervisor_id(&snap);
            assert_eq!(sup_id, ps.supervisor_for(TopicId(t)));
        }
    }

    #[test]
    fn publish_is_shard_local() {
        let mut ps = SystemBuilder::new(52)
            .topics(4)
            .shards(2)
            .build_sharded();
        let t = TopicId(2);
        let ids: Vec<NodeId> = (0..3).map(|_| ps.subscribe(t)).collect();
        assert!(ps.until_legit(4000).1);
        ps.publish(ids[0], t, b"sharded hello".to_vec()).unwrap();
        assert!(ps.until_pubs_converged(2000).1);
        for &id in &ids {
            let ev = ps.drain_events(id);
            assert_eq!(ev.len(), 1);
            assert_eq!(ev[0].topic, t);
        }
        // Only the responsible shard carries the topic's database.
        let sup = ps.supervisor_for(t);
        for &s in ps.supervisor_ids() {
            let hosts = ps
                .world()
                .node(s)
                .and_then(|a| a.topic_supervisor(t))
                .map(|sv| sv.n())
                .unwrap_or(0);
            if s == sup {
                assert_eq!(hosts, 3);
            } else {
                assert_eq!(hosts, 0, "shard {s} must not host topic {t:?}");
            }
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        // The same sharded run under 1, 2, 4, 8 worker threads: the
        // executor must produce byte-identical metrics, per-partition
        // stats, and delivered sets (the full conformance test lives in
        // tests/facade_conformance.rs; this is the backend-local guard).
        let run = |threads: usize| {
            let mut ps = SystemBuilder::new(53)
                .topics(6)
                .shards(4)
                .threads(threads)
                .build_sharded();
            let ids: Vec<NodeId> = (0..12).map(|i| ps.subscribe(TopicId(i % 6))).collect();
            assert!(ps.until_legit(6000).1, "threads={threads} must stabilize");
            ps.publish(ids[0], TopicId(0), b"parallel".to_vec()).unwrap();
            ps.publish(ids[1], TopicId(1), b"worlds".to_vec()).unwrap();
            assert!(ps.until_pubs_converged(4000).1);
            let delivered: Vec<Vec<Delivery>> =
                ids.iter().map(|&id| ps.drain_events(id)).collect();
            (ps.metrics(), ps.stats(), delivered)
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn report_crash_routes_only_to_met_shards() {
        let topics = 8u32;
        let mut ps = SystemBuilder::new(54)
            .topics(topics)
            .shards(4)
            .protocol(ProtocolConfig::topology_only())
            .build_sharded();
        // One client per topic; each client meets exactly one shard.
        let ids: Vec<NodeId> = (0..topics).map(|t| ps.subscribe(TopicId(t))).collect();
        assert!(ps.until_legit(4000).1);
        let victim = ids[0];
        let victim_sup = ps.supervisor_for(TopicId(0));
        ps.crash(victim);
        ps.report_crash(victim);
        for &s in ps.supervisor_ids() {
            let sup = ps.world().node(s).expect("supervisor alive");
            let suspected: usize = sup
                .topic_ids()
                .into_iter()
                .filter_map(|t| sup.topic_supervisor(t))
                .map(|sv| sv.suspected.len())
                .sum();
            if s == victim_sup {
                assert!(suspected > 0, "the victim's shard must hear the report");
            } else {
                assert_eq!(suspected, 0, "shard {s} never met {victim}");
            }
        }
        assert!(ps.until_legit(4000).1, "eviction must re-stabilize");
    }

    #[test]
    fn report_crash_of_unknown_node_is_a_true_noop() {
        let mut ps = SystemBuilder::new(55)
            .topics(4)
            .shards(2)
            .protocol(ProtocolConfig::topology_only())
            .build_sharded();
        for t in 0..4 {
            ps.subscribe(TopicId(t));
        }
        assert!(ps.until_legit(4000).1);
        let before = ps.metrics();
        // A suspect no shard has ever met: nothing may change — no
        // supervisor state, no traffic.
        ps.report_crash(NodeId(0xDEAD_BEEF));
        for &s in ps.supervisor_ids() {
            let sup = ps.world().node(s).expect("supervisor alive");
            for t in sup.topic_ids() {
                assert!(
                    sup.topic_supervisor(t).unwrap().suspected.is_empty(),
                    "unknown suspect leaked into shard {s}"
                );
            }
        }
        assert_eq!(ps.metrics(), before, "no traffic may result");
        assert!(ps.is_legitimate());
    }

    #[test]
    fn stats_per_partition_sums_to_totals() {
        let mut ps = SystemBuilder::new(56)
            .topics(6)
            .shards(3)
            .threads(2)
            .build_sharded();
        let ids: Vec<NodeId> = (0..12).map(|i| ps.subscribe(TopicId(i % 6))).collect();
        assert!(ps.until_legit(6000).1);
        ps.publish(ids[0], TopicId(0), b"sum check".to_vec()).unwrap();
        assert!(ps.until_pubs_converged(4000).1);
        let stats = ps.stats();
        assert_eq!(stats.per_partition.len(), 3);
        let sent: u64 = stats.per_partition.iter().map(|p| p.sent).sum();
        let delivered: u64 = stats.per_partition.iter().map(|p| p.delivered).sum();
        let dropped: u64 = stats.per_partition.iter().map(|p| p.dropped).sum();
        assert_eq!(sent, stats.sent, "per-partition sent must sum to total");
        assert_eq!(
            delivered, stats.delivered,
            "per-partition delivered must sum to total"
        );
        assert_eq!(
            dropped, stats.dropped,
            "per-partition dropped must sum to total (no external injects)"
        );
        // The aggregate equals what the old single-world totals were:
        // the backend-agnostic fields stay the sum over partitions.
        let agg = ps.metrics();
        assert_eq!(agg.sent_total, stats.sent);
        assert_eq!(agg.delivered_total, stats.delivered);
    }
}
