//! [`ShardedBackend`]: §1.3's scaling remark as a *drivable system* —
//! topics are consistent-hashed onto multiple supervisor nodes (via
//! [`SupervisorShards`]) inside one simulated world, instead of the
//! hash ring existing only as a passive load calculation.

use super::{Delivery, EventCursor, MultiTopicBackend, PubSub, Stats};
use crate::sharding::SupervisorShards;
use crate::topics::{MultiActor, TopicId};
use crate::{Actor, ProtocolConfig};
use skippub_bits::BitStr;
use skippub_sim::{Metrics, NodeId, World};
use skippub_trie::Publication;

/// Base of the supervisor ID range. Client IDs count up from 1 exactly
/// as on every other backend (so publication keys agree across
/// backends); shard supervisors live far above any realistic client
/// population.
pub const SHARD_SUPERVISOR_BASE: u64 = 1 << 32;

/// The sharded multi-topic backend: `k` supervisors, each responsible
/// for the topics whose hash falls in its sub-interval of the
/// consistent-hash ring. Clients route every subscribe/publish for a
/// topic to that topic's shard; a shard failure therefore only affects
/// its own sub-interval of topics.
pub struct ShardedBackend {
    world: World<MultiActor>,
    shards: SupervisorShards,
    sup_ids: Vec<NodeId>,
    cfg: ProtocolConfig,
    topics: u32,
    next_id: u64,
    cursor: EventCursor,
}

impl ShardedBackend {
    pub(crate) fn new(
        seed: u64,
        topics: u32,
        shard_count: usize,
        replicas: usize,
        cfg: ProtocolConfig,
    ) -> Self {
        assert!(shard_count >= 1);
        let sup_ids: Vec<NodeId> = (0..shard_count as u64)
            .map(|i| NodeId(SHARD_SUPERVISOR_BASE + i))
            .collect();
        let mut world = World::new(seed);
        for &s in &sup_ids {
            world.add_node(s, MultiActor::new_supervisor(s));
        }
        ShardedBackend {
            shards: SupervisorShards::new(&sup_ids, replicas),
            world,
            sup_ids,
            cfg,
            topics,
            next_id: 1,
            cursor: EventCursor::new(),
        }
    }

    /// The consistent-hash ring mapping topics to supervisors.
    pub fn shards(&self) -> &SupervisorShards {
        &self.shards
    }

    /// IDs of the shard supervisors.
    pub fn supervisor_ids(&self) -> &[NodeId] {
        &self.sup_ids
    }

    /// The supervisor responsible for `topic`.
    pub fn supervisor_for(&self, topic: TopicId) -> NodeId {
        self.shards.supervisor_for(topic)
    }

    /// The underlying world, for white-box probes.
    pub fn world(&self) -> &World<MultiActor> {
        &self.world
    }

    /// Simulator metrics (per-kind and per-node counters; per-shard load
    /// is `metrics().sent_by(shard_id)`).
    pub fn metrics(&self) -> &Metrics {
        self.world.metrics()
    }

    fn assert_topic(&self, topic: TopicId) {
        assert!(
            topic.0 < self.topics,
            "topic {topic:?} outside 0..{}",
            self.topics
        );
    }
}

impl PubSub for ShardedBackend {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn topic_count(&self) -> u32 {
        self.topics
    }

    fn subscribe(&mut self, topic: TopicId) -> NodeId {
        self.assert_topic(topic);
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let sup = self.shards.supervisor_for(topic);
        let mut client = MultiActor::new_client(id, self.sup_ids[0], self.cfg);
        client.join_topic_at(topic, sup);
        self.world.add_node(id, client);
        id
    }

    fn join(&mut self, id: NodeId, topic: TopicId) {
        self.assert_topic(topic);
        let sup = self.shards.supervisor_for(topic);
        if let Some(a) = self.world.node_mut(id) {
            a.join_topic_at(topic, sup);
        }
    }

    fn unsubscribe(&mut self, id: NodeId, topic: TopicId) {
        self.assert_topic(topic);
        if let Some(a) = self.world.node_mut(id) {
            a.leave_topic(topic);
        }
    }

    fn publish(&mut self, id: NodeId, topic: TopicId, payload: Vec<u8>) -> Option<BitStr> {
        self.assert_topic(topic);
        self.world
            .with_node(id, |actor, ctx| actor.publish_local(ctx, topic, payload))?
    }

    fn seed_publication(&mut self, id: NodeId, topic: TopicId, publication: Publication) -> bool {
        self.assert_topic(topic);
        self.world
            .node_mut(id)
            .map(|a| a.seed_publication(topic, publication))
            .unwrap_or(false)
    }

    fn crash(&mut self, id: NodeId) {
        self.world.crash(id);
        self.cursor.forget(id);
    }

    fn report_crash(&mut self, id: NodeId) {
        // The detector feed reaches every shard; suspecting an unknown
        // node is a no-op at the shards that never met it.
        for &s in &self.sup_ids {
            if let Some(sup) = self.world.node_mut(s) {
                sup.suspect(id);
            }
        }
    }

    fn step(&mut self) {
        self.world.run_round();
    }

    fn is_legitimate(&self) -> bool {
        (0..self.topics).all(|t| {
            let t = TopicId(t);
            super::multi::topic_is_legit(&self.world, self.shards.supervisor_for(t), t)
        })
    }

    fn publications_converged(&self) -> (bool, usize) {
        super::multi::fold_pubs_converged(&self.world, self.topics)
    }

    fn drain_events(&mut self, id: NodeId) -> Vec<Delivery> {
        super::multi::drain_client_events(&self.world, &mut self.cursor, id)
    }

    fn subscriber_ids(&self) -> Vec<NodeId> {
        super::multi::client_ids(&self.world)
    }

    fn snapshot(&self, topic: TopicId) -> World<Actor> {
        self.assert_topic(topic);
        MultiTopicBackend::snapshot_at(&self.world, self.shards.supervisor_for(topic), topic)
    }

    fn stats(&self) -> Stats {
        super::stats_of(self.world.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubsub::SystemBuilder;

    #[test]
    fn topics_land_on_distinct_shards_and_stabilize() {
        let topics = 8u32;
        let mut ps = SystemBuilder::new(51)
            .topics(topics)
            .shards(4)
            .protocol(ProtocolConfig::topology_only())
            .build_sharded();
        // Routing must spread topics over more than one shard.
        let distinct: std::collections::BTreeSet<NodeId> = (0..topics)
            .map(|t| ps.supervisor_for(TopicId(t)))
            .collect();
        assert!(distinct.len() > 1, "consistent hashing must shard topics");
        for t in 0..topics {
            for _ in 0..3 {
                ps.subscribe(TopicId(t));
            }
        }
        let (_, ok) = ps.until_legit(4000);
        assert!(ok, "every shard's topics must stabilize");
        // Each topic's snapshot places its own shard as the supervisor.
        for t in 0..topics {
            let snap = ps.snapshot(TopicId(t));
            let sup_id = crate::scenarios::supervisor_id(&snap);
            assert_eq!(sup_id, ps.supervisor_for(TopicId(t)));
        }
    }

    #[test]
    fn publish_is_shard_local() {
        let mut ps = SystemBuilder::new(52)
            .topics(4)
            .shards(2)
            .build_sharded();
        let t = TopicId(2);
        let ids: Vec<NodeId> = (0..3).map(|_| ps.subscribe(t)).collect();
        assert!(ps.until_legit(4000).1);
        ps.publish(ids[0], t, b"sharded hello".to_vec()).unwrap();
        assert!(ps.until_pubs_converged(2000).1);
        for &id in &ids {
            let ev = ps.drain_events(id);
            assert_eq!(ev.len(), 1);
            assert_eq!(ev[0].topic, t);
        }
        // Only the responsible shard carries the topic's database.
        let sup = ps.supervisor_for(t);
        for &s in ps.supervisor_ids() {
            let hosts = ps
                .world()
                .node(s)
                .and_then(|a| a.topic_supervisor(t))
                .map(|sv| sv.n())
                .unwrap_or(0);
            if s == sup {
                assert_eq!(hosts, 3);
            } else {
                assert_eq!(hosts, 0, "shard {s} must not host topic {t:?}");
            }
        }
    }
}
