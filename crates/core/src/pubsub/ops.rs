//! Recordable facade operations: every mutation of a [`PubSub`] system as
//! a value.
//!
//! The scenario engine in `skippub-harness` drives backends through
//! [`Op`] values so that each applied operation can be logged to a
//! **trace** and replayed later: applying the same op sequence to a
//! freshly built deterministic backend reproduces the original execution
//! byte for byte. The compact one-line serialization ([`Op::to_line`] /
//! [`Op::parse_line`]) is the trace's wire format — human-greppable, no
//! external serializer needed.
//!
//! ```
//! use skippub_core::pubsub::{Op, PubSub, SystemBuilder};
//! use skippub_core::TopicId;
//!
//! let mut ps = SystemBuilder::new(7).build_sim();
//! let ops = [
//!     Op::Subscribe { topic: TopicId(0) },
//!     Op::Subscribe { topic: TopicId(0) },
//!     Op::Step,
//! ];
//! for op in &ops {
//!     // Round-trips through the trace line format, then applies.
//!     let line = op.to_line();
//!     assert_eq!(Op::parse_line(&line).unwrap(), *op);
//!     op.apply(&mut ps);
//! }
//! assert_eq!(ps.subscriber_ids().len(), 2);
//! ```

use super::PubSub;
use crate::topics::TopicId;
use skippub_sim::NodeId;
use skippub_trie::Publication;
use std::fmt;

/// One recordable operation against a [`PubSub`] backend.
///
/// `Step` is included so a trace carries the *complete* interaction —
/// replaying the identical op sequence (including progress) against a
/// deterministic backend reproduces the identical state trajectory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Add a fresh subscriber to `topic` ([`PubSub::subscribe`]). The
    /// backend assigns the next client ID; replays reproduce the same
    /// assignment because IDs are allocated identically on every backend.
    Subscribe {
        /// Topic the new client subscribes to.
        topic: TopicId,
    },
    /// Subscribe the existing client `id` to `topic` ([`PubSub::join`]).
    Join {
        /// Existing client.
        id: NodeId,
        /// Topic joined.
        topic: TopicId,
    },
    /// Gracefully leave `topic` ([`PubSub::unsubscribe`]).
    Unsubscribe {
        /// Leaving client.
        id: NodeId,
        /// Topic left.
        topic: TopicId,
    },
    /// Publish `payload` at client `id` on `topic` ([`PubSub::publish`]).
    Publish {
        /// Publishing client.
        id: NodeId,
        /// Topic published on.
        topic: TopicId,
        /// Published content.
        payload: Vec<u8>,
    },
    /// Insert a publication authored by `author` directly into `id`'s
    /// store ([`PubSub::seed_publication`]) — the arbitrary initial
    /// publication distribution of Theorem 17.
    SeedPublication {
        /// Client whose store receives the publication.
        id: NodeId,
        /// Topic the publication belongs to.
        topic: TopicId,
        /// Author ID the publication key is derived from.
        author: u64,
        /// Publication content.
        payload: Vec<u8>,
    },
    /// Crash `id` without warning ([`PubSub::crash`], §3.3).
    Crash {
        /// Crashing node.
        id: NodeId,
    },
    /// Report `id` crashed to the supervisor(s)
    /// ([`PubSub::report_crash`]).
    ReportCrash {
        /// Reported node.
        id: NodeId,
    },
    /// Crash the primary supervisor replica responsible for `topic`
    /// ([`PubSub::crash_supervisor`]): the endpoint's state is wiped
    /// and, when backups exist, a deterministic failover re-installs the
    /// replicated state at the same endpoint.
    CrashSupervisor {
        /// Topic whose responsible supervisor's primary crashes.
        topic: TopicId,
    },
    /// One unit of progress ([`PubSub::step`]).
    Step,
}

impl Op {
    /// Applies the operation to `ps`. Returns the assigned ID for
    /// `Subscribe`, `None` for every other op.
    pub fn apply(&self, ps: &mut dyn PubSub) -> Option<NodeId> {
        match self {
            Op::Subscribe { topic } => Some(ps.subscribe(*topic)),
            Op::Join { id, topic } => {
                ps.join(*id, *topic);
                None
            }
            Op::Unsubscribe { id, topic } => {
                ps.unsubscribe(*id, *topic);
                None
            }
            Op::Publish { id, topic, payload } => {
                ps.publish(*id, *topic, payload.clone());
                None
            }
            Op::SeedPublication {
                id,
                topic,
                author,
                payload,
            } => {
                ps.seed_publication(*id, *topic, Publication::new(*author, payload.clone()));
                None
            }
            Op::Crash { id } => {
                ps.crash(*id);
                None
            }
            Op::ReportCrash { id } => {
                ps.report_crash(*id);
                None
            }
            Op::CrashSupervisor { topic } => {
                ps.crash_supervisor(*topic);
                None
            }
            Op::Step => {
                ps.step();
                None
            }
        }
    }

    /// Serializes to the one-line trace format (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_string()
    }

    /// Parses one trace line. Inverse of [`Op::to_line`].
    pub fn parse_line(line: &str) -> Result<Op, String> {
        let mut it = line.split_ascii_whitespace();
        let word = it.next().ok_or_else(|| "empty op line".to_string())?;
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("op {word:?}: missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("op {word:?}: bad {what}: {e}"))
        };
        let op = match word {
            "sub" => Op::Subscribe {
                topic: TopicId(num("topic")? as u32),
            },
            "join" => Op::Join {
                id: NodeId(num("id")?),
                topic: TopicId(num("topic")? as u32),
            },
            "leave" => Op::Unsubscribe {
                id: NodeId(num("id")?),
                topic: TopicId(num("topic")? as u32),
            },
            "pub" => {
                let id = NodeId(num("id")?);
                let topic = TopicId(num("topic")? as u32);
                let payload = decode_hex(it.next().ok_or("pub: missing payload")?)?;
                Op::Publish { id, topic, payload }
            }
            "seed" => {
                let id = NodeId(num("id")?);
                let topic = TopicId(num("topic")? as u32);
                let author = num("author")?;
                let payload = decode_hex(it.next().ok_or("seed: missing payload")?)?;
                Op::SeedPublication {
                    id,
                    topic,
                    author,
                    payload,
                }
            }
            "crash" => Op::Crash {
                id: NodeId(num("id")?),
            },
            "report" => Op::ReportCrash {
                id: NodeId(num("id")?),
            },
            "crashsup" => Op::CrashSupervisor {
                topic: TopicId(num("topic")? as u32),
            },
            "step" => Op::Step,
            other => return Err(format!("unknown op {other:?}")),
        };
        match it.next() {
            None => Ok(op),
            Some(extra) => Err(format!("op {word:?}: trailing {extra:?}")),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Subscribe { topic } => write!(f, "sub {}", topic.0),
            Op::Join { id, topic } => write!(f, "join {} {}", id.0, topic.0),
            Op::Unsubscribe { id, topic } => write!(f, "leave {} {}", id.0, topic.0),
            Op::Publish { id, topic, payload } => {
                write!(f, "pub {} {} {}", id.0, topic.0, encode_hex(payload))
            }
            Op::SeedPublication {
                id,
                topic,
                author,
                payload,
            } => write!(
                f,
                "seed {} {} {} {}",
                id.0,
                topic.0,
                author,
                encode_hex(payload)
            ),
            Op::Crash { id } => write!(f, "crash {}", id.0),
            Op::ReportCrash { id } => write!(f, "report {}", id.0),
            Op::CrashSupervisor { topic } => write!(f, "crashsup {}", topic.0),
            Op::Step => write!(f, "step"),
        }
    }
}

/// Lowercase hex encoding of a payload; `-` stands for the empty payload
/// (every field in the line format must be non-empty to survive
/// whitespace splitting).
pub fn encode_hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    s
}

/// Inverse of [`encode_hex`].
pub fn decode_hex(s: &str) -> Result<Vec<u8>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex {s:?}"));
    }
    let digits: Result<Vec<u8>, String> = s
        .chars()
        .map(|c| {
            c.to_digit(16)
                .map(|d| d as u8)
                .ok_or_else(|| format!("bad hex digit {c:?}"))
        })
        .collect();
    let digits = digits?;
    Ok(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubsub::SystemBuilder;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Subscribe { topic: TopicId(0) },
            Op::Join {
                id: NodeId(1),
                topic: TopicId(2),
            },
            Op::Unsubscribe {
                id: NodeId(3),
                topic: TopicId(0),
            },
            Op::Publish {
                id: NodeId(1),
                topic: TopicId(0),
                payload: b"hello \n world".to_vec(),
            },
            Op::Publish {
                id: NodeId(1),
                topic: TopicId(0),
                payload: Vec::new(),
            },
            Op::SeedPublication {
                id: NodeId(4),
                topic: TopicId(1),
                author: 9,
                payload: vec![0, 255, 16],
            },
            Op::Crash { id: NodeId(2) },
            Op::ReportCrash { id: NodeId(2) },
            Op::CrashSupervisor { topic: TopicId(1) },
            Op::Step,
        ]
    }

    #[test]
    fn line_format_round_trips() {
        for op in sample_ops() {
            let line = op.to_line();
            assert_eq!(Op::parse_line(&line).expect(&line), op, "line {line:?}");
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "warp 1",
            "sub",
            "pub 1 0",
            "pub 1 0 abc",  // odd-length hex
            "pub 1 0 zz",   // non-hex
            "crash 1 extra",
            "crashsup",
            "crashsup 0 9",
        ] {
            assert!(Op::parse_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hex_empty_payload_round_trips() {
        assert_eq!(encode_hex(b""), "-");
        assert_eq!(decode_hex("-").unwrap(), Vec::<u8>::new());
        assert_eq!(decode_hex(&encode_hex(b"\x00\xff")).unwrap(), b"\x00\xff");
    }

    #[test]
    fn applying_ops_drives_a_backend() {
        let mut ps = SystemBuilder::new(5).build_sim();
        let a = Op::Subscribe { topic: TopicId(0) }.apply(&mut ps).unwrap();
        let b = Op::Subscribe { topic: TopicId(0) }.apply(&mut ps).unwrap();
        assert_eq!((a, b), (NodeId(1), NodeId(2)));
        for _ in 0..200 {
            Op::Step.apply(&mut ps);
        }
        assert!(ps.is_legitimate());
        Op::Publish {
            id: a,
            topic: TopicId(0),
            payload: b"x".to_vec(),
        }
        .apply(&mut ps);
        for _ in 0..50 {
            Op::Step.apply(&mut ps);
        }
        assert_eq!(ps.drain_events(b).len(), 1);
    }
}
