//! [`MultiTopicBackend`]: the multi-topic system of §4 — one supervisor
//! hosting one `BuildSR` instance per topic — behind the [`PubSub`]
//! facade, replacing the hand-rolled `World<MultiActor>` driving that
//! examples and tests used to do.
//!
//! Since the sharding PR the backend executes on a
//! [`PartitionedWorld`], the same parallel round executor the sharded
//! backend uses: the supervisor lives in partition 0 and clients are
//! spread round-robin (`id % partitions`) across
//! [`SystemBuilder::shards`](super::SystemBuilder::shards) partitions,
//! stepped by up to [`SystemBuilder::threads`](super::SystemBuilder::threads)
//! workers. With the defaults (one shard, one thread) this is the
//! serial single-mailbox execution the backend always had; with more,
//! every scalable backend exercises the parallel path — and results
//! stay byte-identical for every thread count.

use super::incremental::IncChecker;
use super::{BackendSnapshot, Delivery, EventCursor, PartitionStats, PubSub, Stats};
use crate::checker;
use crate::dirty::{pubs_key, topo_key};
use crate::replica::ReplicaGroup;
use crate::scenarios::SUPERVISOR;
use crate::topics::{MultiActor, TopicId};
use crate::{Actor, ProtocolConfig, Supervisor};
use skippub_bits::BitStr;
use skippub_sim::{
    FaultCounts, FaultSpec, Metrics, NodeId, NodeView, PartitionedState, PartitionedWorld, World,
};
use skippub_snapshot::{Snap, SnapWriter};
use skippub_trie::{PayloadInterner, Publication};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// The multi-topic simulator backend (§4): clients subscribe to any
/// subset of `TopicId(0..topic_count)`; the supervisor's per-timeout
/// work is linear in the number of topics and independent of the number
/// of subscribers.
pub struct MultiTopicBackend {
    world: PartitionedWorld<MultiActor>,
    cfg: ProtocolConfig,
    topics: u32,
    next_id: u64,
    cursor: EventCursor,
    /// Incremental verdict caches + member index (`RefCell`: the
    /// facade's polling predicates take `&self`).
    inc: RefCell<IncChecker>,
    interner: PayloadInterner,
    /// Supervisor replica group (`None` = the paper's unreplicated
    /// supervisor). One group covers every topic: the replica log tags
    /// each operation with its topic.
    group: Option<ReplicaGroup>,
    /// Sever windows (by index in the armed spec) that already took the
    /// supervisor endpoint down — each scheduled partition isolating
    /// the supervisor fires the failover exactly once, at rising edge.
    sever_fired: BTreeSet<u64>,
}

impl MultiTopicBackend {
    pub(crate) fn new(
        seed: u64,
        topics: u32,
        partitions: usize,
        threads: usize,
        cfg: ProtocolConfig,
    ) -> Self {
        let mut world = PartitionedWorld::new(seed, partitions, threads);
        world.add_node(SUPERVISOR, MultiActor::new_supervisor(SUPERVISOR), 0);
        MultiTopicBackend {
            world,
            cfg,
            topics,
            next_id: 1,
            cursor: EventCursor::new(),
            inc: RefCell::new(IncChecker::new(topics)),
            interner: PayloadInterner::new(),
            group: None,
            sever_fired: BTreeSet::new(),
        }
    }

    /// Configures `k` supervisor replicas behind the endpoint. `k = 1`
    /// disables replication (the paper's model). Call before driving
    /// the system: the replica log starts at the current state.
    pub fn set_replicas(&mut self, k: usize) {
        if let Some(sup) = self.world.node_mut(SUPERVISOR) {
            sup.set_replicated(k >= 2);
        }
        // Lazily instantiated topic supervisors run with the token
        // machinery off, so replicas replay with the same setting.
        self.group = (k >= 2).then(|| ReplicaGroup::new(k, SUPERVISOR, false));
    }

    /// Drains the endpoint supervisor's recorded operations (ascending
    /// topic order) into the primary's log and runs one anti-entropy
    /// round. Called after every facade operation that can execute
    /// supervisor handlers, so outboxes are always empty at facade
    /// boundaries (snapshots rely on this).
    fn sync_group(&mut self) {
        let Some(group) = self.group.as_mut() else {
            return;
        };
        if let Some(sup) = self.world.node_mut(SUPERVISOR) {
            for (topic, kinds) in sup.drain_outboxes() {
                group.record_topic(topic, kinds);
            }
        }
        group.anti_entropy();
    }

    /// The replica group, when replication is configured.
    pub fn replica_group(&self) -> Option<&ReplicaGroup> {
        self.group.as_ref()
    }

    /// The payload pool behind `publish`: repeated payloads (across
    /// authors and topics) collapse to one shared allocation.
    pub fn payload_interner(&self) -> &PayloadInterner {
        &self.interner
    }

    /// The supervisor's node ID.
    pub fn supervisor_id(&self) -> NodeId {
        SUPERVISOR
    }

    /// The underlying multi-topic world, for white-box probes (metrics,
    /// per-node state) the facade does not cover.
    pub fn world(&self) -> &PartitionedWorld<MultiActor> {
        &self.world
    }

    /// Mutable access to the underlying world (adversarial injection).
    /// Raw access may change anything, so every cached checker verdict
    /// is dropped and the member index is rebuilt on the next poll.
    pub fn world_mut(&mut self) -> &mut PartitionedWorld<MultiActor> {
        self.inc.get_mut().invalidate_all();
        &mut self.world
    }

    /// Routes the facade's polling predicates through the pre-PR
    /// from-scratch checker (`true`) instead of the incremental layer —
    /// kept callable for A/B benchmarking.
    pub fn set_full_checking(&mut self, full: bool) {
        self.inc.get_mut().set_full(full);
    }

    /// From-scratch legitimacy over every topic (the pre-PR path: one
    /// whole-world scan per topic through the diagnostic checker),
    /// regardless of the A/B switch.
    pub fn is_legitimate_full(&self) -> bool {
        (0..self.topics).all(|t| topic_is_legit(&self.world, SUPERVISOR, TopicId(t)))
    }

    /// From-scratch publication convergence (the pre-PR per-poll global
    /// key union), regardless of the switch.
    pub fn publications_converged_full(&self) -> (bool, usize) {
        fold_pubs_converged(&self.world, self.topics)
    }

    /// Simulator metrics, folded over all partitions (by value now that
    /// the backend runs partitioned).
    pub fn metrics(&self) -> Metrics {
        self.world.metrics()
    }

    /// Sets the per-node per-step delivery budget (`None` = unbounded).
    pub fn set_delivery_budget(&mut self, budget: Option<u32>) {
        self.world.set_delivery_budget(budget);
    }

    /// Rebuilds a backend from a `multi-topic` snapshot. The checker
    /// restarts cold with an invalidated member index (a fresh
    /// `IncChecker` trusts its — empty — index, which would judge
    /// against no members at all), so the first poll re-scans the world;
    /// verdicts are pure functions of the world, so this is exact.
    pub fn from_snapshot(snap: &BackendSnapshot) -> Result<Self, String> {
        if snap.kind != "multi-topic" {
            return Err(format!("expected a multi-topic snapshot, got {:?}", snap.kind));
        }
        let mut r = snap.reader().map_err(|e| e.to_string())?;
        let err = |e: skippub_snapshot::SnapError| e.to_string();
        let cfg = ProtocolConfig::load(&mut r).map_err(err)?;
        let topics = u32::load(&mut r).map_err(err)?;
        let next_id = u64::load(&mut r).map_err(err)?;
        let interner = PayloadInterner::load(&mut r).map_err(err)?;
        let world = PartitionedState::<MultiActor>::load(&mut r).map_err(err)?;
        let cursor = EventCursor::load(&mut r).map_err(err)?;
        let group = Option::<ReplicaGroup>::load(&mut r).map_err(err)?;
        let sever_fired = BTreeSet::<u64>::load(&mut r).map_err(err)?;
        r.finish().map_err(err)?;
        let mut inc = IncChecker::new(topics);
        inc.invalidate_all();
        Ok(MultiTopicBackend {
            world: PartitionedWorld::from_state(world),
            cfg,
            topics,
            next_id,
            cursor,
            inc: RefCell::new(inc),
            interner,
            group,
            sever_fired,
        })
    }

    fn assert_topic(&self, topic: TopicId) {
        assert!(
            topic.0 < self.topics,
            "topic {topic:?} outside 0..{}",
            self.topics
        );
    }

}

/// Per-topic snapshot over an explicit supervisor node — generic over
/// the world shape ([`NodeView`]), shared by the multi-topic backend
/// and the (partitioned) sharded backend, which routes each topic to
/// its shard.
pub(crate) fn snapshot_topic<V: NodeView<MultiActor>>(
    world: &V,
    sup_id: NodeId,
    topic: TopicId,
) -> World<Actor> {
    let mut out = World::new(0);
    let sup = world
        .peek(sup_id)
        .and_then(|a| a.topic_supervisor(topic).cloned())
        .unwrap_or_else(|| Supervisor::new(sup_id));
    out.add_node(sup_id, Actor::Supervisor(sup));
    for (id, actor) in world.nodes() {
        if let Some(s) = actor.topic_subscriber(topic) {
            out.add_node(id, Actor::Subscriber(Box::new(s.clone())));
        }
    }
    out
}

/// Drains client `id`'s new deliveries across all its topics — shared
/// by the multi-topic and sharded backends so the two cannot diverge.
pub(crate) fn drain_client_events<V: NodeView<MultiActor>>(
    world: &V,
    cursor: &mut super::EventCursor,
    id: NodeId,
) -> Vec<super::Delivery> {
    let Some(actor) = world.peek(id) else {
        return Vec::new();
    };
    // Borrowing subscription walk — no per-call topic-id or trie-ref
    // Vecs; combined with the cursor's root-hash short-circuit, a drain
    // of a quiet client allocates nothing beyond the (empty) result.
    cursor.drain(id, actor.subscriptions().map(|(t, s)| (t, &s.trie)))
}

/// IDs of live clients (supervisors excluded), ascending — shared by
/// the multi-topic and sharded backends.
pub(crate) fn client_ids<V: NodeView<MultiActor>>(world: &V) -> Vec<NodeId> {
    world
        .nodes()
        .filter(|(_, a)| a.is_client())
        .map(|(id, _)| id)
        .collect()
}

/// Judges one topic's topology *by reference* (no world cloning — this
/// sits on the `until_legit` polling path). Shared with the sharded
/// backend.
pub(crate) fn topic_is_legit<V: NodeView<MultiActor>>(
    world: &V,
    sup_id: NodeId,
    topic: TopicId,
) -> bool {
    let members = world
        .nodes()
        .filter_map(|(id, a)| a.topic_subscriber(topic).map(|s| (id, s)));
    match world.peek(sup_id).and_then(|a| a.topic_supervisor(topic)) {
        Some(sup) => checker::check_topology_parts(sup, members).ok(),
        // Topic never contacted: judged against an empty supervisor.
        None => {
            let empty = Supervisor::new(sup_id);
            checker::check_topology_parts(&empty, members).ok()
        }
    }
}

/// Per-topic publication convergence by reference; shared with the
/// sharded backend.
pub(crate) fn topic_pubs_converged<V: NodeView<MultiActor>>(
    world: &V,
    topic: TopicId,
) -> (bool, usize) {
    checker::publications_converged_of(
        world.nodes().filter_map(|(_, a)| a.topic_subscriber(topic)),
    )
}

/// Folds per-topic convergence into the facade's `(converged, total)`
/// answer: converged iff every topic converged; the total is the sum of
/// per-topic union sizes either way (matching the single-topic
/// backends, which report the union size even when not yet converged).
pub(crate) fn fold_pubs_converged<V: NodeView<MultiActor>>(
    world: &V,
    topics: u32,
) -> (bool, usize) {
    let mut all_ok = true;
    let mut total = 0;
    for t in 0..topics {
        let (ok, n) = topic_pubs_converged(world, TopicId(t));
        all_ok &= ok;
        total += n;
    }
    (all_ok, total)
}

impl PubSub for MultiTopicBackend {
    fn backend_name(&self) -> &'static str {
        "multi-topic"
    }

    fn topic_count(&self) -> u32 {
        self.topics
    }

    fn subscribe(&mut self, topic: TopicId) -> NodeId {
        self.assert_topic(topic);
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let mut client = MultiActor::new_client(id, SUPERVISOR, self.cfg);
        client.join_topic(topic);
        // Round-robin placement: a pure function of the client's ID, so
        // the node→partition map — and with it every trajectory — is
        // identical for every thread count.
        let partition = (id.0 % self.world.partition_count() as u64) as u32;
        self.world.add_node(id, client, partition);
        self.inc.get_mut().add_member(topic, id);
        self.world.bump_dirty(topo_key(topic.0));
        self.world.bump_dirty(pubs_key(topic.0));
        id
    }

    fn join(&mut self, id: NodeId, topic: TopicId) {
        self.assert_topic(topic);
        if let Some(a) = self.world.node_mut(id) {
            a.join_topic(topic);
            self.inc.get_mut().add_member(topic, id);
            self.world.bump_dirty(topo_key(topic.0));
            self.world.bump_dirty(pubs_key(topic.0));
        }
    }

    fn unsubscribe(&mut self, id: NodeId, topic: TopicId) {
        self.assert_topic(topic);
        if let Some(a) = self.world.node_mut(id) {
            a.leave_topic(topic);
            self.world.bump_dirty(topo_key(topic.0));
            self.world.bump_dirty(pubs_key(topic.0));
        }
    }

    fn publish(&mut self, id: NodeId, topic: TopicId, payload: Vec<u8>) -> Option<BitStr> {
        self.assert_topic(topic);
        let shared = self.interner.intern(payload);
        let key = self.world.with_node(id, |actor, ctx| {
            actor.publish_local_shared(ctx, topic, shared)
        })??;
        self.world.bump_dirty(pubs_key(topic.0));
        Some(key)
    }

    fn seed_publication(&mut self, id: NodeId, topic: TopicId, publication: Publication) -> bool {
        self.assert_topic(topic);
        let fresh = self
            .world
            .node_mut(id)
            .map(|a| a.seed_publication(topic, publication))
            .unwrap_or(false);
        if fresh {
            self.world.bump_dirty(pubs_key(topic.0));
        }
        fresh
    }

    fn crash(&mut self, id: NodeId) {
        if let Some(actor) = self.world.node(id) {
            let topics: Vec<TopicId> = actor.topic_ids();
            let inc = self.inc.get_mut();
            for t in topics {
                inc.remove_member(t, id);
                self.world.bump_dirty(topo_key(t.0));
                self.world.bump_dirty(pubs_key(t.0));
            }
        }
        self.world.crash(id);
        self.cursor.forget(id);
    }

    fn report_crash(&mut self, id: NodeId) {
        if id == SUPERVISOR {
            // A crash report on the supervisor endpoint routes to the
            // replica group (previously a silent self-suspect no-op):
            // with live backups this triggers failover; with a single
            // replica it stays a uniform no-op.
            self.crash_supervisor(TopicId(0));
            return;
        }
        // Feeds `suspected` only; the eviction at the supervisor's next
        // timeout marks the affected topics via its db-epoch delta.
        if let Some(sup) = self.world.node_mut(SUPERVISOR) {
            sup.suspect(id);
        }
        self.sync_group();
    }

    fn step(&mut self) {
        self.world.run_round();
        self.sync_group();
        // A scheduled partition isolating the supervisor endpoint fires
        // the replica-group failover once, at the window's rising edge
        // — a partition, not a scripted crash, triggers the election.
        if let Some(idx) = self.world.active_sever_containing(SUPERVISOR) {
            if self.sever_fired.insert(idx as u64) {
                self.crash_supervisor(TopicId(0));
            }
        }
    }

    fn is_legitimate(&self) -> bool {
        let mut inc = self.inc.borrow_mut();
        if !inc.replicas_agree(self.group.as_ref()) {
            return false;
        }
        if inc.full() {
            return self.is_legitimate_full();
        }
        inc.all_legit(
            &self.world,
            self.topics,
            |t| self.world.dirty_version(topo_key(t)),
            |_| SUPERVISOR,
        )
    }

    fn publications_converged(&self) -> (bool, usize) {
        let mut inc = self.inc.borrow_mut();
        if inc.full() {
            return self.publications_converged_full();
        }
        inc.all_pubs(&self.world, self.topics, |t| {
            self.world.dirty_version(pubs_key(t))
        })
    }

    fn drain_events(&mut self, id: NodeId) -> Vec<Delivery> {
        drain_client_events(&self.world, &mut self.cursor, id)
    }

    fn subscriber_ids(&self) -> Vec<NodeId> {
        client_ids(&self.world)
    }

    fn snapshot(&self, topic: TopicId) -> World<Actor> {
        self.assert_topic(topic);
        snapshot_topic(&self.world, SUPERVISOR, topic)
    }

    fn stats(&self) -> Stats {
        let mut stats =
            super::stats_of(&self.world.metrics(), self.world.peak_in_flight() as u64);
        super::apply_fault_counts(&mut stats, self.world.fault_counts());
        stats.per_partition = (0..self.world.partition_count())
            .map(|i| {
                let m = self.world.partition_metrics(i);
                let mut p = PartitionStats {
                    sent: m.sent_total,
                    delivered: m.delivered_total,
                    dropped: m.dropped,
                    cross_envelopes: self.world.cross_envelopes(i),
                    peak_in_flight: self.world.partition_peak_in_flight(i) as u64,
                    stepped: self.world.partition_stepped(i),
                    lock_acquisitions: self.world.partition_lock_acquisitions(i),
                    ..PartitionStats::default()
                };
                super::apply_partition_fault_counts(&mut p, self.world.partition_fault_counts(i));
                p
            })
            .collect();
        stats
    }

    fn set_faults(&mut self, spec: Option<FaultSpec>) {
        self.world.set_faults(spec);
    }

    fn fault_counts(&self) -> FaultCounts {
        self.world.fault_counts()
    }

    fn save_snapshot(&self) -> Result<BackendSnapshot, String> {
        let mut w = SnapWriter::new();
        self.cfg.save(&mut w);
        self.topics.save(&mut w);
        self.next_id.save(&mut w);
        self.interner.save(&mut w);
        self.world.export_state().save(&mut w);
        self.cursor.save(&mut w);
        self.group.save(&mut w);
        self.sever_fired.save(&mut w);
        Ok(w.finish(self.backend_name()))
    }

    fn supervisor_replicas(&self) -> usize {
        self.group.as_ref().map(|g| g.live_count()).unwrap_or(1)
    }

    fn supervisor_failovers(&self) -> u64 {
        self.group.as_ref().map(|g| g.failovers()).unwrap_or(0)
    }

    fn crash_supervisor(&mut self, topic: TopicId) -> bool {
        self.assert_topic(topic);
        // One supervisor hosts every topic, so `topic` only selects the
        // endpoint (always `SUPERVISOR` here); the whole per-topic map
        // dies and is re-installed from the electee's replayed state.
        self.sync_group();
        let Some(group) = self.group.as_mut() else {
            return false;
        };
        if !group.fail_primary() {
            return false;
        }
        let installed = group.primary_topics();
        if let Some(sup) = self.world.node_mut(SUPERVISOR) {
            sup.install_topics(installed);
        }
        for t in 0..self.topics {
            self.world.bump_dirty(topo_key(t));
        }
        self.inc.get_mut().invalidate_all();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubsub::SystemBuilder;

    #[test]
    fn topics_stabilize_and_deliver_independently() {
        let mut ps = SystemBuilder::new(41)
            .topics(2)
            .protocol(ProtocolConfig::default())
            .build_multi();
        let (ta, tb) = (TopicId(0), TopicId(1));
        let a_members: Vec<NodeId> = (0..3).map(|_| ps.subscribe(ta)).collect();
        let b_members: Vec<NodeId> = (0..3).map(|_| ps.subscribe(tb)).collect();
        // One client straddles both topics.
        ps.join(a_members[0], tb);
        let (_, ok) = ps.until_legit(2000);
        assert!(ok, "both rings must stabilize");
        ps.publish(a_members[1], ta, b"only-a".to_vec()).unwrap();
        let (_, ok) = ps.until_pubs_converged(2000);
        assert!(ok);
        for &m in &a_members {
            let ev = ps.drain_events(m);
            assert_eq!(ev.len(), 1, "topic-a member sees the story");
            assert_eq!(ev[0].topic, ta);
        }
        for &m in &b_members {
            assert!(
                ps.drain_events(m).is_empty(),
                "topic-b members must not see topic-a content"
            );
        }
    }

    #[test]
    fn leave_topic_restabilizes() {
        let mut ps = SystemBuilder::new(42)
            .protocol(ProtocolConfig::topology_only())
            .build_multi();
        let t = TopicId(0);
        let ids: Vec<NodeId> = (0..4).map(|_| ps.subscribe(t)).collect();
        assert!(ps.until_legit(2000).1);
        ps.unsubscribe(ids[1], t);
        assert!(ps.until_legit(2000).1);
        let snap = ps.snapshot(t);
        let sup = snap
            .iter()
            .find_map(|(_, a)| a.supervisor())
            .expect("supervisor");
        assert_eq!(sup.n(), 3);
    }
}
