//! [`SimBackend`]: the single-topic deterministic simulator behind the
//! [`PubSub`] facade — synchronous rounds, or chaos rounds when a
//! [`ChaosConfig`] is attached.

use super::incremental::SimChecker;
use super::{BackendSnapshot, Delivery, EventCursor, PubSub, Stats};
use crate::api::SkipRingSim;
use crate::checker::LegitReport;
use crate::dirty::{pubs_key, topo_key};
use crate::replica::ReplicaGroup;
use crate::scenarios::SUPERVISOR;
use crate::topics::TopicId;
use crate::{Actor, ProtocolConfig};
use skippub_bits::BitStr;
use skippub_sim::{ChaosConfig, FaultCounts, FaultSpec, Metrics, NodeId, World, WorldState};
use skippub_snapshot::{Snap, SnapWriter};
use skippub_trie::{PayloadInterner, Publication};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// The deterministic-simulator backend: one supervisor, one topic
/// (`TopicId(0)`), driven in synchronous rounds — or chaos rounds
/// (random delays, reordering, probabilistic timeouts) when built via
/// [`super::SystemBuilder::build_chaos`].
pub struct SimBackend {
    sim: SkipRingSim,
    chaos: Option<ChaosConfig>,
    cursor: EventCursor,
    /// Incremental verdict cache (`RefCell`: the facade's polling
    /// predicates take `&self`; the backend is driven single-threaded).
    inc: RefCell<SimChecker>,
    /// Supervisor replica group (`None` = the paper's unreplicated
    /// supervisor: zero logging, zero overhead).
    group: Option<ReplicaGroup>,
    /// Sever windows (by index in the armed spec) that have already
    /// taken down the supervisor endpoint: a scheduled partition
    /// isolating the supervisor counts as a process failure exactly
    /// once, at its rising edge.
    sever_fired: BTreeSet<u64>,
}

/// The one topic a single-topic backend serves.
const TOPIC: TopicId = TopicId(0);

fn assert_topic(topic: TopicId) {
    assert!(
        topic == TOPIC,
        "single-topic backend serves only TopicId(0), got {topic:?}"
    );
}

impl SimBackend {
    pub(crate) fn new(seed: u64, cfg: ProtocolConfig, chaos: Option<ChaosConfig>) -> Self {
        SimBackend {
            sim: SkipRingSim::new(seed, cfg),
            chaos,
            cursor: EventCursor::new(),
            inc: RefCell::new(SimChecker::new()),
            group: None,
            sever_fired: BTreeSet::new(),
        }
    }

    /// Wraps an existing world (scenario builders: legitimate warm
    /// starts, adversarial initial states).
    pub fn from_world(world: World<Actor>, cfg: ProtocolConfig) -> Self {
        SimBackend {
            sim: SkipRingSim::from_world(world, cfg),
            chaos: None,
            cursor: EventCursor::new(),
            inc: RefCell::new(SimChecker::new()),
            group: None,
            sever_fired: BTreeSet::new(),
        }
    }

    /// Attaches a chaos scheduler: [`PubSub::step`] becomes one chaos
    /// round.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The wrapped single-topic simulator, for white-box probes the
    /// facade does not cover.
    pub fn sim(&self) -> &SkipRingSim {
        &self.sim
    }

    /// Mutable access to the wrapped simulator (adversarial state
    /// injection). Raw access may change anything, so every cached
    /// checker verdict is dropped.
    pub fn sim_mut(&mut self) -> &mut SkipRingSim {
        self.inc.get_mut().invalidate_all();
        &mut self.sim
    }

    /// Routes the facade's polling predicates through the pre-PR
    /// from-scratch checker (`true`) instead of the incremental layer —
    /// kept callable for A/B benchmarking.
    pub fn set_full_checking(&mut self, full: bool) {
        self.inc.get_mut().set_full(full);
    }

    /// From-scratch legitimacy (the diagnostic checker), regardless of
    /// the A/B switch.
    pub fn is_legitimate_full(&self) -> bool {
        self.sim.is_legitimate()
    }

    /// From-scratch publication convergence, regardless of the switch.
    pub fn publications_converged_full(&self) -> (bool, usize) {
        self.sim.publications_converged()
    }

    /// Detailed legitimacy report for the topic.
    pub fn report(&self) -> LegitReport {
        self.sim.report()
    }

    /// Simulator metrics (per-kind and per-node counters).
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Sets the per-node per-step delivery budget (`None` = unbounded).
    pub fn set_delivery_budget(&mut self, budget: Option<u32>) {
        self.sim.set_delivery_budget(budget);
    }

    /// Configures `k` supervisor replicas behind the endpoint. `k = 1`
    /// disables replication (the paper's model). Call before driving
    /// the system: the replica log starts at the current state.
    pub fn set_replicas(&mut self, k: usize) {
        let mut token_enabled = false;
        if let Some(sup) = self
            .sim
            .world_mut()
            .node_mut(SUPERVISOR)
            .and_then(Actor::supervisor_mut)
        {
            sup.replicated = k >= 2;
            sup.outbox.clear();
            token_enabled = sup.token_enabled;
        }
        self.group = (k >= 2).then(|| ReplicaGroup::new(k, SUPERVISOR, token_enabled));
    }

    /// Drains the endpoint supervisor's recorded operations into the
    /// primary's log and runs one anti-entropy round. Called after
    /// every facade operation that can execute supervisor handlers, so
    /// the outbox is always empty at facade boundaries (snapshots rely
    /// on this).
    fn sync_group(&mut self) {
        let Some(group) = self.group.as_mut() else {
            return;
        };
        if let Some(sup) = self
            .sim
            .world_mut()
            .node_mut(SUPERVISOR)
            .and_then(Actor::supervisor_mut)
        {
            let kinds = sup.drain_outbox();
            group.record_topic(TOPIC, kinds);
        }
        group.anti_entropy();
    }

    /// The replica group, when replication is configured.
    pub fn replica_group(&self) -> Option<&ReplicaGroup> {
        self.group.as_ref()
    }

    /// Rebuilds a backend from a `sim`/`chaos` snapshot. The checker
    /// caches restart cold (invalidated) and recompute on first poll —
    /// verdicts are pure functions of the world, so this is exact.
    pub fn from_snapshot(snap: &BackendSnapshot) -> Result<Self, String> {
        if snap.kind != "sim" && snap.kind != "chaos" {
            return Err(format!("expected a sim/chaos snapshot, got {:?}", snap.kind));
        }
        let mut r = snap.reader().map_err(|e| e.to_string())?;
        let err = |e: skippub_snapshot::SnapError| e.to_string();
        let chaos = Option::<ChaosConfig>::load(&mut r).map_err(err)?;
        let cfg = ProtocolConfig::load(&mut r).map_err(err)?;
        let next_id = u64::load(&mut r).map_err(err)?;
        let interner = PayloadInterner::load(&mut r).map_err(err)?;
        let world = WorldState::<Actor>::load(&mut r).map_err(err)?;
        let cursor = EventCursor::load(&mut r).map_err(err)?;
        let group = Option::<ReplicaGroup>::load(&mut r).map_err(err)?;
        let sever_fired = BTreeSet::<u64>::load(&mut r).map_err(err)?;
        r.finish().map_err(err)?;
        if chaos.is_some() != (snap.kind == "chaos") {
            return Err("snapshot kind disagrees with chaos config presence".to_string());
        }
        let mut inc = SimChecker::new();
        inc.invalidate_all();
        Ok(SimBackend {
            sim: SkipRingSim::from_parts(World::from_state(world), cfg, next_id, interner),
            chaos,
            cursor,
            inc: RefCell::new(inc),
            group,
            sever_fired,
        })
    }
}

impl PubSub for SimBackend {
    fn backend_name(&self) -> &'static str {
        if self.chaos.is_some() {
            "chaos"
        } else {
            "sim"
        }
    }

    fn topic_count(&self) -> u32 {
        1
    }

    fn subscribe(&mut self, topic: TopicId) -> NodeId {
        assert_topic(topic);
        let id = self.sim.add_subscriber();
        // The member set is topology state, and the fresh empty trie
        // joins the convergence predicate's scope.
        self.sim.world_mut().bump_dirty(topo_key(0));
        self.sim.world_mut().bump_dirty(pubs_key(0));
        id
    }

    fn join(&mut self, id: NodeId, topic: TopicId) {
        assert_topic(topic);
        if let Some(s) = self
            .sim
            .world_mut()
            .node_mut(id)
            .and_then(Actor::subscriber_mut)
        {
            s.wants_membership = true;
            self.sim.world_mut().bump_dirty(topo_key(0));
            self.sim.world_mut().bump_dirty(pubs_key(0));
        }
    }

    fn unsubscribe(&mut self, id: NodeId, topic: TopicId) {
        assert_topic(topic);
        self.sim.unsubscribe(id);
        self.sim.world_mut().bump_dirty(topo_key(0));
        self.sim.world_mut().bump_dirty(pubs_key(0));
    }

    fn publish(&mut self, id: NodeId, topic: TopicId, payload: Vec<u8>) -> Option<BitStr> {
        assert_topic(topic);
        let key = self.sim.publish(id, payload);
        if key.is_some() {
            self.sim.world_mut().bump_dirty(pubs_key(0));
        }
        key
    }

    fn seed_publication(&mut self, id: NodeId, topic: TopicId, publication: Publication) -> bool {
        assert_topic(topic);
        let fresh = self.sim.seed_publication(id, publication).unwrap_or(false);
        if fresh {
            self.sim.world_mut().bump_dirty(pubs_key(0));
        }
        fresh
    }

    fn crash(&mut self, id: NodeId) {
        self.sim.crash(id);
        self.cursor.forget(id);
        self.sim.world_mut().bump_dirty(topo_key(0));
        self.sim.world_mut().bump_dirty(pubs_key(0));
    }

    fn report_crash(&mut self, id: NodeId) {
        if id == SUPERVISOR {
            // A crash report on the supervisor endpoint routes to the
            // replica group (previously a silent, backend-dependent
            // no-op): with live backups this triggers failover; with a
            // single replica it stays a uniform no-op.
            self.crash_supervisor(TOPIC);
            return;
        }
        // Feeds `suspected` only; the database mutation happens at the
        // supervisor's next timeout, where the db-epoch delta marks the
        // channel — no bump needed here.
        self.sim.report_crash(id);
        self.sync_group();
    }

    fn step(&mut self) {
        match self.chaos {
            Some(cfg) => self.sim.world_mut().run_chaos_round(cfg),
            None => self.sim.run_round(),
        }
        self.sync_group();
        // A scheduled partition that isolates the supervisor endpoint
        // is a process failure from the clients' point of view: at the
        // window's rising edge (once per sever), the replica group runs
        // its election — a *partition*, not a scripted crash, triggers
        // the failover. Unreplicated supervisors ride the window out.
        if let Some(idx) = self.sim.world().active_sever_containing(SUPERVISOR) {
            if self.sever_fired.insert(idx as u64) {
                self.crash_supervisor(TOPIC);
            }
        }
    }

    fn is_legitimate(&self) -> bool {
        let mut inc = self.inc.borrow_mut();
        if !inc.replicas_agree(self.group.as_ref()) {
            return false;
        }
        if inc.full() {
            return self.sim.is_legitimate();
        }
        let version = self.sim.world().dirty_version(topo_key(0));
        inc.legit(self.sim.world(), version)
    }

    fn publications_converged(&self) -> (bool, usize) {
        let mut inc = self.inc.borrow_mut();
        if inc.full() {
            return self.sim.publications_converged();
        }
        let version = self.sim.world().dirty_version(pubs_key(0));
        inc.pubs(self.sim.world(), version)
    }

    fn drain_events(&mut self, id: NodeId) -> Vec<Delivery> {
        match self.sim.subscriber(id) {
            Some(s) => self.cursor.drain(id, [(TOPIC, &s.trie)]),
            None => Vec::new(),
        }
    }

    fn subscriber_ids(&self) -> Vec<NodeId> {
        self.sim.subscriber_ids()
    }

    fn snapshot(&self, topic: TopicId) -> World<Actor> {
        assert_topic(topic);
        let mut world = World::new(0);
        for (id, actor) in self.sim.world().iter() {
            world.add_node(id, actor.clone());
        }
        world
    }

    fn stats(&self) -> Stats {
        let mut stats = super::stats_of(self.sim.metrics(), self.sim.peak_in_flight() as u64);
        super::apply_fault_counts(&mut stats, self.sim.world().fault_counts());
        stats
    }

    fn set_faults(&mut self, spec: Option<FaultSpec>) {
        self.sim.world_mut().set_faults(spec);
    }

    fn fault_counts(&self) -> FaultCounts {
        self.sim.world().fault_counts()
    }

    fn save_snapshot(&self) -> Result<BackendSnapshot, String> {
        let mut w = SnapWriter::new();
        self.chaos.save(&mut w);
        self.sim.cfg().save(&mut w);
        self.sim.next_id().save(&mut w);
        self.sim.payload_interner().save(&mut w);
        self.sim.world().export_state().save(&mut w);
        self.cursor.save(&mut w);
        self.group.save(&mut w);
        self.sever_fired.save(&mut w);
        Ok(w.finish(self.backend_name()))
    }

    fn supervisor_replicas(&self) -> usize {
        self.group.as_ref().map(|g| g.live_count()).unwrap_or(1)
    }

    fn supervisor_failovers(&self) -> u64 {
        self.group.as_ref().map(|g| g.failovers()).unwrap_or(0)
    }

    fn crash_supervisor(&mut self, topic: TopicId) -> bool {
        assert_topic(topic);
        // Capture any still-undrained operations before the process
        // "dies", then run the election.
        self.sync_group();
        let Some(group) = self.group.as_mut() else {
            return false;
        };
        if !group.fail_primary() {
            return false;
        }
        // Virtual-endpoint takeover: the new primary's replayed state is
        // installed at the same protocol endpoint, so in-flight messages
        // addressed to the supervisor are re-homed without any
        // client-side redirect.
        let installed = group.primary_topic(TOPIC);
        if let Some(sup) = self
            .sim
            .world_mut()
            .node_mut(SUPERVISOR)
            .and_then(Actor::supervisor_mut)
        {
            *sup = installed;
        }
        self.sim.world_mut().bump_dirty(topo_key(0));
        self.inc.get_mut().invalidate_all();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pubsub::SystemBuilder;

    #[test]
    fn facade_bootstrap_publish_drain() {
        let mut ps = SystemBuilder::new(31).build_sim();
        let ids: Vec<NodeId> = (0..5).map(|_| ps.subscribe(TOPIC)).collect();
        assert_eq!(ids[0], NodeId(1), "client ids start at 1");
        let (_, ok) = ps.until_legit(500);
        assert!(ok);
        let key = ps.publish(ids[0], TOPIC, b"hi".to_vec()).unwrap();
        let (_, ok) = ps.until_pubs_converged(100);
        assert!(ok);
        for &id in &ids {
            let ev = ps.drain_events(id);
            assert_eq!(ev.len(), 1);
            assert_eq!(ev[0].key, key);
            assert_eq!(ev[0].author, ids[0].0);
        }
        // Drains are cursored: nothing new the second time.
        assert!(ps.drain_events(ids[0]).is_empty());
    }

    #[test]
    fn chaos_backend_converges_and_reports_name() {
        let mut ps = SystemBuilder::new(32).build_chaos();
        assert_eq!(ps.backend_name(), "chaos");
        for _ in 0..4 {
            ps.subscribe(TOPIC);
        }
        let (_, ok) = ps.until_legit(5000);
        assert!(ok, "chaos scheduler must still converge");
    }

    #[test]
    fn crash_and_rejoin_through_facade() {
        let mut ps = SystemBuilder::new(33)
            .protocol(ProtocolConfig::topology_only())
            .build_sim();
        let ids: Vec<NodeId> = (0..5).map(|_| ps.subscribe(TOPIC)).collect();
        assert!(ps.until_legit(500).1);
        ps.crash(ids[1]);
        for _ in 0..3 {
            ps.step();
        }
        ps.report_crash(ids[1]);
        assert!(ps.until_legit(800).1);
        assert_eq!(ps.subscriber_ids().len(), 4);
        // Snapshot is judged by the same checker.
        let snap = ps.snapshot(TOPIC);
        assert!(crate::checker::is_legitimate(&snap));
        assert!(ps.stats().sent > 0);
    }
}
