//! [`Snap`] implementations for the protocol layer: messages, actor
//! state, and configuration. Together with the foundation impls in
//! `skippub-snapshot`, these make `WorldState<Actor>` and
//! `WorldState<MultiActor>` fully serializable — the backbone of the
//! backend checkpoints in [`crate::pubsub`].
//!
//! Every impl here is exact: restored state continues byte-identically
//! (same RNG draws, same delivered sets) to the uninterrupted run,
//! which the facade conformance suite asserts end to end.

use crate::actor::Actor;
use crate::config::{ProbeMode, ProtocolConfig};
use crate::msg::{Msg, NodeRef};
use crate::subscriber::{Counters, Subscriber};
use crate::supervisor::{Supervisor, SupervisorCounters};
use crate::topics::{MultiActor, TopicId, TopicMsg};
use skippub_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapVec, SnapWriter};

impl Snap for ProbeMode {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(match self {
            ProbeMode::Randomized => 0,
            ProbeMode::Token => 1,
            ProbeMode::TokenHybrid => 2,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u64()? {
            0 => Ok(ProbeMode::Randomized),
            1 => Ok(ProbeMode::Token),
            2 => Ok(ProbeMode::TokenHybrid),
            n => Err(SnapError::Malformed(format!("unknown probe mode {n}"))),
        }
    }
}

snap_struct!(ProtocolConfig {
    key_bits,
    anti_entropy,
    flooding,
    probes,
    probe_mode,
    shortcuts,
    verify_shortcuts,
});

snap_struct!(NodeRef { label, id });

impl Snap for Msg {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Msg::Check {
                sender,
                assumed,
                cyc,
            } => {
                w.put_u64(0);
                sender.save(w);
                assumed.save(w);
                cyc.save(w);
            }
            Msg::Intro { node, cyc } => {
                w.put_u64(1);
                node.save(w);
                cyc.save(w);
            }
            Msg::RemoveConnections { node } => {
                w.put_u64(2);
                node.save(w);
            }
            Msg::Subscribe { node } => {
                w.put_u64(3);
                node.save(w);
            }
            Msg::Unsubscribe { node } => {
                w.put_u64(4);
                node.save(w);
            }
            Msg::GetConfiguration { node, requester } => {
                w.put_u64(5);
                node.save(w);
                requester.save(w);
            }
            Msg::SetData { pred, label, succ } => {
                w.put_u64(6);
                pred.save(w);
                label.save(w);
                succ.save(w);
            }
            Msg::IntroduceShortcut { node } => {
                w.put_u64(7);
                node.save(w);
            }
            Msg::CheckShortcut { sender, assumed } => {
                w.put_u64(8);
                sender.save(w);
                assumed.save(w);
            }
            Msg::Token { seq, ttl } => {
                w.put_u64(9);
                seq.save(w);
                ttl.save(w);
            }
            Msg::TokenReturn { seq } => {
                w.put_u64(10);
                seq.save(w);
            }
            Msg::CheckTrie { sender, tuples } => {
                w.put_u64(11);
                sender.save(w);
                SnapVec(tuples.clone()).save(w);
            }
            Msg::CheckAndPublish {
                sender,
                tuples,
                prefix,
            } => {
                w.put_u64(12);
                sender.save(w);
                SnapVec(tuples.clone()).save(w);
                prefix.save(w);
            }
            Msg::Publish { pubs } => {
                w.put_u64(13);
                SnapVec(pubs.clone()).save(w);
            }
            Msg::PublishNew { publication, hops } => {
                w.put_u64(14);
                publication.save(w);
                hops.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u64()? {
            0 => Msg::Check {
                sender: Snap::load(r)?,
                assumed: Snap::load(r)?,
                cyc: Snap::load(r)?,
            },
            1 => Msg::Intro {
                node: Snap::load(r)?,
                cyc: Snap::load(r)?,
            },
            2 => Msg::RemoveConnections {
                node: Snap::load(r)?,
            },
            3 => Msg::Subscribe {
                node: Snap::load(r)?,
            },
            4 => Msg::Unsubscribe {
                node: Snap::load(r)?,
            },
            5 => Msg::GetConfiguration {
                node: Snap::load(r)?,
                requester: Snap::load(r)?,
            },
            6 => Msg::SetData {
                pred: Snap::load(r)?,
                label: Snap::load(r)?,
                succ: Snap::load(r)?,
            },
            7 => Msg::IntroduceShortcut {
                node: Snap::load(r)?,
            },
            8 => Msg::CheckShortcut {
                sender: Snap::load(r)?,
                assumed: Snap::load(r)?,
            },
            9 => Msg::Token {
                seq: Snap::load(r)?,
                ttl: Snap::load(r)?,
            },
            10 => Msg::TokenReturn {
                seq: Snap::load(r)?,
            },
            11 => Msg::CheckTrie {
                sender: Snap::load(r)?,
                tuples: SnapVec::load(r)?.0,
            },
            12 => Msg::CheckAndPublish {
                sender: Snap::load(r)?,
                tuples: SnapVec::load(r)?.0,
                prefix: Snap::load(r)?,
            },
            13 => Msg::Publish {
                pubs: SnapVec::load(r)?.0,
            },
            14 => Msg::PublishNew {
                publication: Snap::load(r)?,
                hops: Snap::load(r)?,
            },
            n => return Err(SnapError::Malformed(format!("unknown message tag {n}"))),
        })
    }
}

impl Snap for Counters {
    fn save(&self, w: &mut SnapWriter) {
        self.config_probes.save(w);
        self.neighbor_probes.save(w);
        self.pubs_via_flood.save(w);
        self.pubs_via_sync.save(w);
        self.leaf_conflicts.save(w);
        self.tokens_seen.save(w);
        self.configs_received.save(w);
        self.ignored_msgs.save(w);
        SnapVec(self.flood_hops.clone()).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Counters {
            config_probes: Snap::load(r)?,
            neighbor_probes: Snap::load(r)?,
            pubs_via_flood: Snap::load(r)?,
            pubs_via_sync: Snap::load(r)?,
            leaf_conflicts: Snap::load(r)?,
            tokens_seen: Snap::load(r)?,
            configs_received: Snap::load(r)?,
            ignored_msgs: Snap::load(r)?,
            flood_hops: SnapVec::load(r)?.0,
        })
    }
}

snap_struct!(Subscriber {
    id,
    supervisor,
    label,
    left,
    right,
    ring,
    shortcuts,
    shortcut_epoch,
    trie,
    wants_membership,
    cfg,
    counters,
});

snap_struct!(SupervisorCounters {
    roundrobin_configs,
    subscribe_msgs,
    unsubscribe_msgs,
    repairs,
    evictions,
    tokens_issued,
    tokens_returned,
});

// Manual impl: `outbox` is intentionally not serialized. Backends drain
// it after every step and facade call, so it is always empty at
// snapshot boundaries; restore starts it empty.
impl Snap for Supervisor {
    fn save(&self, w: &mut SnapWriter) {
        self.id.save(w);
        self.database.save(w);
        self.next.save(w);
        self.db_epoch.save(w);
        self.suspected.save(w);
        self.token_enabled.save(w);
        self.token_seq.save(w);
        self.token_outstanding.save(w);
        self.token_age.save(w);
        self.counters.save(w);
        self.replicated.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Supervisor {
            id: Snap::load(r)?,
            database: Snap::load(r)?,
            next: Snap::load(r)?,
            db_epoch: Snap::load(r)?,
            suspected: Snap::load(r)?,
            token_enabled: Snap::load(r)?,
            token_seq: Snap::load(r)?,
            token_outstanding: Snap::load(r)?,
            token_age: Snap::load(r)?,
            counters: Snap::load(r)?,
            replicated: Snap::load(r)?,
            outbox: Vec::new(),
        })
    }
}

impl Snap for Actor {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Actor::Supervisor(s) => {
                w.put_u64(0);
                s.save(w);
            }
            Actor::Subscriber(s) => {
                w.put_u64(1);
                s.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u64()? {
            0 => Ok(Actor::Supervisor(Snap::load(r)?)),
            1 => Ok(Actor::Subscriber(Box::new(Snap::load(r)?))),
            n => Err(SnapError::Malformed(format!("unknown actor tag {n}"))),
        }
    }
}

impl Snap for TopicId {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TopicId(Snap::load(r)?))
    }
}

snap_struct!(TopicMsg { topic, msg });

impl Snap for MultiActor {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            MultiActor::Supervisor {
                topics,
                id,
                replicated,
                moved,
            } => {
                w.put_u64(0);
                topics.save(w);
                id.save(w);
                replicated.save(w);
                moved.save(w);
            }
            MultiActor::Client {
                topics,
                id,
                supervisor,
                cfg,
                departed,
            } => {
                w.put_u64(1);
                topics.save(w);
                id.save(w);
                supervisor.save(w);
                cfg.save(w);
                departed.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u64()? {
            0 => Ok(MultiActor::Supervisor {
                topics: Snap::load(r)?,
                id: Snap::load(r)?,
                replicated: Snap::load(r)?,
                moved: Snap::load(r)?,
            }),
            1 => Ok(MultiActor::Client {
                topics: Snap::load(r)?,
                id: Snap::load(r)?,
                supervisor: Snap::load(r)?,
                cfg: Snap::load(r)?,
                departed: Snap::load(r)?,
            }),
            n => Err(SnapError::Malformed(format!(
                "unknown multi-actor tag {n}"
            ))),
        }
    }
}
