//! Subscriber state machine: `BuildList` linearization (Algorithm 1),
//! extended `BuildRing` (Algorithm 2), the subscriber half of `BuildSR`
//! (Algorithm 4) and the publication protocol (Algorithm 5, in
//! `publish.rs`).
//!
//! The implementation follows the paper's pseudo-code with the
//! clarifications listed in DESIGN.md §7. The central ordering device is
//! the *placement key* `(r(label), |label|, id)`: labels order the ring by
//! their dyadic value `r`; equal labels (possible only in corrupted
//! states) are tie-broken by length and then by the incorruptible node ID
//! so that linearization stays a total order and cannot livelock while
//! the supervisor's database repair removes the duplicates.

use crate::config::ProtocolConfig;
use crate::msg::{Msg, NodeRef};
use skippub_ringmath::{analytics, shortcut, Label};
use skippub_sim::{Ctx, NodeId};
use skippub_trie::PatriciaTrie;
use std::collections::BTreeMap;

/// Placement key: total order used by linearization.
#[inline]
pub(crate) fn place_key(label: Label, id: NodeId) -> (u64, u8, u64) {
    (label.frac(), label.len(), id.0)
}

/// Reusable working sets of [`Subscriber::shortcut_timeout`] — it runs
/// once per node per round, so its chains/sets must not be rebuilt on
/// the heap each call. Thread-local keeps the partitioned executor's
/// workers off any shared state.
#[derive(Default)]
struct ShortcutScratch {
    left: Vec<shortcut::ShortcutTarget>,
    right: Vec<shortcut::ShortcutTarget>,
    /// Sorted, deduped expected labels (set semantics via binary search).
    expected: Vec<Label>,
    stale: Vec<(Label, Option<NodeId>)>,
    resolved: Vec<(Label, NodeId)>,
}

thread_local! {
    static SHORTCUT_SCRATCH: std::cell::RefCell<ShortcutScratch> =
        std::cell::RefCell::new(ShortcutScratch::default());
}

/// Experiment counters (never read by protocol logic).
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Configuration requests sent for *this* node via §3.2.1 (ii)/(iv).
    pub config_probes: u64,
    /// Configuration requests sent on behalf of neighbours (action (iii)).
    pub neighbor_probes: u64,
    /// Publications first learned through flooding.
    pub pubs_via_flood: u64,
    /// Publications first learned through anti-entropy `Publish`.
    pub pubs_via_sync: u64,
    /// `CheckTrie` leaf conflicts observed (corrupted states only).
    pub leaf_conflicts: u64,
    /// §6 tokens handled (token mode only).
    pub tokens_seen: u64,
    /// `SetData` configurations received (verification receipts).
    pub configs_received: u64,
    /// Messages ignored because they were addressed to the wrong role or
    /// were otherwise unprocessable (corrupted channel content).
    pub ignored_msgs: u64,
    /// Hop counts at which flooded publications first arrived.
    pub flood_hops: Vec<u32>,
}

/// A subscriber of one topic (one `BuildSR` instance).
#[derive(Clone, Debug)]
pub struct Subscriber {
    /// This node's ID (`v.id`, incorruptible).
    pub id: NodeId,
    /// The hard-coded supervisor reference (read-only, §3).
    pub supervisor: NodeId,
    /// `v.label ∈ {0,1}* ∪ {⊥}`.
    pub label: Option<Label>,
    /// Closest known left neighbour (smaller placement key).
    pub left: Option<NodeRef>,
    /// Closest known right neighbour (larger placement key).
    pub right: Option<NodeRef>,
    /// The cyclic closure edge (min ↔ max), `⊥` for interior nodes.
    pub ring: Option<NodeRef>,
    /// `v.shortcuts ⊂ {0,1}* × (V ∪ {⊥})`: expected shortcut labels and,
    /// when known, the node holding each.
    pub shortcuts: BTreeMap<Label, Option<NodeId>>,
    /// Monotone **shortcut epoch**: bumped by every protocol-path
    /// mutation of `shortcuts` (slot fill, purge, prune, clear). The
    /// incremental checker's change detection compares it in O(1)
    /// instead of snapshotting the map per dispatch, so every handler
    /// code path in this file that writes `shortcuts` must bump it —
    /// keep the two in lock-step when editing (the cross-checker churn
    /// conformance tests catch a missed site). Direct writes from
    /// outside the protocol (tests, adversarial initializers) go
    /// through the backends' raw-world escape hatches, which drop every
    /// cached verdict instead. Not a protocol variable: nothing
    /// protocol-side reads it.
    pub shortcut_epoch: u64,
    /// Publication store `v.T` (paper §4.2).
    pub trie: PatriciaTrie,
    /// User intent: `false` once the user asked to unsubscribe.
    pub wants_membership: bool,
    /// Protocol knobs.
    pub cfg: ProtocolConfig,
    /// Experiment counters.
    pub counters: Counters,
}

impl Subscriber {
    /// A fresh subscriber that will join via its first `Timeout`
    /// (action (i): `label = ⊥` → `Subscribe`).
    pub fn new(id: NodeId, supervisor: NodeId, cfg: ProtocolConfig) -> Self {
        Subscriber {
            id,
            supervisor,
            label: None,
            left: None,
            right: None,
            ring: None,
            shortcuts: BTreeMap::new(),
            shortcut_epoch: 0,
            trie: PatriciaTrie::new(),
            wants_membership: true,
            cfg,
            counters: Counters::default(),
        }
    }

    /// This node's self-reference (requires a label).
    pub fn self_ref(&self) -> Option<NodeRef> {
        self.label.map(|l| NodeRef::new(l, self.id))
    }

    #[inline]
    fn my_key(&self) -> Option<(u64, u8, u64)> {
        self.label.map(|l| place_key(l, self.id))
    }

    /// `true` iff `r` sorts before this node.
    #[inline]
    fn is_left_of_me(&self, r: &NodeRef) -> bool {
        // Caller guarantees a label exists.
        place_key(r.label, r.id) < self.my_key().expect("labelled")
    }

    /// Effective left ring neighbour (§3.2: `v.left`, or `v.ring` when the
    /// wrap-around edge plays that role — i.e. for the minimum).
    pub fn eff_left(&self) -> Option<NodeRef> {
        self.left
            .or_else(|| self.ring.filter(|r| !self.is_left_of_me_safe(r)))
    }

    /// Effective right ring neighbour (for the maximum this is `v.ring`).
    pub fn eff_right(&self) -> Option<NodeRef> {
        self.right
            .or_else(|| self.ring.filter(|r| self.is_left_of_me_safe(r)))
    }

    fn is_left_of_me_safe(&self, r: &NodeRef) -> bool {
        match self.my_key() {
            Some(me) => place_key(r.label, r.id) < me,
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // BuildList: linearization (Algorithm 1)
    // ------------------------------------------------------------------

    /// Incorporates a reference as a list edge: keep the closest neighbour
    /// per side, delegate everything else toward its side (never dropping
    /// a reference — connectivity is preserved, [18]).
    pub(crate) fn linearize(&mut self, ctx: &mut Ctx<'_, Msg>, c: NodeRef) {
        let Some(me) = self.my_key() else {
            // Unlabelled nodes own no place in the order (Alg. 1 line 30).
            ctx.send(c.id, Msg::RemoveConnections { node: self.id });
            return;
        };
        if c.id == self.id {
            return; // self-references carry no information
        }
        // Label corrections for known neighbours (§2.2 extension): a fresh
        // reference to a node I already store, under a different label,
        // supersedes the stale entry — even if the node changes sides.
        if self
            .left
            .is_some_and(|l| l.id == c.id && l.label != c.label)
        {
            self.left = None;
        }
        if self
            .right
            .is_some_and(|r| r.id == c.id && r.label != c.label)
        {
            self.right = None;
        }
        let ck = place_key(c.label, c.id);
        if ck < me {
            match self.left {
                None => self.left = Some(c),
                Some(l) if l.id == c.id => {} // identical entry
                Some(l) => {
                    let lk = place_key(l.label, l.id);
                    if ck > lk {
                        // c lies between l and me: adopt c, delegate l to c.
                        ctx.send(
                            c.id,
                            Msg::Intro {
                                node: l,
                                cyc: false,
                            },
                        );
                        self.left = Some(c);
                    } else {
                        // c is farther left: delegate toward l.
                        ctx.send(
                            l.id,
                            Msg::Intro {
                                node: c,
                                cyc: false,
                            },
                        );
                    }
                }
            }
        } else {
            match self.right {
                None => self.right = Some(c),
                Some(r) if r.id == c.id => {} // identical entry
                Some(r) => {
                    let rk = place_key(r.label, r.id);
                    if ck < rk {
                        ctx.send(
                            c.id,
                            Msg::Intro {
                                node: r,
                                cyc: false,
                            },
                        );
                        self.right = Some(c);
                    } else {
                        ctx.send(
                            r.id,
                            Msg::Intro {
                                node: c,
                                cyc: false,
                            },
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Extended BuildRing: introductions + cyclic closure (Algorithm 2)
    // ------------------------------------------------------------------

    /// Handles `Intro` — the paper's `Introduce(c, flag)`.
    pub(crate) fn incorporate(&mut self, ctx: &mut Ctx<'_, Msg>, c: NodeRef, cyc: bool) {
        if self.label.is_none() {
            ctx.send(c.id, Msg::RemoveConnections { node: self.id });
            return;
        }
        if c.id == self.id {
            return;
        }
        // Fresh label information about c.id: purge shortcut slots filed
        // under a different label — stale values would otherwise circulate
        // between introducers forever.
        for (lab, slot) in self.shortcuts.iter_mut() {
            if *slot == Some(c.id) && *lab != c.label {
                *slot = None;
                self.shortcut_epoch += 1;
            }
        }
        // Ring-label repair (Alg. 2 lines 18–23): new label information
        // about my current ring partner.
        if let Some(rg) = self.ring {
            if rg.id == c.id && rg.label != c.label {
                let same_side = self.is_left_of_me(&c) == self.is_left_of_me(&rg);
                if same_side {
                    self.ring = Some(c);
                    if !cyc {
                        return; // pure label update
                    }
                } else {
                    // The partner moved across me: the edge is void.
                    self.ring = None;
                    self.linearize(ctx, c);
                    return;
                }
            }
        }
        if !cyc {
            self.linearize(ctx, c);
            return;
        }
        // CYC candidate: it travels toward the extremum of its far side.
        let c_left = self.is_left_of_me(&c);
        match self.ring {
            None => {
                if c_left && self.right.is_none() {
                    self.ring = Some(c); // I am the maximum: adopt
                } else if !c_left && self.left.is_none() {
                    self.ring = Some(c); // I am the minimum: adopt
                } else if c_left {
                    // Forward toward the maximum.
                    let r = self.right.expect("right exists in this branch");
                    ctx.send(r.id, Msg::Intro { node: c, cyc: true });
                } else {
                    let l = self.left.expect("left exists in this branch");
                    ctx.send(l.id, Msg::Intro { node: c, cyc: true });
                }
            }
            Some(rg) => {
                if rg.id == c.id {
                    return; // already reconciled above
                }
                let rg_left = self.is_left_of_me(&rg);
                if rg_left == c_left {
                    // Two candidates on the same side: the extremum is the
                    // farther one (Alg. 2 line 31); linearize the loser.
                    let me = self.my_key().expect("labelled");
                    let dist = |x: &NodeRef| {
                        let k = place_key(x.label, x.id).0;
                        me.0.abs_diff(k)
                    };
                    let (keep, lose) = if dist(&rg) >= dist(&c) {
                        (rg, c)
                    } else {
                        (c, rg)
                    };
                    self.ring = Some(keep);
                    self.linearize(ctx, lose);
                } else {
                    // Opposite sides: my ring edge cannot be right
                    // (an extremum's candidates all lie on one side).
                    // Dissolve both into the list (Alg. 2 lines 35–38).
                    self.ring = None;
                    self.linearize(ctx, c);
                    self.linearize(ctx, rg);
                }
            }
        }
    }

    /// Handles `Check` — the extended-`BuildRing` label verification:
    /// the sender believes we carry `assumed`; if wrong, we answer with our
    /// true label (§2.2 extension), otherwise we treat the sender as an
    /// introduction.
    pub(crate) fn on_check(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        sender: NodeRef,
        assumed: Label,
        cyc: bool,
    ) {
        match self.label {
            Some(mine) if mine == assumed => self.incorporate(ctx, sender, cyc),
            Some(mine) => {
                ctx.send(
                    sender.id,
                    Msg::Intro {
                        node: NodeRef::new(mine, self.id),
                        cyc,
                    },
                );
            }
            None => ctx.send(sender.id, Msg::RemoveConnections { node: self.id }),
        }
    }

    /// Handles `RemoveConnections(x)`: forget every reference to `x`
    /// (Lemma 6: unsubscribed nodes request exactly this).
    pub(crate) fn on_remove_connections(&mut self, node: NodeId) {
        if self.left.is_some_and(|l| l.id == node) {
            self.left = None;
        }
        if self.right.is_some_and(|r| r.id == node) {
            self.right = None;
        }
        if self.ring.is_some_and(|r| r.id == node) {
            self.ring = None;
        }
        for slot in self.shortcuts.values_mut() {
            if *slot == Some(node) {
                *slot = None;
                self.shortcut_epoch += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Configurations (Algorithm 4 SetData + §3.2.1 actions)
    // ------------------------------------------------------------------

    /// Handles `SetData(pred, label, succ)` from the supervisor.
    pub(crate) fn on_set_data(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        pred: Option<NodeRef>,
        label: Option<Label>,
        succ: Option<NodeRef>,
    ) {
        self.counters.configs_received += 1;
        let Some(new_label) = label else {
            // Not part of the topic (unsubscribe permission / unknown):
            // reset. Old neighbours learn via reactive RemoveConnections
            // replies, keeping per-op message overhead constant (Thm. 7).
            self.label = None;
            self.left = None;
            self.right = None;
            self.ring = None;
            if !self.shortcuts.is_empty() {
                self.shortcuts.clear();
                self.shortcut_epoch += 1;
            }
            return;
        };
        let old_label = self.label;
        self.label = Some(new_label);
        // §3.2.1 action (iii): a stored neighbour strictly closer than the
        // proposed one is unknown to the supervisor — ask the supervisor
        // to configure it. Distances are ring arcs.
        let me = new_label.frac();
        if let Some(stored) = self.eff_left() {
            let closer = match pred {
                None => true,
                Some(p) => {
                    stored.id != p.id
                        && me.wrapping_sub(stored.label.frac()) <= me.wrapping_sub(p.label.frac())
                }
            };
            if closer && stored.id != self.id {
                ctx.send(
                    self.supervisor,
                    Msg::GetConfiguration {
                        node: stored.id,
                        requester: Some(self.id),
                    },
                );
                self.counters.neighbor_probes += 1;
            }
        }
        if let Some(stored) = self.eff_right() {
            let closer = match succ {
                None => true,
                Some(s) => {
                    stored.id != s.id
                        && stored.label.frac().wrapping_sub(me) <= s.label.frac().wrapping_sub(me)
                }
            };
            if closer && stored.id != self.id {
                ctx.send(
                    self.supervisor,
                    Msg::GetConfiguration {
                        node: stored.id,
                        requester: Some(self.id),
                    },
                );
                self.counters.neighbor_probes += 1;
            }
        }
        // The supervisor is the authority on label assignment: a stored
        // edge claiming the *same label* as a proposed neighbour but a
        // different ID is stale — typically a crashed node whose label was
        // reassigned (§3.3/§4.1). Without this, the stale reference ties
        // with the legitimate holder in linearization and, because
        // messages to crashed nodes invoke nothing, is never corrected.
        // The same applies to my *own* label: if I just took over a label
        // (e.g. from a departed node, §4.1 step 2), a stored edge to some
        // other node under that label is stale.
        let mut authoritative = vec![(new_label, self.id)];
        authoritative.extend(pred.iter().chain(succ.iter()).map(|p| (p.label, p.id)));
        for (lab, id) in authoritative {
            if self.left.is_some_and(|l| l.label == lab && l.id != id) {
                self.left = None;
            }
            if self.right.is_some_and(|r| r.label == lab && r.id != id) {
                self.right = None;
            }
            if self.ring.is_some_and(|r| r.label == lab && r.id != id) {
                self.ring = None;
            }
        }
        // A changed label invalidates the relative order of every stored
        // edge: re-place them all.
        if old_label != Some(new_label) {
            let stale: Vec<NodeRef> = self
                .left
                .take()
                .into_iter()
                .chain(self.right.take())
                .chain(self.ring.take())
                .collect();
            for r in stale {
                self.linearize(ctx, r);
            }
        }
        // Merge the configuration edges (Lemma 15: in a legitimate state
        // this is a no-op). A predecessor with a larger label — or a
        // successor with a smaller one — is the wrap-around edge.
        if let Some(p) = pred {
            let cyc = place_key(p.label, p.id) > place_key(new_label, self.id);
            self.incorporate(ctx, p, cyc);
        }
        if let Some(s) = succ {
            let cyc = place_key(s.label, s.id) < place_key(new_label, self.id);
            self.incorporate(ctx, s, cyc);
        }
    }

    // ------------------------------------------------------------------
    // Shortcuts (§3.2.2, Algorithm 4)
    // ------------------------------------------------------------------

    /// Handles `IntroduceShortcut(c)` (Algorithm 4 lines 22–30).
    pub(crate) fn on_introduce_shortcut(&mut self, ctx: &mut Ctx<'_, Msg>, c: NodeRef) {
        if self.label.is_none() {
            ctx.send(c.id, Msg::RemoveConnections { node: self.id });
            return;
        }
        if c.id == self.id {
            return;
        }
        match self.shortcuts.get_mut(&c.label) {
            Some(slot) => {
                let old = *slot;
                *slot = Some(c.id);
                if old != Some(c.id) {
                    self.shortcut_epoch += 1;
                }
                if let Some(old_id) = old {
                    if old_id != c.id {
                        // Forward the replaced reference into the ring so
                        // it is not lost (Alg. 4 lines 25–27).
                        self.linearize(ctx, NodeRef::new(c.label, old_id));
                    }
                }
            }
            None => {
                // Not a label I should shortcut to: delegate (line 30).
                self.linearize(ctx, c);
            }
        }
    }

    /// Timeout part for shortcuts: recompute expected labels from the ring
    /// neighbourhood, prune stale slots, and introduce this node's
    /// level-k partners to each other (the bottom-up establishment rule of
    /// Lemma 12).
    ///
    /// Runs every round on every node, so the working sets (derivation
    /// chains, expected-label set, prune list, resolved-slot list) live
    /// in reusable thread-local scratch buffers: after warm-up a
    /// steady-state call allocates nothing. The expected-label set is a
    /// sorted deduped slice, which preserves the old `BTreeSet`'s
    /// membership semantics and label-ordered iteration exactly — no
    /// observable behaviour (messages, RNG draws) changes.
    fn shortcut_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, my: Label) {
        SHORTCUT_SCRATCH.with(|cell| {
            let mut sc = cell.take();
            sc.left.clear();
            sc.right.clear();
            if let Some(l) = self.eff_left() {
                shortcut::derive_side_into(my, l.label, &mut sc.left);
            }
            if let Some(r) = self.eff_right() {
                shortcut::derive_side_into(my, r.label, &mut sc.right);
            }
            // Prune slots whose label is no longer expected.
            sc.expected.clear();
            sc.expected
                .extend(sc.left.iter().chain(sc.right.iter()).map(|t| t.label));
            sc.expected.sort_unstable();
            sc.expected.dedup();
            sc.stale.clear();
            sc.stale.extend(
                self.shortcuts
                    .iter()
                    .filter(|(l, _)| sc.expected.binary_search(l).is_err())
                    .map(|(l, n)| (*l, *n)),
            );
            for (lab, node) in sc.stale.drain(..) {
                self.shortcuts.remove(&lab);
                self.shortcut_epoch += 1;
                if let Some(nid) = node {
                    if nid != self.id {
                        self.linearize(ctx, NodeRef::new(lab, nid));
                    }
                }
            }
            for lab in &sc.expected {
                if let std::collections::btree_map::Entry::Vacant(e) = self.shortcuts.entry(*lab) {
                    e.insert(None);
                    self.shortcut_epoch += 1;
                }
            }
            // Level-k introduction: my neighbours in the ring over K_k —
            // the tail of each derivation chain, or the direct ring
            // neighbour when the chain is empty (the "|v.label| =
            // ⌈log n⌉" case of §3.2.2).
            let resolve =
                |chain: &[shortcut::ShortcutTarget], fallback: Option<NodeRef>| match chain.last() {
                    Some(t) => self
                        .shortcuts
                        .get(&t.label)
                        .copied()
                        .flatten()
                        .map(|id| NodeRef::new(t.label, id)),
                    None => fallback,
                };
            let a = resolve(&sc.left, self.eff_left());
            let b = resolve(&sc.right, self.eff_right());
            if let (Some(a), Some(b)) = (a, b) {
                if a.id != b.id && a.id != self.id && b.id != self.id {
                    ctx.send(a.id, Msg::IntroduceShortcut { node: b });
                    ctx.send(b.id, Msg::IntroduceShortcut { node: a });
                }
            }
            // Verify ONE random resolved slot per timeout (constant work
            // per process, matching the paper's maintenance-overhead
            // claim): a mismatching holder answers with its correct
            // label, purging the stale slot via `incorporate`.
            if self.cfg.verify_shortcuts {
                sc.resolved.clear();
                sc.resolved.extend(
                    self.shortcuts
                        .iter()
                        .filter_map(|(l, v)| v.map(|id| (*l, id)))
                        .filter(|(_, id)| *id != self.id),
                );
                if !sc.resolved.is_empty() {
                    let (lab, id) = sc.resolved[ctx.random_range(sc.resolved.len())];
                    let me_ref = NodeRef::new(my, self.id);
                    ctx.send(
                        id,
                        Msg::CheckShortcut {
                            sender: me_ref,
                            assumed: lab,
                        },
                    );
                }
            }
            cell.replace(sc);
        });
    }

    /// Handles `CheckShortcut`: silent on a match; otherwise corrects the
    /// prober's belief with an `Intro` carrying the true label.
    pub(crate) fn on_check_shortcut(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        sender: NodeRef,
        assumed: Label,
    ) {
        match self.label {
            Some(mine) if mine == assumed => {}
            Some(mine) => ctx.send(
                sender.id,
                Msg::Intro {
                    node: NodeRef::new(mine, self.id),
                    cyc: false,
                },
            ),
            None => ctx.send(sender.id, Msg::RemoveConnections { node: self.id }),
        }
    }

    // ------------------------------------------------------------------
    // Timeout (Algorithm 4 lines 1–14 + Algorithms 1–2 timeouts)
    // ------------------------------------------------------------------

    /// The periodic `Timeout` action.
    pub(crate) fn timeout(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.wants_membership {
            // Keep requesting departure until the supervisor grants it
            // (SetData(⊥,⊥,⊥) clears the label).
            if self.label.is_some() {
                ctx.send(self.supervisor, Msg::Unsubscribe { node: self.id });
            }
            return;
        }
        let Some(my) = self.label else {
            // Action (i): no label → subscribe. Shed any (corrupted)
            // edges: an unlabelled node owns no place in the ring.
            for r in [self.left.take(), self.right.take(), self.ring.take()]
                .into_iter()
                .flatten()
            {
                ctx.send(r.id, Msg::RemoveConnections { node: self.id });
            }
            if !self.shortcuts.is_empty() {
                self.shortcuts.clear();
                self.shortcut_epoch += 1;
            }
            ctx.send(self.supervisor, Msg::Subscribe { node: self.id });
            return;
        };
        self.list_ring_timeout(ctx, my);
        if self.cfg.shortcuts {
            self.shortcut_timeout(ctx, my);
        }
        self.probe_timeout(ctx, my);
        if self.cfg.anti_entropy {
            self.publish_timeout(ctx);
        }
    }

    /// List + ring maintenance (Algorithms 1–2 timeouts).
    fn list_ring_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, my: Label) {
        let me_ref = NodeRef::new(my, self.id);
        let me = place_key(my, self.id);
        // Self-references (possible only in corrupted initial states) are
        // locally detectable: drop them, or the node would keep Check-ing
        // itself forever without ever looking isolated (action (iv)).
        if self.left.is_some_and(|l| l.id == self.id) {
            self.left = None;
        }
        if self.right.is_some_and(|r| r.id == self.id) {
            self.right = None;
        }
        // --- list part (Alg. 1 lines 2–6) ---
        if let Some(l) = self.left {
            if place_key(l.label, l.id) < me {
                ctx.send(
                    l.id,
                    Msg::Check {
                        sender: me_ref,
                        assumed: l.label,
                        cyc: false,
                    },
                );
            } else {
                self.left = None;
                self.linearize(ctx, l);
            }
        }
        if let Some(r) = self.right {
            if place_key(r.label, r.id) > me {
                ctx.send(
                    r.id,
                    Msg::Check {
                        sender: me_ref,
                        assumed: r.label,
                        cyc: false,
                    },
                );
            } else {
                self.right = None;
                self.linearize(ctx, r);
            }
        }
        // --- ring part (Alg. 2 lines 2–13) ---
        match self.ring {
            None => match (self.left, self.right) {
                (None, Some(r)) => {
                    // I look like the minimum: my reference travels right
                    // to the maximum, which will adopt it.
                    ctx.send(
                        r.id,
                        Msg::Intro {
                            node: me_ref,
                            cyc: true,
                        },
                    );
                }
                (Some(l), None) => {
                    ctx.send(
                        l.id,
                        Msg::Intro {
                            node: me_ref,
                            cyc: true,
                        },
                    );
                }
                _ => {}
            },
            Some(rg) => {
                if rg.id == self.id {
                    self.ring = None;
                    return;
                }
                let rg_left = place_key(rg.label, rg.id) < me;
                if let (true, Some(r)) = (rg_left, self.right) {
                    // A ring edge to my left is only valid if I am the
                    // maximum (no right neighbour): forward it onward.
                    ctx.send(
                        r.id,
                        Msg::Intro {
                            node: rg,
                            cyc: true,
                        },
                    );
                    self.ring = None;
                } else if let (false, Some(l)) = (rg_left, self.left) {
                    ctx.send(
                        l.id,
                        Msg::Intro {
                            node: rg,
                            cyc: true,
                        },
                    );
                    self.ring = None;
                } else {
                    // Consistent endpoint: verify the partner's label.
                    ctx.send(
                        rg.id,
                        Msg::Check {
                            sender: me_ref,
                            assumed: rg.label,
                            cyc: true,
                        },
                    );
                }
            }
        }
    }

    /// Probabilistic configuration probes (§3.2.1 actions (ii) and (iv)).
    fn probe_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, my: Label) {
        if !self.cfg.probes {
            return;
        }
        let minimal_looking = self.left.is_none();
        if minimal_looking && my != Label::ZERO {
            // Action (iv): I believe my label is minimal yet it is not
            // l(0) — in a legitimate state this never holds (only the
            // true minimum lacks a left neighbour), so Theorem 5's
            // steady-state accounting is unaffected (DESIGN.md §7.3).
            // Kept in token mode too: the token only reaches *recorded*
            // nodes, so component absorption still needs this action.
            if ctx.random_bool(0.5) {
                ctx.send(
                    self.supervisor,
                    Msg::GetConfiguration {
                        node: self.id,
                        requester: None,
                    },
                );
                self.counters.config_probes += 1;
            }
        } else if self.cfg.probe_mode != crate::ProbeMode::Token
            && ctx.random_bool(analytics::probe_probability(my.len()))
        {
            // Action (ii). In token mode the circulating token replaces
            // this: every recorded node is verified deterministically
            // once per circulation.
            ctx.send(
                self.supervisor,
                Msg::GetConfiguration {
                    node: self.id,
                    requester: None,
                },
            );
            self.counters.config_probes += 1;
        }
    }

    /// Handles the §6 verification token: request my configuration, then
    /// pass the token to my right neighbour (the maximum returns it).
    pub(crate) fn on_token(&mut self, ctx: &mut Ctx<'_, Msg>, seq: u64, ttl: u32) {
        if self.label.is_none() {
            // An unlabeled holder cannot place the token on the ring;
            // returning it lets the supervisor reissue promptly.
            ctx.send(self.supervisor, Msg::TokenReturn { seq });
            return;
        }
        self.counters.tokens_seen += 1;
        ctx.send(
            self.supervisor,
            Msg::GetConfiguration {
                node: self.id,
                requester: None,
            },
        );
        if ttl == 0 {
            return; // corrupted-pointer cycle protection: token expires
        }
        match self.right {
            Some(r) if r.id != self.id => {
                ctx.send(r.id, Msg::Token { seq, ttl: ttl - 1 });
            }
            _ => ctx.send(self.supervisor, Msg::TokenReturn { seq }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(s: &str) -> Label {
        s.parse().unwrap()
    }

    fn sub(id: u64, label: &str) -> Subscriber {
        let mut s = Subscriber::new(NodeId(id), NodeId(0), ProtocolConfig::topology_only());
        s.label = Some(lab(label));
        s
    }

    fn rf(label: &str, id: u64) -> NodeRef {
        NodeRef::new(lab(label), NodeId(id))
    }

    /// Runs `f` with the subscriber and a detached context; returns the
    /// messages it sent.
    fn ctx_harness(
        f: impl FnOnce(&mut Subscriber, &mut Ctx<'_, Msg>),
        s: &mut Subscriber,
    ) -> Vec<(NodeId, Msg)> {
        let me = s.id;
        skippub_sim::testing::run_handler(me, 42, |ctx| f(s, ctx))
    }

    #[test]
    fn linearize_adopts_closest_left() {
        let mut s = sub(5, "1");
        ctx_harness(
            |s, ctx| {
                s.linearize(ctx, rf("0", 1));
                assert_eq!(s.left.unwrap().id, NodeId(1));
                // Closer node replaces.
                s.linearize(ctx, rf("01", 2));
                assert_eq!(s.left.unwrap().id, NodeId(2));
                // Farther node is delegated, not adopted.
                s.linearize(ctx, rf("0", 3));
                assert_eq!(s.left.unwrap().id, NodeId(2));
            },
            &mut s,
        );
    }

    #[test]
    fn linearize_adopts_closest_right() {
        let mut s = sub(5, "0");
        ctx_harness(
            |s, ctx| {
                s.linearize(ctx, rf("1", 1));
                s.linearize(ctx, rf("01", 2));
                assert_eq!(s.right.unwrap().id, NodeId(2));
                s.linearize(ctx, rf("11", 3));
                assert_eq!(s.right.unwrap().id, NodeId(2));
            },
            &mut s,
        );
    }

    #[test]
    fn linearize_ignores_self() {
        let mut s = sub(5, "01");
        ctx_harness(
            |s, ctx| {
                s.linearize(ctx, rf("0", 5));
                assert!(s.left.is_none());
            },
            &mut s,
        );
    }

    #[test]
    fn label_update_repositions_neighbor() {
        let mut s = sub(5, "01");
        ctx_harness(
            |s, ctx| {
                s.linearize(ctx, rf("0", 1));
                assert_eq!(s.left.unwrap().label, lab("0"));
                // Node 1 actually has label "1" (> mine): must move to right.
                s.linearize(ctx, rf("1", 1));
                assert!(s.left.is_none());
                assert_eq!(s.right.unwrap(), rf("1", 1));
            },
            &mut s,
        );
    }

    #[test]
    fn cyc_adoption_as_maximum() {
        let mut s = sub(9, "111");
        ctx_harness(
            |s, ctx| {
                // No right neighbour → I look like the maximum; adopt CYC.
                s.incorporate(ctx, rf("0", 1), true);
                assert_eq!(s.ring.unwrap(), rf("0", 1));
                // A farther candidate (the true minimum) replaces a closer one.
                s.ring = Some(rf("01", 2));
                s.incorporate(ctx, rf("0", 1), true);
                assert_eq!(s.ring.unwrap(), rf("0", 1));
            },
            &mut s,
        );
    }

    #[test]
    fn cyc_not_adopted_by_interior() {
        let mut s = sub(9, "01");
        ctx_harness(
            |s, ctx| {
                s.linearize(ctx, rf("0", 1));
                s.linearize(ctx, rf("1", 2));
                s.incorporate(ctx, rf("11", 3), true); // CYC candidate > me
                assert!(s.ring.is_none(), "interior nodes forward CYC candidates");
            },
            &mut s,
        );
    }

    #[test]
    fn remove_connections_clears_everywhere() {
        let mut s = sub(9, "01");
        s.left = Some(rf("0", 1));
        s.right = Some(rf("1", 2));
        s.ring = Some(rf("11", 1));
        s.shortcuts.insert(lab("1"), Some(NodeId(2)));
        s.on_remove_connections(NodeId(1));
        assert!(s.left.is_none());
        assert!(s.ring.is_none());
        assert_eq!(s.right, Some(rf("1", 2)));
        s.on_remove_connections(NodeId(2));
        assert!(s.right.is_none());
        assert_eq!(s.shortcuts[&lab("1")], None);
    }

    #[test]
    fn set_data_none_clears_state() {
        let mut s = sub(9, "01");
        s.left = Some(rf("0", 1));
        s.shortcuts.insert(lab("1"), Some(NodeId(2)));
        ctx_harness(
            |s, ctx| {
                s.on_set_data(ctx, None, None, None);
                assert!(s.label.is_none());
                assert!(s.left.is_none());
                assert!(s.shortcuts.is_empty());
            },
            &mut s,
        );
    }

    #[test]
    fn set_data_wrap_edges_become_ring() {
        let mut s = sub(9, "0");
        ctx_harness(
            |s, ctx| {
                // Minimum: pred is the maximum (label > mine) → ring edge.
                s.on_set_data(ctx, Some(rf("11", 7)), Some(lab("0")), Some(rf("01", 3)));
                assert_eq!(s.ring.unwrap(), rf("11", 7));
                assert_eq!(s.right.unwrap(), rf("01", 3));
                assert!(s.left.is_none());
            },
            &mut s,
        );
    }

    #[test]
    fn set_data_interior() {
        let mut s = sub(9, "01");
        ctx_harness(
            |s, ctx| {
                s.on_set_data(ctx, Some(rf("0", 1)), Some(lab("01")), Some(rf("1", 2)));
                assert_eq!(s.left.unwrap(), rf("0", 1));
                assert_eq!(s.right.unwrap(), rf("1", 2));
                assert!(s.ring.is_none());
            },
            &mut s,
        );
    }

    #[test]
    fn label_change_replaces_edges() {
        let mut s = sub(9, "11");
        ctx_harness(
            |s, ctx| {
                s.on_set_data(ctx, Some(rf("1", 1)), Some(lab("11")), Some(rf("111", 2)));
                assert_eq!(s.left.unwrap().id, NodeId(1));
                // Relabelled to "001" (much smaller): old neighbours must not
                // survive on their old sides.
                s.on_set_data(ctx, Some(rf("0", 3)), Some(lab("001")), Some(rf("01", 4)));
                assert_eq!(s.label, Some(lab("001")));
                assert_eq!(s.left.unwrap().id, NodeId(3));
                assert_eq!(s.right.unwrap().id, NodeId(4));
            },
            &mut s,
        );
    }

    #[test]
    fn introduce_shortcut_fills_expected_slot() {
        let mut s = sub(9, "0");
        s.shortcuts.insert(lab("1"), None);
        ctx_harness(
            |s, ctx| {
                s.on_introduce_shortcut(ctx, rf("1", 4));
                assert_eq!(s.shortcuts[&lab("1")], Some(NodeId(4)));
                // Replacement forwards the old reference (can't observe the
                // message here, but the slot must update).
                s.on_introduce_shortcut(ctx, rf("1", 5));
                assert_eq!(s.shortcuts[&lab("1")], Some(NodeId(5)));
            },
            &mut s,
        );
    }

    #[test]
    fn unexpected_shortcut_is_linearized() {
        let mut s = sub(9, "0");
        ctx_harness(
            |s, ctx| {
                s.on_introduce_shortcut(ctx, rf("01", 4));
                assert!(s.shortcuts.is_empty());
                // Delegated into the list instead.
                assert_eq!(s.right.unwrap(), rf("01", 4));
            },
            &mut s,
        );
    }

    #[test]
    fn unlabeled_answers_with_remove() {
        let mut s = Subscriber::new(NodeId(9), NodeId(0), ProtocolConfig::topology_only());
        ctx_harness(
            |s, ctx| {
                s.linearize(ctx, rf("0", 1));
                assert!(s.left.is_none());
                assert!(s.label.is_none());
            },
            &mut s,
        );
    }

    #[test]
    fn eff_neighbors_for_min_and_max() {
        let mut min = sub(1, "0");
        min.right = Some(rf("01", 2));
        min.ring = Some(rf("11", 3));
        assert_eq!(
            min.eff_left().unwrap().id,
            NodeId(3),
            "ring is the min's left"
        );
        assert_eq!(min.eff_right().unwrap().id, NodeId(2));
        let mut max = sub(3, "11");
        max.left = Some(rf("1", 4));
        max.ring = Some(rf("0", 1));
        assert_eq!(
            max.eff_right().unwrap().id,
            NodeId(1),
            "ring is the max's right"
        );
        assert_eq!(max.eff_left().unwrap().id, NodeId(4));
    }
}
