//! Multi-topic publish-subscribe (§4): one `BuildSR` instance per topic.
//!
//! "To construct a publish-subscribe system out of our self-stabilizing
//! supervised overlay network, we basically run a BuildSR protocol for
//! each topic t ∈ T at the supervisor. … By assigning the topic number to
//! each message that is sent out, we can identify the appropriate protocol
//! at the receiver."
//!
//! The supervisor's per-timeout work is therefore **linear in the number
//! of topics but independent of the number of subscribers** (experiment
//! E13 measures exactly this).

use crate::config::ProtocolConfig;
use crate::msg::Msg;
use crate::subscriber::Subscriber;
use crate::supervisor::Supervisor;
use skippub_sim::{Ctx, NodeId, Protocol};
use std::collections::BTreeMap;

/// Topic identifier (`t ∈ T ⊂ N`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TopicId(pub u32);

/// A topic-tagged protocol message.
#[derive(Clone, Debug)]
pub struct TopicMsg {
    /// Which `BuildSR` instance the message belongs to.
    pub topic: TopicId,
    /// The inner message.
    pub msg: Msg,
}

/// A multi-topic process: a supervisor hosting one database per topic, or
/// a client subscribed to any subset of topics.
#[derive(Clone, Debug)]
pub enum MultiActor {
    /// The supervisor: one `BuildSR` supervisor instance per topic.
    Supervisor {
        /// Per-topic supervisor state.
        topics: BTreeMap<TopicId, Supervisor>,
        /// Own id.
        id: NodeId,
        /// Whether lazily instantiated topic supervisors record their
        /// operations for a [`crate::replica::ReplicaGroup`]. Seeded by
        /// the backend when `SystemBuilder::replicas(k)` with `k ≥ 2`.
        replicated: bool,
        /// Forwarding tombstones for topics handed off to another
        /// supervisor (shard rebalancing): topic → current owner at the
        /// time of the last handoff. A stale in-flight message for a
        /// moved topic is forwarded one hop instead of lazily
        /// resurrecting a zombie instance here. Following the chain of
        /// last-handoff pointers always terminates at the current owner
        /// (whose own tombstone is cleared on adoption).
        moved: BTreeMap<TopicId, NodeId>,
    },
    /// A client: one `BuildSR` subscriber instance per subscribed topic.
    Client {
        /// Per-topic subscriber state.
        topics: BTreeMap<TopicId, Subscriber>,
        /// Own id.
        id: NodeId,
        /// The (hard-coded) supervisor.
        supervisor: NodeId,
        /// Configuration applied to newly joined topics.
        cfg: ProtocolConfig,
        /// Topics whose instance was dropped after a granted departure,
        /// with the supervisor that granted it. A stale in-flight
        /// `Subscribe` processed *after* the departure re-inserts the
        /// client into that supervisor's database — and with the
        /// instance gone, nobody would ever refuse the entry (the
        /// single-topic backends self-heal here because the departed
        /// node keeps existing and re-sends `Unsubscribe`). The
        /// tombstone lets the client refuse membership-implying configs
        /// for departed topics, restoring that self-healing.
        departed: BTreeMap<TopicId, NodeId>,
    },
}

impl MultiActor {
    /// New multi-topic supervisor.
    pub fn new_supervisor(id: NodeId) -> Self {
        MultiActor::Supervisor {
            topics: BTreeMap::new(),
            id,
            replicated: false,
            moved: BTreeMap::new(),
        }
    }

    /// New multi-topic supervisor whose topic instances record their
    /// operations for a replica group.
    pub fn new_replicated_supervisor(id: NodeId) -> Self {
        MultiActor::Supervisor {
            topics: BTreeMap::new(),
            id,
            replicated: true,
            moved: BTreeMap::new(),
        }
    }

    /// New client with no subscriptions.
    pub fn new_client(id: NodeId, supervisor: NodeId, cfg: ProtocolConfig) -> Self {
        MultiActor::Client {
            topics: BTreeMap::new(),
            id,
            supervisor,
            cfg,
            departed: BTreeMap::new(),
        }
    }

    /// Client-side: start a `BuildSR` instance for `topic` ("Once a
    /// subscriber wants to subscribe to some topic t ∈ T, it starts
    /// running a new BuildSR protocol for topic t"). If an instance
    /// still exists from a pending departure, membership is re-affirmed
    /// instead (matching the single-topic backends' rejoin semantics).
    pub fn join_topic(&mut self, topic: TopicId) {
        if let MultiActor::Client {
            topics,
            id,
            supervisor,
            cfg,
            departed,
        } = self
        {
            departed.remove(&topic);
            topics
                .entry(topic)
                .and_modify(|s| s.wants_membership = true)
                .or_insert_with(|| Subscriber::new(*id, *supervisor, *cfg));
        }
    }

    /// Client-side variant of [`MultiActor::join_topic`] that directs the
    /// new `BuildSR` instance at an explicit `supervisor` — the hook the
    /// sharded backend uses to route each topic to the consistent-hash
    /// shard responsible for it (§1.3).
    pub fn join_topic_at(&mut self, topic: TopicId, supervisor: NodeId) {
        if let MultiActor::Client {
            topics,
            id,
            cfg,
            departed,
            ..
        } = self
        {
            departed.remove(&topic);
            topics
                .entry(topic)
                .and_modify(|s| s.wants_membership = true)
                .or_insert_with(|| Subscriber::new(*id, supervisor, *cfg));
        }
    }

    /// Client-side: request departure from `topic`; the instance is
    /// dropped once the supervisor grants permission (observed as the
    /// label being cleared).
    pub fn leave_topic(&mut self, topic: TopicId) {
        if let MultiActor::Client { topics, .. } = self {
            if let Some(s) = topics.get_mut(&topic) {
                s.wants_membership = false;
            }
        }
    }

    /// The subscriber instance for `topic`, if any.
    pub fn topic_subscriber(&self, topic: TopicId) -> Option<&Subscriber> {
        match self {
            MultiActor::Client { topics, .. } => topics.get(&topic),
            MultiActor::Supervisor { .. } => None,
        }
    }

    /// Mutable subscriber instance for `topic`.
    pub fn topic_subscriber_mut(&mut self, topic: TopicId) -> Option<&mut Subscriber> {
        match self {
            MultiActor::Client { topics, .. } => topics.get_mut(&topic),
            MultiActor::Supervisor { .. } => None,
        }
    }

    /// The supervisor instance for `topic`, if this is the supervisor.
    pub fn topic_supervisor(&self, topic: TopicId) -> Option<&Supervisor> {
        match self {
            MultiActor::Supervisor { topics, .. } => topics.get(&topic),
            MultiActor::Client { .. } => None,
        }
    }

    /// Topics this actor currently participates in.
    pub fn topic_ids(&self) -> Vec<TopicId> {
        match self {
            MultiActor::Supervisor { topics, .. } => topics.keys().copied().collect(),
            MultiActor::Client { topics, .. } => topics.keys().copied().collect(),
        }
    }

    /// Borrowing iterator over a client's `(topic, instance)` pairs in
    /// topic order (empty for supervisors) — the allocation-free form
    /// hot paths use instead of [`MultiActor::topic_ids`] + per-topic
    /// lookups.
    pub fn subscriptions(&self) -> impl Iterator<Item = (TopicId, &Subscriber)> {
        match self {
            MultiActor::Client { topics, .. } => Some(topics.iter().map(|(t, s)| (*t, s))),
            MultiActor::Supervisor { .. } => None,
        }
        .into_iter()
        .flatten()
    }

    /// Whether this actor is a client.
    pub fn is_client(&self) -> bool {
        matches!(self, MultiActor::Client { .. })
    }

    /// Client-side local publish on `topic` (inserts into the per-topic
    /// trie and floods along that topic's edges, §4.3). Returns the
    /// derived publication key, or `None` if this actor is not a client
    /// subscribed to `topic`.
    pub fn publish_local(
        &mut self,
        ctx: &mut Ctx<'_, TopicMsg>,
        topic: TopicId,
        payload: Vec<u8>,
    ) -> Option<skippub_bits::BitStr> {
        self.publish_local_shared(ctx, topic, payload.into())
    }

    /// [`publish_local`](Self::publish_local) over an already-shared
    /// payload — the zero-copy form the facade backends feed from their
    /// payload interner.
    pub fn publish_local_shared(
        &mut self,
        ctx: &mut Ctx<'_, TopicMsg>,
        topic: TopicId,
        payload: std::sync::Arc<[u8]>,
    ) -> Option<skippub_bits::BitStr> {
        let MultiActor::Client { topics, .. } = self else {
            return None;
        };
        let sub = topics.get_mut(&topic)?;
        let mut key = None;
        with_topic_ctx(topic, ctx, |ictx| {
            key = Some(sub.publish_local_shared(ictx, payload));
        });
        key
    }

    /// Client-side out-of-band publication insert (no flooding): models a
    /// publication that arrived through an unmodelled channel, used by
    /// adversarial-start experiments. Returns whether it was new.
    pub fn seed_publication(
        &mut self,
        topic: TopicId,
        publication: skippub_trie::Publication,
    ) -> bool {
        match self {
            MultiActor::Client { topics, .. } => topics
                .get_mut(&topic)
                .map(|s| s.trie.insert(publication))
                .unwrap_or(false),
            MultiActor::Supervisor { .. } => false,
        }
    }

    /// Supervisor-side failure-detector feed (§3.3): suspect `node` in
    /// every topic instance hosted here. No-op on clients.
    pub fn suspect(&mut self, node: NodeId) {
        if let MultiActor::Supervisor { topics, .. } = self {
            for sup in topics.values_mut() {
                sup.suspect(node);
            }
        }
    }

    /// Backend-side replication hook: flips operation recording on or
    /// off for this supervisor and every topic instance it already
    /// hosts (lazily instantiated topics inherit the flag). No-op on
    /// clients.
    pub fn set_replicated(&mut self, on: bool) {
        if let MultiActor::Supervisor {
            topics, replicated, ..
        } = self
        {
            *replicated = on;
            for sup in topics.values_mut() {
                sup.replicated = on;
                sup.outbox.clear();
            }
        }
    }

    /// Drains every topic instance's recorded operations, in ascending
    /// topic order (deterministic regardless of message interleaving
    /// within a round). Empty for clients.
    pub fn drain_outboxes(&mut self) -> Vec<(TopicId, Vec<crate::replica::RepOpKind>)> {
        let MultiActor::Supervisor { topics, .. } = self else {
            return Vec::new();
        };
        topics
            .iter_mut()
            .filter(|(_, s)| !s.outbox.is_empty())
            .map(|(t, s)| (*t, s.drain_outbox()))
            .collect()
    }

    /// Replaces the hosted per-topic supervisor map — the replica
    /// failover install (the electee's replayed state takes over the
    /// endpoint). No-op on clients.
    pub fn install_topics(&mut self, new_topics: BTreeMap<TopicId, Supervisor>) {
        if let MultiActor::Supervisor { topics, .. } = self {
            *topics = new_topics;
        }
    }

    /// Supervisor-side start of a topic handoff (shard rebalancing):
    /// records a forwarding tombstone `topic → new_owner` and extracts
    /// the hosted instance, if any. The tombstone is recorded even when
    /// no instance exists yet — a `Subscribe` may already be in flight
    /// toward this supervisor, and without the tombstone its arrival
    /// would lazily resurrect a zombie instance here. No-op (`None`) on
    /// clients.
    pub fn begin_move(&mut self, topic: TopicId, new_owner: NodeId) -> Option<Supervisor> {
        let MultiActor::Supervisor { topics, moved, .. } = self else {
            return None;
        };
        moved.insert(topic, new_owner);
        topics.remove(&topic)
    }

    /// Supervisor-side completion of a topic handoff: installs the moved
    /// instance under this supervisor's identity and clears any stale
    /// tombstone from an earlier outbound move of the same topic (this
    /// supervisor is the owner again). No-op on clients.
    pub fn adopt_topic(&mut self, topic: TopicId, mut instance: Supervisor) {
        if let MultiActor::Supervisor {
            topics, id, moved, ..
        } = self
        {
            instance.id = *id;
            moved.remove(&topic);
            topics.insert(topic, instance);
        }
    }

    /// Client-side supervisor retarget after a topic handoff: future
    /// probes and departure requests for `topic` go to `new_sup`. Both
    /// the live instance and a departed tombstone are retargeted (a
    /// stale-Subscribe refusal must reach the current owner). No-op on
    /// supervisors and on clients without state for the topic.
    pub fn retarget_topic(&mut self, topic: TopicId, new_sup: NodeId) {
        if let MultiActor::Client {
            topics, departed, ..
        } = self
        {
            if let Some(sub) = topics.get_mut(&topic) {
                sub.supervisor = new_sup;
            }
            if let Some(granter) = departed.get_mut(&topic) {
                *granter = new_sup;
            }
        }
    }
}

thread_local! {
    /// Reusable inner-send buffer for [`with_topic_ctx`]: the re-tag
    /// adapter sits on the per-delivered-message hot path of the
    /// multi-topic backends, so it must not allocate per call (beyond
    /// the buffer's one-time growth to its high-water mark). Per-thread
    /// storage also keeps the partitioned executor's workers off a
    /// shared allocator lock.
    static RETAG: std::cell::RefCell<Vec<(NodeId, Msg)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Adapter: runs a single-topic handler inside a topic-tagged context by
/// translating sends into [`TopicMsg`]s. The inner context shares the
/// outer context's RNG stream ([`Ctx::nest`]), so behaviour stays a
/// deterministic function of the world seed without paying a fresh RNG
/// construction per delivered message.
fn with_topic_ctx(topic: TopicId, ctx: &mut Ctx<'_, TopicMsg>, f: impl FnOnce(&mut Ctx<'_, Msg>)) {
    RETAG.with(|buf| {
        let mut out = buf.take();
        debug_assert!(out.is_empty());
        ctx.nest(&mut out, f);
        for (to, msg) in out.drain(..) {
            ctx.send(to, TopicMsg { topic, msg });
        }
        buf.replace(out);
    });
}

impl Protocol for MultiActor {
    type Msg = TopicMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, TopicMsg>, tm: TopicMsg) {
        let TopicMsg { topic, msg } = tm;
        match self {
            MultiActor::Supervisor {
                topics,
                id,
                replicated,
                moved,
            } => {
                // A message for a topic handed off to another shard:
                // forward one hop toward the current owner (a moved
                // tombstone implies no local instance; lazily creating
                // one here would resurrect a zombie supervisor).
                if let Some(&owner) = moved.get(&topic) {
                    ctx.send(owner, TopicMsg { topic, msg });
                    return;
                }
                // The supervisor lazily instantiates a topic on first
                // contact ("topics … predefined by the supervisor" — we
                // model the predefined set as "whatever is contacted").
                let sup = topics.entry(topic).or_insert_with(|| {
                    let mut s = Supervisor::new(*id);
                    s.replicated = *replicated;
                    s
                });
                let epoch = sup.db_epoch;
                with_topic_ctx(topic, ctx, |ictx| {
                    crate::actor::dispatch_supervisor(sup, ictx, msg)
                });
                if sup.db_epoch != epoch {
                    ctx.mark_dirty(crate::dirty::topo_key(topic.0));
                }
            }
            MultiActor::Client {
                topics, departed, ..
            } => {
                if let Some(sub) = topics.get_mut(&topic) {
                    let (topo, pubs) = crate::dirty::subscriber_delta(sub, |sub| {
                        with_topic_ctx(topic, ctx, |ictx| {
                            crate::actor::dispatch_subscriber(sub, ictx, msg)
                        })
                    });
                    if topo {
                        ctx.mark_dirty(crate::dirty::topo_key(topic.0));
                    }
                    if pubs {
                        ctx.mark_dirty(crate::dirty::pubs_key(topic.0));
                    }
                } else if let (Some(&sup), Msg::SetData { label: Some(_), .. }) =
                    (departed.get(&topic), &msg)
                {
                    // A membership-implying config for a topic we left:
                    // a stale `Subscribe` re-inserted us into the
                    // supervisor's database after the granted departure.
                    // Refuse, exactly as a still-running instance would
                    // (the departure permission `SetData(⊥,⊥,⊥)` and
                    // neighbour chatter stay ignored — no reply loops).
                    let me = ctx.me();
                    ctx.send(
                        sup,
                        TopicMsg {
                            topic,
                            msg: Msg::Unsubscribe { node: me },
                        },
                    );
                }
                // Other messages for topics we never joined: corrupted
                // content, consumed silently.
            }
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, TopicMsg>) {
        match self {
            MultiActor::Supervisor { topics, .. } => {
                // One round-robin config per topic per timeout — the §4
                // "linear in |T|, independent of subscribers" overhead.
                for (t, sup) in topics.iter_mut() {
                    let epoch = sup.db_epoch;
                    with_topic_ctx(*t, ctx, |ictx| sup.timeout(ictx));
                    if sup.db_epoch != epoch {
                        ctx.mark_dirty(crate::dirty::topo_key(t.0));
                    }
                }
            }
            MultiActor::Client {
                topics, departed, ..
            } => {
                let mut done: Vec<(TopicId, NodeId)> = Vec::new();
                for (t, sub) in topics.iter_mut() {
                    let (topo, pubs) = crate::dirty::subscriber_delta(sub, |sub| {
                        with_topic_ctx(*t, ctx, |ictx| sub.timeout(ictx))
                    });
                    if topo {
                        ctx.mark_dirty(crate::dirty::topo_key(t.0));
                    }
                    if pubs {
                        ctx.mark_dirty(crate::dirty::pubs_key(t.0));
                    }
                    // "Upon unsubscribing, the subscriber may remove the
                    // respective BuildSR protocol, once it gets the
                    // permission from the supervisor."
                    if !sub.wants_membership && sub.label.is_none() {
                        done.push((*t, sub.supervisor));
                    }
                }
                for (t, sup) in done {
                    topics.remove(&t);
                    departed.insert(t, sup);
                    // The member set itself is topology state: dropping
                    // the instance must invalidate the topic's verdict.
                    ctx.mark_dirty(crate::dirty::topo_key(t.0));
                }
            }
        }
    }

    fn msg_kind(tm: &TopicMsg) -> &'static str {
        tm.msg.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skippub_sim::World;

    const SUP: NodeId = NodeId(0);

    fn multi_world(clients: u64, seed: u64) -> World<MultiActor> {
        let mut w = World::new(seed);
        w.add_node(SUP, MultiActor::new_supervisor(SUP));
        for i in 1..=clients {
            w.add_node(
                NodeId(i),
                MultiActor::new_client(NodeId(i), SUP, ProtocolConfig::topology_only()),
            );
        }
        w
    }

    #[test]
    fn two_topics_stabilize_independently() {
        let mut w = multi_world(6, 21);
        let (ta, tb) = (TopicId(1), TopicId(2));
        for i in 1..=6u64 {
            let a = w.node_mut(NodeId(i)).unwrap();
            if i <= 4 {
                a.join_topic(ta);
            }
            if i >= 3 {
                a.join_topic(tb);
            }
        }
        for _ in 0..250 {
            w.run_round();
        }
        let sup = w.node(SUP).unwrap();
        assert_eq!(sup.topic_supervisor(ta).unwrap().n(), 4);
        assert_eq!(sup.topic_supervisor(tb).unwrap().n(), 4);
        // Per-topic subscriber state must carry per-topic labels.
        let n3 = w.node(NodeId(3)).unwrap();
        assert!(n3.topic_subscriber(ta).unwrap().label.is_some());
        assert!(n3.topic_subscriber(tb).unwrap().label.is_some());
    }

    #[test]
    fn leaving_a_topic_drops_the_instance() {
        let mut w = multi_world(3, 22);
        let t = TopicId(9);
        for i in 1..=3u64 {
            w.node_mut(NodeId(i)).unwrap().join_topic(t);
        }
        for _ in 0..80 {
            w.run_round();
        }
        w.node_mut(NodeId(2)).unwrap().leave_topic(t);
        for _ in 0..120 {
            w.run_round();
        }
        assert!(w.node(NodeId(2)).unwrap().topic_subscriber(t).is_none());
        assert_eq!(w.node(SUP).unwrap().topic_supervisor(t).unwrap().n(), 2);
    }

    #[test]
    fn rejoin_during_pending_departure_reaffirms_membership() {
        let mut w = multi_world(3, 24);
        let t = TopicId(5);
        for i in 1..=3u64 {
            w.node_mut(NodeId(i)).unwrap().join_topic(t);
        }
        for _ in 0..80 {
            w.run_round();
        }
        // Leave, then immediately rejoin before the supervisor grants
        // the departure: the node must stay a member (same semantics as
        // the single-topic backends' rejoin).
        let n2 = w.node_mut(NodeId(2)).unwrap();
        n2.leave_topic(t);
        n2.join_topic(t);
        for _ in 0..120 {
            w.run_round();
        }
        let sub = w
            .node(NodeId(2))
            .unwrap()
            .topic_subscriber(t)
            .expect("instance kept");
        assert!(sub.wants_membership);
        assert!(sub.label.is_some());
        assert_eq!(w.node(SUP).unwrap().topic_supervisor(t).unwrap().n(), 3);
    }

    #[test]
    fn stale_subscribe_after_departure_self_heals() {
        // Regression (found by the scenario engine's churn workloads): a
        // `Subscribe` still in flight when the supervisor grants the
        // sender's departure re-inserts the leaver into the database —
        // and the leaver's instance is gone, so nothing refused the
        // entry and the topic stayed illegitimate forever. The departed
        // tombstone now answers membership-implying configs with
        // `Unsubscribe`.
        let mut w = multi_world(4, 25);
        let t = TopicId(3);
        for i in 1..=4u64 {
            w.node_mut(NodeId(i)).unwrap().join_topic(t);
        }
        for _ in 0..120 {
            w.run_round();
        }
        w.node_mut(NodeId(2)).unwrap().leave_topic(t);
        for _ in 0..120 {
            w.run_round();
        }
        assert!(w.node(NodeId(2)).unwrap().topic_subscriber(t).is_none());
        // The stale (re-ordered) Subscribe arrives after the departure.
        w.inject(SUP, TopicMsg { topic: t, msg: Msg::Subscribe { node: NodeId(2) } });
        w.run_round();
        let poisoned = w.node(SUP).unwrap().topic_supervisor(t).unwrap();
        assert!(
            poisoned.database.values().any(|v| *v == Some(NodeId(2))),
            "stale Subscribe must have re-inserted the leaver"
        );
        for _ in 0..200 {
            w.run_round();
        }
        let sup = w.node(SUP).unwrap().topic_supervisor(t).unwrap();
        assert!(
            sup.database.values().all(|v| *v != Some(NodeId(2))),
            "database must drop the departed node again"
        );
        assert_eq!(sup.n(), 3);
        assert!(
            w.node(NodeId(2)).unwrap().topic_subscriber(t).is_none(),
            "the refusal must not resurrect the instance"
        );
    }

    #[test]
    fn unjoined_topic_messages_are_consumed() {
        let mut w = multi_world(1, 23);
        w.inject(
            NodeId(1),
            TopicMsg {
                topic: TopicId(77),
                msg: Msg::SetData {
                    pred: None,
                    label: None,
                    succ: None,
                },
            },
        );
        w.run_round();
        assert!(w
            .node(NodeId(1))
            .unwrap()
            .topic_subscriber(TopicId(77))
            .is_none());
    }
}
