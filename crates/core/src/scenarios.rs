//! World builders: legitimate warm starts, clean bootstraps, and
//! adversarial initial states for convergence experiments.
//!
//! The paper's model lets *every* protocol variable and channel start
//! corrupted (§1.1). These builders construct such states deterministically
//! from a seed so experiments are reproducible.

use crate::actor::Actor;
use crate::checker;
use crate::config::ProtocolConfig;
use crate::msg::{Msg, NodeRef};
use crate::subscriber::Subscriber;
use crate::supervisor::Supervisor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use skippub_ringmath::{shortcut, Label};
use skippub_sim::{NodeId, World};

/// Conventional supervisor ID used by all builders.
pub const SUPERVISOR: NodeId = NodeId(0);

/// The supervisor's ID in `world` (panics if there is none).
pub fn supervisor_id(world: &World<Actor>) -> NodeId {
    world
        .iter()
        .find(|(_, a)| a.supervisor().is_some())
        .map(|(id, _)| id)
        .expect("world has a supervisor")
}

/// IDs of all live subscribers in `world`.
pub fn subscriber_ids(world: &World<Actor>) -> Vec<NodeId> {
    world
        .iter()
        .filter(|(_, a)| a.subscriber().is_some())
        .map(|(id, _)| id)
        .collect()
}

/// A world already in a legitimate state: supervisor database filled,
/// every subscriber holding its correct label, ring edges and shortcuts.
/// Used by steady-state experiments (E4, E5, E12) and as the reference
/// the convergence experiments must reach.
pub fn legit_world(n: usize, seed: u64, cfg: ProtocolConfig) -> World<Actor> {
    assert!(n >= 1);
    let mut world = World::new(seed);
    let mut sup = Supervisor::new(SUPERVISOR);
    sup.token_enabled = cfg.probe_mode != crate::ProbeMode::Randomized;
    // db entry i: label l(i) → NodeId(i+1)
    let mut db: Vec<(Label, NodeId)> = (0..n as u64)
        .map(|i| (Label::from_index(i), NodeId(i + 1)))
        .collect();
    for (l, v) in &db {
        sup.database.insert(*l, Some(*v));
    }
    world.add_node(SUPERVISOR, Actor::Supervisor(sup));
    // Ring order.
    db.sort_by_key(|(l, _)| *l);
    // Label → id index for shortcut resolution (a linear scan per
    // shortcut target is O(n² log n) at experiment scales).
    let by_label: std::collections::BTreeMap<Label, NodeId> = db.iter().copied().collect();
    for (i, (label, v)) in db.iter().enumerate() {
        let mut s = Subscriber::new(*v, SUPERVISOR, cfg);
        s.label = Some(*label);
        let nref = |j: usize| NodeRef::new(db[j].0, db[j].1);
        if n > 1 {
            if i == 0 {
                s.right = Some(nref(1));
                s.ring = Some(nref(n - 1));
            } else if i == n - 1 {
                s.left = Some(nref(n - 2));
                s.ring = Some(nref(0));
            } else {
                s.left = Some(nref(i - 1));
                s.right = Some(nref(i + 1));
            }
        }
        if cfg.shortcuts {
            if let (Some(el), Some(er)) = (s.eff_left(), s.eff_right()) {
                for t in shortcut::expected_shortcuts(*label, el.label, er.label) {
                    s.shortcuts.insert(t.label, by_label.get(&t.label).copied());
                }
            }
        }
        world.add_node(*v, Actor::Subscriber(Box::new(s)));
    }
    world
}

/// A clean bootstrap: empty supervisor plus `n` fresh subscribers that
/// will join via their first `Timeout` (action (i)).
pub fn cold_world(n: usize, seed: u64, cfg: ProtocolConfig) -> World<Actor> {
    let mut world = World::new(seed);
    let mut sup = Supervisor::new(SUPERVISOR);
    sup.token_enabled = cfg.probe_mode != crate::ProbeMode::Randomized;
    world.add_node(SUPERVISOR, Actor::Supervisor(sup));
    for i in 0..n as u64 {
        let id = NodeId(i + 1);
        world.add_node(
            id,
            Actor::Subscriber(Box::new(Subscriber::new(id, SUPERVISOR, cfg))),
        );
    }
    world
}

/// Adversarial initial-state families for Theorem 8 experiments (E6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// Arbitrary labels and arbitrary edges everywhere; empty database.
    RandomState,
    /// `k` internally-sorted but mutually-inconsistent components; the
    /// supervisor knows nothing. Tests the component-absorption argument
    /// of Lemma 10.
    Partitioned(usize),
    /// Correct topology, but the database is corrupted with all four
    /// §3.1 corruption classes.
    CorruptDatabase,
    /// Correct database, but subscriber labels were permuted among nodes
    /// (every edge's believed label is stale).
    ShuffledLabels,
    /// Legitimate state plus channels preloaded with corrupted messages
    /// that reference real nodes under wrong labels.
    CorruptChannels,
}

impl Adversary {
    /// All families, for sweep experiments.
    pub fn all() -> [Adversary; 5] {
        [
            Adversary::RandomState,
            Adversary::Partitioned(4),
            Adversary::CorruptDatabase,
            Adversary::ShuffledLabels,
            Adversary::CorruptChannels,
        ]
    }

    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Adversary::RandomState => "random-state",
            Adversary::Partitioned(_) => "partitioned",
            Adversary::CorruptDatabase => "corrupt-db",
            Adversary::ShuffledLabels => "shuffled-labels",
            Adversary::CorruptChannels => "corrupt-channels",
        }
    }
}

fn random_label(rng: &mut StdRng, max_len: u8) -> Label {
    let len = rng.random_range(1..=max_len);
    Label::from_parts(rng.random::<u64>(), len).expect("len in range")
}

/// Builds an adversarial world of `n` subscribers.
pub fn adversarial_world(
    n: usize,
    seed: u64,
    cfg: ProtocolConfig,
    adversary: Adversary,
) -> World<Actor> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ n as u64);
    match adversary {
        Adversary::RandomState => {
            let mut world = World::new(seed);
            let mut sup = Supervisor::new(SUPERVISOR);
            sup.token_enabled = cfg.probe_mode != crate::ProbeMode::Randomized;
            world.add_node(SUPERVISOR, Actor::Supervisor(sup));
            let ids: Vec<NodeId> = (0..n as u64).map(|i| NodeId(i + 1)).collect();
            for &id in &ids {
                let mut s = Subscriber::new(id, SUPERVISOR, cfg);
                if rng.random_bool(0.8) {
                    s.label = Some(random_label(&mut rng, 10));
                }
                let pick = |rng: &mut StdRng| {
                    let other = ids[rng.random_range(0..ids.len())];
                    NodeRef::new(random_label(rng, 10), other)
                };
                if rng.random_bool(0.7) {
                    s.left = Some(pick(&mut rng));
                }
                if rng.random_bool(0.7) {
                    s.right = Some(pick(&mut rng));
                }
                if rng.random_bool(0.3) {
                    s.ring = Some(pick(&mut rng));
                }
                for _ in 0..rng.random_range(0..3usize) {
                    let r = pick(&mut rng);
                    s.shortcuts.insert(r.label, Some(r.id));
                }
                world.add_node(id, Actor::Subscriber(Box::new(s)));
            }
            world
        }
        Adversary::Partitioned(k) => {
            let k = k.clamp(1, n);
            let mut world = World::new(seed);
            let mut sup = Supervisor::new(SUPERVISOR);
            sup.token_enabled = cfg.probe_mode != crate::ProbeMode::Randomized;
            world.add_node(SUPERVISOR, Actor::Supervisor(sup));
            let mut ids: Vec<NodeId> = (0..n as u64).map(|i| NodeId(i + 1)).collect();
            ids.shuffle(&mut rng);
            for chunk in ids.chunks(n.div_ceil(k)) {
                // Each component: a consistent sorted ring over *conflicting*
                // labels l(0..m) — every component believes it is the topic.
                let m = chunk.len();
                for (i, &id) in chunk.iter().enumerate() {
                    let mut s = Subscriber::new(id, SUPERVISOR, cfg);
                    let lab = Label::from_index(i as u64);
                    s.label = Some(lab);
                    if m > 1 {
                        let sorted: Vec<(Label, NodeId)> = {
                            let mut v: Vec<(Label, NodeId)> = chunk
                                .iter()
                                .enumerate()
                                .map(|(j, &cid)| (Label::from_index(j as u64), cid))
                                .collect();
                            v.sort_by_key(|(l, _)| *l);
                            v
                        };
                        let pos = sorted
                            .iter()
                            .position(|(_, cid)| *cid == id)
                            .expect("member");
                        let nref = |j: usize| NodeRef::new(sorted[j].0, sorted[j].1);
                        if pos == 0 {
                            s.right = Some(nref(1));
                            s.ring = Some(nref(m - 1));
                        } else if pos == m - 1 {
                            s.left = Some(nref(m - 2));
                            s.ring = Some(nref(0));
                        } else {
                            s.left = Some(nref(pos - 1));
                            s.right = Some(nref(pos + 1));
                        }
                    }
                    world.add_node(id, Actor::Subscriber(Box::new(s)));
                }
            }
            world
        }
        Adversary::CorruptDatabase => {
            let mut world = legit_world(n, seed, cfg);
            let sup_id = supervisor_id(&world);
            let ids = subscriber_ids(&world);
            let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
            // (i) a ⊥ tuple, (iv) an out-of-range label.
            sup.database.insert(random_label(&mut rng, 12), None);
            sup.database
                .insert(Label::from_index(4 * n as u64 + 7), Some(ids[0]));
            // (ii) duplicate subscriber under a second label.
            sup.database
                .insert(Label::from_index(2 * n as u64 + 3), Some(ids[n / 2]));
            // (iii) a missing slot: drop one legitimate entry.
            let drop_at = Label::from_index((n / 3) as u64);
            sup.database.remove(&drop_at);
            world
        }
        Adversary::ShuffledLabels => {
            let mut world = legit_world(n, seed, cfg);
            let ids = subscriber_ids(&world);
            let mut labels: Vec<Label> = ids
                .iter()
                .map(|id| {
                    world
                        .node(*id)
                        .unwrap()
                        .subscriber()
                        .unwrap()
                        .label
                        .expect("legit world labels everyone")
                })
                .collect();
            labels.shuffle(&mut rng);
            for (id, lab) in ids.iter().zip(labels) {
                let s = world.node_mut(*id).unwrap().subscriber_mut().unwrap();
                s.label = Some(lab);
            }
            world
        }
        Adversary::CorruptChannels => {
            let mut world = legit_world(n, seed, cfg);
            let ids = subscriber_ids(&world);
            for _ in 0..(4 * n) {
                let to = ids[rng.random_range(0..ids.len())];
                let about = ids[rng.random_range(0..ids.len())];
                let msg = match rng.random_range(0..4u8) {
                    0 => Msg::Intro {
                        node: NodeRef::new(random_label(&mut rng, 10), about),
                        cyc: rng.random_bool(0.5),
                    },
                    1 => Msg::Check {
                        sender: NodeRef::new(random_label(&mut rng, 10), about),
                        assumed: random_label(&mut rng, 10),
                        cyc: rng.random_bool(0.5),
                    },
                    2 => Msg::IntroduceShortcut {
                        node: NodeRef::new(random_label(&mut rng, 10), about),
                    },
                    _ => Msg::SetData {
                        pred: Some(NodeRef::new(random_label(&mut rng, 10), about)),
                        label: Some(random_label(&mut rng, 10)),
                        succ: None,
                    },
                };
                world.inject(to, msg);
            }
            world
        }
    }
}

/// Sanity helper for tests: a legitimate world must pass the checker.
pub fn assert_legit(world: &World<Actor>) {
    let report = checker::check_topology(world);
    assert!(report.ok(), "not legitimate: {:?}", report.issues);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legit_world_is_legit() {
        for n in [1, 2, 3, 7, 16, 30] {
            assert_legit(&legit_world(n, 3, ProtocolConfig::default()));
        }
    }

    #[test]
    fn cold_world_is_not_legit_until_joined() {
        let world = cold_world(4, 3, ProtocolConfig::default());
        assert!(!checker::is_legitimate(&world));
        assert_eq!(subscriber_ids(&world).len(), 4);
    }

    #[test]
    fn adversarial_worlds_are_not_legit() {
        for adv in Adversary::all() {
            let world = adversarial_world(12, 5, ProtocolConfig::topology_only(), adv);
            if adv == Adversary::CorruptChannels {
                // State starts legitimate; the corruption is in flight.
                assert!(world.in_flight() > 0, "channels must hold garbage");
            } else {
                assert!(
                    !checker::is_legitimate(&world),
                    "{:?} produced a legitimate world",
                    adv
                );
            }
            assert_eq!(subscriber_ids(&world).len(), 12, "{adv:?} node count");
        }
    }

    #[test]
    fn builders_are_deterministic() {
        let w1 = adversarial_world(10, 42, ProtocolConfig::default(), Adversary::RandomState);
        let w2 = adversarial_world(10, 42, ProtocolConfig::default(), Adversary::RandomState);
        for id in subscriber_ids(&w1) {
            let a = w1.node(id).unwrap().subscriber().unwrap();
            let b = w2.node(id).unwrap().subscriber().unwrap();
            assert_eq!(a.label, b.label);
            assert_eq!(a.left, b.left);
            assert_eq!(a.right, b.right);
        }
    }
}
