//! # skippub-core
//!
//! The paper's contribution, in full: a **self-stabilizing supervised skip
//! ring** (`BuildSR`) and, on top of it, a **self-stabilizing topic-based
//! publish-subscribe system** (Feldmann, Kolb, Scheideler, Strothmann:
//! *Self-Stabilizing Supervised Publish-Subscribe Systems*).
//!
//! ## Architecture
//!
//! * [`Subscriber`] — the per-node state machine: `BuildList`
//!   linearization (Algorithm 1), extended `BuildRing` with corrupted-label
//!   repair (Algorithm 2, §2.2), the subscriber half of `BuildSR`
//!   (Algorithm 4: configurations, probabilistic supervisor probes,
//!   shortcut maintenance per §3.2.2) and the publication layer
//!   (Algorithm 5 anti-entropy + §4.3 flooding).
//! * [`Supervisor`] — the supervisor half of `BuildSR` (Algorithm 3):
//!   label database with local self-repair (`CheckLabels`), round-robin
//!   configuration dissemination, constant-message subscribe/unsubscribe,
//!   and the single failure detector of §3.3.
//! * [`Actor`] — supervisor-or-subscriber, pluggable into
//!   [`skippub_sim::World`] (and driven identically by the threaded
//!   runtime in `skippub-net`).
//! * [`checker`] — executable legitimate-state predicates (Definition 1):
//!   convergence/closure are verified from *global snapshots*, never by
//!   the protocol itself.
//! * [`scenarios`] — legitimate / cold / adversarial world builders.
//! * [`replica`] — the replicated supervisor: a self-stabilizing
//!   replicated op log with deterministic primary election, lifting the
//!   paper's "supervisor never crashes" assumption (`ReplicaGroup`).
//! * [`pubsub`] — the backend-agnostic [`PubSub`] facade +
//!   [`SystemBuilder`]: one client API over the single-topic simulator
//!   (synchronous or chaos-scheduled), the multi-topic system, and the
//!   sharded-supervisor system (the threaded backend lives in
//!   `skippub-net`).
//! * [`SkipRingSim`] — the single-topic simulator the sim backend wraps.
//! * [`topics`] — the multi-topic system of §4 (one `BuildSR` per topic).
//! * [`sharding`] — consistent-hashing of topics onto multiple
//!   supervisors (§1.3 scaling remark).
//!
//! ## Entry point
//!
//! ```
//! use skippub_core::{PubSub, SystemBuilder, TopicId};
//!
//! let mut ps = SystemBuilder::new(7).build_sim();
//! let alice = ps.subscribe(TopicId(0));
//! let bob = ps.subscribe(TopicId(0));
//! let (_, ok) = ps.until_legit(200);
//! assert!(ok);
//! ps.publish(alice, TopicId(0), b"hello".to_vec()).unwrap();
//! let (_, ok) = ps.until_pubs_converged(50);
//! assert!(ok);
//! assert_eq!(ps.drain_events(bob).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod api;
pub mod checker;
mod config;
mod dirty;
pub mod hierarchy;
mod msg;
mod publish;
pub mod pubsub;
pub mod replica;
pub mod scenarios;
pub mod sharding;
mod snap;
mod subscriber;
mod supervisor;
#[cfg(test)]
mod token_tests;
pub mod topics;

pub use actor::Actor;
pub use api::SkipRingSim;
pub use config::{ProbeMode, ProtocolConfig};
pub use msg::{Msg, NodeRef};
pub use pubsub::{BackendKind, Delivery, PartitionStats, PubSub, Stats, SystemBuilder};
pub use replica::{RepOp, RepOpKind, ReplicaGroup, ReplicaLog, SupervisorReplica};
pub use subscriber::{Counters, Subscriber};
pub use supervisor::{Supervisor, SupervisorCounters};
pub use topics::TopicId;
