//! The supervisor half of `BuildSR` (Algorithm 3, §3.1).
//!
//! The supervisor keeps a `database ⊂ {0,1}* × V` mapping labels to
//! subscribers. In its `Timeout` it (a) repairs the database locally
//! (`CheckLabels`, corruption classes (i)–(iv) of §3.1), (b) evicts
//! crashed subscribers reported by its failure detector (§3.3), and (c)
//! sends **one** configuration per timeout, round-robin (`next`), keeping
//! its steady-state message rate at exactly 1/interval. Subscribe and
//! unsubscribe each cost the supervisor a *constant* number of messages
//! (Theorem 7): one `SetData` for subscribe, two for unsubscribe.

use crate::msg::{Msg, NodeRef};
use crate::replica::RepOpKind;
use skippub_ringmath::Label;
use skippub_sim::{Ctx, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Supervisor-side experiment counters.
#[derive(Clone, Debug, Default)]
pub struct SupervisorCounters {
    /// Configurations pushed by the round-robin `Timeout`.
    pub roundrobin_configs: u64,
    /// `SetData` messages triggered by subscribe operations.
    pub subscribe_msgs: u64,
    /// `SetData` messages triggered by unsubscribe operations.
    pub unsubscribe_msgs: u64,
    /// Database repairs performed (entries relabelled or removed).
    pub repairs: u64,
    /// Crashed subscribers evicted via the failure detector.
    pub evictions: u64,
    /// §6 tokens issued.
    pub tokens_issued: u64,
    /// §6 tokens that completed a circulation.
    pub tokens_returned: u64,
}

/// The supervisor of one topic (one `BuildSR` instance).
#[derive(Clone, Debug)]
pub struct Supervisor {
    /// The supervisor's own ID.
    pub id: NodeId,
    /// `database`: label → subscriber. `None` values model the paper's
    /// corrupted `(label, ⊥)` tuples (class (i)) and only ever exist in
    /// adversarial initial states.
    pub database: BTreeMap<Label, Option<NodeId>>,
    /// Round-robin pointer for configuration dissemination.
    pub next: u64,
    /// Monotone **database epoch**: bumped by every mutation of
    /// `database` (insert, remove, repair, relabel, eviction). The
    /// incremental checker invalidates a topic's cached verdict exactly
    /// when this moved, so every code path that touches `database` must
    /// bump it — keep the two in lock-step when editing this file (the
    /// cross-checker conformance proptests catch a missed site).
    /// Not a protocol variable: nothing protocol-side reads it.
    pub db_epoch: u64,
    /// Failure-detector output: subscribers believed crashed (§3.3).
    /// Fed by [`Supervisor::suspect`]; an eventually-correct detector in
    /// the harness reports every real crash after a bounded delay.
    pub suspected: BTreeSet<NodeId>,
    /// §6 token mode: when `true`, the supervisor issues a verification
    /// token instead of pushing round-robin configurations.
    pub token_enabled: bool,
    /// Current token issue number.
    pub token_seq: u64,
    /// Whether a token is believed to be in circulation.
    pub token_outstanding: bool,
    /// Timeouts since the current token was issued (regeneration clock).
    pub token_age: u64,
    /// Experiment counters.
    pub counters: SupervisorCounters,
    /// When `true`, every semantic operation this supervisor executes
    /// is also pushed to [`Supervisor::outbox`] so a
    /// [`crate::replica::ReplicaGroup`] can append it to the replicated
    /// op log. Off by default — a `k = 1` deployment (the paper's
    /// never-crashing supervisor) pays nothing.
    pub replicated: bool,
    /// Operations executed since the last drain (see
    /// [`Supervisor::drain_outbox`]). Always empty at facade
    /// boundaries: backends drain after every step and facade call, so
    /// snapshots never need to serialize it.
    pub outbox: Vec<RepOpKind>,
}

impl Supervisor {
    /// A fresh supervisor with an empty database.
    pub fn new(id: NodeId) -> Self {
        Supervisor {
            id,
            database: BTreeMap::new(),
            next: 0,
            db_epoch: 0,
            suspected: BTreeSet::new(),
            token_enabled: false,
            token_seq: 0,
            token_outstanding: false,
            token_age: 0,
            counters: SupervisorCounters::default(),
            replicated: false,
            outbox: Vec::new(),
        }
    }

    /// Takes the operations recorded since the last drain.
    pub fn drain_outbox(&mut self) -> Vec<RepOpKind> {
        std::mem::take(&mut self.outbox)
    }

    /// Records `op` for the replica log when replication is on.
    fn record(&mut self, op: RepOpKind) {
        if self.replicated {
            self.outbox.push(op);
        }
    }

    /// Current subscriber count `n = |database|`.
    pub fn n(&self) -> usize {
        self.database.len()
    }

    /// Failure-detector input: mark `v` as crashed.
    pub fn suspect(&mut self, v: NodeId) {
        self.record(RepOpKind::Suspect { v });
        self.suspected.insert(v);
    }

    /// Looks up the entry for subscriber `v` (first match in label order).
    fn label_of(&self, v: NodeId) -> Option<Label> {
        self.database
            .iter()
            .find(|(_, node)| **node == Some(v))
            .map(|(l, _)| *l)
    }

    /// `CheckMultipleCopies(v)` (Algorithm 3 lines 31–37): keep only the
    /// lowest-label entry for `v`.
    fn check_multiple_copies(&mut self, v: NodeId) {
        let mut seen = false;
        let dups: Vec<Label> = self
            .database
            .iter()
            .filter_map(|(l, node)| {
                if *node == Some(v) {
                    if seen {
                        return Some(*l);
                    }
                    seen = true;
                }
                None
            })
            .collect();
        for l in dups {
            self.database.remove(&l);
            self.db_epoch += 1;
            self.counters.repairs += 1;
        }
    }

    /// `CheckLabels` (Algorithm 3 lines 38–45) extended with duplicate-
    /// subscriber elimination: after this runs, the database is exactly a
    /// bijection `{l(0), …, l(n−1)} → V`. All work is local — no messages.
    pub fn check_labels(&mut self) {
        // (i): remove (label, ⊥) tuples.
        let before = self.database.len();
        self.database.retain(|_, v| v.is_some());
        self.db_epoch += (before - self.database.len()) as u64;
        self.counters.repairs += (before - self.database.len()) as u64;
        // (ii): multiple labels for one subscriber — keep the lowest.
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let dups: Vec<Label> = self
            .database
            .iter()
            .filter_map(|(l, node)| {
                let v = node.expect("no ⊥ after pass (i)");
                if !seen.insert(v) {
                    Some(*l)
                } else {
                    None
                }
            })
            .collect();
        for l in dups {
            self.database.remove(&l);
            self.db_epoch += 1;
            self.counters.repairs += 1;
        }
        // (iii)/(iv): re-pack labels onto the valid slots l(0..n).
        let n = self.database.len() as u64;
        let is_valid_slot = |l: &Label| matches!(l.index(), Some(i) if i < n);
        // Pool of entries parked on invalid slots, ordered by "maximum j
        // first" (the paper's relabelling choice); labels outside l's
        // image sort after everything by construction of the sort key.
        let mut pool: Vec<(Label, NodeId)> = self
            .database
            .iter()
            .filter(|(l, _)| !is_valid_slot(l))
            .map(|(l, v)| (*l, v.expect("no ⊥")))
            .collect();
        pool.sort_by_key(|(l, _)| (l.index().unwrap_or(u64::MAX), l.frac(), l.len()));
        // pool is ascending; pop() takes the maximum first.
        for i in 0..n {
            let slot = Label::from_index(i);
            if !self.database.contains_key(&slot) {
                let (old, v) = pool.pop().expect("counting argument: a spare entry exists");
                self.database.remove(&old);
                self.database.insert(slot, Some(v));
                self.db_epoch += 1;
                self.counters.repairs += 1;
            }
        }
        debug_assert!(pool.iter().all(|(l, _)| is_valid_slot(l)) || pool.is_empty());
    }

    /// Evicts subscribers the failure detector reported (§3.3). Local.
    fn evict_suspected(&mut self) {
        if self.suspected.is_empty() {
            return;
        }
        let victims = std::mem::take(&mut self.suspected);
        let before = self.database.len();
        self.database.retain(|_, v| match v {
            Some(node) => !victims.contains(node),
            None => true,
        });
        self.db_epoch += (before - self.database.len()) as u64;
        self.counters.evictions += (before - self.database.len()) as u64;
    }

    /// Ring predecessor/successor of `label` in the database (wrapping),
    /// excluding the entry itself. `None` when the database holds fewer
    /// than two entries.
    fn neighbors_of(&self, label: Label) -> (Option<NodeRef>, Option<NodeRef>) {
        if self.database.len() < 2 {
            return (None, None);
        }
        let to_ref = |(l, v): (&Label, &Option<NodeId>)| v.map(|id| NodeRef::new(*l, id));
        let pred = self
            .database
            .range(..label)
            .next_back()
            .and_then(to_ref)
            .or_else(|| {
                self.database
                    .iter()
                    .rfind(|(l, _)| **l != label)
                    .and_then(to_ref)
            });
        let succ = self
            .database
            .range((std::ops::Bound::Excluded(label), std::ops::Bound::Unbounded))
            .next()
            .and_then(to_ref)
            .or_else(|| {
                self.database
                    .iter()
                    .find(|(l, _)| **l != label)
                    .and_then(to_ref)
            });
        (pred, succ)
    }

    /// Sends `v` (which holds `label`) its configuration.
    fn send_config(&self, ctx: &mut Ctx<'_, Msg>, label: Label, v: NodeId) {
        let (pred, succ) = self.neighbors_of(label);
        ctx.send(
            v,
            Msg::SetData {
                pred,
                label: Some(label),
                succ,
            },
        );
    }

    /// `Subscribe(v)` (Algorithm 3 lines 6–12).
    pub(crate) fn on_subscribe(&mut self, ctx: &mut Ctx<'_, Msg>, v: NodeId) {
        if v == self.id {
            return;
        }
        self.record(RepOpKind::Subscribe { v });
        self.check_labels(); // keep the insert slot l(n) well-defined
        match self.label_of(v) {
            None => {
                let n = self.database.len() as u64;
                let label = Label::from_index(n);
                self.database.insert(label, Some(v));
                self.db_epoch += 1;
                self.send_config(ctx, label, v);
                self.counters.subscribe_msgs += 1;
            }
            Some(label) => {
                // Already subscribed: just (re-)send the configuration.
                self.send_config(ctx, label, v);
            }
        }
    }

    /// `Unsubscribe(v)` (Algorithm 3 lines 13–23): the subscriber holding
    /// the *last* label takes over `v`'s label so the label set stays
    /// `{l(0), …, l(n−2)}`; `v` receives the departure permission.
    pub(crate) fn on_unsubscribe(&mut self, ctx: &mut Ctx<'_, Msg>, v: NodeId) {
        if v == self.id {
            return;
        }
        self.record(RepOpKind::Unsubscribe { v });
        self.check_labels();
        self.check_multiple_copies(v);
        if let Some(label_v) = self.label_of(v) {
            let n = self.database.len() as u64;
            let last = Label::from_index(n - 1);
            if n > 1 && label_v != last {
                let w = self.database.remove(&last).flatten().expect("repaired db");
                self.database.insert(label_v, Some(w));
                self.db_epoch += 1;
                // paper-note: Alg. 3 line 20 writes SetData(pred_v,
                // label_u, succ_v) with inconsistent naming; the intent is
                // v's old label and its ring neighbours (DESIGN.md §7.1).
                self.send_config(ctx, label_v, w);
                self.counters.unsubscribe_msgs += 1;
            } else {
                self.database.remove(&label_v);
                self.db_epoch += 1;
            }
        }
        ctx.send(
            v,
            Msg::SetData {
                pred: None,
                label: None,
                succ: None,
            },
        );
        self.counters.unsubscribe_msgs += 1;
    }

    /// `GetConfiguration(u)` (Algorithm 3 lines 24–30). Note the
    /// configuration goes to `u` — which may differ from the requester
    /// (§3.2.1 action (iii)). When `u` is unknown, the requester (if any)
    /// is told to drop its references to `u` — the §3.3 extension that
    /// propagates the supervisor-side failure detector's knowledge at
    /// constant cost.
    pub(crate) fn on_get_configuration(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        u: NodeId,
        requester: Option<NodeId>,
    ) {
        if u == self.id {
            return;
        }
        self.record(RepOpKind::GetConfig { u, requester });
        self.check_multiple_copies(u);
        match self.label_of(u) {
            Some(label) => self.send_config(ctx, label, u),
            None => {
                ctx.send(
                    u,
                    Msg::SetData {
                        pred: None,
                        label: None,
                        succ: None,
                    },
                );
                if let Some(req) = requester {
                    if req != u {
                        ctx.send(req, Msg::RemoveConnections { node: u });
                    }
                }
            }
        }
    }

    /// The supervisor `Timeout` (Algorithm 3 lines 1–5), or the §6 token
    /// bookkeeping when token mode is on.
    pub(crate) fn timeout(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.record(RepOpKind::Timeout);
        self.evict_suspected();
        self.check_labels();
        let n = self.database.len() as u64;
        if n == 0 {
            self.token_outstanding = false;
            return;
        }
        if self.token_enabled {
            self.token_timeout(ctx, n);
            return;
        }
        self.next = (self.next + 1) % n;
        let label = Label::from_index(self.next);
        if let Some(Some(v)) = self.database.get(&label).copied() {
            self.send_config(ctx, label, v);
            self.counters.roundrobin_configs += 1;
        }
    }

    /// §6 token mode: (re-)issue the verification token when none is in
    /// circulation, or when the current one failed to return within a
    /// generous ring-circumference bound (lost to a crash or a corrupted
    /// pointer cycle — its TTL kills it).
    fn token_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, n: u64) {
        self.token_age += 1;
        let lost_after = 2 * n + 16;
        if self.token_outstanding && self.token_age <= lost_after {
            return;
        }
        // Issue to the subscriber holding l(0) — the ring minimum.
        if let Some(Some(entry)) = self.database.get(&Label::from_index(0)).copied() {
            self.token_seq += 1;
            self.token_outstanding = true;
            self.token_age = 0;
            let ttl = (4 * n + 16) as u32;
            ctx.send(
                entry,
                Msg::Token {
                    seq: self.token_seq,
                    ttl,
                },
            );
            self.counters.tokens_issued += 1;
        }
    }

    /// Handles the token coming home from the ring maximum.
    pub(crate) fn on_token_return(&mut self, seq: u64) {
        self.record(RepOpKind::TokenReturn { seq });
        if self.token_enabled && seq == self.token_seq {
            self.token_outstanding = false;
            self.token_age = 0;
            self.counters.tokens_returned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(s: &str) -> Label {
        s.parse().unwrap()
    }

    fn run(
        s: &mut Supervisor,
        f: impl FnOnce(&mut Supervisor, &mut Ctx<'_, Msg>),
    ) -> Vec<(NodeId, Msg)> {
        skippub_sim::testing::run_handler(s.id, 5, |ctx| f(s, ctx))
    }

    fn db_labels(s: &Supervisor) -> Vec<String> {
        s.database.keys().map(|l| l.to_string()).collect()
    }

    #[test]
    fn subscribe_assigns_sequential_labels() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=4 {
            let sent = run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
            assert_eq!(sent.len(), 1, "subscribe costs exactly one message");
        }
        assert_eq!(db_labels(&s), ["0", "01", "1", "11"]);
        assert_eq!(s.counters.subscribe_msgs, 4);
    }

    #[test]
    fn duplicate_subscribe_resends_config() {
        let mut s = Supervisor::new(NodeId(0));
        run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(1)));
        let sent = run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(1)));
        assert_eq!(s.n(), 1);
        assert_eq!(sent.len(), 1);
        match &sent[0].1 {
            Msg::SetData { label, .. } => assert_eq!(*label, Some(lab("0"))),
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn subscribe_config_has_ring_neighbors() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=3 {
            run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
        }
        // Fourth subscriber gets l(3) = "11" with pred "1" and succ "0".
        let sent = run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(4)));
        match &sent[0].1 {
            Msg::SetData { pred, label, succ } => {
                assert_eq!(*label, Some(lab("11")));
                assert_eq!(pred.unwrap().label, lab("1"));
                assert_eq!(succ.unwrap().label, lab("0"));
            }
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn unsubscribe_relabels_last() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=4 {
            run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
        }
        // Node 2 holds l(1) = "1"; node 4 holds l(3) = "11" and must take
        // over "1".
        let sent = run(&mut s, |s, ctx| s.on_unsubscribe(ctx, NodeId(2)));
        assert_eq!(sent.len(), 2, "unsubscribe costs exactly two messages");
        assert_eq!(db_labels(&s), ["0", "01", "1"]);
        assert_eq!(s.database[&lab("1")], Some(NodeId(4)));
        // One SetData to the relabelled node, one permission to the leaver.
        let to_w = sent.iter().find(|(to, _)| *to == NodeId(4)).unwrap();
        match &to_w.1 {
            Msg::SetData { label, .. } => assert_eq!(*label, Some(lab("1"))),
            m => panic!("unexpected {m:?}"),
        }
        let to_v = sent.iter().find(|(to, _)| *to == NodeId(2)).unwrap();
        assert!(matches!(to_v.1, Msg::SetData { label: None, .. }));
    }

    #[test]
    fn unsubscribe_last_label_just_removes() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=3 {
            run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
        }
        let sent = run(&mut s, |s, ctx| s.on_unsubscribe(ctx, NodeId(3)));
        assert_eq!(db_labels(&s), ["0", "1"]);
        assert_eq!(sent.len(), 1, "only the permission message");
    }

    #[test]
    fn unsubscribe_unknown_still_grants_permission() {
        let mut s = Supervisor::new(NodeId(0));
        let sent = run(&mut s, |s, ctx| s.on_unsubscribe(ctx, NodeId(9)));
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].1, Msg::SetData { label: None, .. }));
    }

    #[test]
    fn check_labels_repairs_all_corruption_classes() {
        let mut s = Supervisor::new(NodeId(0));
        // (i) ⊥ value, (ii) duplicate node, (iii) missing l(1),
        // (iv) label with index ≥ n.
        s.database.insert(lab("0"), Some(NodeId(1)));
        s.database.insert(lab("11"), Some(NodeId(2))); // l(3) but n will be 3
        s.database.insert(lab("0001"), None); // class (i)
        s.database.insert(lab("001"), Some(NodeId(1))); // class (ii) dup of node 1
        s.check_labels();
        assert_eq!(db_labels(&s), ["0", "1"]);
        let nodes: BTreeSet<NodeId> = s.database.values().map(|v| v.unwrap()).collect();
        assert_eq!(nodes.len(), 2);
        assert!(s.counters.repairs >= 3);
    }

    #[test]
    fn check_labels_handles_non_canonical_labels() {
        let mut s = Supervisor::new(NodeId(0));
        // "10" is not in the image of l.
        s.database.insert(lab("10"), Some(NodeId(1)));
        s.database.insert(lab("110"), Some(NodeId(2)));
        s.check_labels();
        assert_eq!(db_labels(&s), ["0", "1"]);
    }

    #[test]
    fn timeout_round_robin_sends_one_config() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=3 {
            run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
        }
        let mut recipients = BTreeSet::new();
        for _ in 0..3 {
            let sent = run(&mut s, |s, ctx| s.timeout(ctx));
            assert_eq!(sent.len(), 1);
            recipients.insert(sent[0].0);
        }
        assert_eq!(recipients.len(), 3, "round robin must cover everyone");
    }

    #[test]
    fn timeout_on_empty_db_is_silent() {
        let mut s = Supervisor::new(NodeId(0));
        let sent = run(&mut s, |s, ctx| s.timeout(ctx));
        assert!(sent.is_empty());
    }

    #[test]
    fn eviction_removes_and_repacks() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=4 {
            run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
        }
        s.suspect(NodeId(1));
        s.suspect(NodeId(3));
        run(&mut s, |s, ctx| s.timeout(ctx));
        assert_eq!(s.n(), 2);
        assert_eq!(db_labels(&s), ["0", "1"]);
        let nodes: BTreeSet<NodeId> = s.database.values().map(|v| v.unwrap()).collect();
        assert_eq!(nodes, BTreeSet::from([NodeId(2), NodeId(4)]));
        assert_eq!(s.counters.evictions, 2);
    }

    #[test]
    fn get_configuration_for_unknown_resets() {
        let mut s = Supervisor::new(NodeId(0));
        let sent = run(&mut s, |s, ctx| {
            s.on_get_configuration(ctx, NodeId(7), None)
        });
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, NodeId(7));
        assert!(matches!(sent[0].1, Msg::SetData { label: None, .. }));
    }

    #[test]
    fn db_epoch_moves_iff_database_changes() {
        let mut s = Supervisor::new(NodeId(0));
        let e0 = s.db_epoch;
        run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(1)));
        assert!(s.db_epoch > e0, "insert must bump the epoch");
        let e1 = s.db_epoch;
        // Duplicate subscribe resends the config; the database is
        // untouched, so the epoch must hold (the incremental checker's
        // cache stays valid through steady-state re-sends).
        run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(1)));
        assert_eq!(s.db_epoch, e1);
        // Steady-state timeout: round-robin read, no repair, no move.
        run(&mut s, |s, ctx| s.timeout(ctx));
        assert_eq!(s.db_epoch, e1);
        // Unknown-target GetConfiguration: reply only.
        run(&mut s, |s, ctx| s.on_get_configuration(ctx, NodeId(9), None));
        assert_eq!(s.db_epoch, e1);
        // Eviction via the failure detector must bump.
        s.suspect(NodeId(1));
        run(&mut s, |s, ctx| s.timeout(ctx));
        assert!(s.db_epoch > e1, "eviction must bump the epoch");
        // Repairs bump too.
        let e2 = s.db_epoch;
        s.database.insert(lab("0001"), None);
        s.check_labels();
        assert!(s.db_epoch > e2, "repair must bump the epoch");
    }

    #[test]
    fn neighbors_wrap_around() {
        let mut s = Supervisor::new(NodeId(0));
        for i in 1..=4 {
            run(&mut s, |s, ctx| s.on_subscribe(ctx, NodeId(i)));
        }
        // Labels sorted: 0(n1), 01(n3), 1(n2), 11(n4).
        let (pred, succ) = s.neighbors_of(lab("0"));
        assert_eq!(pred.unwrap().label, lab("11"));
        assert_eq!(succ.unwrap().label, lab("01"));
        let (pred, succ) = s.neighbors_of(lab("11"));
        assert_eq!(pred.unwrap().label, lab("1"));
        assert_eq!(succ.unwrap().label, lab("0"));
    }
}
