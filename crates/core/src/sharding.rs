//! Consistent-hashing supervisor shards (§1.3 scaling remark).
//!
//! "Better scalability can be achieved … by having different supervisors
//! for each topic. For the latter scenario, one could make use of a
//! self-stabilizing distributed hash table (with consistent hashing) for
//! all supervisors, in which a sub-interval of [0, 1) is assigned to each
//! supervisor. By hashing IDs of topics in the same manner, each
//! supervisor is then only responsible for the topics in its
//! sub-interval."
//!
//! The paper explicitly defers the *self-stabilization* of this DHT to
//! existing literature \[11\]; accordingly this module implements the
//! consistent-hashing layer as a static substrate (used by experiment
//! E13b to show the supervisor-load flattening), not as a self-stabilizing
//! protocol of its own.

use crate::topics::TopicId;
use skippub_bits::Hash128;
use skippub_sim::NodeId;
use std::collections::BTreeMap;

/// A consistent-hashing map from topics to supervisor nodes.
#[derive(Clone, Debug)]
pub struct SupervisorShards {
    /// Hash ring: point in `[0, 2⁶⁴)` → supervisor.
    ring: BTreeMap<u64, NodeId>,
    /// Virtual nodes per supervisor.
    replicas: usize,
}

/// Ring-point hash. Allocation-free: the preimage (`tag ∘ id ∘ replica`,
/// same byte layout the original `Vec`-based version hashed, so ring
/// positions are unchanged) is assembled in a fixed-size stack buffer —
/// `supervisor_for` sits on the per-message routing path of the sharded
/// backend and must not pay a heap round-trip per lookup (asserted by the
/// counting-allocator test `crates/core/tests/alloc_free.rs`).
fn point(tag: &str, id: u64, replica: usize) -> u64 {
    let tag = tag.as_bytes();
    debug_assert!(tag.len() <= 16, "ring tags are short literals");
    let mut buf = [0u8; 32];
    let len = tag.len() + 16;
    buf[..tag.len()].copy_from_slice(tag);
    buf[tag.len()..tag.len() + 8].copy_from_slice(&id.to_le_bytes());
    buf[tag.len() + 8..len].copy_from_slice(&(replica as u64).to_le_bytes());
    Hash128::of_bytes(&buf[..len]).words()[0]
}

impl SupervisorShards {
    /// Builds the ring over `supervisors` with `replicas` virtual nodes
    /// each (more replicas → smoother split of `[0,1)`).
    pub fn new(supervisors: &[NodeId], replicas: usize) -> Self {
        assert!(!supervisors.is_empty(), "need at least one supervisor");
        assert!(replicas >= 1);
        let mut ring = BTreeMap::new();
        for &s in supervisors {
            for r in 0..replicas {
                ring.insert(point("sup", s.0, r), s);
            }
        }
        SupervisorShards { ring, replicas }
    }

    /// Virtual nodes per supervisor — with the supervisor ID list, this
    /// fully determines the ring, so checkpoints save these two instead
    /// of the ring itself and rebuild it on restore.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The supervisor responsible for `topic`: the first ring point at or
    /// after the topic's hash (wrapping).
    pub fn supervisor_for(&self, topic: TopicId) -> NodeId {
        let h = point("topic", u64::from(topic.0), 0);
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, s)| *s)
            .expect("ring is non-empty")
    }

    /// Adds a supervisor (e.g. scale-out); only `~1/k` of topics move.
    pub fn add_supervisor(&mut self, s: NodeId) {
        for r in 0..self.replicas {
            self.ring.insert(point("sup", s.0, r), s);
        }
    }

    /// Removes a supervisor; its interval falls to the successors.
    pub fn remove_supervisor(&mut self, s: NodeId) {
        self.ring.retain(|_, v| *v != s);
    }

    /// Number of distinct supervisors on the ring.
    pub fn supervisor_count(&self) -> usize {
        let mut v: Vec<NodeId> = self.ring.values().copied().collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Distribution of `topics` over supervisors: supervisor → count.
    pub fn load(&self, topics: impl Iterator<Item = TopicId>) -> BTreeMap<NodeId, usize> {
        let mut out = BTreeMap::new();
        for t in topics {
            *out.entry(self.supervisor_for(t)).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sups(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn deterministic_assignment() {
        let shards = SupervisorShards::new(&sups(4), 16);
        for t in 0..100 {
            assert_eq!(
                shards.supervisor_for(TopicId(t)),
                shards.supervisor_for(TopicId(t))
            );
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let shards = SupervisorShards::new(&sups(4), 64);
        let load = shards.load((0..4000).map(TopicId));
        assert_eq!(load.values().sum::<usize>(), 4000);
        for (&s, &c) in &load {
            assert!(
                (500..=1800).contains(&c),
                "supervisor {s} got {c} of 4000 topics"
            );
        }
    }

    #[test]
    fn adding_supervisor_moves_few_topics() {
        let mut shards = SupervisorShards::new(&sups(4), 64);
        let before: Vec<NodeId> = (0..2000)
            .map(|t| shards.supervisor_for(TopicId(t)))
            .collect();
        shards.add_supervisor(NodeId(99));
        let after: Vec<NodeId> = (0..2000)
            .map(|t| shards.supervisor_for(TopicId(t)))
            .collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // Expect ~1/5 of topics to move; allow generous slack.
        assert!(moved < 800, "{moved} topics moved");
        assert!(
            moved > 100,
            "only {moved} topics moved — ring not effective"
        );
        // Everything that moved went to the new supervisor.
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(*a, NodeId(99));
            }
        }
    }

    #[test]
    fn removal_is_total() {
        let mut shards = SupervisorShards::new(&sups(3), 8);
        assert_eq!(shards.supervisor_count(), 3);
        shards.remove_supervisor(NodeId(1));
        assert_eq!(shards.supervisor_count(), 2);
        for t in 0..200 {
            assert_ne!(shards.supervisor_for(TopicId(t)), NodeId(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one supervisor")]
    fn empty_panics() {
        let _ = SupervisorShards::new(&[], 4);
    }
}
