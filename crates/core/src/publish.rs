//! Publication dissemination (Algorithm 5 + §4.3 flooding), implemented on
//! [`Subscriber`].
//!
//! Two complementary mechanisms, exactly as in the paper:
//!
//! * **Anti-entropy** (`PublishTimeout` / `CheckTrie` / `CheckAndPublish`
//!   / `Publish`): the self-stabilizing layer. Every timeout, a subscriber
//!   sends its Patricia-trie root to one random direct ring neighbour;
//!   hash mismatches are drilled down Merkle-style and exactly the missing
//!   publications are shipped (Theorem 17 guarantees system-wide
//!   convergence to the union of all publications).
//! * **Flooding** (`PublishNew`): the fast path. A fresh publication is
//!   broadcast along *all* edges; since the skip ring has diameter
//!   `O(log n)`, delivery takes `O(log n)` hops. Flooding alone is not
//!   self-stabilizing (late joiners / lossy pasts); anti-entropy repairs
//!   whatever flooding misses ("we do not rely on flooding to show
//!   convergence", §4.3).

use crate::msg::Msg;
use crate::subscriber::Subscriber;
use skippub_bits::BitStr;
use skippub_sim::{Ctx, NodeId};
use skippub_trie::{CheckOutcome, NodeSummary, Publication, TrieBatch};

impl Subscriber {
    /// `PublishTimeout` (Algorithm 5 lines 1–4): send the trie root to a
    /// random direct ring neighbour.
    pub(crate) fn publish_timeout(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(root) = self.trie.root_summary() else {
            return;
        };
        let candidates: Vec<NodeId> = {
            let mut c: Vec<NodeId> = [self.left, self.right, self.ring]
                .into_iter()
                .flatten()
                .map(|r| r.id)
                .filter(|&id| id != self.id)
                .collect();
            c.sort_unstable_by_key(|id| id.0);
            c.dedup();
            c
        };
        if candidates.is_empty() {
            return;
        }
        let pick = candidates[ctx.random_range(candidates.len())];
        ctx.send(
            pick,
            Msg::CheckTrie {
                sender: self.id,
                tuples: vec![root],
            },
        );
    }

    /// Handles `CheckTrie(sender, tuples)` (Algorithm 5 lines 11–23).
    pub(crate) fn on_check_trie(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        sender: NodeId,
        tuples: Vec<NodeSummary>,
    ) {
        if sender == self.id {
            return;
        }
        for tuple in tuples {
            match self.trie.check(&tuple) {
                CheckOutcome::Match => {}
                CheckOutcome::LeafConflict => self.counters.leaf_conflicts += 1,
                CheckOutcome::Descend(c0, c1) => {
                    ctx.send(
                        sender,
                        Msg::CheckTrie {
                            sender: self.id,
                            tuples: vec![c0, c1],
                        },
                    );
                }
                CheckOutcome::Missing {
                    cover,
                    publish_prefix,
                } => {
                    ctx.send(
                        sender,
                        Msg::CheckAndPublish {
                            sender: self.id,
                            tuples: cover.into_iter().collect(),
                            prefix: publish_prefix,
                        },
                    );
                }
            }
        }
    }

    /// Handles `CheckAndPublish(sender, tuples, prefix)` (Algorithm 5
    /// lines 25–28): keep checking, and ship everything under `prefix`.
    pub(crate) fn on_check_and_publish(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        sender: NodeId,
        tuples: Vec<NodeSummary>,
        prefix: BitStr,
    ) {
        if sender == self.id {
            return;
        }
        self.on_check_trie(ctx, sender, tuples);
        let pubs: Vec<Publication> = self
            .trie
            .publications_with_prefix(&prefix)
            .into_iter()
            .cloned()
            .collect();
        if !pubs.is_empty() {
            ctx.send(sender, Msg::Publish { pubs });
        }
    }

    /// Handles `Publish(P)` (Algorithm 5 lines 6–9) as one batched
    /// skeleton commit: each touched internal hash is recomputed once
    /// per message instead of once per publication ([`TrieBatch`] is
    /// proptest-equivalent to the insert loop, so the resulting trie —
    /// and every root hash the protocol ships — is identical).
    pub(crate) fn on_publish(&mut self, pubs: Vec<Publication>) {
        let batch: TrieBatch = pubs.into_iter().collect();
        self.counters.pubs_via_sync += batch.apply(&mut self.trie) as u64;
    }

    /// Handles `PublishNew(p)` (Algorithm 5 lines 30–34): insert if new
    /// and keep flooding; drop if already known.
    pub(crate) fn on_publish_new(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        publication: Publication,
        hops: u32,
    ) {
        if self.trie.contains_key(publication.key()) {
            return;
        }
        let inserted = self.trie.insert(publication.clone());
        if inserted {
            self.counters.pubs_via_flood += 1;
            self.counters.flood_hops.push(hops);
            self.flood(ctx, publication, hops + 1);
        }
    }

    /// Local operation: the user of this subscriber publishes `payload`.
    /// Inserts into the own trie and, when enabled, floods (§4.3).
    /// Returns the derived publication key.
    pub fn publish_local(&mut self, ctx: &mut Ctx<'_, Msg>, payload: Vec<u8>) -> BitStr {
        self.publish_local_shared(ctx, payload.into())
    }

    /// [`publish_local`](Self::publish_local) over an already-shared
    /// payload (e.g. from a backend's
    /// [`PayloadInterner`](skippub_trie::PayloadInterner)): the bytes are
    /// never copied — the trie copy, every flood copy and the caller's
    /// pool entry all reference one allocation.
    pub fn publish_local_shared(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        payload: std::sync::Arc<[u8]>,
    ) -> BitStr {
        let p = Publication::from_shared(self.id.0, payload, self.cfg.key_bits);
        let key = p.key().clone();
        if self.trie.insert(p.clone()) && self.cfg.flooding {
            self.flood(ctx, p, 1);
        }
        key
    }

    /// Broadcast along all edges: `{left, right, ring} ∪ shortcuts`.
    fn flood(&self, ctx: &mut Ctx<'_, Msg>, p: Publication, hops: u32) {
        if !self.cfg.flooding {
            return;
        }
        let mut targets: Vec<NodeId> = [self.left, self.right, self.ring]
            .into_iter()
            .flatten()
            .map(|r| r.id)
            .chain(self.shortcuts.values().copied().flatten())
            .filter(|&id| id != self.id)
            .collect();
        targets.sort_unstable_by_key(|id| id.0);
        targets.dedup();
        for t in targets {
            ctx.send(
                t,
                Msg::PublishNew {
                    publication: p.clone(),
                    hops,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::msg::NodeRef;
    use skippub_ringmath::Label;

    fn lab(s: &str) -> Label {
        s.parse().unwrap()
    }

    fn sub(id: u64, label: &str) -> Subscriber {
        let mut s = Subscriber::new(NodeId(id), NodeId(0), ProtocolConfig::default());
        s.label = Some(lab(label));
        s
    }

    fn run(
        s: &mut Subscriber,
        f: impl FnOnce(&mut Subscriber, &mut Ctx<'_, Msg>),
    ) -> Vec<(NodeId, Msg)> {
        skippub_sim::testing::run_handler(s.id, 7, |ctx| f(s, ctx))
    }

    #[test]
    fn publish_local_inserts_and_floods() {
        let mut s = sub(3, "0");
        s.right = Some(NodeRef::new(lab("01"), NodeId(4)));
        s.ring = Some(NodeRef::new(lab("11"), NodeId(5)));
        s.shortcuts.insert(lab("1"), Some(NodeId(6)));
        let sent = run(&mut s, |s, ctx| {
            s.publish_local(ctx, b"hello".to_vec());
        });
        assert_eq!(s.trie.len(), 1);
        let flooded: Vec<NodeId> = sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::PublishNew { .. }))
            .map(|(to, _)| *to)
            .collect();
        assert_eq!(flooded, vec![NodeId(4), NodeId(5), NodeId(6)]);
    }

    #[test]
    fn publish_new_forwards_once() {
        let mut s = sub(3, "0");
        s.right = Some(NodeRef::new(lab("01"), NodeId(4)));
        let p = Publication::new(9, b"x".to_vec());
        let sent = run(&mut s, |s, ctx| s.on_publish_new(ctx, p.clone(), 1));
        assert_eq!(sent.len(), 1, "forwarded to the one neighbour");
        assert_eq!(s.counters.flood_hops, vec![1]);
        // Second arrival is dropped.
        let sent = run(&mut s, |s, ctx| s.on_publish_new(ctx, p.clone(), 2));
        assert!(sent.is_empty());
        assert_eq!(s.trie.len(), 1);
    }

    #[test]
    fn publish_timeout_targets_ring_neighbors_only() {
        let mut s = sub(3, "0");
        s.right = Some(NodeRef::new(lab("01"), NodeId(4)));
        s.ring = Some(NodeRef::new(lab("11"), NodeId(5)));
        s.shortcuts.insert(lab("1"), Some(NodeId(6)));
        run(&mut s, |s, ctx| {
            s.publish_local(ctx, b"x".to_vec());
        });
        for _ in 0..20 {
            let sent = run(&mut s, |s, ctx| s.publish_timeout(ctx));
            assert_eq!(sent.len(), 1);
            let (to, m) = &sent[0];
            assert!(matches!(m, Msg::CheckTrie { .. }));
            assert!(
                [NodeId(4), NodeId(5)].contains(to),
                "shortcut {to:?} must not receive anti-entropy probes"
            );
        }
    }

    #[test]
    fn empty_trie_sends_no_probe() {
        let mut s = sub(3, "0");
        s.right = Some(NodeRef::new(lab("01"), NodeId(4)));
        let sent = run(&mut s, |s, ctx| s.publish_timeout(ctx));
        assert!(sent.is_empty());
    }

    #[test]
    fn check_trie_mismatch_descends() {
        let mut a = sub(3, "0");
        let mut b = sub(4, "1");
        run(&mut a, |s, ctx| {
            s.publish_local(ctx, b"one".to_vec());
            s.publish_local(ctx, b"two".to_vec());
        });
        run(&mut b, |s, ctx| {
            s.publish_local(ctx, b"three".to_vec());
        });
        let root_b = b.trie.root_summary().unwrap();
        let sent = run(&mut a, |s, ctx| {
            s.on_check_trie(ctx, NodeId(4), vec![root_b]);
        });
        assert_eq!(sent.len(), 1);
        assert!(matches!(
            &sent[0].1,
            Msg::CheckAndPublish { .. } | Msg::CheckTrie { .. }
        ));
    }

    #[test]
    fn full_exchange_converges_two_nodes() {
        // Run the message exchange by hand until quiescent.
        let mut a = sub(3, "0");
        let mut b = sub(4, "1");
        a.right = Some(NodeRef::new(lab("1"), NodeId(4)));
        a.ring = Some(NodeRef::new(lab("1"), NodeId(4)));
        b.left = Some(NodeRef::new(lab("0"), NodeId(3)));
        b.ring = Some(NodeRef::new(lab("0"), NodeId(3)));
        run(&mut a, |s, ctx| {
            for i in 0..10u32 {
                s.publish_local(ctx, format!("a{i}").into_bytes());
            }
        });
        run(&mut b, |s, ctx| {
            for i in 0..7u32 {
                s.publish_local(ctx, format!("b{i}").into_bytes());
            }
        });
        let mut queue: Vec<(NodeId, Msg)> = Vec::new();
        // Alternate initiations until both roots agree.
        for round in 0..8 {
            if a.trie.root_hash() == b.trie.root_hash() {
                break;
            }
            let (init, _other) = if round % 2 == 0 {
                (&mut a, &mut b)
            } else {
                (&mut b, &mut a)
            };
            queue.extend(run(init, |s, ctx| s.publish_timeout(ctx)));
            while let Some((to, msg)) = queue.pop() {
                let target = if to == NodeId(3) { &mut a } else { &mut b };
                let more = skippub_sim::testing::run_handler(to, 1, |ctx| match msg {
                    Msg::CheckTrie { sender, tuples } => target.on_check_trie(ctx, sender, tuples),
                    Msg::CheckAndPublish {
                        sender,
                        tuples,
                        prefix,
                    } => target.on_check_and_publish(ctx, sender, tuples, prefix),
                    Msg::Publish { pubs } => target.on_publish(pubs),
                    Msg::PublishNew { publication, hops } => {
                        target.on_publish_new(ctx, publication, hops)
                    }
                    _ => {}
                });
                queue.extend(more);
            }
        }
        assert_eq!(a.trie.root_hash(), b.trie.root_hash());
        assert_eq!(a.trie.len(), 17);
        assert_eq!(b.trie.len(), 17);
    }
}
