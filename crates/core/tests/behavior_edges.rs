//! Behavioural edge cases of the protocol, driven through the public API:
//! targeted corruptions, extremum churn, rejoin cycles, and join bursts.

use skippub_core::{scenarios, Actor, ProbeMode, ProtocolConfig, SkipRingSim};
use skippub_ringmath::Label;
use skippub_sim::NodeId;

fn lab(s: &str) -> Label {
    s.parse().unwrap()
}

#[test]
fn stale_neighbor_label_belief_is_repaired() {
    // Corrupt one node's *belief* about its left neighbour's label — the
    // §2.2 extension (Check/label correction) must repair it.
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(8, 1, cfg), cfg);
    let victim = sim.subscriber_ids()[3];
    {
        let s = sim.world_mut().node_mut(victim).unwrap().subscriber_mut().unwrap();
        let l = s.left.expect("interior node has a left neighbour");
        s.left = Some(skippub_core::NodeRef::new(lab("0001110011"), l.id));
    }
    assert!(!sim.is_legitimate());
    let (rounds, ok) = sim.run_until_legit(500);
    assert!(ok, "label-belief corruption not repaired: {:?}", sim.report().issues);
    assert!(rounds <= 40, "repair took {rounds} rounds");
}

#[test]
fn crossed_edges_are_relinearized() {
    // Swap two nodes' left pointers (each points at the other's correct
    // neighbour) — linearization must sort this out.
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(10, 2, cfg), cfg);
    let ids = sim.subscriber_ids();
    let (a, b) = (ids[3], ids[7]);
    let la = sim.subscriber(a).unwrap().left;
    let lb = sim.subscriber(b).unwrap().left;
    sim.world_mut().node_mut(a).unwrap().subscriber_mut().unwrap().left = lb;
    sim.world_mut().node_mut(b).unwrap().subscriber_mut().unwrap().left = la;
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok, "{:?}", sim.report().issues);
}

#[test]
fn unsubscribe_of_the_minimum_relabels_cleanly() {
    // The node holding label "0" leaves; the last-labelled node must take
    // over "0" and the ring must close around it.
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(8, 3, cfg), cfg);
    let min = sim
        .subscriber_ids()
        .into_iter()
        .find(|id| sim.subscriber(*id).unwrap().label == Some(lab("0")))
        .expect("someone holds l(0)");
    sim.unsubscribe(min);
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok, "{:?}", sim.report().issues);
    assert_eq!(sim.supervisor().n(), 7);
    assert!(sim
        .subscriber_ids()
        .iter()
        .any(|id| sim.subscriber(*id).unwrap().label == Some(lab("0"))));
}

#[test]
fn crash_both_extrema_simultaneously() {
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(10, 4, cfg), cfg);
    let by_label = |want: Label| {
        sim.subscriber_ids()
            .into_iter()
            .find(|id| sim.subscriber(*id).unwrap().label == Some(want))
            .expect("labelled node exists")
    };
    let min = by_label(lab("0"));
    let r_max = sim
        .subscriber_ids()
        .into_iter()
        .max_by_key(|id| sim.subscriber(*id).unwrap().label.unwrap().frac())
        .unwrap();
    let victims = vec![min, r_max];
    for &v in &victims {
        sim.crash(v);
    }
    for _ in 0..3 {
        sim.run_round();
    }
    for &v in &victims {
        sim.report_crash(v);
    }
    let (_, ok) = sim.run_until_legit(30_000);
    assert!(ok, "{:?}", sim.report().issues);
    assert_eq!(sim.supervisor().n(), 8);
}

#[test]
fn empty_topic_then_repopulate() {
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(4, 5, cfg), cfg);
    for id in sim.subscriber_ids() {
        sim.unsubscribe(id);
    }
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok);
    assert_eq!(sim.supervisor().n(), 0);
    // Repopulate.
    for _ in 0..5 {
        sim.add_subscriber();
    }
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok);
    assert_eq!(sim.supervisor().n(), 5);
}

#[test]
fn resubscribe_after_leaving() {
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(5, 6, cfg), cfg);
    let v = sim.subscriber_ids()[2];
    sim.unsubscribe(v);
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok);
    assert_eq!(sim.supervisor().n(), 4);
    // Change of heart: wants membership again.
    sim.world_mut().node_mut(v).unwrap().subscriber_mut().unwrap().wants_membership = true;
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok, "{:?}", sim.report().issues);
    assert_eq!(sim.supervisor().n(), 5);
    assert!(sim.subscriber(v).unwrap().label.is_some());
}

#[test]
fn join_burst_into_existing_ring() {
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(16, 7, cfg), cfg);
    for _ in 0..48 {
        sim.add_subscriber();
    }
    let (rounds, ok) = sim.run_until_legit(30_000);
    assert!(ok, "{:?}", sim.report().issues);
    assert_eq!(sim.supervisor().n(), 64);
    assert!(rounds < 2000, "join burst took {rounds} rounds");
}

#[test]
fn single_node_topic_full_lifecycle() {
    let cfg = ProtocolConfig::default();
    let mut sim = SkipRingSim::new(8, cfg);
    let solo = sim.add_subscriber();
    let (_, ok) = sim.run_until_legit(200);
    assert!(ok);
    sim.publish(solo, b"talking to myself".to_vec());
    let (_, ok) = sim.run_until_pubs_converged(50);
    assert!(ok);
    // A second node arrives and inherits the history.
    let second = sim.add_subscriber();
    sim.run_until_legit(2000);
    let (_, ok) = sim.run_until_pubs_converged(2000);
    assert!(ok);
    assert_eq!(sim.subscriber(second).unwrap().trie.len(), 1);
}

#[test]
fn token_mode_survives_mid_circulation_unsubscribes() {
    let cfg = ProtocolConfig {
        probe_mode: ProbeMode::TokenHybrid,
        ..ProtocolConfig::topology_only()
    };
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(12, 9, cfg), cfg);
    for _ in 0..6 {
        sim.run_round(); // token in flight
    }
    for id in sim.subscriber_ids().into_iter().step_by(3).take(3) {
        sim.unsubscribe(id);
    }
    let (_, ok) = sim.run_until_legit(30_000);
    assert!(ok, "{:?}", sim.report().issues);
    assert_eq!(sim.supervisor().n(), 9);
    // Token keeps circulating afterwards.
    let issued = sim.supervisor().counters.tokens_issued;
    for _ in 0..40 {
        sim.run_round();
    }
    assert!(
        sim.supervisor().counters.tokens_returned > 0 || sim.supervisor().counters.tokens_issued > issued,
        "token circulation must continue after churn"
    );
}

#[test]
fn corrupted_shortcut_values_to_live_nodes_heal() {
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(16, 10, cfg), cfg);
    let ids = sim.subscriber_ids();
    // Point every resolved shortcut at the wrong (but live) node.
    let wrong = ids[0];
    for id in &ids {
        let s = sim.world_mut().node_mut(*id).unwrap().subscriber_mut().unwrap();
        for slot in s.shortcuts.values_mut() {
            if slot.is_some() && *slot != Some(wrong) {
                *slot = Some(wrong);
            }
        }
    }
    assert!(!sim.is_legitimate());
    let (rounds, ok) = sim.run_until_legit(5000);
    assert!(ok, "{:?}", sim.report().issues);
    assert!(rounds <= 200, "shortcut healing took {rounds} rounds");
}

#[test]
fn supervisor_database_fully_scrambled() {
    // Permute which node holds which label in the database (all labels
    // valid, all nodes live): the round-robin + SetData authority must
    // relabel the whole ring.
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(10, 11, cfg), cfg);
    {
        let sup_id = sim.supervisor_id();
        let sup = sim.world_mut().node_mut(sup_id).unwrap().supervisor_mut().unwrap();
        let labels: Vec<Label> = sup.database.keys().copied().collect();
        let nodes: Vec<Option<NodeId>> = sup.database.values().copied().collect();
        let n = nodes.len();
        for (i, l) in labels.iter().enumerate() {
            sup.database.insert(*l, nodes[(i + n / 2) % n]);
        }
    }
    assert!(!sim.is_legitimate());
    let (_, ok) = sim.run_until_legit(30_000);
    assert!(ok, "{:?}", sim.report().issues);
}

#[test]
fn actor_enum_roundtrip_via_world() {
    // Sanity on the Actor plumbing used everywhere above.
    let cfg = ProtocolConfig::default();
    let sim = SkipRingSim::from_world(scenarios::legit_world(3, 12, cfg), cfg);
    let mut supers = 0;
    let mut subs = 0;
    for (_, a) in sim.world().iter() {
        match a {
            Actor::Supervisor(_) => supers += 1,
            Actor::Subscriber(_) => subs += 1,
        }
    }
    assert_eq!((supers, subs), (1, 3));
}
