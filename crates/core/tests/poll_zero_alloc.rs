//! Counting-allocator harness (same technique as `alloc_free.rs` and
//! `crates/sim/tests/zero_alloc.rs`) for the incremental checking
//! layer: polling a **legitimate, steady-state** system —
//! `is_legitimate()` + `publications_converged()` — must perform zero
//! heap allocations on every backend. In steady state no dirty-channel
//! version moves, so each poll is a cache hit: version reads + a
//! boolean, no world scan, no `BTreeMap`s, no `String`s.
//!
//! One test per file so no parallel test thread pollutes the counter;
//! residual harness noise is removed by taking the minimum over several
//! attempts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use skippub_core::{PubSub, SystemBuilder, TopicId};

/// Allocations observed during `f`, minimized over several attempts so
/// unrelated-thread noise cannot produce a false positive.
fn min_allocs(mut f: impl FnMut()) -> u64 {
    (0..8)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            f();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("nonempty")
}

fn assert_poll_allocs_nothing(ps: &mut dyn PubSub, name: &str) {
    assert!(ps.until_legit(6_000).1, "{name} must reach legitimacy");
    let (converged, _) = ps.publications_converged();
    assert!(converged, "{name} must be converged (no publications)");
    // Warm poll (caches populated above), then measure.
    let mut acc = 0u64;
    let polls = min_allocs(|| {
        for _ in 0..100 {
            acc += u64::from(ps.is_legitimate());
            let (ok, n) = ps.publications_converged();
            acc += u64::from(ok) + n as u64;
        }
    });
    assert_eq!(
        polls, 0,
        "{name}: steady-state legitimacy + convergence polls must not allocate"
    );
    assert!(acc > 0, "polls must have returned verdicts");
}

#[test]
fn steady_state_polls_allocate_nothing() {
    // Multi-topic backend.
    let mut ps = SystemBuilder::new(71).topics(6).build_multi();
    for i in 0..18u32 {
        ps.subscribe(TopicId(i % 6));
    }
    assert_poll_allocs_nothing(&mut ps, "multi-topic");

    // Sharded backend (partitioned world: version reads sum partitions).
    let mut ps = SystemBuilder::new(72).topics(6).shards(3).build_sharded();
    for i in 0..18u32 {
        ps.subscribe(TopicId(i % 6));
    }
    assert_poll_allocs_nothing(&mut ps, "sharded");

    // Single-topic sim backend.
    let mut ps = SystemBuilder::new(73).build_sim();
    for _ in 0..8 {
        ps.subscribe(TopicId(0));
    }
    assert_poll_allocs_nothing(&mut ps, "sim");
}
