//! Property tests for the replicated-supervisor subsystem: replicas fed
//! the same per-topic operation sequences — in different cross-topic
//! interleavings, and starting from adversarially corrupted initial log
//! states — converge to identical replayed database digests after
//! anti-entropy. This is the self-stabilization claim of the replica
//! layer: agreement is restored from *any* initial log state, and the
//! replayed state is a function of the per-topic op sequences alone.

use proptest::collection::vec;
use proptest::prelude::*;
use skippub_core::{RepOp, RepOpKind, ReplicaGroup, TopicId};
use skippub_sim::NodeId;

const SUP: NodeId = NodeId(0);

/// Decodes one drawn tuple into a supervisor operation. Node IDs stay
/// in a small pool so subscribes/unsubscribes/suspects actually
/// interact; every drawn tuple is applicable (no rejection).
fn kind_of((k, a, b): (u8, u64, u64)) -> RepOpKind {
    let node = |x: u64| NodeId(1 + x % 8);
    match k % 6 {
        0 => RepOpKind::Subscribe { v: node(a) },
        1 => RepOpKind::Unsubscribe { v: node(a) },
        2 => RepOpKind::GetConfig {
            u: node(a),
            requester: (b % 2 == 0).then(|| node(b)),
        },
        3 => RepOpKind::Timeout,
        4 => RepOpKind::TokenReturn { seq: a % 4 },
        _ => RepOpKind::Suspect { v: node(a) },
    }
}

/// Splits the drawn ops into per-topic sequences over `topics` topics.
fn per_topic(ops: &[(u8, u64, u64)], topics: u32) -> Vec<(TopicId, Vec<RepOpKind>)> {
    let mut out: Vec<(TopicId, Vec<RepOpKind>)> =
        (0..topics).map(|t| (TopicId(t), Vec::new())).collect();
    for (i, &op) in ops.iter().enumerate() {
        out[i % topics as usize].1.push(kind_of(op));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn interleavings_of_the_same_per_topic_ops_converge(
        ops in vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60),
        topics in 1u32..4,
        k in 2usize..5,
        chunk in 1usize..7,
    ) {
        // Group A records each topic's whole sequence at once; group B
        // records the same sequences chunked and interleaved round-robin
        // across topics. Replay is per-topic, so the replicas' database
        // digests must not depend on the cross-topic interleaving.
        let seqs = per_topic(&ops, topics);

        let mut a = ReplicaGroup::new(k, SUP, false);
        for (t, kinds) in &seqs {
            a.record_topic(*t, kinds.clone());
        }
        a.anti_entropy();

        let mut b = ReplicaGroup::new(k, SUP, false);
        let mut cursors: Vec<usize> = vec![0; seqs.len()];
        loop {
            let mut progressed = false;
            for (i, (t, kinds)) in seqs.iter().enumerate() {
                if cursors[i] < kinds.len() {
                    let hi = (cursors[i] + chunk).min(kinds.len());
                    b.record_topic(*t, kinds[cursors[i]..hi].to_vec());
                    cursors[i] = hi;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        b.anti_entropy();

        prop_assert!(a.agreement(), "group A replicas must agree");
        prop_assert!(b.agreement(), "group B replicas must agree");
        // Same per-topic sequences => same replayed databases, replica
        // by replica (labels coincide for two fresh groups).
        for (ra, rb) in a.replicas().iter().zip(b.replicas()) {
            prop_assert_eq!(ra.digest(), rb.digest());
        }
    }

    #[test]
    fn adversarial_initial_logs_are_repaired(
        ops in vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..40),
        garbage in vec(vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..20), 1..4),
        topics in 1u32..3,
        k in 3usize..5,
    ) {
        // Backups start from arbitrary (mutually different) log states —
        // the self-stabilization model admits any initial content. One
        // anti-entropy round after recording must restore agreement with
        // the primary, and the result must equal a group that never saw
        // the corruption.
        let seqs = per_topic(&ops, topics);

        let mut dirty = ReplicaGroup::new(k, SUP, false);
        for (i, g) in garbage.iter().enumerate() {
            let idx = 1 + i % (k - 1); // never the primary
            let fake: Vec<RepOp> = g
                .iter()
                .enumerate()
                .map(|(j, &op)| RepOp {
                    topic: TopicId(j as u32 % topics),
                    kind: kind_of(op),
                })
                .collect();
            dirty.inject_log(idx, fake);
        }
        for (t, kinds) in &seqs {
            dirty.record_topic(*t, kinds.clone());
        }
        dirty.anti_entropy();

        let mut clean = ReplicaGroup::new(k, SUP, false);
        for (t, kinds) in &seqs {
            clean.record_topic(*t, kinds.clone());
        }
        clean.anti_entropy();

        prop_assert!(dirty.agreement(), "corrupted backups must be repaired");
        prop_assert_eq!(dirty.group_digest(), clean.group_digest());
    }

    #[test]
    fn failover_elects_deterministically_and_preserves_state(
        ops in vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..40),
        more in vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..20),
        k in 2usize..5,
    ) {
        // Crashing the primary mid-history must not change the replayed
        // database: the electee's state equals the old primary's, and
        // recording the remaining history on the survivor group yields
        // the same database as a group that never crashed.
        let t = TopicId(0);
        let first: Vec<RepOpKind> = ops.iter().map(|&o| kind_of(o)).collect();
        let rest: Vec<RepOpKind> = more.iter().map(|&o| kind_of(o)).collect();

        let mut crashed = ReplicaGroup::new(k, SUP, false);
        crashed.record_topic(t, first.clone());
        crashed.anti_entropy();
        let before = crashed.primary_topic(t);
        prop_assert!(crashed.fail_primary());
        // Deterministic election: the lowest live label wins.
        prop_assert_eq!(crashed.primary_label(), 1);
        prop_assert_eq!(crashed.failovers(), 1);
        let after = crashed.primary_topic(t);
        prop_assert_eq!(format!("{before:?}"), format!("{after:?}"));
        crashed.record_topic(t, rest.clone());
        crashed.anti_entropy();

        let mut steady = ReplicaGroup::new(k, SUP, false);
        steady.record_topic(t, first);
        steady.record_topic(t, rest);
        steady.anti_entropy();

        prop_assert!(crashed.agreement());
        prop_assert_eq!(
            format!("{:?}", crashed.primary_topic(t)),
            format!("{:?}", steady.primary_topic(t))
        );
    }
}
