//! Counting-allocator harness (same technique as
//! `crates/sim/tests/zero_alloc.rs`) for core hot paths: consistent-hash
//! ring lookups must not allocate per call — `sharding::point` hashes
//! from a fixed-size stack buffer and `Hash128::of_bytes` absorbs words
//! straight off the input slice.
//!
//! This file holds exactly one test so no parallel test thread can
//! pollute the counter; residual noise (the libtest harness's own
//! threads can allocate at any time) is removed by taking the minimum
//! over several attempts — observing even one zero-allocation window
//! proves the measured path itself never allocates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use skippub_core::sharding::SupervisorShards;
use skippub_core::topics::TopicId;
use skippub_sim::NodeId;

/// Allocations observed during `f`, minimized over several attempts so
/// unrelated-thread noise cannot produce a false positive.
fn min_allocs(mut f: impl FnMut()) -> u64 {
    (0..8)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            f();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("nonempty")
}

#[test]
fn shard_lookups_allocate_nothing() {
    let sups: Vec<NodeId> = (0..8).map(NodeId).collect();
    let shards = SupervisorShards::new(&sups, 64);

    // Warm-up (and sanity: lookups actually spread over supervisors).
    let mut distinct = std::collections::BTreeSet::new();
    for t in 0..64 {
        distinct.insert(shards.supervisor_for(TopicId(t)));
    }
    assert!(distinct.len() > 1);

    let mut acc = 0u64;
    let lookups = min_allocs(|| {
        for t in 0..10_000u32 {
            acc = acc.wrapping_add(shards.supervisor_for(TopicId(t)).0);
        }
    });
    assert_eq!(lookups, 0, "supervisor_for must not allocate per lookup");
    // Keep the loop observable.
    assert!(acc > 0);

    // The underlying hash itself is allocation-free too.
    let mut h = 0u64;
    let hashes = min_allocs(|| {
        for i in 0..10_000u64 {
            let buf = i.to_le_bytes();
            h = h.wrapping_add(skippub_bits::Hash128::of_bytes(&buf).words()[0]);
        }
    });
    assert_eq!(hashes, 0, "Hash128::of_bytes must not allocate");
    assert!(h > 0);
}
