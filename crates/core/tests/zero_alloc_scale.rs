//! Acceptance gate for the inline-label work: steady-state rounds at
//! n = 100 000 must perform **zero** `BitStr` heap allocations.
//!
//! With the default `key_bits = 64`, every label (≤ ~17 bits at this
//! scale) and every publication key (exactly 64 bits) fits the inline
//! representation, so a legitimate network exchanging probes should
//! never spill a bit string to the heap. [`BitStr::heap_allocations`]
//! is a process-wide gauge counting spill events, which is why this
//! test lives alone in its own integration-test binary: any other test
//! running in the same process could move the counter.

use skippub_bits::BitStr;
use skippub_core::scenarios::legit_world;
use skippub_core::{ProtocolConfig, SkipRingSim};

#[test]
fn steady_state_rounds_at_100k_allocate_no_bitstr_heap_memory() {
    // Topology-only keeps the workload to the hot maintenance traffic
    // (timeouts, probes, ring repair) without publication flooding.
    let cfg = ProtocolConfig::topology_only();
    let mut sim = SkipRingSim::from_world(legit_world(100_000, 0xA110C, cfg), cfg);

    // Let the first wave of timeouts fire and the answering probes
    // drain, so the measured window is genuine steady state.
    for _ in 0..2 {
        sim.run_round();
    }

    let before = BitStr::heap_allocations();
    for _ in 0..3 {
        sim.run_round();
    }
    let spilled = BitStr::heap_allocations() - before;
    assert_eq!(
        spilled, 0,
        "steady-state rounds at n=100k spilled {spilled} bit strings to the heap; \
         labels and 64-bit keys must stay inline"
    );

    // The window above must actually have exercised the protocol.
    assert!(
        sim.metrics().delivered_total > 0,
        "measurement window delivered no messages — the test is vacuous"
    );
}
