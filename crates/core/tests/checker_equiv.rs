//! Conformance of the fast boolean checker with the diagnostic checker:
//! `fast_check_parts(sup, members, scratch) == check_topology_parts(sup, members).ok()`
//! on randomly corrupted worlds (label flips, dropped/garbled edges,
//! stale database entries, membership flips, shortcut poisoning) and on
//! every mid-stabilization snapshot of a cold bootstrap — the
//! correctness bar of the incremental checking layer.

use proptest::collection::vec;
use proptest::prelude::*;
use skippub_core::checker::{self, CheckScratch};
use skippub_core::{scenarios, ProtocolConfig};
use skippub_ringmath::Label;
use skippub_sim::{NodeId, World};

/// One random corruption, interpreted against the world's population
/// (indices taken modulo the relevant collection sizes so every drawn
/// tuple is applicable).
type Corruption = (u8, u64, u64);

fn apply(world: &mut World<skippub_core::Actor>, (kind, a, b): Corruption) {
    let ids = scenarios::subscriber_ids(world);
    if ids.is_empty() {
        return;
    }
    let victim = ids[(a % ids.len() as u64) as usize];
    let sup_id = scenarios::supervisor_id(world);
    let label_pool = ["0", "1", "01", "11", "010", "111111"];
    let lab: Label = label_pool[(b % label_pool.len() as u64) as usize]
        .parse()
        .unwrap();
    match kind % 8 {
        0 => {
            // Label flip.
            let s = world.node_mut(victim).unwrap().subscriber_mut().unwrap();
            s.label = Some(lab);
        }
        1 => {
            // Dropped edges.
            let s = world.node_mut(victim).unwrap().subscriber_mut().unwrap();
            s.left = None;
            s.right = None;
        }
        2 => {
            // Garbled ring edge pointing at self under a random label.
            let s = world.node_mut(victim).unwrap().subscriber_mut().unwrap();
            s.ring = Some(skippub_core::NodeRef::new(lab, victim));
        }
        3 => {
            // Stale db entry: (label, ⊥).
            let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
            sup.database.insert(lab, None);
        }
        4 => {
            // Duplicate db value under an extra label.
            let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
            sup.database.insert(lab, Some(victim));
        }
        5 => {
            // Membership-intent flip (an "unsubscribing but still
            // labelled and listed" state).
            let s = world.node_mut(victim).unwrap().subscriber_mut().unwrap();
            s.wants_membership = !s.wants_membership;
        }
        6 => {
            // Shortcut poisoning: clear one slot or file a bogus one.
            let s = world.node_mut(victim).unwrap().subscriber_mut().unwrap();
            if b % 2 == 0 {
                if let Some(k) = s.shortcuts.keys().next().copied() {
                    s.shortcuts.insert(k, None);
                }
            } else {
                s.shortcuts.insert(lab, Some(NodeId(a)));
            }
        }
        _ => {
            // db entry redirected to a dead/unknown node.
            let sup = world.node_mut(sup_id).unwrap().supervisor_mut().unwrap();
            if let Some(v) = sup.database.values_mut().next() {
                *v = Some(NodeId(0xDEAD_0000 + a));
            }
        }
    }
}

fn assert_paths_agree(world: &World<skippub_core::Actor>, scratch: &mut CheckScratch) {
    let full = checker::check_topology(world);
    let fast = checker::fast_check_topology(world, scratch);
    assert_eq!(
        fast,
        full.ok(),
        "fast and diagnostic checkers disagree; issues: {:?}",
        full.issues
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn fast_equals_diagnostic_on_corrupted_worlds(
        seed in any::<u64>(),
        n in 2usize..12,
        corruptions in vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..6),
    ) {
        let mut world = scenarios::legit_world(n, seed, ProtocolConfig::default());
        let mut scratch = CheckScratch::default();
        // Sanity: the uncorrupted world agrees (and is legitimate).
        prop_assert!(checker::fast_check_topology(&world, &mut scratch));
        for c in corruptions {
            apply(&mut world, c);
            let full = checker::check_topology(&world).ok();
            let fast = checker::fast_check_topology(&world, &mut scratch);
            prop_assert_eq!(fast, full);
        }
    }

    #[test]
    fn fast_equals_diagnostic_on_mid_stabilization_snapshots(
        seed in any::<u64>(),
        n in 2usize..10,
    ) {
        // A cold start passes through every intermediate topology shape;
        // the paths must agree on each per-round snapshot, not just on
        // the fixed points.
        let mut world = scenarios::cold_world(n, seed, ProtocolConfig::default());
        let mut scratch = CheckScratch::default();
        for _ in 0..120 {
            let full = checker::check_topology(&world).ok();
            let fast = checker::fast_check_topology(&world, &mut scratch);
            prop_assert_eq!(fast, full);
            if full {
                break;
            }
            world.run_round();
        }
    }
}

#[test]
fn scratch_is_reusable_across_divergent_worlds() {
    // One scratch must serve worlds of very different sizes without
    // carrying state over (stale buffers were a real failure mode of
    // hand-rolled scratch reuse).
    let mut scratch = CheckScratch::default();
    for n in [1usize, 16, 2, 33, 1] {
        let world = scenarios::legit_world(n, 5, ProtocolConfig::default());
        assert_paths_agree(&world, &mut scratch);
    }
}
